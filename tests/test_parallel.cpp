// Unit tests for the shared parallel execution engine (util/parallel.hpp):
// coverage, thread-budget handling, nesting, exception propagation, and the
// deterministic per-index seed stream.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace dfr {
namespace {

TEST(Parallel, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, [&](std::size_t i) { ++visits[i]; }, {.threads = 8});
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ThreadsOneRunsEntirelyOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  parallel_for(
      64,
      [&](std::size_t) {
        if (std::this_thread::get_id() != caller) off_thread = true;
      },
      {.threads = 1});
  EXPECT_FALSE(off_thread.load());
}

TEST(Parallel, ZeroItemsIsANoOp) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { ++calls; }, {.threads = 8});
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, GrainDoesNotChangeCoverage) {
  constexpr std::size_t kN = 257;  // deliberately not a grain multiple
  for (const std::size_t grain : {std::size_t{1}, std::size_t{10},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> visits(kN);
    parallel_for(kN, [&](std::size_t i) { ++visits[i]; },
                 {.threads = 4, .grain = grain});
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "grain " << grain << ", index " << i;
    }
  }
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          {.threads = 4}),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> calls{0};
  parallel_for(50, [&](std::size_t) { ++calls; }, {.threads = 4});
  EXPECT_EQ(calls.load(), 50);
}

TEST(Parallel, NestedCallsDegradeToSerial) {
  // A parallel_for issued from inside a body must not re-enter the pool —
  // the inner loop runs on the same thread that called it.
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> visits(kOuter * kInner);
  std::atomic<bool> inner_left_thread{false};
  parallel_for(
      kOuter,
      [&](std::size_t i) {
        EXPECT_TRUE(inside_parallel_region());
        const std::thread::id outer_thread = std::this_thread::get_id();
        parallel_for(
            kInner,
            [&, outer_thread](std::size_t k) {
              if (std::this_thread::get_id() != outer_thread) {
                inner_left_thread = true;
              }
              ++visits[i * kInner + k];
            },
            {.threads = 8});
      },
      {.threads = 8});
  EXPECT_FALSE(inner_left_thread.load());
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "slot " << i;
  }
  EXPECT_FALSE(inside_parallel_region());  // flag restored after the job
}

TEST(Parallel, ConcurrentExternalCallersSerialize) {
  // Two non-worker threads submitting jobs at once must both complete with
  // full coverage (jobs are serialized internally, never interleaved).
  constexpr std::size_t kN = 400;
  std::vector<std::atomic<int>> a(kN), b(kN);
  std::thread other([&] {
    parallel_for(kN, [&](std::size_t i) { ++a[i]; }, {.threads = 4});
  });
  parallel_for(kN, [&](std::size_t i) { ++b[i]; }, {.threads = 4});
  other.join();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i].load(), 1);
    ASSERT_EQ(b[i].load(), 1);
  }
}

TEST(Parallel, RepeatedJobsReuseThePersistentPool) {
  // Many consecutive small jobs must all drain correctly (regression guard
  // for generation/worker-slot bookkeeping between jobs).
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> calls{0};
    parallel_for(17, [&](std::size_t) { ++calls; }, {.threads = 0});
    ASSERT_EQ(calls.load(), 17) << "round " << round;
  }
}

TEST(Parallel, SeedStreamIsDeterministicAndSpread) {
  EXPECT_EQ(parallel_seed(42, 7), parallel_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(parallel_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across indices
  EXPECT_NE(parallel_seed(42, 7), parallel_seed(43, 7));  // base matters
}

TEST(BackgroundQueue, RunsTasksFifoAndDrainIsABarrier) {
  BackgroundQueue queue;
  std::vector<int> order;  // written only by the queue thread (FIFO, single)
  for (int i = 0; i < 16; ++i) {
    queue.post([&order, i] { order.push_back(i); });
  }
  queue.drain();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i) << "FIFO order";
}

TEST(BackgroundQueue, ThrowingTaskIsSwallowedAndTheQueueKeepsRunning) {
  BackgroundQueue queue;
  std::atomic<int> ran{0};
  queue.post([] { throw std::runtime_error("advisory work gone wrong"); });
  queue.post([&ran] { ++ran; });
  queue.drain();
  EXPECT_EQ(ran.load(), 1);
}

TEST(BackgroundQueue, TasksMayPostFollowOnWorkAndDrainWaitsForIt) {
  BackgroundQueue queue;
  std::atomic<int> depth{0};
  std::function<void()> chain = [&] {
    if (depth.fetch_add(1) < 4) queue.post(chain);
  };
  queue.post(chain);
  queue.drain();
  EXPECT_EQ(depth.load(), 5);
}

TEST(BackgroundQueue, DestructorFinishesPostedWork) {
  std::atomic<int> ran{0};
  {
    BackgroundQueue queue;
    for (int i = 0; i < 8; ++i) {
      queue.post([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
  }  // dtor must run all eight, then join
  EXPECT_EQ(ran.load(), 8);
}

TEST(Parallel, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

}  // namespace
}  // namespace dfr
