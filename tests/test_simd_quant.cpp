// Tests for the SIMD quantized datapath (SimdQuantizedDatapath +
// the quantized kernel family of serve/simd_kernels.hpp). The contract is
// STRICTER than the float SIMD suite's: fixed-point rounding is exact, so
// quantized SIMD results are asserted BIT-IDENTICAL (EXPECT_EQ) to the
// scalar QuantizedDatapath — across every FixedPointFormat configuration,
// every nonlinearity, odd Nx sizes, and every available backend, at the
// stage level (vector round-to-format) and end to end (features, logits,
// classify, batch, QuantizedDfr knob). Also pins the zero-steady-state-
// allocation guarantee for the SIMD quantized engine. (On aarch64 the
// scalar reference TU may FMA-contract the B-chain; the strict assertions
// are x86-64's, mirroring test_simd's step-stage contract.)
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

// ---- allocation instrumentation (same scheme as test_serve.cpp) ------------

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dfr {
namespace {

std::vector<simd::Backend> available_backends() {
  std::vector<simd::Backend> backends;
  for (simd::Backend b : {simd::Backend::kScalar, simd::Backend::kAvx2,
                          simd::Backend::kNeon, simd::Backend::kAvx512}) {
    if (simd::backend_available(b)) backends.push_back(b);
  }
  return backends;
}

/// Restores the active backend on scope exit so force_backend tests cannot
/// leak state into later tests.
class ScopedBackend {
 public:
  ScopedBackend() : saved_(simd::active_backend()) {}
  ~ScopedBackend() { simd::force_backend(saved_); }

 private:
  simd::Backend saved_;
};

Matrix random_series(std::size_t t_len, std::size_t channels, Rng& rng) {
  Matrix m(t_len, channels);
  for (std::size_t k = 0; k < t_len; ++k) {
    for (std::size_t v = 0; v < channels; ++v) m(k, v) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

/// Deployment-shaped model with random (but deterministic) weights; serving
/// equivalence depends only on shapes, never on training.
LoadedModel make_model(std::size_t nodes, std::size_t channels, int classes,
                       NonlinearityKind kind, std::uint64_t seed) {
  Rng rng(seed);
  LoadedModel model;
  model.params = DfrParams{0.1, 0.05};
  model.mask = Mask(nodes, channels, MaskKind::kBinary, rng);
  model.nonlinearity = Nonlinearity(kind);
  Matrix w(static_cast<std::size_t>(classes), dprr_dim(nodes));
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) w(i, j) = rng.uniform(-1.0, 1.0);
  }
  Vector b(w.rows(), 0.0);
  for (double& v : b) v = rng.uniform(-0.1, 0.1);
  model.readout = OutputLayer(std::move(w), std::move(b));
  return model;
}

constexpr NonlinearityKind kAllKinds[] = {
    NonlinearityKind::kIdentity,  NonlinearityKind::kMackeyGlass,
    NonlinearityKind::kTanh,      NonlinearityKind::kSine,
    NonlinearityKind::kCubic,     NonlinearityKind::kSaturating,
};

// Odd shapes: below any vector width, odd, prime, and large non-multiples
// of the NEON (2), AVX2 (4), and AVX-512 (8) widths.
constexpr std::size_t kOddSizes[] = {1, 2, 3, 5, 30, 101};

/// Format sweeps for QuantizedInferenceConfig: the paper-default 16b/24b
/// pairing, a narrow 8b-ish deployment, an asymmetric wide-feature config,
/// and a deliberately coarse one where saturation and ties actually bite.
std::vector<QuantizedInferenceConfig> format_configs() {
  return {
      QuantizedInferenceConfig{},  // Q4.11 / Q8.15 / Q4.11 (the default)
      QuantizedInferenceConfig{{2, 5}, {4, 9}, {2, 5}},
      QuantizedInferenceConfig{{1, 14}, {10, 21}, {3, 12}},
      QuantizedInferenceConfig{{3, 2}, {6, 4}, {3, 2}},
  };
}

/// `step` is the comparison's quantization granularity: the feature-format
/// resolution for feature vectors, a weight-amplified multiple of it for
/// logits (one flipped feature step propagates through the readout row), and
/// 0 for values not on a grid. Only the non-x86 branch consumes it.
void expect_bit_identical(std::span<const double> expected,
                          std::span<const double> got,
                          const std::string& context, double step = 0.0) {
  ASSERT_EQ(expected.size(), got.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
#if defined(__x86_64__) || defined(_M_X64)
    (void)step;
    ASSERT_EQ(expected[i], got[i]) << context << " i=" << i;
#else
    // Non-x86 scalar baselines may FMA-contract (see the file header); a
    // round-to-format tie decided differently then shifts a value by one
    // full format step, so the tolerance must absorb `step`, not just ulps.
    ASSERT_NEAR(expected[i], got[i],
                1e-12 + 1e-9 * std::fabs(expected[i]) + 1.000001 * step)
        << context << " i=" << i;
#endif
  }
}

// ---- stage level: the vector round-to-format --------------------------------

// scale_quantize (the vector round-to-format with saturation) against
// FixedPointFormat::quantize per element, for every configured format,
// including values that saturate both rails, ties, NaN, infinities, and
// signed zero.
TEST(QuantKernels, ScaleQuantizeBitExactAcrossBackends) {
  Rng rng(3);
  for (const QuantizedInferenceConfig& config : format_configs()) {
    for (const FixedPointFormat& fmt :
         {config.state_format, config.feature_format, config.weight_format}) {
      for (double scale : {1.0, 0.25, 1.0 / 3.0}) {
        Vector input;
        // Dense coverage around the representable range plus edge values.
        for (int i = 0; i < 256; ++i) {
          input.push_back(rng.uniform(-2.0 * fmt.max_value(),
                                      2.0 * fmt.max_value()));
        }
        // Exact ties at half-resolution multiples (nearest-even territory).
        for (int i = -9; i <= 9; ++i) {
          input.push_back((static_cast<double>(i) + 0.5) * fmt.resolution() /
                          scale);
        }
        input.push_back(std::numeric_limits<double>::quiet_NaN());
        input.push_back(std::numeric_limits<double>::infinity());
        input.push_back(-std::numeric_limits<double>::infinity());
        input.push_back(0.0);
        input.push_back(-0.0);

        Vector expected(input);
        for (double& v : expected) v = fmt.quantize(v * scale);

        for (simd::Backend b : available_backends()) {
          Vector got(input);
          simd::kernels_for(b).scale_quantize(fmt, scale, got.data(),
                                              got.size());
          for (std::size_t i = 0; i < got.size(); ++i) {
            // Bit-level compare (0.0 vs -0.0 must match too).
            ASSERT_EQ(expected[i], got[i])
                << simd::backend_name(b) << " " << fmt.to_string()
                << " scale=" << scale << " in=" << input[i];
            ASSERT_EQ(std::signbit(expected[i]), std::signbit(got[i]))
                << simd::backend_name(b) << " " << fmt.to_string()
                << " scale=" << scale << " in=" << input[i];
          }
        }
      }
    }
  }
}

// quant_preadd_nonlin (quantized preadd + nonlinearity) against the scalar
// composition, for every nonlinearity and odd size.
TEST(QuantKernels, QuantPreaddNonlinBitExactAcrossBackends) {
  Rng rng(11);
  const FixedPointFormat fmt{4, 11};
  for (NonlinearityKind kind : kAllKinds) {
    const Nonlinearity f(kind);
    for (std::size_t nx : kOddSizes) {
      Vector j(nx), x_prev(nx), expected(nx), got(nx);
      for (std::size_t n = 0; n < nx; ++n) {
        j[n] = rng.uniform(-2.0, 2.0);
        x_prev[n] = rng.uniform(-2.0, 2.0);
      }
      for (double a : {1.0, 0.7}) {
        for (std::size_t n = 0; n < nx; ++n) {
          expected[n] = a * f.value(fmt.quantize(j[n] + x_prev[n]));
        }
        for (simd::Backend b : available_backends()) {
          simd::kernels_for(b).quant_preadd_nonlin(
              f, a, fmt, j.data(), x_prev.data(), got.data(), nx);
          for (std::size_t n = 0; n < nx; ++n) {
            ASSERT_EQ(got[n], expected[n])
                << simd::backend_name(b) << " " << nonlinearity_name(kind)
                << " nx=" << nx << " a=" << a << " n=" << n;
          }
        }
      }
    }
  }
}

// dprr_add_exact against DprrAccumulator::add over many accumulation steps:
// no FMA means no drift — strict equality even after hundreds of rounds.
TEST(QuantKernels, DprrAddExactBitExactAcrossBackends) {
  Rng rng(17);
  for (std::size_t nx : kOddSizes) {
    constexpr std::size_t kSteps = 64;
    std::vector<Vector> xs;
    for (std::size_t k = 0; k <= kSteps; ++k) {
      Vector x(nx);
      for (double& v : x) v = rng.uniform(-1.0, 1.0);
      xs.push_back(std::move(x));
    }
    DprrAccumulator reference(nx);
    for (std::size_t k = 1; k <= kSteps; ++k) {
      reference.add(xs[k], xs[k - 1]);
    }
    for (simd::Backend b : available_backends()) {
      Vector r(dprr_dim(nx), 0.0);
      for (std::size_t k = 1; k <= kSteps; ++k) {
        simd::kernels_for(b).dprr_add_exact(r.data(), xs[k].data(),
                                            xs[k - 1].data(), nx);
      }
      // Strict on x86-64; on other architectures the scalar reference
      // (dprr.cpp, built without -ffp-contract=off) may itself fuse, so the
      // helper's non-x86 branch allows sub-ulp drift. The accumulators are
      // raw doubles, not grid values, hence step = 0.
      expect_bit_identical(reference.features(), r,
                           std::string(simd::backend_name(b)) +
                               " dprr nx=" + std::to_string(nx));
    }
  }
}

// ---- pipeline level: strict equivalence across everything ------------------

// The headline contract: SimdQuantizedDatapath features and logits are
// EXPECT_EQ-identical to the scalar QuantizedDatapath for every format
// configuration, nonlinearity, odd Nx, and available backend.
TEST(QuantEquivalence, FeaturesAndLogitsBitIdenticalAcrossEverything) {
  constexpr std::size_t kTLen = 40;
  constexpr std::size_t kChannels = 3;
  Rng rng(42);
  for (const QuantizedInferenceConfig& config : format_configs()) {
    for (NonlinearityKind kind : kAllKinds) {
      for (std::size_t nx : kOddSizes) {
        const LoadedModel model = make_model(nx, kChannels, 3, kind, 7 + nx);
        QuantizedDfr quantized(model, config);
        // Calibrate on a tiny synthetic set so prescalers are non-trivial.
        Dataset calib("calib", 3, kTLen, kChannels);
        for (int i = 0; i < 3; ++i) {
          calib.add({random_series(kTLen, kChannels, rng), i % 2});
        }
        quantized.calibrate(calib);
        const Matrix series = random_series(kTLen, kChannels, rng);

        QuantizedInferenceEngine scalar_engine = make_engine(quantized);
        const std::span<const double> ref_features =
            scalar_engine.features(series);
        const Vector ref_copy(ref_features.begin(), ref_features.end());
        const Vector ref_logits(scalar_engine.infer(series).begin(),
                                scalar_engine.infer(series).end());
        const int ref_label = scalar_engine.classify(series);

        // One flipped feature step amplifies through the readout row; 8x
        // is a generous bound for the few ties contraction could flip.
        const double feature_step = config.feature_format.resolution();
        for (simd::Backend b : available_backends()) {
          SimdQuantizedInferenceEngine engine = make_simd_engine(quantized, b);
          const std::string context =
              std::string(simd::backend_name(b)) + " " +
              nonlinearity_name(kind) + " nx=" + std::to_string(nx) + " " +
              config.state_format.to_string();
          expect_bit_identical(ref_copy, engine.features(series),
                               context + " features", feature_step);
          expect_bit_identical(ref_logits, engine.infer(series),
                               context + " logits", 8.0 * feature_step);
          EXPECT_EQ(engine.classify(series), ref_label) << context;
        }
      }
    }
  }
}

// The QuantizedDfr convenience knob: every engine kind returns identical
// features and labels (kAuto == kSimd == kScalar results, by the exactness
// contract).
TEST(QuantEquivalence, QuantizedDfrEngineKnobAgrees) {
  const LoadedModel model =
      make_model(30, 2, 4, NonlinearityKind::kIdentity, 77);
  QuantizedDfr quantized(model, QuantizedInferenceConfig{});
  Rng rng(78);
  const Matrix series = random_series(50, 2, rng);
  const Vector scalar = quantized.features(series, QuantizedEngineKind::kScalar);
  const Vector simd_r = quantized.features(series, QuantizedEngineKind::kSimd);
  const Vector auto_r = quantized.features(series);  // default = kAuto
  const double step = quantized.config().feature_format.resolution();
  expect_bit_identical(scalar, simd_r, "kSimd features", step);
  expect_bit_identical(simd_r, auto_r, "kAuto features", step);
  EXPECT_EQ(quantized.classify(series, QuantizedEngineKind::kScalar),
            quantized.classify(series, QuantizedEngineKind::kSimd));
  EXPECT_EQ(quantized.classify(series),
            quantized.classify(series, QuantizedEngineKind::kAuto));
}

// Shared-ownership engines keep the quantized model alive, mirroring the
// float artifact semantics.
TEST(QuantEquivalence, SharedOwnershipEngineOutlivesModel) {
  Rng rng(5);
  const Matrix series = random_series(30, 2, rng);
  Vector expected;
  int label = -1;
  SimdQuantizedInferenceEngine engine = [&] {
    const LoadedModel model =
        make_model(10, 2, 3, NonlinearityKind::kSaturating, 6);
    auto shared = std::make_shared<const QuantizedDfr>(
        model, QuantizedInferenceConfig{});
    QuantizedInferenceEngine scalar_engine = make_engine(shared);
    expected.assign(scalar_engine.infer(series).begin(),
                    scalar_engine.infer(series).end());
    label = scalar_engine.classify(series);
    return make_simd_engine(std::move(shared));
  }();  // the QuantizedDfr is only owned by the engines now
  expect_bit_identical(expected, engine.infer(series), "shared ownership",
                       8.0 * QuantizedInferenceConfig{}.feature_format.resolution());
  EXPECT_EQ(engine.classify(series), label);
}

TEST(QuantEquivalence, NullSharedModelThrowsTypedError) {
  EXPECT_THROW((void)make_simd_engine(std::shared_ptr<const QuantizedDfr>{}),
               CheckError);
}

// ---- batch determinism under forced dispatch -------------------------------

TEST(QuantBatch, ClassifyBatchDeterministicUnderForcedDispatch) {
  const LoadedModel model =
      make_model(17, 2, 3, NonlinearityKind::kSaturating, 99);
  QuantizedDfr quantized(model, QuantizedInferenceConfig{});
  Rng rng(100);
  std::vector<Matrix> batch;
  for (int i = 0; i < 24; ++i) batch.push_back(random_series(25, 2, rng));
  const std::span<const Matrix> series(batch);

  // Scalar-engine reference predictions, per series.
  std::vector<int> scalar_ref;
  QuantizedInferenceEngine scalar_engine = make_engine(quantized);
  for (const Matrix& m : batch) scalar_ref.push_back(scalar_engine.classify(m));
  EXPECT_EQ(classify_batch(quantized, series, 1, QuantizedEngineKind::kScalar),
            scalar_ref);

  ScopedBackend guard;
  for (simd::Backend b : available_backends()) {
    simd::force_backend(b);
    // Predictions must agree with the scalar pipeline on every backend
    // (strictly — the exactness contract)...
    SimdQuantizedInferenceEngine engine = make_simd_engine(quantized, b);
    std::vector<int> forced;
    for (const Matrix& m : batch) forced.push_back(engine.classify(m));
    EXPECT_EQ(forced, scalar_ref) << simd::backend_name(b);
    // ...and classify_batch must be deterministic for any thread count.
    for (unsigned threads : {1u, 2u, 3u, 8u, 0u}) {
      EXPECT_EQ(classify_batch(quantized, series, threads), scalar_ref)
          << simd::backend_name(b) << " threads=" << threads;
    }
  }
}

TEST(QuantBatch, QuantizedAccuracyAgreesAcrossEngineKinds) {
  const LoadedModel model =
      make_model(12, 2, 3, NonlinearityKind::kIdentity, 55);
  QuantizedDfr quantized(model, QuantizedInferenceConfig{});
  Rng rng(56);
  Dataset data("acc", 3, 20, 2);
  for (int i = 0; i < 16; ++i) {
    data.add({random_series(20, 2, rng), i % 3});
  }
  const double scalar =
      quantized_accuracy(quantized, data, 1, QuantizedEngineKind::kScalar);
  const double simd_acc =
      quantized_accuracy(quantized, data, 2, QuantizedEngineKind::kSimd);
  const double auto_acc = quantized_accuracy(quantized, data);
  EXPECT_EQ(scalar, simd_acc);
  EXPECT_EQ(simd_acc, auto_acc);
}

// ---- steady-state allocation guarantee -------------------------------------

TEST(QuantEngine, ClassifyIsAllocationFreeInSteadyState) {
  const LoadedModel model =
      make_model(30, 2, 4, NonlinearityKind::kIdentity, 13);
  QuantizedDfr quantized(model, QuantizedInferenceConfig{});
  Rng rng(14);
  std::vector<Matrix> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(random_series(40, 2, rng));

  SimdQuantizedInferenceEngine engine = make_simd_engine(quantized);
  for (const Matrix& m : batch) engine.classify(m);  // warmup

  const std::size_t before = g_allocations.load();
  int sink = 0;
  for (int rep = 0; rep < 100; ++rep) {
    for (const Matrix& m : batch) sink += engine.classify(m);
  }
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "SIMD quantized classify() must not allocate after warmup";
  EXPECT_GE(sink, 0);  // keep the loop observable
}

}  // namespace
}  // namespace dfr
