// Direct tests for the .dfrm trained-model serialization format: round-trip
// fidelity, and CheckError rejection of corrupt / truncated / unwritable
// files. (The format previously had only indirect coverage via the
// integration and fixedpoint suites.)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/preprocess.hpp"
#include "data/synth.hpp"
#include "dfr/model_io.hpp"
#include "dfr/trainer.hpp"

namespace dfr {
namespace {

std::string temp_path(const std::string& name) {
  // ctest -j runs every discovered test as its own process, each of which
  // re-runs SetUpTestSuite; a per-process suffix keeps them from racing on
  // shared file names.
  static const std::string suffix =
      "." + std::to_string(::getpid()) + ".dfrm";
  return (std::filesystem::temp_directory_path() / (name + suffix)).string();
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ModelIoRoundTrip : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pair_ = new DatasetPair(generate_toy_task(2, 1, 30, 10, 6, 0.5, 11));
    standardize_pair(*pair_);
    TrainerConfig config;
    config.nodes = 8;
    config.epochs = 4;  // a tiny but genuine model; fidelity is what matters
    model_ = new TrainResult(Trainer(config).fit(pair_->train));
    path_ = temp_path("dfr_model_io_test");
    save_model(*model_, path_);
  }
  static void TearDownTestSuite() {
    std::remove(path_.c_str());
    delete pair_;
    delete model_;
    pair_ = nullptr;
    model_ = nullptr;
  }
  static DatasetPair* pair_;
  static TrainResult* model_;
  static std::string path_;
};

DatasetPair* ModelIoRoundTrip::pair_ = nullptr;
TrainResult* ModelIoRoundTrip::model_ = nullptr;
std::string ModelIoRoundTrip::path_;

TEST_F(ModelIoRoundTrip, FieldsSurviveRoundTrip) {
  const LoadedModel loaded = load_model(path_);
  EXPECT_DOUBLE_EQ(loaded.params.a, model_->params.a);
  EXPECT_DOUBLE_EQ(loaded.params.b, model_->params.b);
  EXPECT_DOUBLE_EQ(loaded.chosen_beta, model_->chosen_beta);
  EXPECT_EQ(loaded.nonlinearity.kind(), model_->nonlinearity.kind());
  EXPECT_DOUBLE_EQ(loaded.nonlinearity.mg_exponent(),
                   model_->nonlinearity.mg_exponent());
  EXPECT_TRUE(loaded.mask.weights() == model_->mask.weights());
  EXPECT_TRUE(loaded.readout.weights() == model_->readout.weights());
  EXPECT_EQ(loaded.readout.bias(), model_->readout.bias());
}

TEST_F(ModelIoRoundTrip, PredictionsSurviveRoundTrip) {
  const LoadedModel loaded = load_model(path_);
  const std::vector<int> reference = predict(*model_, pair_->test);
  for (std::size_t i = 0; i < pair_->test.size(); ++i) {
    // kScalar: the reference predictions come from the scalar training-side
    // pipeline, and this test asserts exact round-trip equality, not the
    // SIMD ULP contract (test_simd.cpp owns that).
    EXPECT_EQ(loaded.classify(pair_->test[i].series, FloatEngineKind::kScalar),
              reference[i])
        << i;
  }
}

TEST_F(ModelIoRoundTrip, SecondSaveIsByteIdentical) {
  const std::string copy = temp_path("dfr_model_io_copy");
  save_model(*model_, copy);
  EXPECT_EQ(read_bytes(path_), read_bytes(copy));
  std::remove(copy.c_str());
}

TEST_F(ModelIoRoundTrip, TruncationAtEveryGranularityThrows) {
  const std::vector<char> bytes = read_bytes(path_);
  ASSERT_GT(bytes.size(), 16u);
  const std::string mutated = temp_path("dfr_model_io_truncated");
  // Chop at a spread of prefix lengths covering every section of the format:
  // magic, header scalars, mask header, mask payload, readout, bias.
  for (const double fraction : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(bytes.size()) * fraction);
    write_bytes(mutated,
                std::vector<char>(bytes.begin(),
                                  bytes.begin() + static_cast<long>(keep)));
    EXPECT_THROW(load_model(mutated), CheckError) << "prefix " << keep;
  }
  // Truncating inside the trailing bias payload must also be caught.
  write_bytes(mutated, std::vector<char>(bytes.begin(), bytes.end() - 3));
  EXPECT_THROW(load_model(mutated), CheckError);
  std::remove(mutated.c_str());
}

TEST_F(ModelIoRoundTrip, CorruptMagicThrows) {
  std::vector<char> bytes = read_bytes(path_);
  bytes[0] = 'X';
  const std::string mutated = temp_path("dfr_model_io_badmagic");
  write_bytes(mutated, bytes);
  EXPECT_THROW(load_model(mutated), CheckError);
  std::remove(mutated.c_str());
}

TEST_F(ModelIoRoundTrip, UnsupportedVersionThrows) {
  std::vector<char> bytes = read_bytes(path_);
  const std::uint32_t bogus = 999;
  std::memcpy(bytes.data() + 4, &bogus, sizeof(bogus));
  const std::string mutated = temp_path("dfr_model_io_badversion");
  write_bytes(mutated, bytes);
  EXPECT_THROW(load_model(mutated), CheckError);
  std::remove(mutated.c_str());
}

TEST_F(ModelIoRoundTrip, ZeroDimensionMatrixHeaderThrows) {
  std::vector<char> bytes = read_bytes(path_);
  // In the (default) v2 header mask_rows sits at offset 48
  // (dfr/dfrm_format.hpp); zeroing from offset 44 clears its low half, which
  // collapses the small true row count to zero.
  const std::uint64_t zero_rows = 0;
  std::memcpy(bytes.data() + 44, &zero_rows, sizeof(zero_rows));
  const std::string mutated = temp_path("dfr_model_io_zerodim");
  write_bytes(mutated, bytes);
  EXPECT_THROW(load_model(mutated), CheckError);
  std::remove(mutated.c_str());
}

// ---- v1 backward compatibility --------------------------------------------

TEST_F(ModelIoRoundTrip, V1FormatRoundTripsIdentically) {
  // Legacy stream-packed v1 files still write and load: same fields, same
  // weight bits as the v2 default.
  const std::string v1_path = temp_path("dfr_model_io_v1");
  save_model(*model_, v1_path, 1);
  const LoadedModel from_v1 = load_model(v1_path);
  const LoadedModel from_v2 = load_model(path_);
  EXPECT_DOUBLE_EQ(from_v1.params.a, from_v2.params.a);
  EXPECT_DOUBLE_EQ(from_v1.params.b, from_v2.params.b);
  EXPECT_DOUBLE_EQ(from_v1.chosen_beta, from_v2.chosen_beta);
  EXPECT_EQ(from_v1.nonlinearity.kind(), from_v2.nonlinearity.kind());
  EXPECT_TRUE(from_v1.mask.weights() == from_v2.mask.weights());
  EXPECT_TRUE(from_v1.readout.weights() == from_v2.readout.weights());
  EXPECT_EQ(from_v1.readout.bias(), from_v2.readout.bias());
  std::remove(v1_path.c_str());
}

TEST_F(ModelIoRoundTrip, V2SectionsAre64ByteAligned) {
  const std::vector<char> bytes = read_bytes(path_);
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  ASSERT_EQ(version, 2u);
  // Offsets live at fixed header positions: mask at 64, readout at 88,
  // bias at 104 (dfr/dfrm_format.hpp) — all must be 64-byte aligned so the
  // mmap loader can hand out aligned borrowed views.
  for (const std::size_t field_offset : {64u, 88u, 104u}) {
    std::uint64_t section = 0;
    std::memcpy(&section, bytes.data() + field_offset, sizeof(section));
    EXPECT_EQ(section % 64, 0u) << "offset field at byte " << field_offset;
  }
}

TEST_F(ModelIoRoundTrip, UnknownSaveVersionThrows) {
  EXPECT_THROW(save_model(*model_, temp_path("dfr_model_io_badver"), 3),
               CheckError);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(load_model(temp_path("dfr_model_io_does_not_exist")),
               CheckError);
}

TEST(ModelIo, EmptyFileThrows) {
  const std::string path = temp_path("dfr_model_io_empty");
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_THROW(load_model(path), CheckError);
  std::remove(path.c_str());
}

TEST_F(ModelIoRoundTrip, UnwritablePathThrows) {
  EXPECT_THROW(save_model(*model_, "/nonexistent_dir_xyz/model.dfrm"),
               CheckError);
}

}  // namespace
}  // namespace dfr
