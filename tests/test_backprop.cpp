// Gradient-exactness tests for the backprop engine (the paper's core math).
//
// Full BPTT gradients dL/dA and dL/dB are validated against central finite
// differences of the end-to-end loss (reservoir -> DPRR -> softmax/CE),
// parameterized over nonlinearity kinds and (A, B) operating points. The
// truncated engine is validated against an independent literal transcription
// of the paper's Eqs. (33)-(36) and against full BPTT in the window=T limit.
#include <gtest/gtest.h>

#include <cmath>

#include "dfr/backprop.hpp"
#include "dfr/output.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

struct TestRig {
  std::size_t nx = 5;
  std::size_t t_len = 7;
  std::size_t channels = 2;
  int classes = 3;
  Matrix series;
  Mask mask;
  OutputLayer output{3, dprr_dim(5)};
  int label = 1;

  explicit TestRig(std::uint64_t seed, std::size_t nx_in = 5, std::size_t t_in = 7)
      : nx(nx_in), t_len(t_in), mask(Matrix(1, 1)), output(3, dprr_dim(nx_in)) {
    Rng rng(seed);
    series.resize(t_len, channels);
    for (std::size_t t = 0; t < t_len; ++t) {
      for (std::size_t v = 0; v < channels; ++v) series(t, v) = rng.normal();
    }
    mask = Mask(nx, channels, MaskKind::kBinary, rng);
    // Non-zero output weights so dL/dr is non-trivial.
    for (std::size_t c = 0; c < output.weights().rows(); ++c) {
      for (std::size_t f = 0; f < output.weights().cols(); ++f) {
        output.mutable_weights()(c, f) = 0.1 * rng.normal();
      }
      output.mutable_bias()[c] = 0.05 * rng.normal();
    }
  }

  [[nodiscard]] double loss(const ModularReservoir& reservoir,
                            const DfrParams& params) const {
    const FullForward fwd = run_forward_full(reservoir, params, mask, series);
    return output.backward(fwd.dprr, label).loss;
  }
};

struct GradCase {
  NonlinearityKind kind;
  double a;
  double b;
};

class FullBackpropGradcheck : public ::testing::TestWithParam<GradCase> {};

TEST_P(FullBackpropGradcheck, MatchesCentralFiniteDifference) {
  const GradCase gc = GetParam();
  const TestRig rig(/*seed=*/77);
  const Nonlinearity f(gc.kind, 2.0);
  const ModularReservoir reservoir(rig.nx, f);
  const DfrParams params{gc.a, gc.b};

  const FullForward fwd =
      run_forward_full(reservoir, params, rig.mask, rig.series);
  const auto out_grads = rig.output.backward(fwd.dprr, rig.label);
  const ReservoirGradients grads =
      backprop_full(reservoir, params, fwd.states, fwd.j, out_grads.dfeatures);

  const double eps = 1e-6;
  auto loss_at = [&](double a, double b) {
    return rig.loss(reservoir, DfrParams{a, b});
  };
  const double fd_da =
      (loss_at(gc.a + eps, gc.b) - loss_at(gc.a - eps, gc.b)) / (2.0 * eps);
  const double fd_db =
      (loss_at(gc.a, gc.b + eps) - loss_at(gc.a, gc.b - eps)) / (2.0 * eps);

  const double scale_a = std::max(1.0, std::fabs(fd_da));
  const double scale_b = std::max(1.0, std::fabs(fd_db));
  EXPECT_NEAR(grads.da, fd_da, 1e-5 * scale_a)
      << "kind=" << nonlinearity_name(gc.kind) << " A=" << gc.a << " B=" << gc.b;
  EXPECT_NEAR(grads.db, fd_db, 1e-5 * scale_b)
      << "kind=" << nonlinearity_name(gc.kind) << " A=" << gc.a << " B=" << gc.b;
}

INSTANTIATE_TEST_SUITE_P(
    NonlinearityAndOperatingPointSweep, FullBackpropGradcheck,
    ::testing::Values(
        GradCase{NonlinearityKind::kIdentity, 0.01, 0.01},
        GradCase{NonlinearityKind::kIdentity, 0.2, 0.3},
        GradCase{NonlinearityKind::kIdentity, 0.45, 0.5},
        GradCase{NonlinearityKind::kMackeyGlass, 0.3, 0.4},
        GradCase{NonlinearityKind::kMackeyGlass, 0.05, 0.6},
        GradCase{NonlinearityKind::kTanh, 0.25, 0.25},
        GradCase{NonlinearityKind::kTanh, 0.5, 0.1},
        GradCase{NonlinearityKind::kSine, 0.3, 0.3},
        GradCase{NonlinearityKind::kCubic, 0.2, 0.2},
        GradCase{NonlinearityKind::kSaturating, 0.4, 0.4}),
    [](const ::testing::TestParamInfo<GradCase>& param_info) {
      std::string name = nonlinearity_name(param_info.param.kind);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_case" + std::to_string(param_info.index);
    });

TEST(FullBackprop, OutputLayerGradientsMatchFiniteDifference) {
  TestRig rig(99);
  const Nonlinearity f(NonlinearityKind::kTanh);
  const ModularReservoir reservoir(rig.nx, f);
  const DfrParams params{0.3, 0.3};
  const FullForward fwd =
      run_forward_full(reservoir, params, rig.mask, rig.series);
  const auto grads = rig.output.backward(fwd.dprr, rig.label);

  const double eps = 1e-6;
  // Check a scattering of W entries and every b entry.
  for (std::size_t c = 0; c < rig.output.weights().rows(); ++c) {
    for (std::size_t fi : {std::size_t{0}, std::size_t{7}, dprr_dim(rig.nx) - 1}) {
      OutputLayer perturbed = rig.output;
      perturbed.mutable_weights()(c, fi) += eps;
      const double up = perturbed.backward(fwd.dprr, rig.label).loss;
      perturbed.mutable_weights()(c, fi) -= 2.0 * eps;
      const double down = perturbed.backward(fwd.dprr, rig.label).loss;
      const double fd = (up - down) / (2.0 * eps);
      const double analytic = grads.dlogits[c] * fwd.dprr[fi];
      EXPECT_NEAR(analytic, fd, 1e-6 * std::max(1.0, std::fabs(fd)));
    }
    OutputLayer perturbed = rig.output;
    perturbed.mutable_bias()[c] += eps;
    const double up = perturbed.backward(fwd.dprr, rig.label).loss;
    perturbed.mutable_bias()[c] -= 2.0 * eps;
    const double down = perturbed.backward(fwd.dprr, rig.label).loss;
    EXPECT_NEAR(grads.dlogits[c], (up - down) / (2.0 * eps), 1e-6);
  }
}

// Independent literal transcription of the paper's truncated equations
// (33)-(36), for cross-checking the production implementation.
ReservoirGradients paper_truncated_reference(const ModularReservoir& reservoir,
                                             const DfrParams& params,
                                             const Matrix& x_t, const Matrix& x_tm1,
                                             std::span<const double> j_t,
                                             std::span<const double> dr) {
  const std::size_t nx = reservoir.nodes();
  const Nonlinearity& f = reservoir.nonlinearity();
  Vector g(nx, 0.0);
  // Eq. (33): bp value, then Eq. (34): g_n = bpv + B g_{n+1}, n descending.
  for (std::size_t nn = nx; nn > 0; --nn) {
    const std::size_t n = nn - 1;
    double bpv = dr[nx * nx + n];
    for (std::size_t jj = 0; jj < nx; ++jj) {
      bpv += x_tm1(0, jj) * dr[n * nx + jj];
    }
    g[n] = bpv + ((n + 1 < nx) ? params.b * g[n + 1] : 0.0);
  }
  ReservoirGradients out;
  // Eqs. (35)-(36).
  for (std::size_t n = 0; n < nx; ++n) {
    const double s = j_t[n] + x_tm1(0, n);
    out.da += f.value(s) * g[n];
    const double prev = (n == 0) ? x_tm1(0, nx - 1) : x_t(0, n - 1);
    out.db += prev * g[n];
  }
  return out;
}

TEST(TruncatedBackprop, WindowOneMatchesPaperEquations) {
  const TestRig rig(55);
  const Nonlinearity f(NonlinearityKind::kIdentity);
  const ModularReservoir reservoir(rig.nx, f);
  const DfrParams params{0.15, 0.35};

  const TruncatedForward fwd =
      run_forward_truncated(reservoir, params, rig.mask, rig.series, 1);
  const auto out_grads = rig.output.backward(fwd.dprr, rig.label);

  const ReservoirGradients engine = backprop_through_dprr(
      reservoir, params, fwd.tail_states, fwd.tail_j, out_grads.dfeatures, 1);

  Matrix x_t(1, rig.nx), x_tm1(1, rig.nx);
  x_t.set_row(0, fwd.tail_states.row(1));
  x_tm1.set_row(0, fwd.tail_states.row(0));
  const ReservoirGradients reference = paper_truncated_reference(
      reservoir, params, x_t, x_tm1, fwd.tail_j.row(0), out_grads.dfeatures);

  EXPECT_NEAR(engine.da, reference.da, 1e-12 * std::max(1.0, std::fabs(reference.da)));
  EXPECT_NEAR(engine.db, reference.db, 1e-12 * std::max(1.0, std::fabs(reference.db)));
}

TEST(TruncatedBackprop, FullWindowEqualsFullBptt) {
  const TestRig rig(31);
  const Nonlinearity f(NonlinearityKind::kTanh);
  const ModularReservoir reservoir(rig.nx, f);
  const DfrParams params{0.3, 0.4};

  const FullForward full = run_forward_full(reservoir, params, rig.mask, rig.series);
  const auto out_grads = rig.output.backward(full.dprr, rig.label);
  const ReservoirGradients g_full =
      backprop_full(reservoir, params, full.states, full.j, out_grads.dfeatures);

  const TruncatedForward trunc = run_forward_truncated(
      reservoir, params, rig.mask, rig.series, rig.series.rows());
  const auto out_grads2 = rig.output.backward(trunc.dprr, rig.label);
  const ReservoirGradients g_trunc = backprop_through_dprr(
      reservoir, params, trunc.tail_states, trunc.tail_j, out_grads2.dfeatures,
      trunc.tail_j.rows());

  EXPECT_NEAR(g_full.da, g_trunc.da, 1e-12 * std::max(1.0, std::fabs(g_full.da)));
  EXPECT_NEAR(g_full.db, g_trunc.db, 1e-12 * std::max(1.0, std::fabs(g_full.db)));
}

TEST(TruncatedBackprop, WindowedGradientsApproachFullAsWindowGrows) {
  const TestRig rig(41, /*nx=*/6, /*t=*/20);
  const Nonlinearity f(NonlinearityKind::kTanh);
  const ModularReservoir reservoir(rig.nx, f);
  const DfrParams params{0.2, 0.5};

  const FullForward full = run_forward_full(reservoir, params, rig.mask, rig.series);
  const auto out_grads = rig.output.backward(full.dprr, rig.label);
  const ReservoirGradients g_full =
      backprop_full(reservoir, params, full.states, full.j, out_grads.dfeatures);

  // Truncation error need not shrink monotonically step-by-step (dropped
  // terms can partially cancel), but the window must be exact at w = T and
  // the deep-window error must be far below the one-step error.
  Vector errs;
  for (std::size_t w : {1u, 4u, 10u, 20u}) {
    const ReservoirGradients g_w = backprop_through_dprr(
        reservoir, params, full.states, full.j, out_grads.dfeatures, w);
    EXPECT_TRUE(std::isfinite(g_w.da) && std::isfinite(g_w.db)) << "window " << w;
    errs.push_back(std::fabs(g_w.da - g_full.da) + std::fabs(g_w.db - g_full.db));
  }
  // Truncation removes the whole contribution of the dropped steps, so the
  // error scales with the number of dropped steps rather than decaying
  // geometrically: demand strict improvement, and exactness at w = T.
  // (Individual step contributions can partially cancel, so small windows do
  // not compare monotonically — w=4 can be worse than w=1 at this operating
  // point. The robust claims are: half the series beats one step, and the
  // full window is exact.)
  EXPECT_NEAR(errs.back(), 0.0, 1e-12);  // w = T is exact
  EXPECT_LT(errs[2], errs[0]);           // w = 10 beats w = 1
}

TEST(TruncatedForwardPass, DprrMatchesFullForward) {
  const TestRig rig(61);
  const Nonlinearity f(NonlinearityKind::kMackeyGlass, 2.0);
  const ModularReservoir reservoir(rig.nx, f);
  const DfrParams params{0.3, 0.5};

  const FullForward full = run_forward_full(reservoir, params, rig.mask, rig.series);
  for (std::size_t w : {1u, 2u, 3u, 7u}) {
    const TruncatedForward trunc =
        run_forward_truncated(reservoir, params, rig.mask, rig.series, w);
    EXPECT_LT(max_abs_diff(trunc.dprr, full.dprr), 1e-14) << "window " << w;
    // Tail rows must equal the last rows of the full trajectory.
    const std::size_t kept = std::min<std::size_t>(w, rig.t_len);
    for (std::size_t i = 0; i <= kept; ++i) {
      EXPECT_LT(max_abs_diff(trunc.tail_states.row(i),
                             full.states.row(rig.t_len - kept + i)),
                1e-15)
          << "window " << w << " row " << i;
    }
    for (std::size_t i = 0; i < kept; ++i) {
      EXPECT_LT(max_abs_diff(trunc.tail_j.row(i),
                             full.j.row(rig.t_len - kept + i)),
                1e-15);
    }
  }
}

TEST(TruncatedForwardPass, StoredStateValuesMatchMemoryClaim) {
  const TestRig rig(71);
  const ModularReservoir reservoir(rig.nx, Nonlinearity{});
  const DfrParams params{0.01, 0.01};
  const TruncatedForward trunc =
      run_forward_truncated(reservoir, params, rig.mask, rig.series, 1);
  EXPECT_EQ(trunc.stored_state_values(), 2 * rig.nx);  // x(T-1), x(T)
  const FullForward full = run_forward_full(reservoir, params, rig.mask, rig.series);
  EXPECT_EQ(full.stored_state_values(), (rig.t_len + 1) * rig.nx);
}

TEST(Backprop, WindowOutOfRangeThrows) {
  const TestRig rig(81);
  const ModularReservoir reservoir(rig.nx, Nonlinearity{});
  const DfrParams params{0.01, 0.01};
  const FullForward full = run_forward_full(reservoir, params, rig.mask, rig.series);
  Vector dr(dprr_dim(rig.nx), 0.0);
  EXPECT_THROW(
      backprop_through_dprr(reservoir, params, full.states, full.j, dr, 0),
      CheckError);
  EXPECT_THROW(backprop_through_dprr(reservoir, params, full.states, full.j, dr,
                                     rig.t_len + 1),
               CheckError);
}

}  // namespace
}  // namespace dfr
