// Tests for the SIMD reservoir-step datapath (serve/simd_kernels.hpp,
// SimdFloatDatapath): runtime dispatch and forcing (programmatic + DFR_SIMD
// env), the exact-match contract on the mask/preadd stage, ULP-bounded
// equivalence of finalized features against the scalar pipeline across every
// nonlinearity and odd Nx sizes (Nx < vector width, Nx not a multiple of it),
// classify_batch determinism under forced dispatch, the LoadedModel engine
// knob, and the zero-steady-state-allocation guarantee for the SIMD engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

// ---- allocation instrumentation (same scheme as test_serve.cpp) ------------

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dfr {
namespace {

// ---- helpers ---------------------------------------------------------------

/// Monotone mapping of the double number line onto uint64, for ULP distances.
std::uint64_t ordered_bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return (u & (1ULL << 63)) ? ~u : u | (1ULL << 63);
}

[[maybe_unused]] std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;  // also covers +0 vs -0
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t ua = ordered_bits(a), ub = ordered_bits(b);
  return ua > ub ? ua - ub : ub - ua;
}

constexpr simd::Backend kAllBackends[] = {
    simd::Backend::kScalar, simd::Backend::kAvx2, simd::Backend::kNeon,
    simd::Backend::kAvx512};

std::vector<simd::Backend> available_backends() {
  std::vector<simd::Backend> backends;
  for (simd::Backend b : kAllBackends) {
    if (simd::backend_available(b)) backends.push_back(b);
  }
  return backends;
}

/// Restores the active backend on scope exit so force_backend tests cannot
/// leak state into later tests (gtest runs them in declaration order).
class ScopedBackend {
 public:
  ScopedBackend() : saved_(simd::active_backend()) {}
  ~ScopedBackend() { simd::force_backend(saved_); }

 private:
  simd::Backend saved_;
};

Matrix random_series(std::size_t t_len, std::size_t channels, Rng& rng) {
  Matrix m(t_len, channels);
  for (std::size_t k = 0; k < t_len; ++k) {
    for (std::size_t v = 0; v < channels; ++v) m(k, v) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

/// Deployment-shaped model with random (but deterministic) weights; serving
/// equivalence depends only on shapes, never on training.
LoadedModel make_model(std::size_t nodes, std::size_t channels, int classes,
                       NonlinearityKind kind, std::uint64_t seed) {
  Rng rng(seed);
  LoadedModel model;
  model.params = DfrParams{0.1, 0.05};
  model.mask = Mask(nodes, channels, MaskKind::kBinary, rng);
  model.nonlinearity = Nonlinearity(kind);
  Matrix w(static_cast<std::size_t>(classes), dprr_dim(nodes));
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) w(i, j) = rng.uniform(-1.0, 1.0);
  }
  Vector b(w.rows(), 0.0);
  for (double& v : b) v = rng.uniform(-0.1, 0.1);
  model.readout = OutputLayer(std::move(w), std::move(b));
  return model;
}

constexpr NonlinearityKind kAllKinds[] = {
    NonlinearityKind::kIdentity,  NonlinearityKind::kMackeyGlass,
    NonlinearityKind::kTanh,      NonlinearityKind::kSine,
    NonlinearityKind::kCubic,     NonlinearityKind::kSaturating,
};

// Odd shapes: below any vector width, odd, prime, and large non-multiples
// of the NEON (2), AVX2 (4), and AVX-512 (8) widths.
constexpr std::size_t kOddSizes[] = {1, 2, 3, 5, 30, 101};

// ---- dispatch plumbing -----------------------------------------------------

TEST(SimdDispatch, BackendNamesRoundTrip) {
  for (simd::Backend b : kAllBackends) {
    EXPECT_EQ(simd::parse_backend(simd::backend_name(b)), b);
  }
  EXPECT_THROW((void)simd::parse_backend("avx999"), CheckError);
  EXPECT_THROW((void)simd::parse_backend(""), CheckError);
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndBestIsAvailable) {
  EXPECT_TRUE(simd::backend_available(simd::Backend::kScalar));
  EXPECT_TRUE(simd::backend_available(simd::best_backend()));
  EXPECT_TRUE(simd::backend_available(simd::active_backend()));
  EXPECT_EQ(simd::kernels_for(simd::Backend::kScalar).backend,
            simd::Backend::kScalar);
  EXPECT_EQ(simd::active_kernels().backend, simd::active_backend());
}

// AVX-512 is a real fourth backend, preferred over AVX2 when the CPU has
// it — best_backend() must pick the widest available kernel set.
TEST(SimdDispatch, BestBackendPrefersWiderVectors) {
  if (simd::backend_available(simd::Backend::kAvx512)) {
    EXPECT_EQ(simd::best_backend(), simd::Backend::kAvx512);
  } else if (simd::backend_available(simd::Backend::kAvx2)) {
    EXPECT_EQ(simd::best_backend(), simd::Backend::kAvx2);
  } else if (simd::backend_available(simd::Backend::kNeon)) {
    EXPECT_EQ(simd::best_backend(), simd::Backend::kNeon);
  } else {
    EXPECT_EQ(simd::best_backend(), simd::Backend::kScalar);
  }
}

// Run under CTest's `simd_forced_scalar` registration (ENVIRONMENT
// DFR_SIMD=scalar) this asserts the env route end-to-end; under
// `simd_forced_avx512` (DFR_SIMD=avx512) it asserts either the forced
// AVX-512 dispatch (on capable hosts) or the unavailable-backend fallback
// (elsewhere — which is how that registration "skips cleanly" on
// non-AVX-512 runners); under `simd_env_fallback` (DFR_SIMD=avx999) it
// asserts the warn-and-fall-back route for unrecognized values; without the
// env var it documents the default: best available backend.
TEST(SimdDispatch, EnvForcedBackendIsHonored) {
  if (const char* env = std::getenv("DFR_SIMD")) {
    simd::Backend requested = simd::Backend::kScalar;
    if (simd::try_parse_backend(env, requested) &&
        simd::backend_available(requested)) {
      EXPECT_EQ(simd::active_backend(), requested)
          << "DFR_SIMD=" << env << " was not honored";
    } else {
      // Unrecognized / unavailable values warn once and fall back.
      EXPECT_EQ(simd::active_backend(), simd::best_backend())
          << "DFR_SIMD=" << env << " did not fall back to the best backend";
    }
  } else {
    EXPECT_EQ(simd::active_backend(), simd::best_backend());
  }
}

// The DFR_SIMD resolution rule itself (the env variable is read only once
// per process, so the fallback logic is exposed for direct testing): bad
// values resolve to best_backend() with a warning that names both the
// rejected value and the backend actually selected.
TEST(SimdDispatch, UnrecognizedEnvValueWarnsAndFallsBack) {
  std::string warning;
  EXPECT_EQ(simd::detail::resolve_env_backend("avx999", &warning),
            simd::best_backend());
  EXPECT_NE(warning.find("avx999"), std::string::npos)
      << "warning must name the rejected value: " << warning;
  EXPECT_NE(warning.find(simd::backend_name(simd::best_backend())),
            std::string::npos)
      << "warning must name the backend actually selected: " << warning;
  // A recognized, available value is honored without a warning.
  EXPECT_EQ(simd::detail::resolve_env_backend("scalar", &warning),
            simd::Backend::kScalar);
  EXPECT_TRUE(warning.empty()) << warning;
}

// A recognized backend the CPU/build cannot run (e.g. DFR_SIMD=avx512 on a
// pre-AVX-512 host) warns and falls back, naming the detected best backend.
TEST(SimdDispatch, UnavailableEnvValueWarnsAndFallsBack) {
  const char* unavailable = nullptr;
  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kNeon,
                          simd::Backend::kAvx512}) {
    if (!simd::backend_available(b)) unavailable = simd::backend_name(b);
  }
  if (unavailable == nullptr) {
    GTEST_SKIP() << "every backend is available on this host/build";
  }
  std::string warning;
  EXPECT_EQ(simd::detail::resolve_env_backend(unavailable, &warning),
            simd::best_backend());
  EXPECT_NE(warning.find(unavailable), std::string::npos) << warning;
  EXPECT_NE(warning.find(simd::backend_name(simd::best_backend())),
            std::string::npos)
      << warning;
}

TEST(SimdDispatch, TryParseBackendMatchesParse) {
  simd::Backend out = simd::Backend::kAvx2;
  EXPECT_TRUE(simd::try_parse_backend("scalar", out));
  EXPECT_EQ(out, simd::Backend::kScalar);
  EXPECT_TRUE(simd::try_parse_backend("avx2", out));
  EXPECT_EQ(out, simd::Backend::kAvx2);
  EXPECT_TRUE(simd::try_parse_backend("neon", out));
  EXPECT_EQ(out, simd::Backend::kNeon);
  EXPECT_TRUE(simd::try_parse_backend("avx512", out));
  EXPECT_EQ(out, simd::Backend::kAvx512);
  EXPECT_FALSE(simd::try_parse_backend("avx999", out));
  EXPECT_FALSE(simd::try_parse_backend("", out));
}

TEST(SimdDispatch, ForcingUnavailableBackendThrows) {
  bool found_unavailable = false;
  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kNeon,
                          simd::Backend::kAvx512}) {
    if (!simd::backend_available(b)) {
      found_unavailable = true;
      EXPECT_THROW(simd::force_backend(b), CheckError);
      EXPECT_THROW((void)simd::kernels_for(b), CheckError);
    }
  }
  if (!found_unavailable) {
    GTEST_SKIP() << "every backend is available on this host/build";
  }
}

TEST(SimdDispatch, ForceBackendSwitchesActive) {
  ScopedBackend guard;
  for (simd::Backend b : available_backends()) {
    simd::force_backend(b);
    EXPECT_EQ(simd::active_backend(), b);
    EXPECT_EQ(simd::active_kernels().backend, b);
  }
}

// ---- stage-level equivalence -----------------------------------------------

// The mask/preadd stage contract is EXACT on every backend: lanes perform the
// same IEEE-754 add (and gain multiply) as the scalar kernel.
TEST(SimdKernels, PreaddStageBitExactAcrossBackends) {
  const simd::Kernels& scalar = simd::kernels_for(simd::Backend::kScalar);
  Rng rng(11);
  for (std::size_t nx : kOddSizes) {
    Vector j(nx), x_prev(nx), out_ref(nx), out(nx);
    for (std::size_t n = 0; n < nx; ++n) {
      j[n] = rng.uniform(-2.0, 2.0);
      x_prev[n] = rng.uniform(-2.0, 2.0);
    }
    for (double a : {1.0, 0.7}) {
      const Nonlinearity identity(NonlinearityKind::kIdentity);
      scalar.preadd_nonlin(identity, a, j.data(), x_prev.data(),
                           out_ref.data(), nx);
      if (a == 1.0) {
        // a=1, f=identity is the raw preadd: check it against the literal sum.
        for (std::size_t n = 0; n < nx; ++n) {
          ASSERT_EQ(out_ref[n], j[n] + x_prev[n]);
        }
      }
      for (simd::Backend b : available_backends()) {
        const simd::Kernels& kernels = simd::kernels_for(b);
        kernels.preadd_nonlin(identity, a, j.data(), x_prev.data(), out.data(),
                              nx);
        for (std::size_t n = 0; n < nx; ++n) {
          ASSERT_EQ(out[n], out_ref[n])
              << simd::backend_name(b) << " nx=" << nx << " n=" << n;
        }
      }
    }
  }
}

// One reservoir step through SimdFloatDatapath vs ModularReservoir::step.
// Bit-exact on x86-64 (SIMD TUs build with -ffp-contract=off and the
// baseline has no FMA to contract); elsewhere the scalar reference itself
// may be FMA-contracted, so allow a few ulps.
TEST(SimdKernels, StepStageMatchesScalarReservoir) {
  const DfrParams params{0.1, 0.05};
  Rng rng(23);
  for (NonlinearityKind kind : kAllKinds) {
    const Nonlinearity f(kind);
    for (std::size_t nx : kOddSizes) {
      const ModularReservoir reservoir(nx, f);
      const Mask mask(nx, 2, MaskKind::kBinary, rng);
      Vector j(nx), x_prev(nx), ref(nx), out(nx);
      for (std::size_t n = 0; n < nx; ++n) {
        j[n] = rng.uniform(-1.0, 1.0);
        x_prev[n] = rng.uniform(-1.0, 1.0);
      }
      reservoir.step(params, j, x_prev, ref);
      for (simd::Backend b : available_backends()) {
        const SimdFloatDatapath datapath(mask, params, f, b);
        datapath.step(j, x_prev, out);
        for (std::size_t n = 0; n < nx; ++n) {
#if defined(__x86_64__) || defined(_M_X64)
          ASSERT_EQ(out[n], ref[n])
              << simd::backend_name(b) << " " << nonlinearity_name(kind)
              << " nx=" << nx << " n=" << n;
#else
          ASSERT_LE(ulp_distance(out[n], ref[n]), 8u)
              << simd::backend_name(b) << " " << nonlinearity_name(kind)
              << " nx=" << nx << " n=" << n;
#endif
        }
      }
    }
  }
}

// ---- pipeline equivalence: the documented ULP bound ------------------------

// Finalized features (full mask -> step -> DPRR -> finalize pipeline) for
// every nonlinearity and odd Nx, on every available backend, against the
// FloatDatapath scalar pipeline: |diff| <= simd_feature_ulp_bound(T) ulps of
// the largest-magnitude scalar feature (see simd_kernels.hpp).
TEST(SimdEquivalence, FeaturesWithinUlpBoundAcrossNonlinearitiesAndSizes) {
  const DfrParams params{0.1, 0.05};
  constexpr std::size_t kTLen = 40;
  constexpr std::size_t kChannels = 3;
  Rng rng(42);
  for (NonlinearityKind kind : kAllKinds) {
    const Nonlinearity f(kind);
    for (std::size_t nx : kOddSizes) {
      const Mask mask(nx, kChannels, MaskKind::kBinary, rng);
      const Matrix series = random_series(kTLen, kChannels, rng);

      InferenceEngine scalar_engine(FloatDatapath(mask, params, f));
      const std::span<const double> ref = scalar_engine.features(series);
      double max_abs = 0.0;
      for (double r : ref) max_abs = std::max(max_abs, std::fabs(r));
      // ulp(max|r|) * documented bound, as an absolute tolerance.
      const double tol =
          (std::nextafter(max_abs, std::numeric_limits<double>::infinity()) -
           max_abs) *
          static_cast<double>(simd::simd_feature_ulp_bound(kTLen));

      for (simd::Backend b : available_backends()) {
        SimdInferenceEngine engine(SimdFloatDatapath(mask, params, f, b));
        const std::span<const double> got = engine.features(series);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
          if (b == simd::Backend::kScalar) {
#if defined(__x86_64__) || defined(_M_X64)
            // The scalar backend performs identical operations: bit-exact.
            ASSERT_EQ(got[i], ref[i])
                << nonlinearity_name(kind) << " nx=" << nx << " i=" << i;
            continue;
#endif
          }
          ASSERT_LE(std::fabs(got[i] - ref[i]), tol)
              << simd::backend_name(b) << " " << nonlinearity_name(kind)
              << " nx=" << nx << " i=" << i << " ref=" << ref[i]
              << " got=" << got[i];
        }
      }
    }
  }
}

TEST(SimdEquivalence, LogitsAndClassifyMatchFloatEngine) {
  const LoadedModel model =
      make_model(30, 2, 4, NonlinearityKind::kIdentity, 77);
  Rng rng(78);
  InferenceEngine scalar_engine = make_engine(model);
  for (int sample = 0; sample < 8; ++sample) {
    const Matrix series = random_series(50, 2, rng);
    const std::span<const double> ref = scalar_engine.infer(series);
    const Vector ref_copy(ref.begin(), ref.end());
    for (simd::Backend b : available_backends()) {
      SimdInferenceEngine engine = make_simd_engine(model, b);
      const std::span<const double> got = engine.infer(series);
      ASSERT_EQ(got.size(), ref_copy.size());
      double max_abs = 0.0;
      for (double z : ref_copy) max_abs = std::max(max_abs, std::fabs(z));
      for (std::size_t c = 0; c < ref_copy.size(); ++c) {
        ASSERT_NEAR(got[c], ref_copy[c], 1e-9 * std::max(1.0, max_abs))
            << simd::backend_name(b) << " sample " << sample << " class " << c;
      }
      EXPECT_EQ(engine.classify(series), scalar_engine.classify(series))
          << simd::backend_name(b) << " sample " << sample;
    }
  }
}

TEST(SimdEquivalence, LoadedModelEngineKnobAgrees) {
  const LoadedModel model = make_model(20, 2, 3, NonlinearityKind::kTanh, 5);
  Rng rng(6);
  const Matrix series = random_series(30, 2, rng);
  const Vector scalar = model.infer(series, FloatEngineKind::kScalar);
  const Vector simd_z = model.infer(series, FloatEngineKind::kSimd);
  const Vector auto_z = model.infer(series);  // default = kAuto
  ASSERT_EQ(scalar.size(), simd_z.size());
  ASSERT_EQ(simd_z.size(), auto_z.size());
  for (std::size_t c = 0; c < scalar.size(); ++c) {
    EXPECT_EQ(simd_z[c], auto_z[c]);  // kAuto and kSimd are the same engine
    EXPECT_NEAR(scalar[c], simd_z[c], 1e-9 * std::max(1.0, std::fabs(scalar[c])));
  }
  EXPECT_EQ(model.classify(series, FloatEngineKind::kScalar),
            model.classify(series, FloatEngineKind::kSimd));
  EXPECT_EQ(model.classify(series), model.classify(series, FloatEngineKind::kAuto));
}

// ---- batch determinism under forced dispatch -------------------------------

TEST(SimdBatch, ClassifyBatchDeterministicUnderForcedDispatch) {
  const LoadedModel model =
      make_model(17, 2, 3, NonlinearityKind::kSaturating, 99);
  Rng rng(100);
  std::vector<Matrix> batch;
  for (int i = 0; i < 24; ++i) batch.push_back(random_series(25, 2, rng));
  const std::span<const Matrix> series(batch);

  // Scalar-engine reference predictions, per series.
  std::vector<int> scalar_ref;
  InferenceEngine scalar_engine = make_engine(model);
  for (const Matrix& m : batch) scalar_ref.push_back(scalar_engine.classify(m));
  EXPECT_EQ(classify_batch(model, series, 1, FloatEngineKind::kScalar),
            scalar_ref);

  ScopedBackend guard;
  for (simd::Backend b : available_backends()) {
    simd::force_backend(b);
    // Per-series reference on this backend's engine.
    std::vector<int> reference;
    SimdInferenceEngine engine = make_simd_engine(model, b);
    for (const Matrix& m : batch) reference.push_back(engine.classify(m));
    // Predictions must agree with the scalar pipeline on every backend...
    EXPECT_EQ(reference, scalar_ref) << simd::backend_name(b);
    // ...and classify_batch must be deterministic for any thread count.
    for (unsigned threads : {1u, 2u, 3u, 8u, 0u}) {
      EXPECT_EQ(classify_batch(model, series, threads), reference)
          << simd::backend_name(b) << " threads=" << threads;
    }
  }
}

// ---- steady-state allocation guarantee -------------------------------------

TEST(SimdEngine, ClassifyIsAllocationFreeInSteadyState) {
  const LoadedModel model =
      make_model(30, 2, 4, NonlinearityKind::kIdentity, 13);
  Rng rng(14);
  std::vector<Matrix> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(random_series(40, 2, rng));

  SimdInferenceEngine engine = make_simd_engine(model);
  for (const Matrix& m : batch) engine.classify(m);  // warmup

  const std::size_t before = g_allocations.load();
  int sink = 0;
  for (int rep = 0; rep < 100; ++rep) {
    for (const Matrix& m : batch) sink += engine.classify(m);
  }
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(after, before) << "SIMD classify() must not allocate after warmup";
  EXPECT_GE(sink, 0);  // keep the loop observable
}

}  // namespace
}  // namespace dfr
