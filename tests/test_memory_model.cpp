// Table-2 memory accounting: the analytic model must reproduce the paper's
// published stored-value counts for all 12 datasets exactly, and must agree
// with the live buffer sizes of the implementation.
#include <gtest/gtest.h>

#include "data/specs.hpp"
#include "data/synth.hpp"
#include "dfr/backprop.hpp"
#include "dfr/memory_model.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

struct PaperRow {
  const char* id;
  std::size_t naive;
  std::size_t simplified;
  int reduction_percent;  // paper's rounded "(a-b)/a" column
};

// Table 2 of the paper, verbatim.
constexpr PaperRow kPaperTable2[] = {
    {"ARAB", 13030, 10300, 21}, {"AUS", 93455, 89435, 4},
    {"CHAR", 25700, 19610, 24}, {"CMU", 20192, 2852, 86},
    {"ECG", 7352, 2852, 61},    {"JPVOW", 10179, 9369, 8},
    {"KICK", 28022, 2852, 90},  {"LIB", 16245, 14955, 8},
    {"NET", 42853, 13093, 69},  {"UWAV", 17828, 8438, 53},
    {"WAF", 8732, 2852, 67},    {"WALK", 60332, 2852, 95},
};

constexpr std::size_t kNx = 30;  // paper's reservoir size

TEST(MemoryModel, ReproducesPaperTable2Exactly) {
  for (const PaperRow& row : kPaperTable2) {
    const auto spec = find_spec(row.id);
    ASSERT_TRUE(spec.has_value()) << row.id;
    const MemoryBreakdown naive =
        naive_memory(spec->length, kNx, spec->num_classes);
    const MemoryBreakdown simplified =
        truncated_memory(/*window=*/1, kNx, spec->num_classes);
    EXPECT_EQ(naive.total(), row.naive) << row.id;
    EXPECT_EQ(simplified.total(), row.simplified) << row.id;
    const int reduction_percent = static_cast<int>(
        memory_reduction(naive, simplified) * 100.0 + 0.5);
    EXPECT_EQ(reduction_percent, row.reduction_percent) << row.id;
  }
}

TEST(MemoryModel, BreakdownComponents) {
  // Nx=30, Ny=2, T=500 — the scenario discussed in paper Section 3.4.
  const MemoryBreakdown naive = naive_memory(500, 30, 2);
  EXPECT_EQ(naive.reservoir_state, 501u * 30u);
  EXPECT_EQ(naive.representation, 930u);
  EXPECT_EQ(naive.output_weights, 2u * 931u);
  const MemoryBreakdown truncated = truncated_memory(1, 30, 2);
  EXPECT_EQ(truncated.reservoir_state, 60u);
  // Paper: "the reduction in memory usage would be approximately 80%".
  const double reduction = memory_reduction(naive, truncated);
  EXPECT_GT(reduction, 0.75);
  EXPECT_LT(reduction, 0.85);
}

TEST(MemoryModel, StateMemoryBelowTwoPercentForLongSeries) {
  // Paper: for T > 100 the truncated state storage is < 2% of the naive one.
  for (std::size_t t_len : {101u, 200u, 500u, 1917u}) {
    const double ratio =
        static_cast<double>(truncated_memory(1, 30, 2).reservoir_state) /
        static_cast<double>(naive_memory(t_len, 30, 2).reservoir_state);
    EXPECT_LT(ratio, 0.02) << t_len;
  }
}

TEST(MemoryModel, LiveBuffersMatchAnalyticCounts) {
  // Run the actual forward passes and compare the instrumented buffer sizes
  // with the analytic reservoir-state component.
  Rng rng(5);
  const std::size_t nx = 7, t_len = 23;
  const ModularReservoir reservoir(nx, Nonlinearity{});
  const Mask mask(nx, 2, MaskKind::kBinary, rng);
  Matrix series(t_len, 2);
  for (std::size_t t = 0; t < t_len; ++t) {
    series(t, 0) = rng.normal();
    series(t, 1) = rng.normal();
  }
  const DfrParams params{0.1, 0.1};

  const FullForward full = run_forward_full(reservoir, params, mask, series);
  EXPECT_EQ(full.stored_state_values(),
            naive_memory(t_len, nx, 2).reservoir_state);

  for (std::size_t w : {1u, 3u, 10u}) {
    const TruncatedForward trunc =
        run_forward_truncated(reservoir, params, mask, series, w);
    EXPECT_EQ(trunc.stored_state_values(),
              truncated_memory(w, nx, 2).reservoir_state)
        << "window " << w;
  }
}

TEST(MemoryModel, InvalidArgumentsThrow) {
  EXPECT_THROW(naive_memory(0, 30, 2), CheckError);
  EXPECT_THROW(naive_memory(10, 30, 1), CheckError);
  EXPECT_THROW(truncated_memory(0, 30, 2), CheckError);
}

}  // namespace
}  // namespace dfr
