// Integration tests for the Trainer (the paper's optimization protocol) and
// the grid-search baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "data/preprocess.hpp"
#include "data/synth.hpp"
#include "dfr/grid_search.hpp"
#include "dfr/trainer.hpp"

namespace dfr {
namespace {

DatasetPair easy_task(std::uint64_t seed) {
  DatasetPair pair = generate_toy_task(/*num_classes=*/3, /*channels=*/2,
                                       /*length=*/40, /*train_per_class=*/12,
                                       /*test_per_class=*/8,
                                       /*difficulty=*/0.5, seed);
  standardize_pair(pair);
  return pair;
}

TrainerConfig small_config() {
  TrainerConfig config;
  config.nodes = 12;  // smaller than the paper's 30 for test speed
  return config;
}

TEST(Trainer, LearnsEasyTaskWellAboveChance) {
  const DatasetPair pair = easy_task(42);
  const Trainer trainer(small_config());
  const TrainResult model = trainer.fit(pair.train);
  const double test_acc = evaluate_accuracy(model, pair.test);
  EXPECT_GT(test_acc, 0.8) << "chance level is 1/3";
  EXPECT_EQ(model.history.size(), 25u);
  EXPECT_EQ(model.skipped_updates, 0u);
}

TEST(Trainer, LossDecreasesOverTrainingOnBenignTask) {
  DatasetPair pair = generate_toy_task(3, 2, 40, 12, 8, /*difficulty=*/0.3, 42);
  standardize_pair(pair);
  const TrainResult model = Trainer(small_config()).fit(pair.train);
  EXPECT_LT(model.history.back().mean_loss, model.history.front().mean_loss);
}

TEST(Trainer, MultistartPicksSmallestValidationLoss) {
  const DatasetPair pair = easy_task(33);
  const Trainer trainer(small_config());
  const auto restarts = Trainer::default_restarts();
  const TrainResult multi = trainer.fit_multistart(pair.train, restarts);
  // The winner's validation loss can't exceed any individual run's.
  for (const DfrParams& init : restarts) {
    TrainerConfig config = small_config();
    config.init = init;
    const TrainResult single = Trainer(config).fit(pair.train);
    EXPECT_LE(multi.validation_loss, single.validation_loss + 1e-12);
  }
  // Times accumulate across restarts.
  TrainerConfig config = small_config();
  const TrainResult single = Trainer(config).fit(pair.train);
  EXPECT_GT(multi.sgd_seconds, single.sgd_seconds);
}

TEST(Trainer, DeterministicGivenSeed) {
  const DatasetPair pair = easy_task(9);
  const Trainer trainer(small_config());
  const TrainResult a = trainer.fit(pair.train);
  const TrainResult b = trainer.fit(pair.train);
  EXPECT_EQ(a.params.a, b.params.a);
  EXPECT_EQ(a.params.b, b.params.b);
  EXPECT_EQ(a.chosen_beta, b.chosen_beta);
  EXPECT_TRUE(a.readout.weights() == b.readout.weights());
}

TEST(Trainer, SeedChangesMask) {
  const DatasetPair pair = easy_task(9);
  TrainerConfig c1 = small_config(), c2 = small_config();
  c2.seed = 777;
  const TrainResult a = Trainer(c1).fit(pair.train);
  const TrainResult b = Trainer(c2).fit(pair.train);
  EXPECT_FALSE(a.mask.weights() == b.mask.weights());
}

TEST(Trainer, LrScheduleFollowsPaperMilestones) {
  const DatasetPair pair = easy_task(11);
  TrainerConfig config = small_config();
  const TrainResult model = Trainer(config).fit(pair.train);
  ASSERT_EQ(model.history.size(), 25u);
  EXPECT_DOUBLE_EQ(model.history[0].lr_reservoir, 1.0);
  EXPECT_DOUBLE_EQ(model.history[4].lr_reservoir, 1.0);
  EXPECT_DOUBLE_EQ(model.history[5].lr_reservoir, 0.1);
  EXPECT_DOUBLE_EQ(model.history[10].lr_reservoir, 0.01);
  EXPECT_DOUBLE_EQ(model.history[20].lr_reservoir, 1e-4);
  EXPECT_DOUBLE_EQ(model.history[5].lr_output, 1.0);   // output decays later
  EXPECT_DOUBLE_EQ(model.history[10].lr_output, 0.1);
  EXPECT_DOUBLE_EQ(model.history[20].lr_output, 1e-3);
}

TEST(Trainer, ChoosesBetaFromPaperGrid) {
  const DatasetPair pair = easy_task(13);
  const TrainResult model = Trainer(small_config()).fit(pair.train);
  const auto& grid = paper_beta_grid();
  EXPECT_NE(std::find(grid.begin(), grid.end(), model.chosen_beta), grid.end());
}

TEST(Trainer, TruncatedMemoryFootprintIsTwoStates) {
  const DatasetPair pair = easy_task(15);
  TrainerConfig config = small_config();
  config.truncation_window = 1;
  const TrainResult model = Trainer(config).fit(pair.train);
  EXPECT_EQ(model.stored_state_values, 2 * config.nodes);
}

TEST(Trainer, FullBpttStoresWholeTrajectory) {
  const DatasetPair pair = easy_task(15);
  TrainerConfig config = small_config();
  config.truncation_window = 0;  // full BPTT
  const TrainResult model = Trainer(config).fit(pair.train);
  EXPECT_EQ(model.stored_state_values, (pair.train.length() + 1) * config.nodes);
  EXPECT_GT(evaluate_accuracy(model, pair.test), 0.7);
}

TEST(Trainer, WiderWindowAlsoLearns) {
  const DatasetPair pair = easy_task(17);
  TrainerConfig config = small_config();
  config.truncation_window = 8;
  const TrainResult model = Trainer(config).fit(pair.train);
  EXPECT_GT(evaluate_accuracy(model, pair.test), 0.7);
  EXPECT_EQ(model.stored_state_values, 9 * config.nodes);
}

TEST(Trainer, ParamBoxKeepsIteratesBounded) {
  const DatasetPair pair = easy_task(19);
  TrainerConfig config = small_config();
  config.param_box = 0.65;
  const TrainResult model = Trainer(config).fit(pair.train);
  EXPECT_LE(std::fabs(model.params.a), 0.65);
  EXPECT_LE(std::fabs(model.params.b), 0.65);
  for (const auto& epoch : model.history) {
    EXPECT_LE(std::fabs(epoch.a), 0.65);
    EXPECT_LE(std::fabs(epoch.b), 0.65);
  }
}

TEST(Trainer, NonSgdOptimizersAlsoTrain) {
  const DatasetPair pair = easy_task(21);
  for (auto kind : {OptimizerKind::kMomentum, OptimizerKind::kAdam}) {
    TrainerConfig config = small_config();
    config.optimizer = kind;
    // Stateful optimizers need their conventional lr scale, not the paper's
    // SGD lr = 1.
    config.base_lr_reservoir = (kind == OptimizerKind::kAdam) ? 0.01 : 0.1;
    config.base_lr_output = (kind == OptimizerKind::kAdam) ? 0.01 : 0.1;
    const TrainResult model = Trainer(config).fit(pair.train);
    EXPECT_GT(evaluate_accuracy(model, pair.test), 0.5)
        << optimizer_kind_name(kind);
  }
}

TEST(Trainer, PredictReturnsLabelsForEverySample) {
  const DatasetPair pair = easy_task(23);
  const TrainResult model = Trainer(small_config()).fit(pair.train);
  const auto preds = predict(model, pair.test);
  ASSERT_EQ(preds.size(), pair.test.size());
  for (int p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, pair.test.num_classes());
  }
}

TEST(Trainer, RejectsEmptyDataset) {
  Dataset empty("e", 2, 4, 1);
  EXPECT_THROW((void)Trainer(small_config()).fit(empty), CheckError);
}

// ---- grid search ------------------------------------------------------------

GridSearchConfig small_grid_config() {
  GridSearchConfig config;
  config.nodes = 12;
  return config;
}

TEST(GridSearch, GridPointsAreSectionMidpoints) {
  const auto pts = grid_points(0.0, 1.0, 2);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0], 0.25);
  EXPECT_DOUBLE_EQ(pts[1], 0.75);
  const auto one = grid_points(-2.0, 2.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 0.0);  // divs=1 tests the range center
}

TEST(GridSearch, LevelEvaluatesAllCandidates) {
  const DatasetPair pair = easy_task(25);
  const GridLevelResult level =
      run_grid_level(small_grid_config(), pair.train, pair.test, 3);
  EXPECT_EQ(level.candidates.size(), 9u);
  EXPECT_EQ(level.divs, 3u);
  int valid = 0;
  for (const auto& c : level.candidates) {
    if (c.valid) ++valid;
  }
  EXPECT_GT(valid, 0);
  EXPECT_TRUE(level.best().valid);
  EXPECT_GT(level.best().test_accuracy, 0.5);
}

TEST(GridSearch, ParallelMatchesSerial) {
  const DatasetPair pair = easy_task(27);
  GridSearchConfig serial = small_grid_config();
  GridSearchConfig parallel = small_grid_config();
  parallel.threads = 4;
  const GridLevelResult a = run_grid_level(serial, pair.train, pair.test, 3);
  const GridLevelResult b = run_grid_level(parallel, pair.train, pair.test, 3);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.candidates[i].test_accuracy, b.candidates[i].test_accuracy);
    EXPECT_DOUBLE_EQ(a.candidates[i].validation_loss, b.candidates[i].validation_loss);
  }
  EXPECT_EQ(a.best_index, b.best_index);
}

TEST(GridSearch, EscalationStopsWhenTargetReached) {
  const DatasetPair pair = easy_task(29);
  const EscalationResult result = escalate_grid_search(
      small_grid_config(), pair.train, pair.test, /*target_accuracy=*/0.0,
      /*max_divs=*/5);
  // Target 0 is reached by the very first level.
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(result.levels.size(), 1u);
}

TEST(GridSearch, EscalationExhaustsOnImpossibleTarget) {
  const DatasetPair pair = easy_task(31);
  const EscalationResult result = escalate_grid_search(
      small_grid_config(), pair.train, pair.test, /*target_accuracy=*/1.1,
      /*max_divs=*/2);
  EXPECT_FALSE(result.reached_target);
  EXPECT_EQ(result.levels.size(), 2u);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(GridSearch, MultistartBackpropMatchesGridSearchAccuracy) {
  // The paper's central claim at miniature scale: the backprop-trained DFR
  // (with the restart set the benches use) reaches the accuracy of a
  // moderately fine grid search.
  const DatasetPair pair = easy_task(33);
  const Trainer trainer(small_config());
  const TrainResult model =
      trainer.fit_multistart(pair.train, Trainer::default_restarts());
  const double bp_acc = evaluate_accuracy(model, pair.test);

  const GridLevelResult level =
      run_grid_level(small_grid_config(), pair.train, pair.test, 4);
  EXPECT_GE(bp_acc + 0.05, level.best().test_accuracy);
}

}  // namespace
}  // namespace dfr
