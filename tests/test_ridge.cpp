// Unit tests for the output layer, ridge regression (primal/dual), metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "dfr/metrics.hpp"
#include "dfr/output.hpp"
#include "dfr/ridge.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

FeatureMatrix make_separable(std::size_t n_per_class, int classes,
                             std::size_t dim, double noise, std::uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix fm;
  fm.features.resize(n_per_class * static_cast<std::size_t>(classes), dim);
  fm.labels.resize(fm.features.rows());
  // Class c has mean e_c (one-hot direction) scaled by 2.
  std::size_t row = 0;
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < n_per_class; ++i, ++row) {
      for (std::size_t d = 0; d < dim; ++d) {
        const double mu = (d == static_cast<std::size_t>(c)) ? 2.0 : 0.0;
        fm.features(row, d) = mu + noise * rng.normal();
      }
      fm.labels[row] = c;
    }
  }
  return fm;
}

TEST(Softmax, SumsToOneAndOrdersLogits) {
  const Vector probs = softmax(Vector{1.0, 2.0, 3.0});
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-15);
  EXPECT_LT(probs[0], probs[1]);
  EXPECT_LT(probs[1], probs[2]);
}

TEST(Softmax, StableForHugeLogits) {
  const Vector probs = softmax(Vector{1000.0, 1000.0, -1000.0});
  EXPECT_NEAR(probs[0], 0.5, 1e-12);
  EXPECT_NEAR(probs[1], 0.5, 1e-12);
  EXPECT_NEAR(probs[2], 0.0, 1e-12);
}

TEST(CrossEntropy, KnownValue) {
  const Vector probs = {0.25, 0.5, 0.25};
  EXPECT_NEAR(cross_entropy(probs, 1), -std::log(0.5), 1e-15);
}

TEST(OutputLayer, ZeroInitGivesUniformProbabilities) {
  const OutputLayer layer(4, 10);
  const Vector r(10, 1.0);
  const Vector probs = layer.probabilities(r);
  for (double p : probs) EXPECT_NEAR(p, 0.25, 1e-15);
  EXPECT_NEAR(layer.loss(r, 2), std::log(4.0), 1e-12);
}

TEST(OutputLayer, BackwardDlogitsIsProbsMinusOneHot) {
  OutputLayer layer(3, 4);
  layer.mutable_weights()(0, 0) = 1.0;
  layer.mutable_bias()[2] = -0.5;
  const Vector r = {1.0, -1.0, 0.5, 2.0};
  const auto grad = layer.backward(r, 1);
  const Vector probs = layer.probabilities(r);
  EXPECT_NEAR(grad.dlogits[0], probs[0], 1e-15);
  EXPECT_NEAR(grad.dlogits[1], probs[1] - 1.0, 1e-15);
  EXPECT_NEAR(grad.dlogits[2], probs[2], 1e-15);
}

TEST(OutputLayer, SgdStepReducesLossOnRepeatedSample) {
  OutputLayer layer(3, 5);
  const Vector r = {0.5, -0.2, 0.1, 0.9, -0.4};
  double prev = layer.loss(r, 0);
  for (int i = 0; i < 20; ++i) {
    const auto grad = layer.backward(r, 0);
    layer.apply_gradient(grad, r, 0.5);
    const double now = layer.loss(r, 0);
    EXPECT_LT(now, prev + 1e-12);
    prev = now;
  }
  EXPECT_EQ(layer.predict(r), 0);
}

TEST(Ridge, PrimalAndDualAgree) {
  // Wide regime (n < p) exercises the dual; force the primal by transposing
  // the sample count. Both must produce the same predictions.
  const FeatureMatrix tall = make_separable(50, 3, 8, 0.3, 5);   // n=150 > p=8
  const FeatureMatrix wide = make_separable(4, 3, 40, 0.3, 7);   // n=12 < p=40

  for (const auto& fm : {tall, wide}) {
    for (double beta : {1e-4, 1e-2, 1.0}) {
      // fit_ridge auto-selects; build both solutions explicitly by toggling
      // shapes is not possible from outside, so instead verify the normal
      // equations hold: (R'R + beta I) W' = R'(D - 1 b') for the augmented
      // system — equivalently check residual optimality via gradient ~ 0.
      const OutputLayer layer = fit_ridge(fm, 3, beta);
      // Gradient of the ridge objective w.r.t. W_aug at the solution is
      // 2 R_aug^T (R_aug W_aug^T - D) + 2 beta W_aug^T = 0.
      const std::size_t n = fm.features.rows(), p = fm.features.cols();
      Matrix r_aug(n, p + 1);
      for (std::size_t i = 0; i < n; ++i) {
        const auto row = fm.features.row(i);
        std::copy(row.begin(), row.end(), r_aug.row(i).begin());
        r_aug(i, p) = 1.0;
      }
      const Matrix d = one_hot(fm.labels, 3);
      Matrix w_aug_t(p + 1, 3);
      for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t f = 0; f < p; ++f) w_aug_t(f, c) = layer.weights()(c, f);
        w_aug_t(p, c) = layer.bias()[c];
      }
      const Matrix residual = matmul(r_aug, w_aug_t) - d;
      Matrix gradient = matmul_at_b(r_aug, residual);
      gradient += w_aug_t * beta;
      EXPECT_LT(gradient.max_abs(), 1e-8)
          << "n=" << n << " p=" << p << " beta=" << beta;
    }
  }
}

TEST(Ridge, SeparableDataClassifiedPerfectly) {
  const FeatureMatrix train = make_separable(30, 4, 6, 0.2, 11);
  const FeatureMatrix test = make_separable(10, 4, 6, 0.2, 13);
  const OutputLayer layer = fit_ridge(train, 4, 1e-4);
  EXPECT_EQ(evaluate_accuracy(layer, train), 1.0);
  EXPECT_EQ(evaluate_accuracy(layer, test), 1.0);
}

TEST(Ridge, StrongRegularizationShrinksWeights) {
  const FeatureMatrix train = make_separable(20, 3, 5, 0.3, 17);
  const OutputLayer weak = fit_ridge(train, 3, 1e-6);
  const OutputLayer strong = fit_ridge(train, 3, 100.0);
  EXPECT_LT(strong.weights().frobenius_norm(), weak.weights().frobenius_norm());
}

TEST(Ridge, SweepPicksSmallestSelectionLoss) {
  const FeatureMatrix train = make_separable(25, 3, 6, 0.4, 19);
  const FeatureMatrix val = make_separable(10, 3, 6, 0.4, 23);
  const RidgeSweep sweep = sweep_ridge(train, val, 3);
  ASSERT_EQ(sweep.candidates.size(), paper_beta_grid().size());
  for (const auto& c : sweep.candidates) {
    EXPECT_GE(c.selection_loss, sweep.best().selection_loss);
  }
  EXPECT_EQ(sweep.best().beta, sweep.candidates[sweep.best_index].beta);
}

TEST(Ridge, RejectsNonPositiveBeta) {
  const FeatureMatrix train = make_separable(5, 2, 3, 0.1, 29);
  EXPECT_THROW(fit_ridge(train, 2, 0.0), CheckError);
}

// ---- metrics ----------------------------------------------------------------

TEST(Metrics, AccuracyCountsMatches) {
  EXPECT_DOUBLE_EQ(accuracy({0, 1, 2, 1}, {0, 1, 1, 1}), 0.75);
  EXPECT_DOUBLE_EQ(accuracy({1}, {1}), 1.0);
}

TEST(Metrics, ConfusionMatrixLayout) {
  const Matrix cm = confusion_matrix({0, 1, 1, 2}, {0, 1, 2, 2}, 3);
  EXPECT_DOUBLE_EQ(cm(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cm(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(cm(2, 1), 1.0);  // actual 2 predicted 1
  EXPECT_DOUBLE_EQ(cm(2, 2), 1.0);
}

TEST(Metrics, MacroF1PerfectAndDegenerate) {
  EXPECT_DOUBLE_EQ(macro_f1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
  // All predictions wrong class: F1 = 0 for present classes.
  EXPECT_DOUBLE_EQ(macro_f1({1, 1, 1}, {0, 0, 0}, 2), 0.0);
}

TEST(Metrics, MeanCrossEntropyMatchesManual) {
  Matrix probs{{0.5, 0.5}, {0.9, 0.1}};
  const double expected = (-std::log(0.5) - std::log(0.1)) / 2.0;
  EXPECT_NEAR(mean_cross_entropy(probs, {0, 1}), expected, 1e-12);
}

}  // namespace
}  // namespace dfr
