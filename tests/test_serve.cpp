// Tests for the unified streaming inference engine (serve/engine.hpp):
// bit-identity against the trajectory-matrix reference pipeline (float and
// quantized), batch classification determinism for any thread count, input
// validation, and the zero-steady-state-allocation guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "data/preprocess.hpp"
#include "data/synth.hpp"
#include "dfr/features.hpp"
#include "dfr/representation.hpp"
#include "dfr/trainer.hpp"
#include "serve/engine.hpp"
#include "util/rng.hpp"

// ---- allocation instrumentation -------------------------------------------
// Replace global operator new/delete with counting malloc/free wrappers. The
// steady-state test snapshots the counter around repeated classify() calls;
// every other test simply runs with counting enabled.

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dfr {
namespace {

/// The pre-refactor float inference pipeline, kept as the bit-exactness
/// reference: full (T+1) x Nx trajectory -> batch DPRR -> readout.
Vector reference_float_features(const LoadedModel& model, const Matrix& series) {
  const ModularReservoir reservoir(model.mask.nodes(), model.nonlinearity);
  const Matrix states = reservoir.run_series(model.mask, series, model.params);
  return compute_representation(RepresentationKind::kDprr, states);
}

/// The pre-refactor quantized per-series loop, kept as the bit-exactness
/// reference for the fixed-point datapath.
Vector reference_quantized_features(const QuantizedDfr& qdfr,
                                    const Matrix& series) {
  const LoadedModel& model = qdfr.model();
  const std::size_t nx = model.mask.nodes();
  const FixedPointFormat& state_fmt = qdfr.config().state_format;
  const double inv_state = 1.0 / qdfr.scales().state;

  Vector x_prev(nx, 0.0), x_cur(nx, 0.0);
  DprrAccumulator dprr(nx);
  for (std::size_t k = 0; k < series.rows(); ++k) {
    Vector j = model.mask.apply(series.row(k));
    for (double& v : j) v = state_fmt.quantize(v * inv_state);
    double prev_node = x_prev[nx - 1];
    for (std::size_t n = 0; n < nx; ++n) {
      const double s = state_fmt.quantize(j[n] + x_prev[n]);
      const double value =
          model.params.a * model.nonlinearity.value(s) +
          model.params.b * prev_node;
      prev_node = state_fmt.quantize(value);
      x_cur[n] = prev_node;
    }
    dprr.add(x_cur, x_prev);
    std::swap(x_prev, x_cur);
  }
  Vector r = dprr.features();
  scale(r, dprr_time_scale(series.rows()) / qdfr.scales().feature);
  qdfr.config().feature_format.quantize(r);
  return r;
}

class ServeEngine : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pair_ = new DatasetPair(generate_toy_task(3, 2, 40, 16, 10, 0.5, 7));
    standardize_pair(*pair_);
    TrainerConfig config;
    config.nodes = 10;
    const TrainResult trained = Trainer(config).fit(pair_->train);
    model_ = new LoadedModel{trained.params, trained.mask, trained.nonlinearity,
                             trained.readout, trained.chosen_beta};
    quantized_ = new QuantizedDfr(*model_, QuantizedInferenceConfig{});
    quantized_->calibrate(pair_->train);
  }
  static void TearDownTestSuite() {
    delete pair_;
    delete model_;
    delete quantized_;
    pair_ = nullptr;
    model_ = nullptr;
    quantized_ = nullptr;
  }
  static DatasetPair* pair_;
  static LoadedModel* model_;
  static QuantizedDfr* quantized_;
};

DatasetPair* ServeEngine::pair_ = nullptr;
LoadedModel* ServeEngine::model_ = nullptr;
QuantizedDfr* ServeEngine::quantized_ = nullptr;

TEST_F(ServeEngine, FloatFeaturesBitIdenticalToTrajectoryPipeline) {
  InferenceEngine engine = make_engine(*model_);
  for (std::size_t i = 0; i < pair_->test.size(); ++i) {
    const Matrix& series = pair_->test[i].series;
    const Vector reference = reference_float_features(*model_, series);
    const std::span<const double> streamed = engine.features(series);
    ASSERT_EQ(streamed.size(), reference.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      ASSERT_EQ(streamed[k], reference[k]) << "sample " << i << " feature " << k;
    }
  }
}

TEST_F(ServeEngine, FloatLogitsBitIdenticalToReadoutOnReferenceFeatures) {
  InferenceEngine engine = make_engine(*model_);
  for (std::size_t i = 0; i < pair_->test.size(); ++i) {
    const Matrix& series = pair_->test[i].series;
    const Vector reference =
        model_->readout.logits(reference_float_features(*model_, series));
    const std::span<const double> logits = engine.infer(series);
    ASSERT_EQ(logits.size(), reference.size());
    for (std::size_t c = 0; c < reference.size(); ++c) {
      ASSERT_EQ(logits[c], reference[c]) << "sample " << i << " class " << c;
    }
    EXPECT_EQ(engine.classify(series),
              static_cast<int>(std::max_element(reference.begin(),
                                                reference.end()) -
                               reference.begin()));
  }
}

TEST_F(ServeEngine, QuantizedFeaturesBitIdenticalToLegacyLoop) {
  QuantizedInferenceEngine engine = make_engine(*quantized_);
  for (std::size_t i = 0; i < pair_->test.size(); ++i) {
    const Matrix& series = pair_->test[i].series;
    const Vector reference = reference_quantized_features(*quantized_, series);
    const std::span<const double> streamed = engine.features(series);
    ASSERT_EQ(streamed.size(), reference.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      ASSERT_EQ(streamed[k], reference[k]) << "sample " << i << " feature " << k;
    }
    EXPECT_EQ(engine.classify(series),
              quantized_->quantized_readout().predict(reference));
  }
}

TEST_F(ServeEngine, LoadedModelInferClassifyProbabilitiesAgree) {
  const Matrix& series = pair_->test[0].series;
  const Vector logits = model_->infer(series);
  EXPECT_EQ(static_cast<std::size_t>(model_->readout.num_classes()),
            logits.size());
  const int predicted = model_->classify(series);
  EXPECT_EQ(predicted,
            static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                             logits.begin()));
  const Vector probs = model_->probabilities(series);
  const Vector expected = softmax(logits);
  ASSERT_EQ(probs.size(), expected.size());
  for (std::size_t c = 0; c < probs.size(); ++c) {
    EXPECT_EQ(probs[c], expected[c]);
  }
}

TEST_F(ServeEngine, ComputeFeaturesMatchesEngineRows) {
  const ModularReservoir reservoir(model_->mask.nodes(), model_->nonlinearity);
  const FeatureMatrix fm =
      compute_features(reservoir, model_->params, model_->mask, pair_->test,
                       RepresentationKind::kDprr, 1);
  InferenceEngine engine = make_engine(*model_);
  for (std::size_t i = 0; i < pair_->test.size(); ++i) {
    const std::span<const double> r = engine.features(pair_->test[i].series);
    const std::span<const double> row = fm.features.row(i);
    ASSERT_EQ(r.size(), row.size());
    for (std::size_t k = 0; k < r.size(); ++k) ASSERT_EQ(r[k], row[k]);
  }
}

TEST_F(ServeEngine, ClassifyBatchDeterministicAcrossThreadCounts) {
  std::vector<Matrix> batch;
  for (std::size_t i = 0; i < pair_->test.size(); ++i) {
    batch.push_back(pair_->test[i].series);
  }
  const std::span<const Matrix> series(batch);

  // Per-series reference, in order.
  std::vector<int> reference;
  InferenceEngine engine = make_engine(*model_);
  reference.reserve(batch.size());
  for (const Matrix& m : batch) reference.push_back(engine.classify(m));

  // kScalar: the reference comes from the scalar engine and this test pins
  // exact thread-count determinism of that datapath; the SIMD default path's
  // determinism under forced dispatch is test_simd.cpp's
  // ClassifyBatchDeterministicUnderForcedDispatch.
  for (unsigned threads : {1u, 2u, 3u, 8u, 0u}) {
    EXPECT_EQ(classify_batch(*model_, series, threads, FloatEngineKind::kScalar),
              reference)
        << "threads=" << threads;
  }
  EXPECT_EQ(classify_batch(*model_, pair_->test, 2, FloatEngineKind::kScalar),
            reference);
}

TEST_F(ServeEngine, QuantizedBatchMatchesPerSeriesClassify) {
  std::vector<int> reference;
  for (std::size_t i = 0; i < pair_->test.size(); ++i) {
    reference.push_back(quantized_->classify(pair_->test[i].series));
  }
  for (unsigned threads : {1u, 4u}) {
    EXPECT_EQ(classify_batch(*quantized_, pair_->test, threads), reference);
  }
}

TEST_F(ServeEngine, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(classify_batch(*model_, std::span<const Matrix>{}, 4).empty());
  EXPECT_TRUE(classify_batch(*quantized_, std::span<const Matrix>{}, 4).empty());
  for (FloatEngineKind kind : {FloatEngineKind::kAuto, FloatEngineKind::kScalar,
                               FloatEngineKind::kSimd}) {
    EXPECT_TRUE(
        classify_batch(*model_, std::span<const Matrix>{}, 0, kind).empty());
  }
}

TEST_F(ServeEngine, BatchSmallerThanThreadsMatchesSerial) {
  // Fewer series than worker slots: the chunking must neither drop nor
  // duplicate work for any datapath.
  std::vector<Matrix> small;
  for (std::size_t i = 0; i < 3; ++i) small.push_back(pair_->test[i].series);
  const std::span<const Matrix> series(small);

  for (FloatEngineKind kind : {FloatEngineKind::kScalar, FloatEngineKind::kAuto}) {
    const std::vector<int> serial = classify_batch(*model_, series, 1, kind);
    ASSERT_EQ(serial.size(), small.size());
    for (unsigned threads : {8u, 16u, 0u}) {
      EXPECT_EQ(classify_batch(*model_, series, threads, kind), serial)
          << "threads=" << threads;
    }
  }
  const std::vector<int> quant_serial = classify_batch(*quantized_, series, 1);
  for (unsigned threads : {8u, 16u, 0u}) {
    EXPECT_EQ(classify_batch(*quantized_, series, threads), quant_serial)
        << "threads=" << threads;
  }
}

TEST_F(ServeEngine, DatasetAndSpanOverloadsAgreeAtEveryThreadCount) {
  std::vector<Matrix> batch;
  for (std::size_t i = 0; i < pair_->test.size(); ++i) {
    batch.push_back(pair_->test[i].series);
  }
  const std::span<const Matrix> series(batch);

  for (FloatEngineKind kind : {FloatEngineKind::kScalar, FloatEngineKind::kAuto}) {
    for (unsigned threads : {1u, 2u, 3u, 8u, 0u}) {
      EXPECT_EQ(classify_batch(*model_, pair_->test, threads, kind),
                classify_batch(*model_, series, threads, kind))
          << "threads=" << threads;
    }
  }
  for (unsigned threads : {1u, 2u, 3u, 8u, 0u}) {
    EXPECT_EQ(classify_batch(*quantized_, pair_->test, threads),
              classify_batch(*quantized_, series, threads))
        << "threads=" << threads;
  }
}

TEST_F(ServeEngine, ArtifactOverloadMatchesLoadedModelOverload) {
  std::vector<Matrix> batch;
  for (std::size_t i = 0; i < pair_->test.size(); ++i) {
    batch.push_back(pair_->test[i].series);
  }
  const std::span<const Matrix> series(batch);
  const ModelArtifactPtr artifact = model_->artifact("m");
  for (FloatEngineKind kind : {FloatEngineKind::kScalar, FloatEngineKind::kAuto}) {
    for (unsigned threads : {1u, 4u}) {
      EXPECT_EQ(classify_batch(artifact, series, threads, kind),
                classify_batch(*model_, series, threads, kind));
      EXPECT_EQ(classify_batch(artifact, pair_->test, threads, kind),
                classify_batch(*model_, pair_->test, threads, kind));
    }
  }
}

TEST_F(ServeEngine, EngineOutlivesTheLoadedModelItWasBuiltFrom) {
  // The ownership contract: engines snapshot the model into a shared
  // artifact, so a stack LoadedModel may die before the engine serves.
  const Matrix& series = pair_->test[0].series;
  const int expected = make_engine(*model_).classify(series);
  auto engine = [&] {
    const LoadedModel short_lived{model_->params, model_->mask,
                                  model_->nonlinearity, model_->readout,
                                  model_->chosen_beta};
    return make_engine(short_lived);
  }();  // short_lived is gone; the engine's artifact keeps the weights alive
  EXPECT_EQ(engine.classify(series), expected);
}

TEST_F(ServeEngine, RejectsMalformedSeries) {
  InferenceEngine engine = make_engine(*model_);
  Matrix wrong_channels(5, model_->mask.channels() + 1);
  EXPECT_THROW(engine.classify(wrong_channels), CheckError);
  Matrix empty_series(0, model_->mask.channels());
  EXPECT_THROW(engine.classify(empty_series), CheckError);
}

TEST_F(ServeEngine, FeaturesOnlyDatapathRejectsInfer) {
  InferenceEngine engine(FloatDatapath(model_->mask, model_->params,
                                       model_->nonlinearity));
  EXPECT_NO_THROW(engine.features(pair_->test[0].series));
  EXPECT_THROW(engine.infer(pair_->test[0].series), CheckError);
}

TEST_F(ServeEngine, ClassifyIsAllocationFreeInSteadyState) {
  InferenceEngine engine = make_engine(*model_);
  QuantizedInferenceEngine quant_engine = make_engine(*quantized_);
  const Matrix& series = pair_->test[0].series;
  // Warmup: scratch was allocated at construction; nothing further is lazy,
  // but run once anyway so any one-time effects are behind us.
  engine.classify(series);
  quant_engine.classify(series);

  const std::size_t before = g_allocations.load();
  int sink = 0;
  for (int rep = 0; rep < 100; ++rep) {
    for (std::size_t i = 0; i < pair_->test.size(); ++i) {
      sink += engine.classify(pair_->test[i].series);
      sink += quant_engine.classify(pair_->test[i].series);
    }
  }
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(after, before) << "classify() must not allocate after warmup";
  EXPECT_GE(sink, 0);  // keep the loop observable
}

}  // namespace
}  // namespace dfr
