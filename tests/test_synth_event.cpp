// Tests for the event-order synthetic generator (the library extension that
// builds tasks separable only through temporal integration).
#include <gtest/gtest.h>

#include <cmath>

#include "data/specs.hpp"
#include "data/synth.hpp"
#include "linalg/stats.hpp"

namespace dfr {
namespace {

DatasetSpec event_spec(int classes, std::size_t channels, std::size_t length,
                       double difficulty) {
  DatasetSpec spec;
  spec.id = "EVT";
  spec.channels = channels;
  spec.length = length;
  spec.num_classes = classes;
  spec.train_size = static_cast<std::size_t>(classes) * 12;
  spec.test_size = static_cast<std::size_t>(classes) * 6;
  spec.difficulty = difficulty;
  spec.kind = TaskKind::kEventOrder;
  return spec;
}

TEST(EventGenerator, ShapesAndDeterminism) {
  const DatasetSpec spec = event_spec(4, 3, 120, 0.2);
  const DatasetPair a = generate_synthetic(spec);
  const DatasetPair b = generate_synthetic(spec);
  EXPECT_EQ(a.train.size(), 48u);
  EXPECT_EQ(a.test.size(), 24u);
  EXPECT_EQ(a.train.length(), 120u);
  EXPECT_EQ(a.train.channels(), 3u);
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_TRUE(a.train[i].series == b.train[i].series);
  }
}

TEST(EventGenerator, MarginalEnergyIsClassIndependent) {
  // The defining property: every class renders the same multiset of burst
  // prototypes, so per-class total signal energy must be near-identical
  // (only jitter and noise differ).
  const DatasetSpec spec = event_spec(3, 2, 150, 0.05);
  const DatasetPair pair = generate_synthetic(spec);
  std::vector<double> class_energy(3, 0.0);
  std::vector<int> class_count(3, 0);
  for (const auto& s : pair.train.samples()) {
    double energy = 0.0;
    for (std::size_t t = 0; t < s.series.rows(); ++t) {
      for (std::size_t v = 0; v < s.series.cols(); ++v) {
        energy += s.series(t, v) * s.series(t, v);
      }
    }
    class_energy[static_cast<std::size_t>(s.label)] += energy;
    class_count[static_cast<std::size_t>(s.label)] += 1;
  }
  for (int c = 0; c < 3; ++c) class_energy[c] /= class_count[c];
  const double lo = *std::min_element(class_energy.begin(), class_energy.end());
  const double hi = *std::max_element(class_energy.begin(), class_energy.end());
  EXPECT_LT((hi - lo) / hi, 0.15);  // within 15% of each other
}

TEST(EventGenerator, SamplesWithinClassShareStructure) {
  // Two samples of the same class correlate far more strongly than two
  // samples of different classes (averaged over channels) at low noise.
  const DatasetSpec spec = event_spec(2, 1, 200, 0.05);
  const DatasetPair pair = generate_synthetic(spec);
  auto series_of = [&](int label, int nth) -> const Matrix& {
    int seen = 0;
    for (const auto& s : pair.train.samples()) {
      if (s.label == label && seen++ == nth) return s.series;
    }
    throw std::runtime_error("not found");
  };
  auto corr = [&](const Matrix& x, const Matrix& y) {
    return pearson(x.col(0), y.col(0));
  };
  // Slot-timing and phase jitter keep even same-class samples only loosely
  // aligned at lag 0 (which is the point of the generator — instantaneous
  // statistics are weak); the discriminative ordering shows as same-class
  // correlation reliably exceeding cross-class correlation.
  const double same = corr(series_of(0, 0), series_of(0, 1));
  const double cross = corr(series_of(0, 0), series_of(1, 0));
  EXPECT_GT(same, cross);
  EXPECT_GT(same, 0.1);
}

TEST(EventGenerator, NoiseScalesWithDifficulty) {
  const DatasetPair quiet = generate_synthetic(event_spec(2, 1, 100, 0.01));
  const DatasetPair loud = generate_synthetic(event_spec(2, 1, 100, 2.0));
  auto total_energy = [](const Dataset& d) {
    double e = 0.0;
    for (const auto& s : d.samples()) {
      for (std::size_t t = 0; t < s.series.rows(); ++t) e += s.series(t, 0) * s.series(t, 0);
    }
    return e;
  };
  EXPECT_GT(total_energy(loud.train), 2.0 * total_energy(quiet.train));
}

}  // namespace
}  // namespace dfr
