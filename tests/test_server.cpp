// Tests for the multi-model serving subsystem (serve/registry.hpp,
// serve/server.hpp): registry register/get/evict/hot-swap semantics, engine
// pool caching and swap detection, request routing correctness (bit-identical
// logits vs direct single-threaded LoadedModel::infer for every engine kind
// and worker count), hot-swap under concurrent traffic, backpressure,
// shutdown draining, per-model stats, and the zero-steady-state-allocation
// guarantee of the submit path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

// ---- allocation instrumentation (same scheme as test_serve.cpp) ------------

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dfr {
namespace {

using serve::EnginePool;
using serve::InferenceServer;
using serve::InferFuture;
using serve::InferResult;
using serve::ModelRegistry;
using serve::PooledEngine;
using serve::RequestStatus;
using serve::ServerConfig;

// ---- helpers ---------------------------------------------------------------

/// Deployment-shaped model with random (but deterministic) weights; routing
/// correctness depends only on shapes and weight values, never on training.
LoadedModel make_model(std::size_t nodes, std::size_t channels, int classes,
                       std::uint64_t seed) {
  Rng rng(seed);
  LoadedModel model;
  model.params = DfrParams{0.1, 0.05};
  model.mask = Mask(nodes, channels, MaskKind::kBinary, rng);
  Matrix w(static_cast<std::size_t>(classes), dprr_dim(nodes));
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) w(i, j) = rng.uniform(-1.0, 1.0);
  }
  Vector b(w.rows(), 0.0);
  for (double& v : b) v = rng.uniform(-0.1, 0.1);
  model.readout = OutputLayer(std::move(w), std::move(b));
  return model;
}

Matrix random_series(std::size_t t_len, std::size_t channels, Rng& rng) {
  Matrix m(t_len, channels);
  for (std::size_t k = 0; k < t_len; ++k) {
    for (std::size_t v = 0; v < channels; ++v) m(k, v) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

void expect_bit_identical(const Vector& expected,
                          const std::span<const double> got,
                          const std::string& context) {
  ASSERT_EQ(expected.size(), got.size()) << context;
  for (std::size_t c = 0; c < expected.size(); ++c) {
    ASSERT_EQ(expected[c], got[c]) << context << " class " << c;
  }
}

// ---- ModelRegistry ---------------------------------------------------------

TEST(ModelRegistry, RegisterGetEvict) {
  ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.get("ecg"), nullptr);

  const LoadedModel model = make_model(8, 2, 3, 1);
  registry.register_model(model.artifact("ecg"));
  EXPECT_EQ(registry.size(), 1u);
  const ModelArtifactPtr got = registry.get("ecg");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->name, "ecg");
  EXPECT_EQ(got->mask.nodes(), 8u);

  registry.register_model(make_model(9, 2, 3, 2).artifact("vow"));
  EXPECT_EQ(registry.ids(), (std::vector<std::string>{"ecg", "vow"}));

  EXPECT_TRUE(registry.evict("ecg"));
  EXPECT_FALSE(registry.evict("ecg"));
  EXPECT_EQ(registry.get("ecg"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
  // The evicted artifact stays alive for holders of the shared_ptr.
  EXPECT_EQ(got->mask.nodes(), 8u);
}

TEST(ModelRegistry, ReRegisterHotSwapsAtomically) {
  ModelRegistry registry;
  const ModelArtifactPtr v1 = make_model(8, 2, 3, 1).artifact("m");
  const ModelArtifactPtr v2 = make_model(8, 2, 3, 2).artifact("m");
  registry.register_model(v1);
  EXPECT_EQ(registry.get("m"), v1);
  const std::uint64_t version_before = registry.version();
  registry.register_model(v2);
  EXPECT_EQ(registry.get("m"), v2);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_GT(registry.version(), version_before);
}

TEST(ModelRegistry, RejectsAnonymousOrNullArtifacts) {
  ModelRegistry registry;
  EXPECT_THROW(registry.register_model(nullptr), CheckError);
  EXPECT_THROW(registry.register_model(make_model(4, 1, 2, 3).artifact()),
               CheckError);
}

// ---- EnginePool ------------------------------------------------------------

TEST(EnginePoolTest, CachesPerArtifactAndKindAndRebuildsOnSwap) {
  const ModelArtifactPtr v1 = make_model(10, 2, 3, 5).artifact("m");
  const ModelArtifactPtr v2 = make_model(10, 2, 3, 6).artifact("m");
  EnginePool pool(2);

  PooledEngine& simd = pool.engine_for(0, v1, FloatEngineKind::kAuto);
  EXPECT_EQ(simd.artifact(), v1);
  // kAuto resolves to the SIMD float variant.
  EXPECT_EQ(simd.variant(), serve::EngineVariant::kFloatSimd);
  // Cache hit: same entry for the same routing triple, kAuto == kSimd.
  EXPECT_EQ(&pool.engine_for(0, v1, FloatEngineKind::kSimd), &simd);
  // Distinct kind and distinct worker slot get distinct engines.
  PooledEngine& scalar = pool.engine_for(0, v1, FloatEngineKind::kScalar);
  EXPECT_NE(&scalar, &simd);
  EXPECT_EQ(scalar.variant(), serve::EngineVariant::kFloatScalar);
  EXPECT_NE(&pool.engine_for(1, v1, FloatEngineKind::kSimd), &simd);

  // Hot-swap: same name, new artifact — rebuilt in place, same slot entry.
  PooledEngine& swapped = pool.engine_for(0, v2, FloatEngineKind::kSimd);
  EXPECT_EQ(&swapped, &simd);
  EXPECT_EQ(swapped.artifact(), v2);
}

TEST(EnginePoolTest, AnonymousArtifactsGetDistinctStableEngines) {
  // Empty names must not alias as a "hot-swap": two anonymous artifacts
  // alternating on one worker keep two cached engines instead of thrashing
  // one slot through rebuilds.
  const ModelArtifactPtr anon1 = make_model(8, 2, 3, 21).artifact();
  const ModelArtifactPtr anon2 = make_model(8, 2, 3, 22).artifact();
  EnginePool pool(1);
  PooledEngine& first = pool.engine_for(0, anon1, FloatEngineKind::kSimd);
  PooledEngine& second = pool.engine_for(0, anon2, FloatEngineKind::kSimd);
  EXPECT_NE(&first, &second);
  EXPECT_EQ(first.artifact(), anon1);
  EXPECT_EQ(second.artifact(), anon2);
  EXPECT_EQ(&pool.engine_for(0, anon1, FloatEngineKind::kSimd), &first);
  EXPECT_EQ(&pool.engine_for(0, anon2, FloatEngineKind::kSimd), &second);
}

TEST(EnginePoolTest, EvictionReclaimsCachedEnginesDeferred) {
  EnginePool pool(2);
  std::weak_ptr<const ModelArtifact> watch;
  const ModelArtifactPtr other = make_model(8, 2, 3, 31).artifact("other");
  {
    const ModelArtifactPtr evictee = make_model(8, 2, 3, 30).artifact("m");
    watch = evictee;
    // Build engines for the evictee on both worker slots (and one for a
    // second model, which must survive the reclaim).
    pool.engine_for(0, evictee, FloatEngineKind::kSimd);
    pool.engine_for(0, evictee, FloatEngineKind::kScalar);
    pool.engine_for(1, evictee, FloatEngineKind::kSimd);
    pool.engine_for(0, other, FloatEngineKind::kSimd);
    pool.note_eviction("m");
  }  // registry-side reference gone; only cached engines pin the artifact
  EXPECT_FALSE(watch.expired()) << "engines should still pin the artifact";

  // Worker 0 reclaims at its next engine_for; worker 1 has not run yet.
  PooledEngine& survivor = pool.engine_for(0, other, FloatEngineKind::kSimd);
  EXPECT_EQ(survivor.artifact(), other);
  EXPECT_FALSE(watch.expired()) << "worker 1 still caches the evictee";
  pool.engine_for(1, other, FloatEngineKind::kSimd);
  EXPECT_TRUE(watch.expired())
      << "eviction must reclaim cached engines once every worker caught up";
}

TEST(EnginePoolTest, EvictedThenReRegisteredModelRebuildsCleanly) {
  // An eviction note for a name that was re-registered before the worker
  // drained it must not break serving: the stale engine is dropped, the
  // next request lazily rebuilds on the current artifact.
  EnginePool pool(1);
  const LoadedModel model = make_model(8, 2, 3, 33);
  const ModelArtifactPtr v1 = model.artifact("m");
  const ModelArtifactPtr v2 = model.artifact("m");
  pool.engine_for(0, v1, FloatEngineKind::kSimd);
  pool.note_eviction("m");
  PooledEngine& rebuilt = pool.engine_for(0, v2, FloatEngineKind::kSimd);
  EXPECT_EQ(rebuilt.artifact(), v2);
  Rng rng(34);
  const Matrix series = random_series(20, 2, rng);
  expect_bit_identical(model.infer(series), rebuilt.infer(series),
                       "rebuilt after eviction");
}

TEST(EnginePoolTest, QuantizedVariantsServeTheQuantizedTwin) {
  const LoadedModel model = make_model(10, 2, 3, 41);
  auto quantized = std::make_shared<const QuantizedDfr>(
      model, QuantizedInferenceConfig{});
  const ModelArtifactPtr artifact =
      with_quantized(model.artifact("m"), quantized);
  EnginePool pool(1);
  Rng rng(42);
  const Matrix series = random_series(25, 2, rng);

  PooledEngine& quant_scalar =
      pool.engine_for(0, artifact, serve::EngineVariant::kQuantScalar);
  PooledEngine& quant_simd =
      pool.engine_for(0, artifact, serve::EngineVariant::kQuantSimd);
  EXPECT_NE(&quant_scalar, &quant_simd);
  EXPECT_EQ(quant_scalar.variant(), serve::EngineVariant::kQuantScalar);
  EXPECT_EQ(quant_simd.variant(), serve::EngineVariant::kQuantSimd);
  // Both quantized variants agree bit-identically (the quantized SIMD
  // exactness contract) and match the direct quantized engine.
  QuantizedInferenceEngine direct = make_engine(*quantized);
  const Vector expected(direct.infer(series).begin(),
                        direct.infer(series).end());
  expect_bit_identical(expected, quant_scalar.infer(series), "quant-scalar");
  expect_bit_identical(expected, quant_simd.infer(series), "quant-simd");
  EXPECT_EQ(quant_scalar.classify(series), direct.classify(series));

  // A float-only artifact throws the typed error for quantized variants.
  const ModelArtifactPtr bare = model.artifact("bare");
  EXPECT_THROW(
      (void)pool.engine_for(0, bare, serve::EngineVariant::kQuantSimd),
      CheckError);
}

TEST(EnginePoolTest, HotSwapDroppingTheQuantizedTwinReleasesTheStaleEngine) {
  // Re-registering a model WITHOUT its quantized twin must not leave the
  // pool's cached quantized engine (and the swapped-out artifact it pins)
  // alive forever: the failed rebuild drops the stale entry, and the
  // request still gets the typed error.
  const LoadedModel model = make_model(10, 2, 3, 45);
  EnginePool pool(1);
  std::weak_ptr<const ModelArtifact> watch;
  const ModelArtifactPtr bare = model.artifact("m");  // no twin
  {
    const ModelArtifactPtr with_twin = with_quantized(
        model.artifact("m"), std::make_shared<const QuantizedDfr>(
                                 model, QuantizedInferenceConfig{}));
    watch = with_twin;
    pool.engine_for(0, with_twin, serve::EngineVariant::kQuantSimd);
  }  // registry-side reference gone; only the cached engine pins v1
  EXPECT_THROW(
      (void)pool.engine_for(0, bare, serve::EngineVariant::kQuantSimd),
      CheckError);
  EXPECT_TRUE(watch.expired())
      << "failed hot-swap rebuild must release the stale engine";
  // The error is per-request, not sticky: float serving still works, and a
  // twin-carrying re-register serves quantized again.
  Rng rng(46);
  const Matrix series = random_series(20, 2, rng);
  EXPECT_EQ(pool.engine_for(0, bare, serve::EngineVariant::kFloatSimd)
                .classify(series),
            model.classify(series));
  const ModelArtifactPtr restored = with_quantized(
      model.artifact("m"), std::make_shared<const QuantizedDfr>(
                               model, QuantizedInferenceConfig{}));
  PooledEngine& rebuilt =
      pool.engine_for(0, restored, serve::EngineVariant::kQuantSimd);
  EXPECT_EQ(rebuilt.artifact(), restored);
}

TEST(WithQuantized, ValidatesShapeAndNullness) {
  const LoadedModel model = make_model(10, 2, 3, 43);
  auto quantized = std::make_shared<const QuantizedDfr>(
      model, QuantizedInferenceConfig{});
  EXPECT_THROW((void)with_quantized(nullptr, quantized), CheckError);
  EXPECT_THROW((void)with_quantized(model.artifact("m"), nullptr), CheckError);
  // Mismatched shape: a twin quantizing a different model.
  const LoadedModel wrong = make_model(12, 2, 3, 44);
  EXPECT_THROW(
      (void)with_quantized(model.artifact("m"),
                           std::make_shared<const QuantizedDfr>(
                               wrong, QuantizedInferenceConfig{})),
      CheckError);
  const ModelArtifactPtr ok = with_quantized(model.artifact("m"), quantized);
  EXPECT_EQ(ok->quantized, quantized);
  EXPECT_EQ(ok->name, "m");
}

TEST(EnginePoolTest, EngineMatchesDirectInference) {
  const LoadedModel model = make_model(10, 2, 3, 7);
  const ModelArtifactPtr artifact = model.artifact("m");
  Rng rng(8);
  const Matrix series = random_series(30, 2, rng);
  EnginePool pool(1);
  for (FloatEngineKind kind :
       {FloatEngineKind::kScalar, FloatEngineKind::kSimd}) {
    const Vector expected = model.infer(series, kind);
    PooledEngine& engine = pool.engine_for(0, artifact, kind);
    expect_bit_identical(expected, engine.infer(series), "pooled engine");
    EXPECT_EQ(engine.classify(series),
              static_cast<int>(std::max_element(expected.begin(),
                                                expected.end()) -
                               expected.begin()));
  }
}

// ---- InferenceServer: routing correctness ----------------------------------

class ServerRouting : public ::testing::Test {
 protected:
  static constexpr std::size_t kSeriesPerModel = 6;

  static void SetUpTestSuite() {
    model_a_ = new LoadedModel(make_model(10, 2, 3, 11));
    model_b_ = new LoadedModel(make_model(13, 3, 4, 12));  // distinct shape
    series_a_ = new std::vector<Matrix>();
    series_b_ = new std::vector<Matrix>();
    Rng rng(13);
    for (std::size_t i = 0; i < kSeriesPerModel; ++i) {
      series_a_->push_back(random_series(25, 2, rng));
      series_b_->push_back(random_series(31, 3, rng));
    }
  }
  static void TearDownTestSuite() {
    delete model_a_;
    delete model_b_;
    delete series_a_;
    delete series_b_;
    model_a_ = nullptr;
    model_b_ = nullptr;
    series_a_ = nullptr;
    series_b_ = nullptr;
  }

  static LoadedModel* model_a_;
  static LoadedModel* model_b_;
  static std::vector<Matrix>* series_a_;
  static std::vector<Matrix>* series_b_;
};

LoadedModel* ServerRouting::model_a_ = nullptr;
LoadedModel* ServerRouting::model_b_ = nullptr;
std::vector<Matrix>* ServerRouting::series_a_ = nullptr;
std::vector<Matrix>* ServerRouting::series_b_ = nullptr;

// Concurrent interleaved requests against two registered models return
// bit-identical logits to direct single-threaded LoadedModel::infer() for
// every engine kind, at 1 and 8 workers.
TEST_F(ServerRouting, InterleavedRequestsBitIdenticalToDirectInfer) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  registry.register_model(model_b_->artifact("b"));

  constexpr FloatEngineKind kKinds[] = {
      FloatEngineKind::kAuto, FloatEngineKind::kScalar, FloatEngineKind::kSimd};

  for (std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    InferenceServer server(registry,
                           {.workers = workers, .queue_capacity = 256});
    // Interleave models, series, and engine kinds in one submission wave so
    // concurrent workers route a mixed stream.
    struct Expected {
      const char* id;
      const Matrix* series;
      FloatEngineKind kind;
    };
    std::vector<Expected> requests;
    std::vector<InferFuture> futures;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < kSeriesPerModel; ++i) {
        for (FloatEngineKind kind : kKinds) {
          requests.push_back({"a", &(*series_a_)[i], kind});
          requests.push_back({"b", &(*series_b_)[i], kind});
        }
      }
    }
    futures.reserve(requests.size());
    for (const Expected& r : requests) {
      futures.push_back(server.submit(r.id, *r.series, r.kind));
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const InferResult& result = futures[i].get();
      ASSERT_EQ(result.status, RequestStatus::kOk)
          << "workers=" << workers << " request " << i;
      const LoadedModel& model =
          requests[i].id[0] == 'a' ? *model_a_ : *model_b_;
      const Vector expected = model.infer(*requests[i].series,
                                          requests[i].kind);
      expect_bit_identical(
          expected, result.logits,
          std::string("workers=") + std::to_string(workers) + " model " +
              requests[i].id + " request " + std::to_string(i));
      EXPECT_EQ(result.label,
                static_cast<int>(std::max_element(expected.begin(),
                                                  expected.end()) -
                                 expected.begin()));
      EXPECT_GT(result.latency_us, 0.0);
    }
    const serve::ModelServingStats stats_a = server.stats("a");
    const serve::ModelServingStats stats_b = server.stats("b");
    EXPECT_EQ(stats_a.completed, requests.size() / 2);
    EXPECT_EQ(stats_b.completed, requests.size() / 2);
    EXPECT_EQ(stats_a.errors, 0u);
    EXPECT_EQ(stats_a.latency_us.count,
              std::min<std::size_t>(requests.size() / 2, 512));
  }
}

TEST(NullArtifact, ConstructorsThrowTypedErrorInsteadOfDereferencing) {
  EXPECT_THROW((void)make_engine(ModelArtifactPtr{}), CheckError);
  EXPECT_THROW((void)make_simd_engine(ModelArtifactPtr{}), CheckError);
  EXPECT_THROW((void)make_engine(std::shared_ptr<const QuantizedDfr>{}),
               CheckError);
  const Matrix series(5, 2);
  EXPECT_THROW(
      (void)classify_batch(ModelArtifactPtr{}, std::span<const Matrix>(&series, 1)),
      CheckError);
}

TEST_F(ServerRouting, StatsTrackingIsBoundedAndImmuneToBogusIds) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1,
                                    .queue_capacity = 4,
                                    .latency_window = 16,
                                    .max_tracked_models = 3});
  EXPECT_EQ(server.submit("a", (*series_a_)[0]).get().status,
            RequestStatus::kOk);
  // A flood of distinct bogus ids is served (typed kUnknownModel results)
  // but claims no tracking slots.
  for (int i = 0; i < 50; ++i) {
    const std::string id = "bogus-" + std::to_string(i);
    EXPECT_EQ(server.submit(id, (*series_a_)[0]).get().status,
              RequestStatus::kUnknownModel);
  }
  EXPECT_EQ(server.stats().size(), 1u);
  // Registered-model churn is capped at max_tracked_models: registering and
  // serving more real models than the cap tracks only the first cap ids.
  for (int m = 0; m < 4; ++m) {
    const std::string id = "extra-" + std::to_string(m);
    registry.register_model(model_a_->artifact(id));
    EXPECT_EQ(server.submit(id, (*series_a_)[0]).get().status,
              RequestStatus::kOk);
  }
  EXPECT_EQ(server.stats().size(), 3u);
  // Tracked ids keep counting throughout.
  EXPECT_EQ(server.submit("a", (*series_a_)[0]).get().status,
            RequestStatus::kOk);
  EXPECT_EQ(server.stats("a").completed, 2u);
}

TEST_F(ServerRouting, UnknownModelYieldsTypedError) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 4});
  InferFuture future = server.submit("nope", (*series_a_)[0]);
  const InferResult& result = future.get();
  EXPECT_EQ(result.status, RequestStatus::kUnknownModel);
  EXPECT_EQ(result.label, -1);
  EXPECT_TRUE(result.logits.empty());
  // Unregistered ids never claim a stats slot (they could otherwise starve
  // real models of tracking); the typed result is the client's signal.
  EXPECT_EQ(server.stats("nope").errors, 0u);
  EXPECT_TRUE(server.stats().empty());
}

TEST_F(ServerRouting, MalformedSeriesYieldsTypedErrorNotCrash) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 4});
  const Matrix wrong_channels(5, model_a_->mask.channels() + 1);
  const InferResult& result = server.submit("a", wrong_channels).get();
  EXPECT_EQ(result.status, RequestStatus::kInvalidArgument);
  EXPECT_EQ(server.stats("a").errors, 1u);
}

TEST_F(ServerRouting, SyncClassifyBatchMatchesFreeFunction) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 4});
  const std::span<const Matrix> series(*series_a_);
  for (unsigned threads : {1u, 3u}) {
    EXPECT_EQ(server.classify_batch("a", series, threads),
              classify_batch(*model_a_, series, threads));
  }
  EXPECT_THROW((void)server.classify_batch("nope", series), CheckError);
  EXPECT_EQ(server.stats("a").completed, 2 * series.size());
}

// Per-request quantized routing: RequestOptions with a QuantizedEngineKind
// serves the artifact's calibrated twin, bit-identical to direct quantized
// inference for both kinds, interleaved with float traffic on the same
// worker; a float-only artifact answers quantized requests with the typed
// kInvalidArgument.
TEST_F(ServerRouting, QuantizedRequestsRouteToTheQuantizedTwin) {
  auto quantized = std::make_shared<const QuantizedDfr>(
      *model_a_, QuantizedInferenceConfig{});
  ModelRegistry registry;
  registry.register_model(
      with_quantized(model_a_->artifact("a"), quantized));
  registry.register_model(model_b_->artifact("b"));  // float-only
  InferenceServer server(registry, {.workers = 2, .queue_capacity = 64});

  QuantizedInferenceEngine direct = make_engine(*quantized);
  for (std::size_t i = 0; i < kSeriesPerModel; ++i) {
    const Matrix& series = (*series_a_)[i];
    const Vector expected(direct.infer(series).begin(),
                          direct.infer(series).end());
    for (serve::RequestOptions options :
         {serve::RequestOptions{QuantizedEngineKind::kAuto},
          serve::RequestOptions{QuantizedEngineKind::kScalar},
          serve::RequestOptions{QuantizedEngineKind::kSimd}}) {
      InferFuture quant_future = server.submit("a", series, options);
      InferFuture float_future = server.submit("a", series);  // interleave
      const InferResult& result = quant_future.get();
      ASSERT_EQ(result.status, RequestStatus::kOk);
      expect_bit_identical(expected, result.logits,
                           "quantized request " + std::to_string(i));
      EXPECT_EQ(result.label, direct.classify(series));
      EXPECT_EQ(float_future.get().status, RequestStatus::kOk);
    }
  }
  // Quantized request against a float-only artifact: typed client error.
  const InferResult& no_twin =
      server.submit("b", (*series_b_)[0], QuantizedEngineKind::kAuto).get();
  EXPECT_EQ(no_twin.status, RequestStatus::kInvalidArgument);

  // The sync batch path routes quantized kinds the same way.
  const std::span<const Matrix> series(*series_a_);
  EXPECT_EQ(server.classify_batch("a", series, 2, QuantizedEngineKind::kAuto),
            classify_batch(*quantized, series, 1));
  EXPECT_THROW(
      (void)server.classify_batch("b", series, 1, QuantizedEngineKind::kAuto),
      CheckError);
}

// ---- InferenceServer: eviction hygiene -------------------------------------

// Evicting a model under traffic: in-flight requests finish (kOk on the
// artifact they were routed to, or the typed kUnknownModel once the id is
// gone — never a crash or dangle), and the pool's cached engines for the
// evicted model are reclaimed promptly (the artifact dies once its last
// in-flight holder drains) while traffic for other models keeps serving.
TEST_F(ServerRouting, EvictionUnderTrafficReclaimsWithoutDangling) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("keep"));
  std::weak_ptr<const ModelArtifact> watch;
  {
    ModelArtifactPtr evictee = model_a_->artifact("evictee");
    watch = evictee;
    registry.register_model(std::move(evictee));
  }
  InferenceServer server(registry, {.workers = 2, .queue_capacity = 32});

  // Mixed traffic against both ids while the evictee is registered.
  const Vector expected = model_a_->infer((*series_a_)[0]);
  for (int wave = 0; wave < 4; ++wave) {
    std::vector<InferFuture> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(
          server.submit(i % 2 == 0 ? "keep" : "evictee", (*series_a_)[0]));
    }
    for (InferFuture& future : futures) {
      const InferResult& result = future.get();
      ASSERT_EQ(result.status, RequestStatus::kOk);
      expect_bit_identical(expected, result.logits, "pre-eviction");
    }
  }

  ASSERT_TRUE(registry.evict("evictee"));
  // Requests already admitted may still resolve; new ones get the typed
  // error. Keep "keep" traffic flowing so every worker passes through
  // engine_for and reclaims its cached evictee engines.
  bool expired = false;
  for (int attempt = 0; attempt < 200 && !expired; ++attempt) {
    std::vector<InferFuture> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(server.submit("keep", (*series_a_)[0]));
    }
    EXPECT_EQ(server.submit("evictee", (*series_a_)[0]).get().status,
              RequestStatus::kUnknownModel);
    for (InferFuture& future : futures) {
      ASSERT_EQ(future.get().status, RequestStatus::kOk);
    }
    expired = watch.expired();
  }
  EXPECT_TRUE(expired)
      << "evicted model's engines must be reclaimed under traffic, not "
         "linger until a same-name re-register";
  // Serving the surviving model is unaffected.
  const InferResult& after = server.submit("keep", (*series_a_)[0]).get();
  ASSERT_EQ(after.status, RequestStatus::kOk);
  expect_bit_identical(expected, after.logits, "post-eviction");
}

// A server whose registry evicts after the server was destroyed must not be
// notified (unsubscribe on destruction) — and evictions with no server alive
// are safe.
TEST(ModelRegistry, EvictionListenersUnsubscribeCleanly) {
  ModelRegistry registry;
  const LoadedModel model = make_model(8, 2, 3, 61);
  registry.register_model(model.artifact("m"));
  {
    InferenceServer server(registry, {.workers = 1, .queue_capacity = 4});
    Rng rng(62);
    const Matrix series = random_series(10, 2, rng);
    EXPECT_EQ(server.submit("m", series).get().status, RequestStatus::kOk);
  }  // server destroyed: its subscription must be gone
  EXPECT_TRUE(registry.evict("m"));  // would crash if the listener dangled
  registry.register_model(model.artifact("m2"));
  EXPECT_TRUE(registry.evict("m2"));
}

// ---- InferenceServer: hot swap under traffic -------------------------------

// Re-registering a model while clients hammer the queue: every reply must be
// bit-identical to one of the two versions' direct inference (no torn state),
// and replies for the other model must never cross-route.
TEST_F(ServerRouting, HotSwapMidTrafficNeverCrossRoutes) {
  const LoadedModel swapped_model = make_model(10, 2, 3, 99);  // same shape as a
  const Matrix& probe_a = (*series_a_)[0];
  const Matrix& probe_b = (*series_b_)[0];
  const Vector expect_a_v1 = model_a_->infer(probe_a);
  const Vector expect_a_v2 = swapped_model.infer(probe_a);
  const Vector expect_b = model_b_->infer(probe_b);
  // The two versions must actually disagree for this test to bite.
  ASSERT_NE(expect_a_v1, expect_a_v2);

  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  registry.register_model(model_b_->artifact("b"));
  InferenceServer server(registry, {.workers = 4, .queue_capacity = 64});

  constexpr int kRequestsPerClient = 150;
  std::atomic<int> mismatches{0};
  auto client = [&](const char* id, const Matrix& series,
                    const Vector* allowed1, const Vector* allowed2) {
    for (int i = 0; i < kRequestsPerClient; ++i) {
      InferFuture future = server.submit(id, series);
      const InferResult& result = future.get();
      if (result.status != RequestStatus::kOk) {
        ++mismatches;
        continue;
      }
      const bool matches1 =
          allowed1 != nullptr && result.logits == *allowed1;
      const bool matches2 =
          allowed2 != nullptr && result.logits == *allowed2;
      if (!matches1 && !matches2) ++mismatches;
    }
  };
  std::thread client_a(client, "a", std::cref(probe_a), &expect_a_v1,
                       &expect_a_v2);
  std::thread client_b(client, "b", std::cref(probe_b), &expect_b, nullptr);
  // Swap "a" back and forth while the clients run.
  for (int swap = 0; swap < 40; ++swap) {
    registry.register_model(swap % 2 == 0 ? swapped_model.artifact("a")
                                          : model_a_->artifact("a"));
    std::this_thread::yield();
  }
  client_a.join();
  client_b.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "hot swap produced a cross-routed or torn result";
  EXPECT_EQ(server.stats("a").completed + server.stats("b").completed,
            2u * kRequestsPerClient);
}

// ---- InferenceServer: backpressure and shutdown ----------------------------

TEST_F(ServerRouting, BackpressureRejectsWithTypedError) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 2});

  // Holding every future pins its slot, so regardless of worker speed only
  // `queue_capacity` submissions can be admitted.
  std::vector<InferFuture> futures;
  constexpr std::size_t kSubmissions = 24;
  for (std::size_t i = 0; i < kSubmissions; ++i) {
    futures.push_back(server.submit("a", (*series_a_)[0]));
  }
  std::size_t ok = 0, rejected = 0;
  for (const InferFuture& future : futures) {
    const InferResult& result = future.get();
    if (result.status == RequestStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(result.status, RequestStatus::kQueueFull);
      EXPECT_EQ(result.label, -1);
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(rejected, kSubmissions - 2);
  EXPECT_EQ(server.stats("a").rejected, kSubmissions - 2);

  // Releasing the futures frees the slots: admission works again.
  futures.clear();
  EXPECT_EQ(server.submit("a", (*series_a_)[0]).get().status,
            RequestStatus::kOk);
}

TEST_F(ServerRouting, ShutdownDrainsQueuedRequestsThenRejects) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  auto server = std::make_unique<InferenceServer>(
      registry, ServerConfig{.workers = 2, .queue_capacity = 64});

  std::vector<InferFuture> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(server->submit("a", (*series_a_)[i % kSeriesPerModel]));
  }
  server->shutdown();  // must drain everything already admitted
  EXPECT_FALSE(server->accepting());
  for (InferFuture& future : futures) {
    EXPECT_TRUE(future.ready()) << "shutdown returned before draining";
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
  const InferResult& late = server->submit("a", (*series_a_)[0]).get();
  EXPECT_EQ(late.status, RequestStatus::kShutdown);
  server->shutdown();  // idempotent
  futures.clear();
  server.reset();  // double-shutdown via destructor is fine
}

TEST_F(ServerRouting, AbandonedFuturesRecycleSlots) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 2});
  for (int i = 0; i < 50; ++i) {
    (void)server.submit("a", (*series_a_)[0]);  // future dropped immediately
  }
  // If abandoned slots leaked, capacity would stay exhausted forever; allow
  // the worker a moment to recycle the last in-flight ones.
  bool accepted = false;
  for (int attempt = 0; attempt < 1000 && !accepted; ++attempt) {
    InferFuture future = server.submit("a", (*series_a_)[0]);
    accepted = future.get().status == RequestStatus::kOk;
    if (!accepted) std::this_thread::yield();
  }
  EXPECT_TRUE(accepted) << "abandoned futures leaked their slots";
}

TEST_F(ServerRouting, AbandonedFutureNeverReadsADestroyedSeries) {
  // The documented safety contract: destroying the future and then the
  // series is always safe — a queued request cancels, an executing one
  // finishes inside the future's destructor. ASan (CI's sanitize job) turns
  // any violation into a hard failure here.
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 2, .queue_capacity = 8});
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    Matrix ephemeral = random_series(25, 2, rng);
    {
      InferFuture future = server.submit("a", ephemeral);
    }  // future dropped first...
    ephemeral = Matrix();  // ...then the series storage is released
  }
  SUCCEED();
}

// ---- InferenceServer: steady-state allocation guarantee --------------------

TEST_F(ServerRouting, SubmitPathAllocationFreeInSteadyState) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  registry.register_model(model_b_->artifact("b"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 4});

  // Warm-up: build every (worker, model, kind) engine, size the per-slot
  // logits/id storage, and create the per-model stats entries. Touch every
  // slot by holding capacity futures at least once.
  for (int rep = 0; rep < 8; ++rep) {
    std::vector<InferFuture> wave;
    for (std::size_t i = 0; i < server.queue_capacity(); ++i) {
      const bool a = (rep + i) % 2 == 0;
      wave.push_back(server.submit(a ? "a" : "b",
                                   a ? (*series_a_)[0] : (*series_b_)[0],
                                   i % 2 == 0 ? FloatEngineKind::kAuto
                                              : FloatEngineKind::kScalar));
    }
    for (InferFuture& future : wave) future.wait();
  }

  const std::size_t before = g_allocations.load();
  int sink = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const bool a = rep % 2 == 0;
    InferFuture future =
        server.submit(a ? "a" : "b", a ? (*series_a_)[0] : (*series_b_)[0],
                      rep % 4 < 2 ? FloatEngineKind::kAuto
                                  : FloatEngineKind::kScalar);
    const InferResult& result = future.get();
    sink += result.label;
    sink += static_cast<int>(result.status);
  }
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "steady-state submit -> get must not allocate after warm-up";
  EXPECT_GE(sink, 0);  // keep the loop observable
}

// ---- InferenceServer: micro-batching ---------------------------------------

// Micro-batch knobs are validated at construction with typed errors, like
// queue_capacity: silent clamping would hide a misconfigured deployment.
TEST(ServerConfigValidation, MicroBatchKnobsThrowTypedErrors) {
  ModelRegistry registry;
  // batching enabled without a window: a zero window would degenerate to
  // head-of-queue-only coalescing while claiming to batch.
  EXPECT_THROW(InferenceServer(registry, {.workers = 1,
                                          .queue_capacity = 4,
                                          .max_batch = 4}),
               CheckError);
  // zero lanes is meaningless (1 is the documented "disabled" setting).
  EXPECT_THROW(InferenceServer(registry, {.workers = 1,
                                          .queue_capacity = 4,
                                          .max_batch = 0,
                                          .batch_window_us = 50}),
               CheckError);
  // beyond the batched kernel family's lane bound.
  EXPECT_THROW(
      InferenceServer(registry, {.workers = 1,
                                 .queue_capacity = 4,
                                 .max_batch = simd::kBatchedMaxLanes + 1,
                                 .batch_window_us = 50}),
      CheckError);
  // valid: batching enabled with a window; and disabled with window unset.
  InferenceServer batched(registry, {.workers = 1,
                                     .queue_capacity = 4,
                                     .max_batch = simd::kBatchedMaxLanes,
                                     .batch_window_us = 50});
  InferenceServer unbatched(registry, {.workers = 1, .queue_capacity = 4});
  EXPECT_TRUE(batched.accepting());
  EXPECT_TRUE(unbatched.accepting());
}

// The batched contract end to end: with micro-batching enabled, every reply
// is bit-identical to the unbatched server's reply for the same request —
// for both models, float and quantized kinds, at 1 and 8 workers. (Batched
// lanes run the same per-element kernel operations as the single-series
// engines, so coalescing must be invisible in the results.)
TEST_F(ServerRouting, MicroBatchedResultsBitIdenticalToUnbatched) {
  auto quantized = std::make_shared<const QuantizedDfr>(
      *model_a_, QuantizedInferenceConfig{});
  ModelRegistry registry;
  registry.register_model(with_quantized(model_a_->artifact("a"), quantized));
  registry.register_model(model_b_->artifact("b"));

  struct Request {
    const char* id;
    const Matrix* series;
    serve::RequestOptions options;
  };
  std::vector<Request> requests;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < kSeriesPerModel; ++i) {
      requests.push_back({"a", &(*series_a_)[i],
                          serve::RequestOptions{FloatEngineKind::kAuto}});
      requests.push_back({"a", &(*series_a_)[i],
                          serve::RequestOptions{FloatEngineKind::kScalar}});
      requests.push_back({"a", &(*series_a_)[i],
                          serve::RequestOptions{QuantizedEngineKind::kAuto}});
      requests.push_back({"b", &(*series_b_)[i],
                          serve::RequestOptions{FloatEngineKind::kAuto}});
    }
  }

  // Reference replies from an unbatched server (max_batch = 1 default).
  std::vector<Vector> expected_logits;
  std::vector<int> expected_labels;
  {
    InferenceServer reference(registry, {.workers = 1, .queue_capacity = 256});
    for (const Request& r : requests) {
      const InferResult& result =
          reference.submit(r.id, *r.series, r.options).get();
      ASSERT_EQ(result.status, RequestStatus::kOk);
      expected_logits.push_back(result.logits);
      expected_labels.push_back(result.label);
    }
  }

  for (std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    InferenceServer server(registry, {.workers = workers,
                                      .queue_capacity = 256,
                                      .max_batch = 8,
                                      .batch_window_us = 200});
    // One submission wave so queued neighbors actually coalesce.
    std::vector<InferFuture> futures;
    futures.reserve(requests.size());
    for (const Request& r : requests) {
      futures.push_back(server.submit(r.id, *r.series, r.options));
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const InferResult& result = futures[i].get();
      ASSERT_EQ(result.status, RequestStatus::kOk)
          << "workers=" << workers << " request " << i;
      expect_bit_identical(expected_logits[i], result.logits,
                           "workers=" + std::to_string(workers) +
                               " request " + std::to_string(i));
      EXPECT_EQ(result.label, expected_labels[i]);
    }
  }
}

// A quantized request for a float-only artifact fails with the typed client
// error for EVERY coalesced lane — the whole batch maps to kInvalidArgument,
// not a crash or a partial batch.
TEST_F(ServerRouting, MicroBatchedMissingTwinFailsEveryLaneTyped) {
  ModelRegistry registry;
  registry.register_model(model_b_->artifact("b"));  // float-only
  InferenceServer server(registry, {.workers = 1,
                                    .queue_capacity = 32,
                                    .max_batch = 8,
                                    .batch_window_us = 200});
  std::vector<InferFuture> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        server.submit("b", (*series_b_)[0], QuantizedEngineKind::kAuto));
  }
  for (InferFuture& future : futures) {
    const InferResult& result = future.get();
    EXPECT_EQ(result.status, RequestStatus::kInvalidArgument);
    EXPECT_EQ(result.label, -1);
    EXPECT_TRUE(result.logits.empty());
  }
  // The server keeps serving float traffic on the same model afterwards.
  EXPECT_EQ(server.submit("b", (*series_b_)[0]).get().status,
            RequestStatus::kOk);
}

// Hot-swapping under batched traffic: the whole batch routes to the artifact
// resolved once at dequeue time, so every reply is bit-identical to one of
// the two versions — never torn within a request, never cross-routed.
TEST_F(ServerRouting, HotSwapMidBatchServesTheDequeueTimeArtifact) {
  const LoadedModel swapped_model = make_model(10, 2, 3, 99);  // same shape
  const Matrix& probe_a = (*series_a_)[0];
  const Matrix& probe_b = (*series_b_)[0];
  const Vector expect_a_v1 = model_a_->infer(probe_a);
  const Vector expect_a_v2 = swapped_model.infer(probe_a);
  const Vector expect_b = model_b_->infer(probe_b);
  ASSERT_NE(expect_a_v1, expect_a_v2);

  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  registry.register_model(model_b_->artifact("b"));
  InferenceServer server(registry, {.workers = 2,
                                    .queue_capacity = 64,
                                    .max_batch = 8,
                                    .batch_window_us = 100});

  constexpr int kWaves = 60;
  std::atomic<int> mismatches{0};
  auto client = [&](const char* id, const Matrix& series,
                    const Vector* allowed1, const Vector* allowed2) {
    for (int wave = 0; wave < kWaves; ++wave) {
      // Submit a burst so queued neighbors coalesce mid-swap.
      std::vector<InferFuture> futures;
      for (int i = 0; i < 6; ++i) futures.push_back(server.submit(id, series));
      for (InferFuture& future : futures) {
        const InferResult& result = future.get();
        if (result.status != RequestStatus::kOk) {
          ++mismatches;
          continue;
        }
        const bool matches1 = allowed1 != nullptr && result.logits == *allowed1;
        const bool matches2 = allowed2 != nullptr && result.logits == *allowed2;
        if (!matches1 && !matches2) ++mismatches;
      }
    }
  };
  std::thread client_a(client, "a", std::cref(probe_a), &expect_a_v1,
                       &expect_a_v2);
  std::thread client_b(client, "b", std::cref(probe_b), &expect_b, nullptr);
  for (int swap = 0; swap < 40; ++swap) {
    registry.register_model(swap % 2 == 0 ? swapped_model.artifact("a")
                                          : model_a_->artifact("a"));
    std::this_thread::yield();
  }
  client_a.join();
  client_b.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "a batched hot swap produced a torn or cross-routed result";
}

// Evicting under batched traffic: coalesced requests resolve the registry at
// dequeue time, so each reply is either a full kOk against the artifact (the
// batch dequeued before the evict) or the typed kUnknownModel — and the
// server keeps serving after a re-register.
TEST_F(ServerRouting, EvictionMidBatchFailsLanesTypedAndRecovers) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1,
                                    .queue_capacity = 64,
                                    .max_batch = 8,
                                    .batch_window_us = 200});
  const Vector expected = model_a_->infer((*series_a_)[0]);

  // Queue a burst, then evict while (some of) it is still pending.
  std::vector<InferFuture> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(server.submit("a", (*series_a_)[0]));
  }
  ASSERT_TRUE(registry.evict("a"));
  std::size_t ok = 0, unknown = 0;
  for (InferFuture& future : futures) {
    const InferResult& result = future.get();
    if (result.status == RequestStatus::kOk) {
      expect_bit_identical(expected, result.logits, "pre-eviction batch lane");
      ++ok;
    } else {
      ASSERT_EQ(result.status, RequestStatus::kUnknownModel);
      ++unknown;
    }
  }
  EXPECT_EQ(ok + unknown, 32u);
  EXPECT_EQ(server.submit("a", (*series_a_)[0]).get().status,
            RequestStatus::kUnknownModel);

  registry.register_model(model_a_->artifact("a"));
  const InferResult& revived = server.submit("a", (*series_a_)[0]).get();
  ASSERT_EQ(revived.status, RequestStatus::kOk);
  expect_bit_identical(expected, revived.logits, "post-re-register");
}

// Abandoned futures under batching recycle their slots: dropped-while-queued
// requests are freed during batch collection (never inferred), and a future
// dropped while its lane is in flight blocks until the lane completes — so
// capacity always comes back and no lane reads a dead series.
TEST_F(ServerRouting, AbandonedFuturesRecycleSlotsUnderBatching) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1,
                                    .queue_capacity = 4,
                                    .max_batch = 4,
                                    .batch_window_us = 100});
  for (int i = 0; i < 50; ++i) {
    (void)server.submit("a", (*series_a_)[0]);  // dropped immediately
  }
  bool accepted = false;
  for (int attempt = 0; attempt < 1000 && !accepted; ++attempt) {
    InferFuture future = server.submit("a", (*series_a_)[0]);
    accepted = future.get().status == RequestStatus::kOk;
    if (!accepted) std::this_thread::yield();
  }
  EXPECT_TRUE(accepted) << "abandoned futures leaked slots under batching";

  // The destroy-future-then-series pattern stays safe with lanes in flight
  // (ASan in CI turns any violation into a hard failure).
  Rng rng(78);
  for (int i = 0; i < 200; ++i) {
    Matrix ephemeral = random_series(25, 2, rng);
    {
      InferFuture future = server.submit("a", ephemeral);
    }
    ephemeral = Matrix();
  }
  SUCCEED();
}

// Shutdown with batching enabled drains every admitted request: batch
// windows cut short, claimed lanes complete, nothing hangs or is dropped.
TEST_F(ServerRouting, ShutdownDrainsBatchedRequests) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  auto server = std::make_unique<InferenceServer>(
      registry, ServerConfig{.workers = 2,
                             .queue_capacity = 64,
                             .max_batch = 8,
                             .batch_window_us = 500});
  std::vector<InferFuture> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(server->submit("a", (*series_a_)[i % kSeriesPerModel]));
  }
  server->shutdown();
  for (InferFuture& future : futures) {
    EXPECT_TRUE(future.ready()) << "shutdown returned before draining";
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
  EXPECT_EQ(server->submit("a", (*series_a_)[0]).get().status,
            RequestStatus::kShutdown);
}

// ---- SLO-aware admission (deadline + priority) ------------------------------

// A request whose deadline expired while queued resolves typed
// kDeadlineExceeded without executing — no logits, no label, counted as
// shed (never as an error) — at 1 and 8 workers. A first wave without
// deadlines keeps every worker busy so the deadline wave is guaranteed to
// out-age its 1 us budget while queued.
TEST_F(ServerRouting, ExpiredDeadlineShedsTypedWithoutExecuting) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    ModelRegistry registry;
    registry.register_model(model_a_->artifact("a"));
    InferenceServer server(registry,
                           {.workers = workers, .queue_capacity = 128});
    serve::RequestOptions late;
    late.deadline_us = 1;
    std::vector<InferFuture> normal, doomed;
    for (int i = 0; i < 24; ++i) {
      normal.push_back(server.submit("a", (*series_a_)[i % kSeriesPerModel]));
    }
    for (int i = 0; i < 16; ++i) {
      doomed.push_back(
          server.submit("a", (*series_a_)[i % kSeriesPerModel], late));
    }
    for (InferFuture& future : normal) {
      EXPECT_EQ(future.get().status, RequestStatus::kOk)
          << "workers=" << workers;
    }
    for (InferFuture& future : doomed) {
      const InferResult& result = future.get();
      EXPECT_EQ(result.status, RequestStatus::kDeadlineExceeded)
          << "workers=" << workers;
      EXPECT_EQ(result.label, -1);
      EXPECT_TRUE(result.logits.empty());
    }
    const serve::ModelServingStats stats = server.stats("a");
    EXPECT_EQ(stats.completed, normal.size()) << "workers=" << workers;
    EXPECT_EQ(stats.shed, doomed.size()) << "workers=" << workers;
    EXPECT_EQ(stats.errors, 0u) << "workers=" << workers;
  }
}

// Same guarantee through the micro-batching dequeue path: expired lanes are
// shed before the batch touches an engine.
TEST_F(ServerRouting, ExpiredDeadlineShedsUnderMicroBatching) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1,
                                    .queue_capacity = 64,
                                    .max_batch = 8,
                                    .batch_window_us = 200});
  serve::RequestOptions late;
  late.deadline_us = 1;
  std::vector<InferFuture> normal, doomed;
  for (int i = 0; i < 8; ++i) {
    normal.push_back(server.submit("a", (*series_a_)[i % kSeriesPerModel]));
  }
  for (int i = 0; i < 16; ++i) {
    doomed.push_back(
        server.submit("a", (*series_a_)[i % kSeriesPerModel], late));
  }
  for (InferFuture& future : normal) {
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
  for (InferFuture& future : doomed) {
    EXPECT_EQ(future.get().status, RequestStatus::kDeadlineExceeded);
  }
  EXPECT_EQ(server.stats("a").shed, doomed.size());
}

// A generous deadline never sheds: the request completes normally and the
// deadline leaves no trace in the stats.
TEST_F(ServerRouting, GenerousDeadlineCompletesNormally) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 8});
  serve::RequestOptions options;
  options.deadline_us = 60'000'000;  // one minute
  options.priority = 3;
  const InferResult& result =
      server.submit("a", (*series_a_)[0], options).get();
  EXPECT_EQ(result.status, RequestStatus::kOk);
  EXPECT_EQ(server.stats("a").shed, 0u);
  EXPECT_EQ(server.stats("a").completed, 1u);
}

// Higher-priority requests dequeue first. One worker is plugged with a
// running request; of the requests queued behind it, the high-priority
// straggler (submitted LAST) must complete before every low-priority one —
// observed through per-request latency: completions are serialized on one
// worker, so dequeue order is latency order for requests submitted together.
TEST_F(ServerRouting, HigherPriorityDequeuesFirst) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 32});
  // Long series = long service time, so queue-order effects dominate the
  // microseconds of submission skew.
  Rng rng(91);
  const Matrix long_series = random_series(400, 2, rng);
  InferFuture plug = server.submit("a", long_series);
  std::vector<InferFuture> low;
  for (int i = 0; i < 4; ++i) {
    low.push_back(server.submit("a", long_series));  // priority 0 (default)
  }
  serve::RequestOptions urgent;
  urgent.priority = 5;
  InferFuture high = server.submit("a", long_series, urgent);
  ASSERT_EQ(plug.get().status, RequestStatus::kOk);
  ASSERT_EQ(high.get().status, RequestStatus::kOk);
  const double high_latency = high.get().latency_us;
  for (InferFuture& future : low) {
    ASSERT_EQ(future.get().status, RequestStatus::kOk);
    EXPECT_GT(future.get().latency_us, high_latency)
        << "a default-priority request dequeued before the priority-5 one";
  }
}

// Stats slots dropped by the max_tracked_models cap are surfaced through
// dropped_stats() instead of vanishing silently.
TEST_F(ServerRouting, DroppedStatsCounterSurfacesCapExhaustion) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1,
                                    .queue_capacity = 4,
                                    .max_tracked_models = 2});
  EXPECT_EQ(server.submit("a", (*series_a_)[0]).get().status,
            RequestStatus::kOk);
  EXPECT_EQ(server.dropped_stats(), 0u);
  // Two more registered models: the second one exceeds the cap, so each of
  // its outcomes increments the dropped counter.
  registry.register_model(model_a_->artifact("b"));
  registry.register_model(model_a_->artifact("c"));
  EXPECT_EQ(server.submit("b", (*series_a_)[0]).get().status,
            RequestStatus::kOk);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.submit("c", (*series_a_)[0]).get().status,
              RequestStatus::kOk);
  }
  EXPECT_EQ(server.stats().size(), 2u);
  EXPECT_EQ(server.dropped_stats(), 3u);
  // Unregistered ids never count as dropped slots — they are not tracked by
  // design, not lost to the cap.
  EXPECT_EQ(server.submit("bogus", (*series_a_)[0]).get().status,
            RequestStatus::kUnknownModel);
  EXPECT_EQ(server.dropped_stats(), 3u);
}

// export_stats emits one scrapeable `name{labels} value` line per counter,
// including the shed outcome and the dropped-stats total.
TEST_F(ServerRouting, ExportStatsScrapeableFormat) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 16});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.submit("a", (*series_a_)[0]).get().status,
              RequestStatus::kOk);
  }
  serve::RequestOptions late;
  late.deadline_us = 1;
  InferFuture plug = server.submit("a", (*series_a_)[0]);
  InferFuture doomed = server.submit("a", (*series_a_)[1], late);
  (void)plug.get();
  EXPECT_EQ(doomed.get().status, RequestStatus::kDeadlineExceeded);

  std::ostringstream os;
  server.export_stats(os);
  const std::string text = os.str();
  EXPECT_NE(
      text.find("dfr_requests_total{model=\"a\",outcome=\"completed\"} 4"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("dfr_requests_total{model=\"a\",outcome=\"shed\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dfr_request_latency_us{model=\"a\",quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dfr_stats_dropped_total 0"), std::string::npos) << text;
}

// ---- queue-position-aware shedding -----------------------------------------

// Submit-side predictive shed: once the service-time EWMA is trained and a
// backlog is queued, a request whose deadline cannot possibly be met is
// rejected typed AT submit() — the returned future is ready immediately,
// before any worker could have touched it (the workers are busy executing,
// so nothing else can resolve it in that window). The drop counts into the
// same per-model `shed` stat as the other shed points.
TEST_F(ServerRouting, DoomedRequestShedsAtSubmit) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 64});
  // Train the EWMA: completions are what teach the server its service time.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(server.submit("a", (*series_a_)[i % kSeriesPerModel])
                  .get()
                  .status,
              RequestStatus::kOk);
  }
  // Pile up a deadline-free backlog the prediction must see ahead of the
  // doomed request.
  std::vector<InferFuture> backlog;
  for (int i = 0; i < 32; ++i) {
    backlog.push_back(server.submit("a", (*series_a_)[i % kSeriesPerModel]));
  }
  serve::RequestOptions impossible;
  impossible.deadline_us = 1;  // 32 queued inferences will never fit in 1 us
  InferFuture doomed = server.submit("a", (*series_a_)[0], impossible);
  EXPECT_TRUE(doomed.ready()) << "submit-shed must resolve synchronously";
  const InferResult& result = doomed.get();
  EXPECT_EQ(result.status, RequestStatus::kDeadlineExceeded);
  EXPECT_EQ(result.label, -1);
  EXPECT_TRUE(result.logits.empty());
  for (InferFuture& future : backlog) {
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
  EXPECT_EQ(server.stats("a").shed, 1u);
  EXPECT_EQ(server.stats("a").completed, 4u + backlog.size());
}

// The predictor is conservative by construction: a COLD server (no
// completions, EWMA untrained) admits even a hopeless deadline instead of
// guessing — the future is NOT instantly resolved; the request is then
// claimed and shed by the queue sweep without ever executing.
TEST_F(ServerRouting, ColdServerNeverSubmitSheds) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 64});
  // A long plug series keeps the worker inside one inference (no sweep
  // point) for the whole admission window below, so ready() observations
  // are race-free even under scheduler preemption.
  Rng rng(91);
  const Matrix plug = random_series(400, 2, rng);
  std::vector<InferFuture> backlog;
  backlog.push_back(server.submit("a", plug));
  for (int i = 0; i < 8; ++i) {
    backlog.push_back(server.submit("a", (*series_a_)[i % kSeriesPerModel]));
  }
  serve::RequestOptions impossible;
  impossible.deadline_us = 1;
  InferFuture doomed = server.submit("a", (*series_a_)[0], impossible);
  EXPECT_FALSE(doomed.ready()) << "cold EWMA must not predict";
  EXPECT_EQ(doomed.get().status, RequestStatus::kDeadlineExceeded);
  for (InferFuture& future : backlog) {
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
}

// shed_on_submit = false disables the predictor outright: the same trained
// EWMA + backlog + hopeless deadline is admitted (not instantly resolved)
// and still resolves typed through the queue sweep / dequeue shed — an
// admitted request always resolves.
TEST_F(ServerRouting, SubmitShedCanBeDisabled) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(
      registry,
      {.workers = 1, .queue_capacity = 64, .shed_on_submit = false});
  for (int i = 0; i < 4; ++i) {
    (void)server.submit("a", (*series_a_)[0]).get();
  }
  // Long plug: the worker sits inside one inference (no sweep point) while
  // the admission below is observed, so ready() cannot race a queue sweep.
  Rng rng(92);
  const Matrix plug = random_series(400, 2, rng);
  std::vector<InferFuture> backlog;
  backlog.push_back(server.submit("a", plug));
  for (int i = 0; i < 32; ++i) {
    backlog.push_back(server.submit("a", (*series_a_)[i % kSeriesPerModel]));
  }
  serve::RequestOptions impossible;
  impossible.deadline_us = 1;
  InferFuture doomed = server.submit("a", (*series_a_)[0], impossible);
  EXPECT_FALSE(doomed.ready()) << "predictor must be off";
  EXPECT_EQ(doomed.get().status, RequestStatus::kDeadlineExceeded);
  for (InferFuture& future : backlog) {
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
}

// While-queued shedding: an expired request is dropped by the worker's
// queue sweep long before its own turn at the dequeue. The doomed request
// carries the LOWEST priority, so dequeue order would only reach it after
// the entire high-priority backlog — yet it resolves shed while most of
// that backlog is still queued.
TEST_F(ServerRouting, QueueSweepShedsExpiredRequestsBeforeTheirTurn) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(
      registry,
      {.workers = 1, .queue_capacity = 64, .shed_on_submit = false});
  serve::RequestOptions high;
  high.priority = 10;
  std::vector<InferFuture> backlog;
  for (int i = 0; i < 24; ++i) {
    backlog.push_back(
        server.submit("a", (*series_a_)[i % kSeriesPerModel], high));
  }
  serve::RequestOptions doomed_options;
  doomed_options.priority = -10;  // dequeue would reach it dead last
  doomed_options.deadline_us = 1;
  InferFuture doomed = server.submit("a", (*series_a_)[0], doomed_options);

  // After the 8th backlog completion, at least one sweep has run (a worker
  // sweeps every time it comes back for the next request) — the doomed
  // request must already be shed even though 16 higher-priority requests
  // are still ahead of it in dequeue order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(backlog[static_cast<std::size_t>(i)].get().status,
              RequestStatus::kOk);
  }
  EXPECT_TRUE(doomed.ready())
      << "expired request waited for its dequeue turn instead of sweeping";
  EXPECT_EQ(doomed.get().status, RequestStatus::kDeadlineExceeded);
  for (InferFuture& future : backlog) {
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
  EXPECT_EQ(server.stats("a").shed, 1u);
}

// Deadline-free and generously-budgeted traffic is never predicted against,
// no matter how trained the EWMA or how deep the backlog.
TEST_F(ServerRouting, PredictorNeverTouchesHealthyTraffic) {
  ModelRegistry registry;
  registry.register_model(model_a_->artifact("a"));
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 128});
  for (int i = 0; i < 4; ++i) {
    (void)server.submit("a", (*series_a_)[0]).get();
  }
  serve::RequestOptions generous;
  generous.deadline_us = 60'000'000;
  std::vector<InferFuture> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(
        i % 2 == 0
            ? server.submit("a", (*series_a_)[i % kSeriesPerModel])
            : server.submit("a", (*series_a_)[i % kSeriesPerModel], generous));
  }
  for (InferFuture& future : futures) {
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
  EXPECT_EQ(server.stats("a").shed, 0u);
}

}  // namespace
}  // namespace dfr
