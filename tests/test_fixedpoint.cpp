// Unit tests for the fixed-point format and quantized DFR inference.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "data/preprocess.hpp"
#include "data/synth.hpp"
#include "dfr/model_io.hpp"
#include "dfr/trainer.hpp"
#include "fixedpoint/quantized_dfr.hpp"

namespace dfr {
namespace {

TEST(FixedPointFormat, ResolutionAndRange) {
  const FixedPointFormat q4_11(4, 11);
  EXPECT_EQ(q4_11.word_length(), 16);
  EXPECT_DOUBLE_EQ(q4_11.resolution(), std::ldexp(1.0, -11));
  EXPECT_DOUBLE_EQ(q4_11.max_value(), 16.0 - std::ldexp(1.0, -11));
  EXPECT_EQ(q4_11.to_string(), "Q4.11 (16b)");
}

TEST(FixedPointFormat, QuantizeRoundsToNearest) {
  const FixedPointFormat q(2, 2);  // resolution 0.25
  EXPECT_DOUBLE_EQ(q.quantize(0.3), 0.25);
  EXPECT_DOUBLE_EQ(q.quantize(0.38), 0.5);
  EXPECT_DOUBLE_EQ(q.quantize(-0.3), -0.25);
  EXPECT_DOUBLE_EQ(q.quantize(0.0), 0.0);
}

TEST(FixedPointFormat, SaturatesAtRangeLimits) {
  const FixedPointFormat q(2, 2);  // max 3.75, min -4.0
  EXPECT_DOUBLE_EQ(q.quantize(100.0), 3.75);
  EXPECT_DOUBLE_EQ(q.quantize(-100.0), -4.0);
}

TEST(FixedPointFormat, RepresentableValuesAreFixedPoints) {
  const FixedPointFormat q(3, 8);
  for (double v : {0.5, -1.25, 3.9921875}) {
    EXPECT_DOUBLE_EQ(q.quantize(v), v);  // exactly representable
    EXPECT_DOUBLE_EQ(q.quantize(q.quantize(v)), q.quantize(v));  // idempotent
  }
}

TEST(FixedPointFormat, NanMapsToZero) {
  const FixedPointFormat q(3, 8);
  EXPECT_DOUBLE_EQ(q.quantize(std::nan("")), 0.0);
}

TEST(FixedPointFormat, InvalidFormatsThrow) {
  EXPECT_THROW(FixedPointFormat(0, 0), CheckError);
  EXPECT_THROW(FixedPointFormat(40, 40), CheckError);
}

class QuantizedInference : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pair_ = new DatasetPair(generate_toy_task(3, 2, 40, 12, 8, 0.5, 42));
    standardize_pair(*pair_);
    TrainerConfig config;
    config.nodes = 12;
    model_ = new TrainResult(Trainer(config).fit(pair_->train));
    // Per-process name: ctest -j runs each discovered test as its own
    // process, and every process re-runs this suite setup.
    const auto path = (std::filesystem::temp_directory_path() /
                       ("dfr_quant_model." + std::to_string(::getpid()) +
                        ".dfrm"))
                          .string();
    save_model(*model_, path);
    loaded_ = new LoadedModel(load_model(path));
    std::remove(path.c_str());
  }
  static void TearDownTestSuite() {
    delete pair_;
    delete model_;
    delete loaded_;
    pair_ = nullptr;
    model_ = nullptr;
    loaded_ = nullptr;
  }
  static DatasetPair* pair_;
  static TrainResult* model_;
  static LoadedModel* loaded_;
};

DatasetPair* QuantizedInference::pair_ = nullptr;
TrainResult* QuantizedInference::model_ = nullptr;
LoadedModel* QuantizedInference::loaded_ = nullptr;

TEST_F(QuantizedInference, WideFormatMatchesFloatAccuracy) {
  QuantizedInferenceConfig config{FixedPointFormat(8, 20),
                                  FixedPointFormat(8, 20),
                                  FixedPointFormat(8, 20)};
  QuantizedDfr qdfr(*loaded_, config);
  qdfr.calibrate(pair_->train);
  const double float_acc = evaluate_accuracy(*model_, pair_->test);
  const double quant_acc = quantized_accuracy(qdfr, pair_->test);
  EXPECT_NEAR(quant_acc, float_acc, 0.05);
}

TEST_F(QuantizedInference, NarrowFormatDegradesGracefully) {
  QuantizedInferenceConfig wide{FixedPointFormat(8, 20), FixedPointFormat(8, 20),
                                FixedPointFormat(8, 20)};
  QuantizedInferenceConfig narrow{FixedPointFormat(1, 3), FixedPointFormat(1, 3),
                                  FixedPointFormat(1, 3)};
  QuantizedDfr wide_dfr(*loaded_, wide);
  wide_dfr.calibrate(pair_->train);
  QuantizedDfr narrow_dfr(*loaded_, narrow);
  narrow_dfr.calibrate(pair_->train);
  const double wide_acc = quantized_accuracy(wide_dfr, pair_->test);
  const double narrow_acc = quantized_accuracy(narrow_dfr, pair_->test);
  EXPECT_LE(narrow_acc, wide_acc + 1e-12);
}

TEST_F(QuantizedInference, FeaturesAreQuantizedToFormatGrid) {
  QuantizedInferenceConfig config{FixedPointFormat(4, 6), FixedPointFormat(4, 6),
                                  FixedPointFormat(4, 6)};
  QuantizedDfr qdfr(*loaded_, config);
  qdfr.calibrate(pair_->train);
  const Vector r = qdfr.features(pair_->test[0].series);
  const double res = config.feature_format.resolution();
  for (double v : r) {
    const double multiple = v / res;
    EXPECT_NEAR(multiple, std::nearbyint(multiple), 1e-9);
  }
}

TEST_F(QuantizedInference, CalibrationChoosesPowerOfTwoDownScales) {
  QuantizedInferenceConfig config{FixedPointFormat(2, 9), FixedPointFormat(2, 9),
                                  FixedPointFormat(2, 9)};
  QuantizedDfr qdfr(*loaded_, config);
  qdfr.calibrate(pair_->train);
  for (double s : {qdfr.scales().state, qdfr.scales().feature,
                   qdfr.scales().weight}) {
    EXPECT_GE(s, 1.0);
    const double log2s = std::log2(s);
    EXPECT_NEAR(log2s, std::round(log2s), 1e-12);  // power of two
  }
}

TEST_F(QuantizedInference, CalibrationRescuesNarrowIntegerRange) {
  // With only 1 integer bit, uncalibrated inference saturates; calibration
  // must recover a clearly-above-chance accuracy.
  QuantizedInferenceConfig config{FixedPointFormat(1, 12),
                                  FixedPointFormat(1, 12),
                                  FixedPointFormat(1, 12)};
  QuantizedDfr uncalibrated(*loaded_, config);
  QuantizedDfr calibrated(*loaded_, config);
  calibrated.calibrate(pair_->train);
  const double cal_acc = quantized_accuracy(calibrated, pair_->test);
  EXPECT_GE(cal_acc, quantized_accuracy(uncalibrated, pair_->test) - 1e-12);
  EXPECT_GT(cal_acc, 0.6);
}

// ---- model serialization ------------------------------------------------

TEST_F(QuantizedInference, SavedModelReproducesPredictions) {
  for (std::size_t i = 0; i < 5; ++i) {
    const Matrix& series = pair_->test[i].series;
    const ModularReservoir reservoir(model_->mask.nodes(), model_->nonlinearity);
    const FeatureMatrix fm = compute_features(
        reservoir, model_->params, model_->mask,
        pair_->test.subset({i}), RepresentationKind::kDprr);
    EXPECT_EQ(loaded_->classify(series), model_->readout.predict(fm.features.row(0)));
  }
}

TEST_F(QuantizedInference, LoadedModelFieldsMatch) {
  EXPECT_DOUBLE_EQ(loaded_->params.a, model_->params.a);
  EXPECT_DOUBLE_EQ(loaded_->params.b, model_->params.b);
  EXPECT_DOUBLE_EQ(loaded_->chosen_beta, model_->chosen_beta);
  EXPECT_TRUE(loaded_->mask.weights() == model_->mask.weights());
  EXPECT_TRUE(loaded_->readout.weights() == model_->readout.weights());
}

TEST(ModelIo, RejectsGarbageFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "dfr_bad_model.dfrm").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_THROW(load_model(path), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dfr
