// Unit tests for optimizers and learning-rate schedules.
#include <gtest/gtest.h>

#include <cmath>
#include "linalg/matrix.hpp"

#include "opt/optimizer.hpp"
#include "opt/schedule.hpp"

namespace dfr {
namespace {

TEST(Schedule, PaperReservoirScheduleValues) {
  const auto schedule = paper_reservoir_schedule();
  EXPECT_DOUBLE_EQ(schedule->lr_at(0), 1.0);
  EXPECT_DOUBLE_EQ(schedule->lr_at(4), 1.0);
  EXPECT_DOUBLE_EQ(schedule->lr_at(5), 0.1);
  EXPECT_DOUBLE_EQ(schedule->lr_at(9), 0.1);
  EXPECT_DOUBLE_EQ(schedule->lr_at(10), 0.01);
  EXPECT_DOUBLE_EQ(schedule->lr_at(15), 1e-3);
  EXPECT_DOUBLE_EQ(schedule->lr_at(20), 1e-4);
  EXPECT_DOUBLE_EQ(schedule->lr_at(24), 1e-4);
}

TEST(Schedule, PaperOutputScheduleValues) {
  const auto schedule = paper_output_schedule();
  EXPECT_DOUBLE_EQ(schedule->lr_at(9), 1.0);
  EXPECT_DOUBLE_EQ(schedule->lr_at(10), 0.1);
  EXPECT_DOUBLE_EQ(schedule->lr_at(15), 0.01);
  EXPECT_DOUBLE_EQ(schedule->lr_at(20), 1e-3);
}

TEST(Schedule, StepHandlesUnsortedMilestones) {
  const StepSchedule s(2.0, {15, 5, 10}, 0.5);
  EXPECT_DOUBLE_EQ(s.lr_at(0), 2.0);
  EXPECT_DOUBLE_EQ(s.lr_at(7), 1.0);
  EXPECT_DOUBLE_EQ(s.lr_at(12), 0.5);
  EXPECT_DOUBLE_EQ(s.lr_at(20), 0.25);
}

TEST(Schedule, ExponentialDecay) {
  const ExponentialSchedule s(1.0, 0.9);
  EXPECT_DOUBLE_EQ(s.lr_at(0), 1.0);
  EXPECT_NEAR(s.lr_at(10), std::pow(0.9, 10), 1e-15);
}

TEST(Schedule, CosineEndpoints) {
  const CosineSchedule s(1.0, 0.1, 20);
  EXPECT_DOUBLE_EQ(s.lr_at(0), 1.0);
  EXPECT_NEAR(s.lr_at(20), 0.1, 1e-12);
  EXPECT_NEAR(s.lr_at(10), 0.55, 1e-12);  // halfway
  EXPECT_NEAR(s.lr_at(100), 0.1, 1e-12);  // clamped past the horizon
}

TEST(Optimizer, SgdStepIsExactlyLrTimesGrad) {
  Optimizer opt({OptimizerKind::kSgd});
  Vector params = {1.0, -2.0};
  const Vector grads = {0.5, -0.25};
  opt.step(params, grads, 0.1);
  EXPECT_DOUBLE_EQ(params[0], 0.95);
  EXPECT_DOUBLE_EQ(params[1], -1.975);
}

TEST(Optimizer, MomentumAccumulatesVelocity) {
  OptimizerConfig config{OptimizerKind::kMomentum};
  config.momentum = 0.5;
  Optimizer opt(config);
  Vector params = {0.0};
  const Vector grads = {1.0};
  opt.step(params, grads, 1.0);  // v = -1, p = -1
  EXPECT_DOUBLE_EQ(params[0], -1.0);
  opt.step(params, grads, 1.0);  // v = -1.5, p = -2.5
  EXPECT_DOUBLE_EQ(params[0], -2.5);
}

TEST(Optimizer, AdaGradShrinksEffectiveStep) {
  Optimizer opt({OptimizerKind::kAdaGrad});
  Vector params = {0.0};
  const Vector grads = {2.0};
  opt.step(params, grads, 1.0);
  const double first_step = -params[0];
  const double before = params[0];
  opt.step(params, grads, 1.0);
  const double second_step = before - params[0];
  EXPECT_GT(first_step, second_step);
}

TEST(Optimizer, AdamFirstStepIsApproximatelyLr) {
  // With bias correction, the first Adam step is ~lr regardless of gradient
  // magnitude.
  Optimizer opt({OptimizerKind::kAdam});
  for (double g : {0.001, 1.0, 1000.0}) {
    opt.reset();
    Vector params = {0.0};
    const Vector grads = {g};
    opt.step(params, grads, 0.01);
    EXPECT_NEAR(params[0], -0.01, 1e-4) << "grad " << g;
  }
}

TEST(Optimizer, ConvergesOnQuadraticBowl) {
  // f(x) = 0.5 x^2 (gradient = x); all optimizers must reach the optimum.
  for (auto kind : {OptimizerKind::kSgd, OptimizerKind::kMomentum,
                    OptimizerKind::kNesterov, OptimizerKind::kAdaGrad,
                    OptimizerKind::kAdam}) {
    Optimizer opt({kind});
    Vector x = {5.0};
    const double lr = (kind == OptimizerKind::kAdaGrad) ? 2.0 : 0.1;
    for (int i = 0; i < 500; ++i) {
      const Vector grad = {x[0]};
      opt.step(x, grad, lr);
    }
    EXPECT_NEAR(x[0], 0.0, 0.05) << optimizer_kind_name(kind);
  }
}

TEST(Optimizer, SizeMismatchThrows) {
  Optimizer opt({OptimizerKind::kSgd});
  Vector params = {1.0, 2.0};
  const Vector grads = {1.0};
  EXPECT_THROW(opt.step(params, grads, 0.1), CheckError);
}

TEST(Optimizer, ParseRoundTrip) {
  for (auto kind : {OptimizerKind::kSgd, OptimizerKind::kMomentum,
                    OptimizerKind::kNesterov, OptimizerKind::kAdaGrad,
                    OptimizerKind::kAdam}) {
    EXPECT_EQ(parse_optimizer_kind(optimizer_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_optimizer_kind("bogus"), CheckError);
}

}  // namespace
}  // namespace dfr
