// DFR_CHECK misuse coverage for the reservoir forward/backward API: every
// guarded precondition must throw CheckError (never UB or silent corruption),
// and a well-formed call immediately after a failed one must still work.
#include <gtest/gtest.h>

#include <vector>

#include "dfr/backprop.hpp"
#include "dfr/reservoir.hpp"
#include "util/check.hpp"

namespace dfr {
namespace {

ModularReservoir tiny_reservoir() { return ModularReservoir(4, Nonlinearity{}); }

TEST(CheckError, ZeroNodeReservoirThrows) {
  EXPECT_THROW(ModularReservoir(0, Nonlinearity{}), CheckError);
}

TEST(CheckError, StepRejectsAliasedSpans) {
  const ModularReservoir reservoir = tiny_reservoir();
  const DfrParams params{0.1, 0.1};
  std::vector<double> j(4, 0.5);
  std::vector<double> x(4, 0.0);
  // In-place update would read x(k-1) slots already overwritten by x(k).
  EXPECT_THROW(reservoir.step(params, j, x, x), CheckError);
}

TEST(CheckError, StepRejectsWrongSpanSizes) {
  const ModularReservoir reservoir = tiny_reservoir();
  const DfrParams params{0.1, 0.1};
  std::vector<double> good(4, 0.0);
  std::vector<double> short_row(3, 0.0);
  std::vector<double> out(4, 0.0);
  EXPECT_THROW(reservoir.step(params, short_row, good, out), CheckError);
  EXPECT_THROW(reservoir.step(params, good, short_row, out), CheckError);
  std::vector<double> short_out(3, 0.0);
  EXPECT_THROW(reservoir.step(params, good, good, short_out), CheckError);
}

TEST(CheckError, RunRejectsWrongMaskedInputWidth) {
  const ModularReservoir reservoir = tiny_reservoir();
  const Matrix j_wrong(10, 3);  // reservoir has 4 nodes
  EXPECT_THROW(reservoir.run(j_wrong, DfrParams{0.1, 0.1}), CheckError);
}

TEST(CheckError, BackpropRejectsWrongRowAndWindowShapes) {
  const ModularReservoir reservoir = tiny_reservoir();
  const DfrParams params{0.1, 0.1};
  const std::size_t nx = reservoir.nodes();
  const std::size_t m = 5;
  const Matrix good_states(m + 1, nx);
  const Matrix good_j(m, nx);
  const std::vector<double> good_dr(dprr_dim(nx), 0.0);

  // states must hold exactly one more row than j.
  const Matrix bad_states(m, nx);
  EXPECT_THROW(backprop_through_dprr(reservoir, params, bad_states, good_j,
                                     good_dr, 1),
               CheckError);
  // node-count mismatch between the buffers and the reservoir.
  const Matrix bad_j(m, nx + 1);
  EXPECT_THROW(backprop_through_dprr(reservoir, params, good_states, bad_j,
                                     good_dr, 1),
               CheckError);
  // dr must have DPRR length Nx*(Nx+1).
  const std::vector<double> bad_dr(nx, 0.0);
  EXPECT_THROW(backprop_through_dprr(reservoir, params, good_states, good_j,
                                     bad_dr, 1),
               CheckError);
  // window outside [1, m].
  EXPECT_THROW(backprop_through_dprr(reservoir, params, good_states, good_j,
                                     good_dr, 0),
               CheckError);
  EXPECT_THROW(backprop_through_dprr(reservoir, params, good_states, good_j,
                                     good_dr, m + 1),
               CheckError);
}

TEST(CheckError, ApiStaysUsableAfterAFailedCall) {
  const ModularReservoir reservoir = tiny_reservoir();
  const DfrParams params{0.1, 0.1};
  std::vector<double> j(4, 0.5);
  std::vector<double> x(4, 0.0);
  EXPECT_THROW(reservoir.step(params, j, x, x), CheckError);
  std::vector<double> out(4, 0.0);
  EXPECT_NO_THROW(reservoir.step(params, j, x, out));
  EXPECT_NE(out[0], 0.0);  // the step actually ran
}

TEST(CheckError, MessageNamesTheFailingExpression) {
  try {
    ModularReservoir(0, Nonlinearity{});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DFR_CHECK failed"), std::string::npos);
    EXPECT_NE(what.find("nodes_ > 0"), std::string::npos);
  }
}

}  // namespace
}  // namespace dfr
