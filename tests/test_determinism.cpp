// Determinism regression suite: every sweep-shaped stage that runs on the
// shared thread pool must produce bit-identical results for any thread
// count. These tests pin the contract at threads=8 vs threads=1 — the same
// best candidate out of grid search, the same feature matrix, the same
// multi-start winner.
#include <gtest/gtest.h>

#include "data/preprocess.hpp"
#include "data/synth.hpp"
#include "dfr/features.hpp"
#include "dfr/grid_search.hpp"
#include "dfr/trainer.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

DatasetPair easy_task(std::uint64_t seed) {
  DatasetPair pair = generate_toy_task(/*num_classes=*/3, /*channels=*/2,
                                       /*length=*/40, /*train_per_class=*/12,
                                       /*test_per_class=*/8,
                                       /*difficulty=*/0.5, seed);
  standardize_pair(pair);
  return pair;
}

TEST(Determinism, GridSearchEightThreadsMatchesOneBitExact) {
  const DatasetPair pair = easy_task(101);
  GridSearchConfig serial;
  serial.nodes = 12;
  serial.threads = 1;
  GridSearchConfig parallel = serial;
  parallel.threads = 8;

  const GridLevelResult a = run_grid_level(serial, pair.train, pair.test, 4);
  const GridLevelResult b = run_grid_level(parallel, pair.train, pair.test, 4);

  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    const GridCandidate& ca = a.candidates[i];
    const GridCandidate& cb = b.candidates[i];
    EXPECT_EQ(ca.valid, cb.valid) << "candidate " << i;
    EXPECT_EQ(ca.a, cb.a) << "candidate " << i;
    EXPECT_EQ(ca.b, cb.b) << "candidate " << i;
    EXPECT_EQ(ca.beta, cb.beta) << "candidate " << i;
    EXPECT_EQ(ca.validation_loss, cb.validation_loss) << "candidate " << i;
    EXPECT_EQ(ca.test_accuracy, cb.test_accuracy) << "candidate " << i;
  }
  // The acceptance-criterion form: identical selected (A, B, beta).
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_EQ(a.best_test_index, b.best_test_index);
  EXPECT_EQ(a.best().a, b.best().a);
  EXPECT_EQ(a.best().b, b.best().b);
  EXPECT_EQ(a.best().beta, b.best().beta);
}

TEST(Determinism, FeatureExtractionEightThreadsMatchesOneBitExact) {
  const DatasetPair pair = easy_task(202);
  Rng rng(7);
  const Nonlinearity f(NonlinearityKind::kIdentity, 1.0);
  const ModularReservoir reservoir(12, f);
  const Mask mask(12, pair.train.channels(), MaskKind::kBinary, rng);
  const DfrParams params{0.2, 0.3};

  const FeatureMatrix serial = compute_features(
      reservoir, params, mask, pair.train, RepresentationKind::kDprr, 1);
  const FeatureMatrix parallel = compute_features(
      reservoir, params, mask, pair.train, RepresentationKind::kDprr, 8);

  ASSERT_EQ(serial.features.rows(), parallel.features.rows());
  ASSERT_EQ(serial.features.cols(), parallel.features.cols());
  ASSERT_EQ(serial.labels, parallel.labels);
  for (std::size_t r = 0; r < serial.features.rows(); ++r) {
    for (std::size_t c = 0; c < serial.features.cols(); ++c) {
      ASSERT_EQ(serial.features(r, c), parallel.features(r, c))
          << "element (" << r << ", " << c << ")";
    }
  }
}

TEST(Determinism, MultistartFourThreadsMatchesSerialWinner) {
  const DatasetPair pair = easy_task(303);
  TrainerConfig serial;
  serial.nodes = 12;
  serial.threads = 1;
  TrainerConfig parallel = serial;
  parallel.threads = 4;
  const auto restarts = Trainer::default_restarts();

  const TrainResult a = Trainer(serial).fit_multistart(pair.train, restarts);
  const TrainResult b = Trainer(parallel).fit_multistart(pair.train, restarts);

  EXPECT_EQ(a.params.a, b.params.a);
  EXPECT_EQ(a.params.b, b.params.b);
  EXPECT_EQ(a.chosen_beta, b.chosen_beta);
  EXPECT_EQ(a.validation_loss, b.validation_loss);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(a.history[e].mean_loss, b.history[e].mean_loss) << "epoch " << e;
  }
}

TEST(Determinism, EscalationPathIdenticalAcrossThreadCounts) {
  // The whole escalation protocol — which levels run and where it stops —
  // must not depend on the thread count either.
  const DatasetPair pair = easy_task(404);
  GridSearchConfig serial;
  serial.nodes = 12;
  serial.threads = 1;
  GridSearchConfig parallel = serial;
  parallel.threads = 8;

  const EscalationResult a =
      escalate_grid_search(serial, pair.train, pair.test, 0.9, 3);
  const EscalationResult b =
      escalate_grid_search(parallel, pair.train, pair.test, 0.9, 3);

  EXPECT_EQ(a.reached_target, b.reached_target);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t l = 0; l < a.levels.size(); ++l) {
    EXPECT_EQ(a.levels[l].best_index, b.levels[l].best_index);
    EXPECT_EQ(a.levels[l].best().validation_loss,
              b.levels[l].best().validation_loss);
  }
}

}  // namespace
}  // namespace dfr
