// Tests for the zero-copy artifact store (serve/artifact_store.hpp): mmap
// loading is bit-identical to the copying loader and makes no weight-sized
// allocation (operator-new instrumented), v1 files fall back to the copying
// loader behind the same API, truncated / corrupt / misaligned v2 files are
// rejected with typed CheckError (never a crash, never a partial map), the
// LRU layer holds max_resident_bytes under 1k-model churn, and eviction
// under live server traffic refaults transparently.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "dfr/dfrm_format.hpp"
#include "dfr/model_io.hpp"
#include "dfr/trainer.hpp"
#include "serve/artifact_store.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

// ---- allocation instrumentation -------------------------------------------
// Counting operator new/delete like test_serve.cpp, plus the LARGEST single
// allocation seen — the zero-copy guarantee is "no weight-sized allocation
// during an mmap load", which is a max-size property, not a count property.

namespace {
std::atomic<std::size_t> g_allocations{0};
std::atomic<std::size_t> g_max_alloc{0};

void note_alloc(std::size_t size) {
  ++g_allocations;
  std::size_t seen = g_max_alloc.load(std::memory_order_relaxed);
  while (size > seen &&
         !g_max_alloc.compare_exchange_weak(seen, size,
                                            std::memory_order_relaxed)) {
  }
}
}  // namespace

void* operator new(std::size_t size) {
  note_alloc(size);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  note_alloc(size);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dfr {
namespace {

using serve::ArtifactStore;
using serve::ArtifactStoreConfig;
using serve::InferenceServer;
using serve::InferResult;
using serve::LoadMode;
using serve::ModelRegistry;
using serve::RequestStatus;

std::string temp_path(const std::string& name) {
  static const std::string suffix =
      "." + std::to_string(::getpid()) + ".dfrm";
  return (std::filesystem::temp_directory_path() / (name + suffix)).string();
}

/// Deployment-shaped model with random deterministic weights (store behavior
/// depends on shapes and bytes, never on training).
LoadedModel make_model(std::size_t nodes, std::size_t channels, int classes,
                       std::uint64_t seed) {
  Rng rng(seed);
  LoadedModel model;
  model.params = DfrParams{0.1, 0.05};
  model.mask = Mask(nodes, channels, MaskKind::kBinary, rng);
  Matrix w(static_cast<std::size_t>(classes), dprr_dim(nodes));
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) w(i, j) = rng.uniform(-1.0, 1.0);
  }
  Vector b(w.rows(), 0.0);
  for (double& v : b) v = rng.uniform(-0.1, 0.1);
  model.readout = OutputLayer(std::move(w), std::move(b));
  return model;
}

void save_as(const LoadedModel& model, const std::string& path,
             std::uint32_t version) {
  TrainResult trained;
  trained.params = model.params;
  trained.mask = model.mask;
  trained.nonlinearity = model.nonlinearity;
  trained.readout = model.readout;
  trained.chosen_beta = model.chosen_beta;
  save_model(trained, path, version);
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_artifacts_bit_identical(const ModelArtifact& a,
                                    const ModelArtifact& b) {
  EXPECT_DOUBLE_EQ(a.params.a, b.params.a);
  EXPECT_DOUBLE_EQ(a.params.b, b.params.b);
  EXPECT_DOUBLE_EQ(a.chosen_beta, b.chosen_beta);
  EXPECT_EQ(a.nonlinearity.kind(), b.nonlinearity.kind());
  EXPECT_DOUBLE_EQ(a.nonlinearity.mg_exponent(), b.nonlinearity.mg_exponent());
  EXPECT_TRUE(a.mask.weights() == b.mask.weights());
  EXPECT_TRUE(a.readout.weights() == b.readout.weights());
  EXPECT_EQ(a.readout.bias(), b.readout.bias());
}

class ArtifactStoreTest : public ::testing::Test {
 protected:
  // 256 nodes makes the smallest weight section (the mask: 256 x 2 doubles
  // = 4 KiB) comfortably larger than any bookkeeping allocation, so the
  // zero-copy max-allocation assertion has real teeth.
  static constexpr std::size_t kNodes = 256;

  static void SetUpTestSuite() {
    model_ = new LoadedModel(make_model(kNodes, 2, 3, 21));
    path_v2_ = temp_path("dfr_store_v2");
    path_v1_ = temp_path("dfr_store_v1");
    save_as(*model_, path_v2_, 2);
    save_as(*model_, path_v1_, 1);
  }
  static void TearDownTestSuite() {
    std::remove(path_v2_.c_str());
    std::remove(path_v1_.c_str());
    delete model_;
    model_ = nullptr;
  }

  static LoadedModel* model_;
  static std::string path_v2_;
  static std::string path_v1_;
};

LoadedModel* ArtifactStoreTest::model_ = nullptr;
std::string ArtifactStoreTest::path_v2_;
std::string ArtifactStoreTest::path_v1_;

// ---- zero-copy loading -----------------------------------------------------

TEST_F(ArtifactStoreTest, MmapArtifactBitIdenticalToCopyingLoader) {
  const ModelArtifactPtr mapped = serve::load_artifact_mmap(path_v2_, "m");
  const ModelArtifactPtr copied = load_artifact(path_v2_, "m");
  ASSERT_NE(mapped, nullptr);
  ASSERT_NE(copied, nullptr);
  EXPECT_NE(mapped->backing, nullptr);
  EXPECT_EQ(copied->backing, nullptr);
  expect_artifacts_bit_identical(*mapped, *copied);

  // And against the v1 copying loader of the same model: the format version
  // must not change a single weight bit.
  const ModelArtifactPtr v1 = load_artifact(path_v1_, "m");
  expect_artifacts_bit_identical(*mapped, *v1);
}

TEST_F(ArtifactStoreTest, MmapLoadMakesNoWeightSizedAllocation) {
  const std::size_t mask_bytes =
      model_->mask.weights().size() * sizeof(double);
  ASSERT_GE(mask_bytes, 4096u);
  g_max_alloc.store(0);
  const ModelArtifactPtr mapped = serve::load_artifact_mmap(path_v2_, "m");
  const std::size_t biggest = g_max_alloc.load();
  ASSERT_NE(mapped, nullptr);
  // Every allocation during the load (artifact struct, name string, Ny-entry
  // bias) must be smaller than the smallest weight payload — the weights
  // themselves are borrowed views over the mapping, never copied.
  EXPECT_LT(biggest, mask_bytes);

  // The copying loader, by contrast, must allocate at least the readout.
  g_max_alloc.store(0);
  const ModelArtifactPtr copied = load_artifact(path_v2_, "m");
  EXPECT_GE(g_max_alloc.load(), mask_bytes);
}

TEST_F(ArtifactStoreTest, V1FileFallsBackToCopyingLoader) {
  const ModelArtifactPtr artifact = serve::load_artifact_mmap(path_v1_, "m");
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(artifact->backing, nullptr);  // owned weights, nothing mapped
  expect_artifacts_bit_identical(*artifact, *load_artifact(path_v1_, "m"));
}

TEST_F(ArtifactStoreTest, MappedWeightsOutliveRegistryEviction) {
  ModelRegistry registry;
  ModelArtifactPtr artifact = serve::load_artifact_mmap(path_v2_, "m");
  registry.register_model(artifact);
  const double first_weight = artifact->mask.weights()(0, 0);
  registry.evict("m");
  // The mapping is refcounted through the artifact: pages stay mapped (and
  // readable) until the last reference drops, eviction or not.
  EXPECT_EQ(artifact->mask.weights()(0, 0), first_weight);
  EXPECT_TRUE(artifact->readout.weights().all_finite());
}

// ---- malformed v2 files ----------------------------------------------------

TEST_F(ArtifactStoreTest, TruncatedV2ThrowsTypedAtEveryGranularity) {
  const std::vector<char> bytes = read_bytes(path_v2_);
  const std::string mutated = temp_path("dfr_store_truncated");
  // Inside the header, between header and payload, inside each section, and
  // one byte short: all typed CheckError, nothing mapped, no crash.
  for (const double fraction : {0.05, 0.2, 0.5, 0.8, 0.99}) {
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(bytes.size()) * fraction);
    write_bytes(mutated,
                std::vector<char>(bytes.begin(),
                                  bytes.begin() + static_cast<long>(keep)));
    EXPECT_THROW((void)serve::load_artifact_mmap(mutated), CheckError)
        << "prefix " << keep;
  }
  std::remove(mutated.c_str());
}

TEST_F(ArtifactStoreTest, TrailingGarbageThrowsSizeMismatch) {
  std::vector<char> bytes = read_bytes(path_v2_);
  bytes.push_back('\0');  // file no longer matches header.file_size
  const std::string mutated = temp_path("dfr_store_trailing");
  write_bytes(mutated, bytes);
  EXPECT_THROW((void)serve::load_artifact_mmap(mutated), CheckError);
  std::remove(mutated.c_str());
}

TEST_F(ArtifactStoreTest, MisalignedSectionOffsetThrows) {
  std::vector<char> bytes = read_bytes(path_v2_);
  dfrm::V2Header hdr{};
  std::memcpy(&hdr, bytes.data(), sizeof(hdr));
  hdr.mask_offset += 8;  // still in bounds, no longer 64-byte aligned
  std::memcpy(bytes.data(), &hdr, sizeof(hdr));
  const std::string mutated = temp_path("dfr_store_misaligned");
  write_bytes(mutated, bytes);
  EXPECT_THROW((void)serve::load_artifact_mmap(mutated), CheckError);
  std::remove(mutated.c_str());
}

TEST_F(ArtifactStoreTest, OutOfBoundsSectionThrows) {
  std::vector<char> bytes = read_bytes(path_v2_);
  dfrm::V2Header hdr{};
  std::memcpy(&hdr, bytes.data(), sizeof(hdr));
  hdr.readout_offset = dfrm::v2_align_up(hdr.file_size + (1u << 20));
  std::memcpy(bytes.data(), &hdr, sizeof(hdr));
  const std::string mutated = temp_path("dfr_store_oob");
  write_bytes(mutated, bytes);
  EXPECT_THROW((void)serve::load_artifact_mmap(mutated), CheckError);
  std::remove(mutated.c_str());
}

TEST_F(ArtifactStoreTest, ZeroDimensionOrBogusKindThrows) {
  const std::vector<char> original = read_bytes(path_v2_);
  const std::string mutated = temp_path("dfr_store_badheader");
  {
    std::vector<char> bytes = original;
    dfrm::V2Header hdr{};
    std::memcpy(&hdr, bytes.data(), sizeof(hdr));
    hdr.mask_rows = 0;
    std::memcpy(bytes.data(), &hdr, sizeof(hdr));
    write_bytes(mutated, bytes);
    EXPECT_THROW((void)serve::load_artifact_mmap(mutated), CheckError);
  }
  {
    std::vector<char> bytes = original;
    dfrm::V2Header hdr{};
    std::memcpy(&hdr, bytes.data(), sizeof(hdr));
    hdr.nonlin_kind = 99;
    std::memcpy(bytes.data(), &hdr, sizeof(hdr));
    write_bytes(mutated, bytes);
    EXPECT_THROW((void)serve::load_artifact_mmap(mutated), CheckError);
  }
  std::remove(mutated.c_str());
}

TEST(ArtifactStoreErrors, MissingOrEmptyFileThrows) {
  EXPECT_THROW((void)serve::load_artifact_mmap(
                   temp_path("dfr_store_does_not_exist")),
               CheckError);
  const std::string path = temp_path("dfr_store_empty");
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_THROW((void)serve::load_artifact_mmap(path), CheckError);
  std::remove(path.c_str());
}

// ---- store / LRU -----------------------------------------------------------

TEST_F(ArtifactStoreTest, FaultsRegisterThenHitsServeFromRegistry) {
  ModelRegistry registry;
  ArtifactStore store(registry);
  store.add("a", path_v2_);
  EXPECT_EQ(store.get("untracked"), nullptr);

  const ModelArtifactPtr first = store.get("a");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(registry.get("a"), first);  // fault-in registered it
  EXPECT_EQ(store.get("a"), first);     // hit: same artifact, no reload

  const auto counters = store.counters();
  EXPECT_EQ(counters.faults, 1u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.resident_models, 1u);
  EXPECT_GT(counters.resident_bytes, 0u);
  EXPECT_GT(store.load_latency_us().count, 0u);
}

TEST_F(ArtifactStoreTest, FailedLoadThrowsAndIdStaysTracked) {
  ModelRegistry registry;
  ArtifactStore store(registry);
  const std::string bad = temp_path("dfr_store_failedload");
  write_bytes(bad, std::vector<char>(16, 'x'));
  store.add("a", bad);
  EXPECT_THROW((void)store.get("a"), CheckError);
  EXPECT_EQ(store.counters().resident_models, 0u);
  // Fixing the path heals the id on the next get.
  store.add("a", path_v2_);
  EXPECT_NE(store.get("a"), nullptr);
  std::remove(bad.c_str());
}

TEST_F(ArtifactStoreTest, LruCapHoldsUnderThousandModelChurn) {
  // 8 distinct files cycled over 1024 tracked ids, cap sized for ~3
  // artifacts: every get must leave resident_bytes at or under the cap, and
  // every id must still be servable (transparent refault after eviction).
  std::vector<std::string> files;
  for (int f = 0; f < 8; ++f) {
    const LoadedModel m = make_model(16, 2, 3, 100 + static_cast<unsigned>(f));
    files.push_back(temp_path("dfr_store_churn" + std::to_string(f)));
    save_as(m, files.back(), 2);
  }
  const std::size_t file_bytes =
      static_cast<std::size_t>(std::filesystem::file_size(files[0]));
  const std::size_t cap = 3 * file_bytes + file_bytes / 2;

  ModelRegistry registry;
  ArtifactStore store(registry, ArtifactStoreConfig{.max_resident_bytes = cap});
  constexpr std::size_t kIds = 1024;
  for (std::size_t m = 0; m < kIds; ++m) {
    store.add("m" + std::to_string(m), files[m % files.size()]);
  }
  Rng rng(7);
  for (std::size_t step = 0; step < 2048; ++step) {
    const std::size_t id = static_cast<std::size_t>(
        rng.uniform(0.0, static_cast<double>(kIds)));
    ASSERT_NE(store.get("m" + std::to_string(std::min(id, kIds - 1))), nullptr);
    ASSERT_LE(store.resident_bytes(), cap) << "step " << step;
  }
  const auto counters = store.counters();
  EXPECT_EQ(counters.tracked_models, kIds);
  EXPECT_LE(counters.resident_models, 3u);
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_GT(counters.hits + counters.faults, 0u);
  for (const std::string& path : files) std::remove(path.c_str());
}

TEST_F(ArtifactStoreTest, SingleArtifactLargerThanCapStillLoads) {
  ModelRegistry registry;
  ArtifactStore store(registry, ArtifactStoreConfig{.max_resident_bytes = 64});
  store.add("a", path_v2_);
  const ModelArtifactPtr artifact = store.get("a");  // over cap on its own
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(store.counters().resident_models, 1u);
}

TEST_F(ArtifactStoreTest, ExternallyEvictedIdHealsAndRefaults) {
  ModelRegistry registry;
  ArtifactStore store(registry);
  store.add("a", path_v2_);
  ASSERT_NE(store.get("a"), nullptr);
  registry.evict("a");  // someone else drove the registry
  const ModelArtifactPtr again = store.get("a");
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(registry.get("a"), again);
  EXPECT_EQ(store.counters().faults, 2u);  // healed as a re-fault, not a hit
}

TEST_F(ArtifactStoreTest, EraseEvictsAndStopsTracking) {
  ModelRegistry registry;
  ArtifactStore store(registry);
  store.add("a", path_v2_);
  ASSERT_NE(store.get("a"), nullptr);
  EXPECT_TRUE(store.erase("a"));
  EXPECT_EQ(registry.get("a"), nullptr);
  EXPECT_EQ(store.get("a"), nullptr);
  EXPECT_FALSE(store.erase("a"));
}

TEST_F(ArtifactStoreTest, CopyModeAccountsOwnedWeights) {
  ModelRegistry registry;
  ArtifactStore store(registry,
                      ArtifactStoreConfig{.mode = LoadMode::kCopy});
  store.add("a", path_v2_);
  const ModelArtifactPtr artifact = store.get("a");
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(artifact->backing, nullptr);
  const std::size_t weight_bytes =
      (model_->mask.weights().size() + model_->readout.weights().size() +
       model_->readout.bias().size()) *
      sizeof(double);
  EXPECT_EQ(store.resident_bytes(), weight_bytes);
}

TEST_F(ArtifactStoreTest, ExportStatsScrapeableFormat) {
  ModelRegistry registry;
  ArtifactStore store(registry);
  store.add("a", path_v2_);
  ASSERT_NE(store.get("a"), nullptr);
  ASSERT_NE(store.get("a"), nullptr);
  std::ostringstream os;
  store.export_stats(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("dfr_store_resident_bytes "), std::string::npos);
  EXPECT_NE(text.find("dfr_store_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("dfr_store_faults_total 1"), std::string::npos);
  EXPECT_NE(text.find("dfr_store_load_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dfr_model_resident_bytes{model=\"a\"}"),
            std::string::npos);
}

// ---- eviction under traffic ------------------------------------------------

TEST_F(ArtifactStoreTest, EvictionUnderTrafficRefaultsTransparently) {
  // Two models ping-pong under a cap that fits only one: every switch
  // evicts the other through the registry (engine pool reclaim path), and
  // the next get refaults it. Every request must complete kOk.
  const std::string path_b = temp_path("dfr_store_pingpong_b");
  save_as(make_model(kNodes, 2, 3, 22), path_b, 2);
  const std::size_t file_bytes =
      static_cast<std::size_t>(std::filesystem::file_size(path_v2_));

  ModelRegistry registry;
  ArtifactStore store(
      registry,
      ArtifactStoreConfig{.max_resident_bytes = file_bytes + file_bytes / 2});
  store.add("a", path_v2_);
  store.add("b", path_b);
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 8});

  Rng rng(23);
  Matrix series(20, 2);
  for (std::size_t k = 0; k < series.rows(); ++k) {
    for (std::size_t v = 0; v < series.cols(); ++v) {
      series(k, v) = rng.uniform(-1.0, 1.0);
    }
  }
  for (int i = 0; i < 24; ++i) {
    const char* id = (i % 2 != 0) ? "b" : "a";
    ASSERT_NE(store.get(id), nullptr);  // admission fault-in, evicts the other
    const InferResult& result = server.submit(id, series).get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << "request " << i;
    ASSERT_FALSE(result.logits.empty());
  }
  EXPECT_GE(store.counters().evictions, 20u);
  EXPECT_LE(store.resident_bytes(), file_bytes + file_bytes / 2);
  std::remove(path_b.c_str());
}

TEST_F(ArtifactStoreTest, QueuedRequestsSurviveEvictionOfTheirModel) {
  // Regression (PR 10, evict-under-queued-request window): a request
  // admitted while its model was resident must complete kOk even when the
  // model is evicted before a worker dequeues it. submit() pins the
  // artifact at admission; without the pin, the dequeue-time registry
  // lookup comes back empty and the burst resolves kUnknownModel.
  const std::string path_b = temp_path("dfr_store_evictpin_b");
  save_as(make_model(kNodes, 2, 3, 33), path_b, 2);
  const std::size_t file_bytes =
      static_cast<std::size_t>(std::filesystem::file_size(path_v2_));

  ModelRegistry registry;
  ArtifactStore store(
      registry,
      ArtifactStoreConfig{.max_resident_bytes = file_bytes + file_bytes / 2});
  store.add("a", path_v2_);
  store.add("b", path_b);
  // One worker, deep queue: the burst below queues up behind the first
  // request, leaving a wide window for the eviction to land mid-queue.
  InferenceServer server(registry, {.workers = 1, .queue_capacity = 128});

  Rng rng(34);
  Matrix series(20, 2);
  for (std::size_t k = 0; k < series.rows(); ++k) {
    for (std::size_t v = 0; v < series.cols(); ++v) {
      series(k, v) = rng.uniform(-1.0, 1.0);
    }
  }

  ASSERT_NE(store.get("a"), nullptr);  // fault "a" in
  std::vector<serve::InferFuture> pending;
  pending.reserve(64);
  for (int i = 0; i < 64; ++i) {
    pending.push_back(server.submit("a", series));
  }
  // Evict "a" while (most of) the burst is still queued. The store only
  // fits one artifact, so faulting "b" in reclaims "a" immediately.
  ASSERT_NE(store.get("b"), nullptr);

  for (std::size_t i = 0; i < pending.size(); ++i) {
    const InferResult& result = pending[i].get();
    ASSERT_EQ(result.status, RequestStatus::kOk) << "request " << i;
    ASSERT_FALSE(result.logits.empty());
  }
  std::remove(path_b.c_str());
}

// ---- madvise hints ---------------------------------------------------------

TEST_F(ArtifactStoreTest, MadviseHintsKeepMappingReadable) {
  // The hints are advisory, but the contract the store relies on is that
  // DONTNEED on a read-only MAP_PRIVATE file mapping never loses data: a
  // later touch re-faults the page from the file.
  const auto mapping = serve::MappedFile::map(path_v2_);
  ASSERT_NE(mapping, nullptr);
  std::vector<std::byte> before(mapping->data(),
                                mapping->data() + mapping->size());
  mapping->advise_willneed();
  EXPECT_EQ(std::memcmp(before.data(), mapping->data(), mapping->size()), 0);
  mapping->advise_dontneed();
  EXPECT_EQ(std::memcmp(before.data(), mapping->data(), mapping->size()), 0);
}

// ---- predictive prefetch ---------------------------------------------------

/// The acceptance measurement for predictive prefetch, deterministically:
/// a cyclic access pattern over a fleet larger than the LRU cap takes a
/// request-path cold fault on EVERY get without prefetch — and exactly zero
/// after warm-up with it, because the successor model faults the next
/// artifact in ahead of the request. wait_prefetch_idle() between gets
/// removes the scheduling race the loadgen tolerates statistically.
TEST_F(ArtifactStoreTest, PrefetchTakesColdFaultsOffTheRequestPathAfterWarmup) {
  const std::vector<std::string> ids = {"m0", "m1", "m2"};
  std::vector<std::string> paths;
  for (const std::string& id : ids) {
    paths.push_back(temp_path("dfr_store_prefetch_" + id));
    save_as(*model_, paths.back(), 2);
  }
  const std::size_t file_bytes =
      static_cast<std::size_t>(std::filesystem::file_size(paths[0]));

  ModelRegistry registry;
  ArtifactStoreConfig config;
  config.max_resident_bytes = 2 * file_bytes;  // fleet of 3, room for 2
  config.prefetch = true;
  ArtifactStore store(registry, config);
  for (std::size_t i = 0; i < ids.size(); ++i) store.add(ids[i], paths[i]);

  // Warm-up: two full cycles. The first trains the successor map (and
  // faults everything cold); the second still faults m0 (its prefetch
  // could not be predicted before m2 -> m0 was ever observed).
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (const std::string& id : ids) {
      ASSERT_NE(store.get(id), nullptr);
      store.wait_prefetch_idle();
    }
  }
  const std::uint64_t faults_after_warmup = store.counters().faults;
  EXPECT_GT(store.counters().prefetches, 0u);

  // Steady state: the successor chain is complete, so the background
  // worker stays one step ahead of the cycle and the request path never
  // faults again — the cold-fault counter must not move at all.
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (const std::string& id : ids) {
      ASSERT_NE(store.get(id), nullptr);
      store.wait_prefetch_idle();
    }
  }
  EXPECT_EQ(store.counters().faults, faults_after_warmup);
  // The LRU cap held throughout: prefetch loads evict through the same
  // accounting as request-path faults.
  EXPECT_LE(store.resident_bytes(), 2 * file_bytes);

  // The learned successor model is the cycle itself.
  EXPECT_EQ(store.predicted_successor("m0"), "m1");
  EXPECT_EQ(store.predicted_successor("m1"), "m2");
  EXPECT_EQ(store.predicted_successor("m2"), "m0");

  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST_F(ArtifactStoreTest, PrefetchCountsSeparatelyFromFaultsAndSwallowsErrors) {
  const std::string good = temp_path("dfr_store_prefetch_good");
  save_as(*model_, good, 2);

  ModelRegistry registry;
  ArtifactStore store(registry, ArtifactStoreConfig{});  // prefetch off: direct
  store.add("good", good);
  store.add("broken", temp_path("dfr_store_prefetch_missing"));

  store.prefetch("good");
  EXPECT_EQ(store.counters().prefetches, 1u);
  EXPECT_EQ(store.counters().faults, 0u);  // background load is not a fault
  // A get() after prefetch is a hit, not a fault.
  EXPECT_NE(store.get("good"), nullptr);
  EXPECT_EQ(store.counters().hits, 1u);
  EXPECT_EQ(store.counters().faults, 0u);
  // Already-resident and untracked ids are no-ops.
  store.prefetch("good");
  store.prefetch("nonexistent");
  EXPECT_EQ(store.counters().prefetches, 1u);
  // A failing prefetch is swallowed (advisory), and the real get() still
  // reports the typed error.
  store.prefetch("broken");
  EXPECT_EQ(store.counters().prefetches, 1u);
  EXPECT_THROW((void)store.get("broken"), CheckError);

  std::remove(good.c_str());
}

}  // namespace
}  // namespace dfr
