// Tests for the cross-request batched SoA engine (serve/engine.hpp
// BatchedEngine + the batched kernel family of serve/simd_kernels.hpp).
// The contracts under test:
//   - float lanes land within simd_feature_ulp_bound of the scalar
//     FloatDatapath pipeline (the float SIMD contract, per lane);
//   - float lanes are BIT-IDENTICAL to the single-series SIMD engine on the
//     same backend (both run the same per-element kernel operations, just
//     strided across lanes) — strict on x86-64, like test_simd's
//     step-stage contract;
//   - quantized lanes are BIT-IDENTICAL (EXPECT_EQ) to the scalar
//     QuantizedDatapath — the quantized SIMD contract extends to batching;
//   - lanes are independent: a lane's results do not change with its
//     batchmates or the batch size;
//   - infer() performs zero steady-state heap allocations;
//   - malformed batches throw CheckError before touching any lane.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "fixedpoint/quantized_dfr.hpp"
#include "serve/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

// ---- allocation instrumentation (same scheme as test_serve.cpp) ------------

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dfr {
namespace {

// ---- helpers ---------------------------------------------------------------

constexpr simd::Backend kAllBackends[] = {
    simd::Backend::kScalar, simd::Backend::kAvx2, simd::Backend::kNeon,
    simd::Backend::kAvx512};

std::vector<simd::Backend> available_backends() {
  std::vector<simd::Backend> backends;
  for (simd::Backend b : kAllBackends) {
    if (simd::backend_available(b)) backends.push_back(b);
  }
  return backends;
}

Matrix random_series(std::size_t t_len, std::size_t channels, Rng& rng) {
  Matrix m(t_len, channels);
  for (std::size_t k = 0; k < t_len; ++k) {
    for (std::size_t v = 0; v < channels; ++v) m(k, v) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

/// Deployment-shaped model with random (but deterministic) weights; batched
/// equivalence depends only on shapes, never on training.
LoadedModel make_model(std::size_t nodes, std::size_t channels, int classes,
                       NonlinearityKind kind, std::uint64_t seed) {
  Rng rng(seed);
  LoadedModel model;
  model.params = DfrParams{0.1, 0.05};
  model.mask = Mask(nodes, channels, MaskKind::kBinary, rng);
  model.nonlinearity = Nonlinearity(kind);
  Matrix w(static_cast<std::size_t>(classes), dprr_dim(nodes));
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) w(i, j) = rng.uniform(-1.0, 1.0);
  }
  Vector b(w.rows(), 0.0);
  for (double& v : b) v = rng.uniform(-0.1, 0.1);
  model.readout = OutputLayer(std::move(w), std::move(b));
  return model;
}

void expect_bit_identical(std::span<const double> expected,
                          std::span<const double> got,
                          const std::string& context, double step = 0.0) {
  ASSERT_EQ(expected.size(), got.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
#if defined(__x86_64__) || defined(_M_X64)
    (void)step;
    ASSERT_EQ(expected[i], got[i]) << context << " i=" << i;
#else
    // Non-x86 scalar baselines may FMA-contract (see test_simd_quant.cpp's
    // file header); absorb one format step plus relative slack.
    ASSERT_NEAR(expected[i], got[i],
                1e-12 + 1e-9 * std::fabs(expected[i]) + 1.000001 * step)
        << context << " i=" << i;
#endif
  }
}

constexpr NonlinearityKind kAllKinds[] = {
    NonlinearityKind::kIdentity,  NonlinearityKind::kMackeyGlass,
    NonlinearityKind::kTanh,      NonlinearityKind::kSine,
    NonlinearityKind::kCubic,     NonlinearityKind::kSaturating,
};

// Below any vector width, odd, prime, and large non-multiples of the NEON
// (2), AVX2 (4), and AVX-512 (8) widths — for both Nx and the lane count.
constexpr std::size_t kOddSizes[] = {1, 2, 3, 5, 30, 101};
constexpr std::size_t kLaneCounts[] = {1, 2, 3, 5, 8, 16};

std::vector<const Matrix*> series_ptrs(const std::vector<Matrix>& batch) {
  std::vector<const Matrix*> ptrs;
  ptrs.reserve(batch.size());
  for (const Matrix& m : batch) ptrs.push_back(&m);
  return ptrs;
}

// ---- float lanes: ULP bound vs the scalar pipeline --------------------------

// Per lane, batched finalized features stay within the documented float SIMD
// bound of the scalar FloatDatapath pipeline — for every nonlinearity, odd
// Nx, odd lane count, and available backend. Each lane carries a distinct
// series so a lane-index mixup cannot cancel out.
TEST(BatchedFloatEquivalence, FeaturesWithinUlpBoundAcrossShapesAndLanes) {
  constexpr std::size_t kTLen = 40;
  constexpr std::size_t kChannels = 3;
  Rng rng(42);
  for (NonlinearityKind kind : kAllKinds) {
    for (std::size_t nx : kOddSizes) {
      const LoadedModel model = make_model(nx, kChannels, 3, kind, 7 + nx);
      const ModelArtifactPtr artifact = model.artifact("m");
      InferenceEngine scalar_engine = make_engine(artifact);
      for (std::size_t lanes : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}}) {
        std::vector<Matrix> batch;
        for (std::size_t l = 0; l < lanes; ++l) {
          batch.push_back(random_series(kTLen, kChannels, rng));
        }
        const std::vector<const Matrix*> ptrs = series_ptrs(batch);
        for (simd::Backend b : available_backends()) {
          BatchedInferenceEngine engine =
              make_batched_engine(artifact, lanes, b);
          engine.infer(std::span<const Matrix* const>(ptrs));
          for (std::size_t l = 0; l < lanes; ++l) {
            const std::span<const double> ref =
                scalar_engine.features(batch[l]);
            double max_abs = 0.0;
            for (double r : ref) max_abs = std::max(max_abs, std::fabs(r));
            const double tol =
                (std::nextafter(max_abs,
                                std::numeric_limits<double>::infinity()) -
                 max_abs) *
                static_cast<double>(simd::simd_feature_ulp_bound(kTLen));
            const std::span<const double> got = engine.lane_features(l);
            ASSERT_EQ(got.size(), ref.size());
            for (std::size_t i = 0; i < ref.size(); ++i) {
              ASSERT_LE(std::fabs(got[i] - ref[i]), tol)
                  << simd::backend_name(b) << " " << nonlinearity_name(kind)
                  << " nx=" << nx << " lanes=" << lanes << " lane=" << l
                  << " i=" << i << " ref=" << ref[i] << " got=" << got[i];
            }
          }
        }
      }
    }
  }
}

// ---- float lanes: bit-identity vs the single-series SIMD engine -------------

// The stronger per-backend contract: a batched float lane runs the exact
// per-element operation sequence of the single-series SIMD engine on the
// same backend (the batched kernels perform the same correctly-rounded
// mul/add/fma per element, only strided across lanes), so logits and labels
// are bit-identical — strict on x86-64.
TEST(BatchedFloatEquivalence, BitIdenticalToSingleSeriesSimdEngine) {
  constexpr std::size_t kTLen = 35;
  constexpr std::size_t kChannels = 2;
  Rng rng(97);
  for (std::size_t nx : kOddSizes) {
    const LoadedModel model =
        make_model(nx, kChannels, 4, NonlinearityKind::kTanh, 11 + nx);
    const ModelArtifactPtr artifact = model.artifact("m");
    std::vector<Matrix> batch;
    for (int l = 0; l < 6; ++l) {
      batch.push_back(random_series(kTLen, kChannels, rng));
    }
    const std::vector<const Matrix*> ptrs = series_ptrs(batch);
    for (simd::Backend b : available_backends()) {
      SimdInferenceEngine single = make_simd_engine(artifact, b);
      BatchedInferenceEngine batched =
          make_batched_engine(artifact, batch.size(), b);
      batched.infer(std::span<const Matrix* const>(ptrs));
      for (std::size_t l = 0; l < batch.size(); ++l) {
        const std::span<const double> ref = single.infer(batch[l]);
        const std::string context = std::string(simd::backend_name(b)) +
                                    " nx=" + std::to_string(nx) +
                                    " lane=" + std::to_string(l);
        expect_bit_identical(ref, batched.lane_logits(l), context);
        EXPECT_EQ(batched.lane_label(l), single.classify(batch[l])) << context;
      }
    }
  }
}

// ---- quantized lanes: bit-identity vs the scalar quantized datapath ---------

// The quantized SIMD contract extends to batching: every lane's features,
// logits, and label are EXPECT_EQ-identical to the scalar QuantizedDatapath
// for every nonlinearity, odd Nx, lane count, and available backend.
TEST(BatchedQuantEquivalence, BitIdenticalToScalarQuantizedDatapath) {
  constexpr std::size_t kTLen = 40;
  constexpr std::size_t kChannels = 3;
  Rng rng(43);
  for (NonlinearityKind kind : kAllKinds) {
    for (std::size_t nx : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                           std::size_t{30}}) {
      const LoadedModel model = make_model(nx, kChannels, 3, kind, 19 + nx);
      auto quantized = std::make_shared<QuantizedDfr>(
          model, QuantizedInferenceConfig{});
      Dataset calib("calib", 3, kTLen, kChannels);
      for (int i = 0; i < 3; ++i) {
        calib.add({random_series(kTLen, kChannels, rng), i % 2});
      }
      quantized->calibrate(calib);
      QuantizedInferenceEngine scalar_engine = make_engine(quantized);
      const double feature_step =
          quantized->config().feature_format.resolution();
      for (std::size_t lanes : {std::size_t{1}, std::size_t{5},
                                std::size_t{8}}) {
        std::vector<Matrix> batch;
        for (std::size_t l = 0; l < lanes; ++l) {
          batch.push_back(random_series(kTLen, kChannels, rng));
        }
        const std::vector<const Matrix*> ptrs = series_ptrs(batch);
        for (simd::Backend b : available_backends()) {
          BatchedQuantizedInferenceEngine engine =
              make_batched_engine(quantized, lanes, b);
          engine.infer(std::span<const Matrix* const>(ptrs));
          for (std::size_t l = 0; l < lanes; ++l) {
            const std::string context =
                std::string(simd::backend_name(b)) + " " +
                nonlinearity_name(kind) + " nx=" + std::to_string(nx) +
                " lanes=" + std::to_string(lanes) +
                " lane=" + std::to_string(l);
            expect_bit_identical(scalar_engine.features(batch[l]),
                                 engine.lane_features(l),
                                 context + " features", feature_step);
            expect_bit_identical(scalar_engine.infer(batch[l]),
                                 engine.lane_logits(l), context + " logits",
                                 8.0 * feature_step);
            EXPECT_EQ(engine.lane_label(l), scalar_engine.classify(batch[l]))
                << context;
          }
        }
      }
    }
  }
}

// ---- lane independence ------------------------------------------------------

// A lane's results are a function of its own series only: the same series
// produces bit-identical logits whether it runs alone, in a full batch, or
// surrounded by different batchmates in a different lane position.
TEST(BatchedLaneIndependence, ResultsIgnoreBatchmatesAndLanePosition) {
  constexpr std::size_t kTLen = 30;
  constexpr std::size_t kChannels = 2;
  Rng rng(5);
  const LoadedModel model =
      make_model(13, kChannels, 3, NonlinearityKind::kSaturating, 3);
  const ModelArtifactPtr artifact = model.artifact("m");
  const Matrix probe = random_series(kTLen, kChannels, rng);

  for (simd::Backend b : available_backends()) {
    BatchedInferenceEngine engine = make_batched_engine(artifact, 8, b);

    // Alone.
    const Matrix* solo[] = {&probe};
    engine.infer(std::span<const Matrix* const>(solo, 1));
    const Vector ref(engine.lane_logits(0).begin(),
                     engine.lane_logits(0).end());
    const int ref_label = engine.lane_label(0);

    // In every lane position of a full batch of unrelated batchmates, twice
    // with different batchmates (scratch reuse must not leak across calls).
    for (int round = 0; round < 2; ++round) {
      for (std::size_t pos = 0; pos < 8; ++pos) {
        std::vector<Matrix> mates;
        for (std::size_t l = 0; l < 8; ++l) {
          mates.push_back(random_series(kTLen, kChannels, rng));
        }
        std::vector<const Matrix*> ptrs = series_ptrs(mates);
        ptrs[pos] = &probe;
        engine.infer(std::span<const Matrix* const>(ptrs));
        const std::string context = std::string(simd::backend_name(b)) +
                                    " pos=" + std::to_string(pos) +
                                    " round=" + std::to_string(round);
        const std::span<const double> got = engine.lane_logits(pos);
        ASSERT_EQ(got.size(), ref.size()) << context;
        for (std::size_t c = 0; c < ref.size(); ++c) {
          ASSERT_EQ(ref[c], got[c]) << context << " class " << c;
        }
        EXPECT_EQ(engine.lane_label(pos), ref_label) << context;
      }
    }
  }
}

// ---- zero-allocation steady state -------------------------------------------

// After construction, infer() + lane accessors allocate nothing: all SoA
// scratch is preallocated for max_lanes, and smaller batches reuse it.
TEST(BatchedEngine, InferAllocatesNothingInSteadyState) {
  Rng rng(9);
  const LoadedModel model =
      make_model(30, 2, 4, NonlinearityKind::kIdentity, 13);
  const ModelArtifactPtr artifact = model.artifact("m");
  std::vector<Matrix> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(random_series(40, 2, rng));
  const std::vector<const Matrix*> ptrs = series_ptrs(batch);

  BatchedInferenceEngine engine = make_batched_engine(artifact, 8);
  engine.infer(std::span<const Matrix* const>(ptrs));  // warm-up

  const std::size_t before = g_allocations.load();
  double sink = 0.0;
  for (int round = 0; round < 16; ++round) {
    // Vary the batch size: smaller batches must also reuse the scratch.
    const std::size_t lanes = (round % 2 == 0) ? ptrs.size() : 3;
    engine.infer(std::span<const Matrix* const>(ptrs.data(), lanes));
    for (std::size_t l = 0; l < lanes; ++l) {
      sink += engine.lane_logits(l)[0];
      sink += engine.lane_features(l)[0];
      sink += engine.lane_label(l);
    }
  }
  EXPECT_EQ(g_allocations.load() - before, 0u) << "sink=" << sink;
}

// ---- argument validation ----------------------------------------------------

TEST(BatchedEngine, MalformedBatchesThrow) {
  Rng rng(21);
  const LoadedModel model =
      make_model(8, 2, 3, NonlinearityKind::kIdentity, 55);
  const ModelArtifactPtr artifact = model.artifact("m");

  EXPECT_THROW((void)make_batched_engine(artifact, 0), CheckError);
  EXPECT_THROW((void)make_batched_engine(artifact, simd::kBatchedMaxLanes + 1),
               CheckError);

  BatchedInferenceEngine engine = make_batched_engine(artifact, 4);
  const Matrix good = random_series(20, 2, rng);

  // Empty batch.
  EXPECT_THROW(engine.infer(std::span<const Matrix* const>()), CheckError);

  // More lanes than the engine preallocated.
  const Matrix* overflow[] = {&good, &good, &good, &good, &good};
  EXPECT_THROW(engine.infer(std::span<const Matrix* const>(overflow, 5)),
               CheckError);

  // Null lane.
  const Matrix* with_null[] = {&good, nullptr};
  EXPECT_THROW(engine.infer(std::span<const Matrix* const>(with_null, 2)),
               CheckError);

  // Mixed shapes in one batch.
  const Matrix shorter = random_series(10, 2, rng);
  const Matrix* mixed[] = {&good, &shorter};
  EXPECT_THROW(engine.infer(std::span<const Matrix* const>(mixed, 2)),
               CheckError);

  // Channel mismatch and empty series.
  const Matrix wrong_channels = random_series(20, 3, rng);
  const Matrix* bad_ch[] = {&wrong_channels};
  EXPECT_THROW(engine.infer(std::span<const Matrix* const>(bad_ch, 1)),
               CheckError);
  const Matrix empty(0, 2);
  const Matrix* no_rows[] = {&empty};
  EXPECT_THROW(engine.infer(std::span<const Matrix* const>(no_rows, 1)),
               CheckError);

  // Lane accessors refuse indexes beyond the last batch size.
  const Matrix* solo[] = {&good};
  engine.infer(std::span<const Matrix* const>(solo, 1));
  EXPECT_THROW((void)engine.lane_logits(1), CheckError);
  EXPECT_THROW((void)engine.lane_label(1), CheckError);
  EXPECT_THROW((void)engine.lane_features(1), CheckError);
}

// All lane counts up to kBatchedMaxLanes round-trip through infer() — the
// kernels' lane loops handle every main/tail split.
TEST(BatchedEngine, EveryLaneCountUpToMaxWorks) {
  Rng rng(31);
  const LoadedModel model =
      make_model(5, 2, 3, NonlinearityKind::kCubic, 77);
  const ModelArtifactPtr artifact = model.artifact("m");
  InferenceEngine scalar_engine = make_engine(artifact);
  for (std::size_t lanes : kLaneCounts) {
    std::vector<Matrix> batch;
    for (std::size_t l = 0; l < lanes; ++l) {
      batch.push_back(random_series(25, 2, rng));
    }
    const std::vector<const Matrix*> ptrs = series_ptrs(batch);
    BatchedInferenceEngine engine = make_batched_engine(artifact, lanes);
    engine.infer(std::span<const Matrix* const>(ptrs));
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(engine.lane_label(l), scalar_engine.classify(batch[l]))
          << "lanes=" << lanes << " lane=" << l;
    }
  }
}

}  // namespace
}  // namespace dfr
