// Golden-value integration test: the NARMA-10 end-to-end pipeline
// (synthesize series -> mask -> modular reservoir -> ridge readout) is pinned
// to error values recorded from the seed build. Every stage is deterministic
// in the seed (util/rng.hpp), so a drift here means a semantic change
// somewhere in the pipeline, not noise.
#include <gtest/gtest.h>

#include "tasks/narma.hpp"
#include "tasks/prediction.hpp"

namespace dfr {
namespace {

// Recorded from the seed implementation (g++ 12, x86-64, identical at -O0
// and -O2). NRMSE = sqrt(NMSE); the tolerance is loose enough to absorb
// FP-contraction differences across compilers/architectures while still
// flagging any real pipeline change (which moves these by >1e-2).
constexpr double kGoldenTrainNrmse = 0.47435833888436468;
constexpr double kGoldenTestNrmse = 0.50228896593206585;
constexpr double kTolerance = 2e-3;

PredictionResult run_golden_pipeline() {
  const NarmaSeries series = generate_narma(2200, 10, 42);
  PredictionConfig config;
  config.nodes = 40;
  config.nonlinearity = NonlinearityKind::kIdentity;
  config.params = DfrParams{0.4, 0.5};
  return run_prediction_task(config, series.input, series.target, 1700);
}

TEST(GoldenNarma, EndToEndNrmseMatchesRecordedSeedValue) {
  const PredictionResult result = run_golden_pipeline();
  EXPECT_NEAR(result.train_nrmse, kGoldenTrainNrmse, kTolerance);
  EXPECT_NEAR(result.test_nrmse, kGoldenTestNrmse, kTolerance);
  EXPECT_EQ(result.test_prediction.size(), 500u);
}

TEST(GoldenNarma, PipelineIsRunToRunDeterministic) {
  const PredictionResult a = run_golden_pipeline();
  const PredictionResult b = run_golden_pipeline();
  EXPECT_EQ(a.train_nrmse, b.train_nrmse);
  EXPECT_EQ(a.test_nrmse, b.test_nrmse);
  for (std::size_t i = 0; i < a.test_prediction.size(); ++i) {
    ASSERT_EQ(a.test_prediction[i], b.test_prediction[i]) << "step " << i;
  }
}

}  // namespace
}  // namespace dfr
