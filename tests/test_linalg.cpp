// Unit tests for the dense linear-algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/stats.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

TEST(Matrix, ConstructsZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, InitializerListAndEquality) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  Matrix same{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(m == same);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), CheckError);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix mt = m.transposed();
  EXPECT_EQ(mt.rows(), 3u);
  EXPECT_EQ(mt(0, 1), 4.0);
  EXPECT_TRUE(mt.transposed() == m);
}

TEST(Matrix, MatmulSmallKnown) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), CheckError);
}

TEST(Matrix, TransposeProductsAgreeWithExplicitTranspose) {
  Rng rng(7);
  Matrix a(5, 3), b(5, 4);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
    for (std::size_t c = 0; c < 4; ++c) b(r, c) = rng.normal();
  }
  const Matrix expected = matmul(a.transposed(), b);
  const Matrix actual = matmul_at_b(a, b);
  EXPECT_LT((expected - actual).max_abs(), 1e-12);

  Matrix c(4, 3);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t col = 0; col < 3; ++col) c(r, col) = rng.normal();
  }
  const Matrix expected2 = matmul(a, c.transposed());
  const Matrix actual2 = matmul_a_bt(a, c);
  EXPECT_LT((expected2 - actual2).max_abs(), 1e-12);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  Rng rng(11);
  Matrix a(6, 4);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
  }
  const double lambda = 0.5;
  Matrix expected = matmul_at_b(a, a);
  for (std::size_t i = 0; i < 4; ++i) expected(i, i) += lambda;
  const Matrix actual = gram_at_a(a, lambda);
  EXPECT_LT((expected - actual).max_abs(), 1e-12);
}

TEST(Matrix, MatvecAndTransposedMatvec) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Vector x = {1.0, 0.5, -1.0};
  Vector y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 1.0 + 1.0 - 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0 + 2.5 - 6.0);

  Vector z = {2.0, -1.0};
  Vector w = matvec_t(a, z);
  EXPECT_DOUBLE_EQ(w[0], 2.0 - 4.0);
  EXPECT_DOUBLE_EQ(w[1], 4.0 - 5.0);
  EXPECT_DOUBLE_EQ(w[2], 6.0 - 6.0);
}

TEST(Matrix, AddOuterRankOneUpdate) {
  Matrix a(2, 3);
  Vector x = {1.0, 2.0};
  Vector y = {3.0, 4.0, 5.0};
  add_outer(a, 2.0, x, y);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(1, 2), 20.0);
}

TEST(Matrix, AllFiniteDetectsNan) {
  Matrix m(2, 2);
  EXPECT_TRUE(m.all_finite());
  m(1, 1) = std::nan("");
  EXPECT_FALSE(m.all_finite());
}

TEST(Cholesky, FactorizesKnownSpdMatrix) {
  Matrix a{{4, 2}, {2, 3}};
  auto l = cholesky_factor(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_DOUBLE_EQ((*l)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((*l)(1, 0), 1.0);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-15);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_factor(a).has_value());
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  Rng rng(3);
  const std::size_t n = 20;
  Matrix base(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) base(r, c) = rng.normal();
  }
  Matrix spd = gram_at_a(base, 1.0);  // base^T base + I, strictly SPD
  Vector x_true(n);
  for (double& v : x_true) v = rng.normal();
  const Vector b = matvec(spd, x_true);
  const Vector x = cholesky_solve(spd, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-9);
}

TEST(Cholesky, SolverReusesFactorizationForMatrixRhs) {
  Matrix a{{5, 1, 0}, {1, 4, 1}, {0, 1, 3}};
  Matrix b{{1, 0}, {0, 1}, {2, -1}};
  CholeskySolver solver(a);
  ASSERT_TRUE(solver.ok());
  const Matrix x = solver.solve(b);
  const Matrix residual = matmul(a, x) - b;
  EXPECT_LT(residual.max_abs(), 1e-12);
}

TEST(Cholesky, LogDetMatchesKnownValue) {
  Matrix a{{4, 0}, {0, 9}};
  CholeskySolver solver(a);
  ASSERT_TRUE(solver.ok());
  EXPECT_NEAR(solver.log_det(), std::log(36.0), 1e-12);
}

TEST(Stats, MeanVarianceStd) {
  const Vector v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(variance(v), 5.0 / 3.0, 1e-15);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-15);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const Vector a = {1.0, 2.0, 3.0};
  const Vector b = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const Vector c = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, NrmseZeroForPerfectPrediction) {
  const Vector t = {1.0, 2.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(nrmse(t, t), 0.0);
}

TEST(Stats, PercentileKnownValues) {
  const Vector v = {15.0, 20.0, 35.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 35.0);
  // Linear interpolation: rank = 0.25 * 4 = 1 exactly.
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
  // rank = 0.40 * 4 = 1.6 -> 20 + 0.6 * (35 - 20) = 29.
  EXPECT_DOUBLE_EQ(percentile(v, 40.0), 29.0);
}

TEST(Stats, PercentileIsOrderInvariant) {
  const Vector sorted = {1.0, 2.0, 3.0, 4.0};
  const Vector shuffled = {3.0, 1.0, 4.0, 2.0};
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile(sorted, p), percentile(shuffled, p)) << p;
  }
}

TEST(Stats, PercentileSingleElementAndErrors) {
  const Vector one = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 7.0);
  EXPECT_THROW(percentile({}, 50.0), CheckError);
  EXPECT_THROW(percentile(one, -1.0), CheckError);
  EXPECT_THROW(percentile(one, 100.5), CheckError);
}

TEST(Stats, SummarizeMatchesDirectComputation) {
  Rng rng(9);
  Vector v(500);
  for (double& x : v) x = rng.uniform(0.0, 100.0);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, v.size());
  EXPECT_DOUBLE_EQ(s.mean, mean(v));
  EXPECT_DOUBLE_EQ(s.min, min_value(v));
  EXPECT_DOUBLE_EQ(s.max, max_value(v));
  EXPECT_DOUBLE_EQ(s.p50, percentile(v, 50.0));
  EXPECT_DOUBLE_EQ(s.p90, percentile(v, 90.0));
  EXPECT_DOUBLE_EQ(s.p99, percentile(v, 99.0));
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_THROW(summarize({}), CheckError);
}

TEST(Matrix, MatvecIntoMatchesMatvec) {
  Rng rng(13);
  Matrix a(4, 6);
  Vector x(6);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.normal();
  }
  for (double& v : x) v = rng.normal();
  const Vector expected = matvec(a, x);
  Vector y(4, -1.0);
  matvec_into(a, x, y);
  EXPECT_EQ(y, expected);  // bitwise: same kernel
  Vector wrong_len(3);
  EXPECT_THROW(matvec_into(a, x, wrong_len), CheckError);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(5);
  Vector v(100);
  RunningStats rs;
  for (double& x : v) {
    x = rng.normal(3.0, 2.0);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(v), 1e-10);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(v));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(v));
}

}  // namespace
}  // namespace dfr
