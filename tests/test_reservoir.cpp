// Unit tests for the modular-DFR forward model, mask, and nonlinearities.
#include <gtest/gtest.h>

#include <cmath>

#include "dfr/mask.hpp"
#include "dfr/nonlinearity.hpp"
#include "dfr/reservoir.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

// ---- Nonlinearity ----------------------------------------------------------

class NonlinearityDerivative
    : public ::testing::TestWithParam<NonlinearityKind> {};

TEST_P(NonlinearityDerivative, MatchesFiniteDifferenceEverywhere) {
  const Nonlinearity f(GetParam(), 2.0);
  const double eps = 1e-6;
  for (double s : {-3.0, -1.1, -0.4, -0.01, 0.02, 0.3, 0.9, 2.5}) {
    const double fd = (f.value(s + eps) - f.value(s - eps)) / (2.0 * eps);
    EXPECT_NEAR(f.derivative(s), fd, 1e-6 * std::max(1.0, std::fabs(fd)))
        << nonlinearity_name(GetParam()) << " at s=" << s;
    const auto both = f.value_and_slope(s);
    EXPECT_DOUBLE_EQ(both.value, f.value(s));
    EXPECT_DOUBLE_EQ(both.slope, f.derivative(s));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, NonlinearityDerivative,
    ::testing::Values(NonlinearityKind::kIdentity, NonlinearityKind::kMackeyGlass,
                      NonlinearityKind::kTanh, NonlinearityKind::kSine,
                      NonlinearityKind::kCubic, NonlinearityKind::kSaturating),
    [](const ::testing::TestParamInfo<NonlinearityKind>& param_info) {
      std::string name = nonlinearity_name(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Nonlinearity, MackeyGlassKnownValues) {
  const Nonlinearity f(NonlinearityKind::kMackeyGlass, 1.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(1.0), 0.5);      // 1 / (1 + 1)
  EXPECT_DOUBLE_EQ(f.value(-1.0), -0.5);    // odd symmetry with |s|^p
  const Nonlinearity f2(NonlinearityKind::kMackeyGlass, 2.0);
  EXPECT_DOUBLE_EQ(f2.value(2.0), 0.4);     // 2 / (1 + 4)
}

TEST(Nonlinearity, ParseRoundTrip) {
  for (auto kind : {NonlinearityKind::kIdentity, NonlinearityKind::kMackeyGlass,
                    NonlinearityKind::kTanh, NonlinearityKind::kSine,
                    NonlinearityKind::kCubic, NonlinearityKind::kSaturating}) {
    EXPECT_EQ(parse_nonlinearity(nonlinearity_name(kind)), kind);
  }
  EXPECT_THROW(parse_nonlinearity("bogus"), CheckError);
  EXPECT_THROW(Nonlinearity(NonlinearityKind::kMackeyGlass, 0.5), CheckError);
}

// ---- Mask -------------------------------------------------------------------

TEST(Mask, BinaryEntriesArePlusMinusOne) {
  Rng rng(3);
  const Mask mask(16, 4, MaskKind::kBinary, rng);
  int plus = 0, minus = 0;
  for (std::size_t n = 0; n < 16; ++n) {
    for (std::size_t v = 0; v < 4; ++v) {
      const double w = mask.weights()(n, v);
      EXPECT_TRUE(w == 1.0 || w == -1.0);
      (w > 0 ? plus : minus)++;
    }
  }
  EXPECT_GT(plus, 10);   // both signs occur
  EXPECT_GT(minus, 10);
}

TEST(Mask, UniformEntriesInRange) {
  Rng rng(5);
  const Mask mask(16, 4, MaskKind::kUniform, rng);
  for (std::size_t n = 0; n < 16; ++n) {
    for (std::size_t v = 0; v < 4; ++v) {
      const double w = mask.weights()(n, v);
      EXPECT_GE(w, -1.0);
      EXPECT_LE(w, 1.0);
    }
  }
}

TEST(Mask, DeterministicForSameSeed) {
  Rng a(9), b(9);
  const Mask m1(8, 3, MaskKind::kBinary, a);
  const Mask m2(8, 3, MaskKind::kBinary, b);
  EXPECT_TRUE(m1.weights() == m2.weights());
}

TEST(Mask, ApplyMatchesMatrixVectorProduct) {
  Rng rng(7);
  const Mask mask(6, 2, MaskKind::kUniform, rng);
  const Vector u = {0.5, -1.5};
  const Vector j = mask.apply(u);
  for (std::size_t n = 0; n < 6; ++n) {
    EXPECT_NEAR(j[n], mask.weights()(n, 0) * 0.5 - mask.weights()(n, 1) * 1.5,
                1e-15);
  }
}

TEST(Mask, ApplySeriesMatchesPerStepApply) {
  Rng rng(11);
  const Mask mask(5, 3, MaskKind::kUniform, rng);
  Matrix series(4, 3);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t v = 0; v < 3; ++v) series(t, v) = rng.normal();
  }
  const Matrix j = mask.apply_series(series);
  for (std::size_t t = 0; t < 4; ++t) {
    const Vector expected = mask.apply(series.row(t));
    EXPECT_LT(max_abs_diff(j.row(t), expected), 1e-15);
  }
}

TEST(Mask, ChannelMismatchThrows) {
  Rng rng(1);
  const Mask mask(5, 3, MaskKind::kBinary, rng);
  Matrix wrong(4, 2);
  EXPECT_THROW(mask.apply_series(wrong), CheckError);
}

// ---- Reservoir forward ------------------------------------------------------

TEST(Reservoir, HandComputedTwoNodeTwoStep) {
  // Nx = 2, identity f: x(k)_n = A (j_n + x(k-1)_n) + B x(k)_{n-1},
  // x(k)_0 = x(k-1)_2.
  const ModularReservoir res(2, Nonlinearity{});
  const DfrParams p{0.5, 0.25};
  Matrix j{{1.0, 2.0}, {0.5, -1.0}};
  const Matrix states = res.run(j, p);

  // k=1: x0=0 -> s1 = 1, x(1)_1 = 0.5*1 + 0.25*0      = 0.5
  //             s2 = 2, x(1)_2 = 0.5*2 + 0.25*0.5     = 1.125
  EXPECT_DOUBLE_EQ(states(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(states(1, 1), 1.125);
  // k=2: wrap x(2)_0 = x(1)_2 = 1.125
  //   x(2)_1 = 0.5*(0.5 + 0.5)  + 0.25*1.125  = 0.78125
  //   x(2)_2 = 0.5*(-1 + 1.125) + 0.25*0.78125 = 0.2578125
  EXPECT_DOUBLE_EQ(states(2, 0), 0.78125);
  EXPECT_DOUBLE_EQ(states(2, 1), 0.2578125);
}

TEST(Reservoir, InitialStateIsZeroRow) {
  const ModularReservoir res(4, Nonlinearity{});
  Matrix j(3, 4, 1.0);
  const Matrix states = res.run(j, DfrParams{0.1, 0.1});
  for (std::size_t n = 0; n < 4; ++n) EXPECT_EQ(states(0, n), 0.0);
}

TEST(Reservoir, ZeroGainGivesZeroStates) {
  const ModularReservoir res(4, Nonlinearity{});
  Matrix j(5, 4, 2.0);
  const Matrix states = res.run(j, DfrParams{0.0, 0.0});
  EXPECT_EQ(states.max_abs(), 0.0);
}

TEST(Reservoir, LinearInInputForIdentityNonlinearity) {
  Rng rng(17);
  const ModularReservoir res(6, Nonlinearity{});
  const DfrParams p{0.3, 0.4};
  Matrix j(8, 6);
  for (std::size_t t = 0; t < 8; ++t) {
    for (std::size_t n = 0; n < 6; ++n) j(t, n) = rng.normal();
  }
  const Matrix s1 = res.run(j, p);
  Matrix j2 = j;
  j2 *= 2.0;
  const Matrix s2 = res.run(j2, p);
  EXPECT_LT((s2 - (s1 * 2.0)).max_abs(), 1e-12);  // homogeneity
}

TEST(Reservoir, ContractiveForSmallParamsExpandsWithA) {
  Rng rng(23);
  Matrix j(20, 8);
  for (std::size_t t = 0; t < 20; ++t) {
    for (std::size_t n = 0; n < 8; ++n) j(t, n) = rng.normal();
  }
  const ModularReservoir res(8, Nonlinearity{});
  const double small = res.run(j, DfrParams{0.01, 0.01}).max_abs();
  const double large = res.run(j, DfrParams{0.3, 0.3}).max_abs();
  EXPECT_LT(small, large);
  EXPECT_TRUE(res.run(j, DfrParams{0.3, 0.3}).all_finite());
}

TEST(Reservoir, StepMatchesRun) {
  Rng rng(29);
  const ModularReservoir res(5, Nonlinearity(NonlinearityKind::kTanh));
  const DfrParams p{0.2, 0.3};
  Matrix j(6, 5);
  for (std::size_t t = 0; t < 6; ++t) {
    for (std::size_t n = 0; n < 5; ++n) j(t, n) = rng.normal();
  }
  const Matrix states = res.run(j, p);
  Vector x_prev(5, 0.0), x_cur(5, 0.0);
  for (std::size_t k = 0; k < 6; ++k) {
    res.step(p, j.row(k), x_prev, x_cur);
    EXPECT_LT(max_abs_diff(x_cur, states.row(k + 1)), 1e-15) << "step " << k;
    std::swap(x_prev, x_cur);
  }
}

TEST(Reservoir, WrapCouplesLastNodeIntoNextStep) {
  // With j = 0 after the first step, the only signal path into x(2)_1 via B
  // is the wrap from x(1)_Nx.
  const ModularReservoir res(3, Nonlinearity{});
  const DfrParams p{0.0, 0.5};  // A = 0: node values come only from the chain
  Matrix j(2, 3);
  j(0, 0) = 1.0;  // never reaches any node since A = 0
  const Matrix states = res.run(j, p);
  EXPECT_EQ(states.max_abs(), 0.0);

  // Now with A > 0 at step 1 only, step 2 must receive B * x(1)_3 at node 1.
  const DfrParams p2{1.0, 0.5};
  Matrix j2(2, 3);
  j2(0, 2) = 1.0;  // drives x(1)_3 = 1 (A=1, chain contributions zero before)
  const Matrix s2 = res.run(j2, p2);
  EXPECT_DOUBLE_EQ(s2(1, 2), 1.0);
  // x(2)_1 = A*(j=0 + x(1)_1=0) + B*x(1)_3 = 0.5.
  EXPECT_DOUBLE_EQ(s2(2, 0), 0.5);
}

}  // namespace
}  // namespace dfr
