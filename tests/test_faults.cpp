// Robustness suite (PR 10): dirty-wire survival, deadlines, retry budgets,
// and circuit breaking. The claims pinned here:
//   * a frame stalled at ANY byte offset times out typed (WireIoError
//     Kind::kTimeout) instead of hanging the reader — same for a writer
//     wedged against a full socket buffer;
//   * parse_fault_spec round-trips every fault kind and rejects nonsense;
//   * each injected shard fault (garbage body, close-mid-frame, drop-accept)
//     costs exactly the expected retries and then resolves kOk;
//   * a wedged (stall-fault) shard never hangs the router: every request
//     resolves within its deadline budget with a typed outcome, and a
//     request-scoped deadline yields the router-local kTimeout;
//   * the circuit breaker opens after the consecutive-failure threshold,
//     fast-fails without dialing (kBreakerOpen when nothing is dialable),
//     half-opens via a health signal, closes on a successful trial, and
//     re-opens (a fresh trip) when the trial fails;
//   * p2c_pair eventually compares every replica pair of a wide group while
//     staying deterministic per (seed, seq).
// Shards run in-process on Unix sockets under a private temp dir; fault
// schedules are scripted through ShardServer::set_fault, so nothing here
// depends on timing beyond generous deadline bounds.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/fault.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "serve/synth.hpp"
#include "serve/wire.hpp"
#include "util/check.hpp"

namespace {

using namespace dfr;
using namespace dfr::serve;

std::filesystem::path unique_socket_dir() {
  static std::atomic<int> counter{0};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dfr_faults_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir;
}

wire::Endpoint unix_endpoint(const std::filesystem::path& dir,
                             const std::string& name) {
  return wire::parse_endpoint("unix:" + (dir / name).string());
}

void register_synth_fleet(ModelRegistry& registry) {
  SynthModelSpec spec;
  for (std::size_t i = 0; i < 2; ++i) {
    spec.seed = 42 + i;
    registry.register_model(make_synth_artifact("m" + std::to_string(i), spec));
  }
}

/// Router config tuned for scripted fault tests: no background poller (the
/// tests drive breaker probes via note_health), no backoff sleeps, placement
/// order (deterministic first attempt), short attempt deadlines.
RouterConfig fault_router_config() {
  RouterConfig config;
  config.replicas = 2;
  config.load_aware = false;
  config.health_poll_ms = 0;
  config.default_attempt_deadline_us = 250'000;
  config.retry_budget = 3;
  config.backoff_base_us = 0;
  config.breaker_threshold = 0;  // tests opt in explicitly
  return config;
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// ---- fault-spec parsing ----------------------------------------------------

TEST(FaultSpecParse, RoundTripsEveryKind) {
  EXPECT_EQ(parse_fault_spec("none").kind, FaultSpec::Kind::kNone);
  EXPECT_EQ(parse_fault_spec("").kind, FaultSpec::Kind::kNone);

  const FaultSpec stall = parse_fault_spec("stall:0.5");
  EXPECT_EQ(stall.kind, FaultSpec::Kind::kStall);
  EXPECT_DOUBLE_EQ(stall.probability, 0.5);

  const FaultSpec delay = parse_fault_spec("delay:25:1.0");
  EXPECT_EQ(delay.kind, FaultSpec::Kind::kDelay);
  EXPECT_EQ(delay.delay_ms, 25u);
  EXPECT_DOUBLE_EQ(delay.probability, 1.0);

  EXPECT_EQ(parse_fault_spec("garbage:0.1").kind, FaultSpec::Kind::kGarbage);
  EXPECT_EQ(parse_fault_spec("close-mid-frame:1").kind,
            FaultSpec::Kind::kCloseMidFrame);
  EXPECT_EQ(parse_fault_spec("drop-accept:0.25").kind,
            FaultSpec::Kind::kDropAccept);
}

TEST(FaultSpecParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_fault_spec("stall"), CheckError);
  EXPECT_THROW((void)parse_fault_spec("stall:2.0"), CheckError);
  EXPECT_THROW((void)parse_fault_spec("stall:-0.1"), CheckError);
  EXPECT_THROW((void)parse_fault_spec("delay:1.0"), CheckError);
  EXPECT_THROW((void)parse_fault_spec("explode:0.5"), CheckError);
  EXPECT_THROW((void)parse_fault_spec("stall:abc"), CheckError);
}

TEST(FaultInjector, DeterministicPerSeedAndHonorsLimit) {
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kGarbage;
  spec.probability = 0.5;
  const auto draw_pattern = [&](std::uint64_t seed) {
    FaultInjector injector;
    injector.arm(spec, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.draw_response_fault().kind !=
                      FaultSpec::Kind::kNone);
    }
    return fired;
  };
  EXPECT_EQ(draw_pattern(1), draw_pattern(1));  // same seed, same schedule
  EXPECT_NE(draw_pattern(1), draw_pattern(2));  // seeds decorrelate

  FaultSpec once = spec;
  once.probability = 1.0;
  once.limit = 1;  // "fail exactly once, then heal"
  FaultInjector injector;
  injector.arm(once, 7);
  EXPECT_EQ(injector.draw_response_fault().kind, FaultSpec::Kind::kGarbage);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(injector.draw_response_fault().kind, FaultSpec::Kind::kNone);
  }
  EXPECT_EQ(injector.injected(), 1u);
}

// ---- wire deadlines --------------------------------------------------------

TEST(WireDeadline, BasicsAndPollRounding) {
  EXPECT_TRUE(wire::Deadline::never().unlimited());
  EXPECT_FALSE(wire::Deadline::never().expired());
  EXPECT_EQ(wire::Deadline::never().poll_timeout_ms(), -1);

  const wire::Deadline soon = wire::Deadline::after_us(1);
  // Sub-millisecond budgets round UP to 1ms: poll(0) would spin.
  EXPECT_GE(soon.poll_timeout_ms(), 0);
  const wire::Deadline gone = wire::Deadline::after_us(0);
  EXPECT_TRUE(gone.expired());
  EXPECT_EQ(gone.remaining_us(), 0u);
}

/// A reader stalled at EVERY byte offset of a frame times out typed — the
/// "per-byte stall" sweep. A peer that sends k bytes of a valid frame and
/// then goes silent must never hang read_frame, whether the stall lands
/// mid-header or mid-body.
TEST(WireDeadline, ReadFrameTimesOutTypedAtEveryByteOffset) {
  wire::WireResponse response;
  response.seq = 9;
  response.status = wire::WireStatus::kOk;
  response.label = 1;
  response.latency_us = 12.5;
  response.logits = {0.25, 0.5, 0.25};
  std::vector<std::byte> frame;
  wire::encode_response(response, frame);
  ASSERT_GT(frame.size(), sizeof(wire::FrameHeader));

  for (std::size_t k = 0; k < frame.size(); ++k) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    if (k > 0) {
      ASSERT_EQ(::send(fds[1], frame.data(), k, 0),
                static_cast<ssize_t>(k));
    }
    std::vector<std::byte> out;
    try {
      (void)wire::read_frame(fds[0], out, wire::Deadline::after_us(5'000));
      FAIL() << "offset " << k << ": read_frame returned instead of timing out";
    } catch (const wire::WireIoError& e) {
      EXPECT_EQ(e.kind(), wire::WireIoError::Kind::kTimeout)
          << "offset " << k << ": " << e.what();
    }
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

TEST(WireDeadline, ReadFrameCompletesWhenAllBytesPresent) {
  wire::WireResponse response;
  response.seq = 11;
  response.status = wire::WireStatus::kOk;
  std::vector<std::byte> frame;
  wire::encode_response(response, frame);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[1], frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  std::vector<std::byte> out;
  ASSERT_TRUE(wire::read_frame(fds[0], out, wire::Deadline::after_us(250'000)));
  EXPECT_EQ(wire::decode_response(out).seq, 11u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireDeadline, MidFrameEofIsTypedEof) {
  wire::WireResponse response;
  response.seq = 5;
  std::vector<std::byte> frame;
  wire::encode_response(response, frame);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[1], frame.data(), frame.size() / 2, 0),
            static_cast<ssize_t>(frame.size() / 2));
  ::close(fds[1]);  // peer dies mid-frame
  std::vector<std::byte> out;
  try {
    (void)wire::read_frame(fds[0], out, wire::Deadline::after_us(250'000));
    FAIL() << "mid-frame EOF must throw";
  } catch (const wire::WireIoError& e) {
    EXPECT_EQ(e.kind(), wire::WireIoError::Kind::kEof);
  }
  ::close(fds[0]);
}

TEST(WireDeadline, WriteFrameTimesOutAgainstAFullBuffer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int small = 4096;  // kernel clamps to its minimum; still finite
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small)),
            0);
  // Nobody reads fds[1]: a large enough frame must wedge the writer.
  std::vector<std::byte> frame(4 << 20, std::byte{0x5A});
  try {
    wire::write_frame(fds[0], frame, wire::Deadline::after_us(30'000));
    FAIL() << "write_frame against a full buffer must time out";
  } catch (const wire::WireIoError& e) {
    EXPECT_EQ(e.kind(), wire::WireIoError::Kind::kTimeout);
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---- p2c pair sampling -----------------------------------------------------

TEST(P2cPair, TwoReplicasAlwaysComparePlacementPair) {
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_EQ(p2c_pair(/*seed=*/1, seq, 2), (std::pair<std::size_t,
                                             std::size_t>{0, 1}));
  }
}

TEST(P2cPair, EveryPairOfAWideGroupIsEventuallyCompared) {
  for (std::size_t n = 3; n <= 5; ++n) {
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (std::uint64_t seq = 0; seq < 512; ++seq) {
      const auto pair = p2c_pair(/*seed=*/42, seq, n);
      ASSERT_LT(pair.first, pair.second);
      ASSERT_LT(pair.second, n);
      seen.insert(pair);
      EXPECT_EQ(pair, p2c_pair(42, seq, n));  // deterministic per (seed, seq)
    }
    EXPECT_EQ(seen.size(), n * (n - 1) / 2) << "group size " << n;
  }
}

// ---- scripted shard faults behind the router -------------------------------

class FaultTier : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = unique_socket_dir();
    register_synth_fleet(registry0_);
    register_synth_fleet(registry1_);
    shard0_ = std::make_unique<ShardServer>(registry0_,
                                            unix_endpoint(dir_, "s0.sock"));
    shard1_ = std::make_unique<ShardServer>(registry1_,
                                            unix_endpoint(dir_, "s1.sock"));
  }

  void TearDown() override {
    router_.reset();
    shard0_.reset();
    shard1_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void make_router(const RouterConfig& config) {
    router_ = std::make_unique<Router>(config);
    router_->add_shard("s0", shard0_->endpoint());
    router_->add_shard("s1", shard1_->endpoint());
  }

  /// The shard a given model's placement tries FIRST (load_aware off).
  ShardServer& primary_for(const std::string& model_id) {
    return router_->placement(model_id)[0] == "s0" ? *shard0_ : *shard1_;
  }

  std::filesystem::path dir_;
  ModelRegistry registry0_;
  ModelRegistry registry1_;
  std::unique_ptr<ShardServer> shard0_;
  std::unique_ptr<ShardServer> shard1_;
  std::unique_ptr<Router> router_;
};

FaultSpec certain_fault(FaultSpec::Kind kind, std::uint64_t limit = ~0ull) {
  FaultSpec spec;
  spec.kind = kind;
  spec.probability = 1.0;
  spec.limit = limit;
  return spec;
}

TEST_F(FaultTier, CloseMidFrameCostsExactlyOneRetry) {
  make_router(fault_router_config());
  ShardServer& faulty = primary_for("m0");
  const std::string faulty_name = router_->placement("m0")[0];
  faulty.set_fault(certain_fault(FaultSpec::Kind::kCloseMidFrame, /*limit=*/1));

  const Matrix series = make_synth_series(32, 2, 7);
  const wire::WireResponse response = router_->infer("m0", series);
  EXPECT_EQ(response.status, wire::WireStatus::kOk);
  EXPECT_EQ(faulty.faults_injected(), 1u);

  // Exactly one mid-frame EOF, exactly one retry, and the retry (placement
  // walk: next replica) succeeded.
  const ShardCounters faulted = router_->counters(faulty_name);
  EXPECT_EQ(faulted.io_failures, 1u);
  EXPECT_EQ(faulted.retried, 1u);
  std::uint64_t total_requests = 0;
  std::uint64_t total_ok = 0;
  for (const std::string& name : router_->shard_names()) {
    total_requests += router_->counters(name).requests;
    total_ok += router_->counters(name).ok;
  }
  EXPECT_EQ(total_requests, 2u);
  EXPECT_EQ(total_ok, 1u);
}

TEST_F(FaultTier, GarbageBodyBehindValidHeaderIsRejectedTypedAndRetried) {
  make_router(fault_router_config());
  ShardServer& faulty = primary_for("m0");
  const std::string faulty_name = router_->placement("m0")[0];
  faulty.set_fault(certain_fault(FaultSpec::Kind::kGarbage, /*limit=*/1));

  const Matrix series = make_synth_series(32, 2, 8);
  const wire::WireResponse response = router_->infer("m0", series);
  EXPECT_EQ(response.status, wire::WireStatus::kOk);
  // The garbage frame was rejected at decode (CheckError -> io_failure),
  // never surfaced to the caller, and cost one retry.
  const ShardCounters faulted = router_->counters(faulty_name);
  EXPECT_EQ(faulted.io_failures, 1u);
  EXPECT_EQ(faulted.retried, 1u);
}

TEST_F(FaultTier, DropAcceptLooksLikeCleanEofAndRetries) {
  make_router(fault_router_config());
  ShardServer& faulty = primary_for("m0");
  faulty.set_fault(certain_fault(FaultSpec::Kind::kDropAccept, /*limit=*/1));

  const Matrix series = make_synth_series(32, 2, 9);
  const wire::WireResponse response = router_->infer("m0", series);
  EXPECT_EQ(response.status, wire::WireStatus::kOk);
  EXPECT_EQ(faulty.faults_injected(), 1u);
}

TEST_F(FaultTier, DelayFaultSlowsButCompletes) {
  make_router(fault_router_config());
  ShardServer& faulty = primary_for("m0");
  FaultSpec delay = certain_fault(FaultSpec::Kind::kDelay, /*limit=*/1);
  delay.delay_ms = 30;
  faulty.set_fault(delay);

  const auto start = std::chrono::steady_clock::now();
  const Matrix series = make_synth_series(32, 2, 10);
  const wire::WireResponse response = router_->infer("m0", series);
  EXPECT_EQ(response.status, wire::WireStatus::kOk);
  EXPECT_GE(elapsed_ms(start), 25.0);  // the delay really happened
}

/// The headline robustness claim: a wedged shard (accepts, never replies)
/// never hangs the router. Every request resolves kOk within the attempt-
/// deadline + retry budget, served by the healthy replica.
TEST_F(FaultTier, WedgedShardNeverHangsRouter) {
  RouterConfig config = fault_router_config();
  config.default_attempt_deadline_us = 60'000;
  make_router(config);
  ShardServer& wedged = primary_for("m0");
  const std::string wedged_name = router_->placement("m0")[0];
  wedged.set_fault(certain_fault(FaultSpec::Kind::kStall));

  const Matrix series = make_synth_series(32, 2, 11);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    const wire::WireResponse response = router_->infer("m0", series);
    ASSERT_EQ(response.status, wire::WireStatus::kOk) << "request " << i;
  }
  // 4 requests x (one 60ms timeout + a healthy-replica round trip) plus
  // slack: an order of magnitude under a hang.
  EXPECT_LT(elapsed_ms(start), 4'000.0);
  EXPECT_GE(router_->counters(wedged_name).timeouts, 1u);
}

TEST_F(FaultTier, RequestDeadlineBudgetYieldsTypedTimeout) {
  RouterConfig config = fault_router_config();
  make_router(config);
  // Wedge BOTH shards: no replica can answer, so the request's own budget
  // is what ends the walk — typed kTimeout, bounded wall clock.
  shard0_->set_fault(certain_fault(FaultSpec::Kind::kStall));
  shard1_->set_fault(certain_fault(FaultSpec::Kind::kStall));

  RequestOptions options;
  options.deadline_us = 80'000;
  const Matrix series = make_synth_series(32, 2, 12);
  const auto start = std::chrono::steady_clock::now();
  const wire::WireResponse response = router_->infer("m0", series, options);
  EXPECT_EQ(response.status, wire::WireStatus::kTimeout);
  EXPECT_LT(elapsed_ms(start), 2'000.0);
}

// ---- circuit breaker -------------------------------------------------------

class BreakerTier : public FaultTier {
 protected:
  /// Single-shard router (s0 only): the breaker schedule is scripted
  /// without a healthy replica absorbing the traffic.
  void make_single_shard_router() {
    RouterConfig config = fault_router_config();
    config.replicas = 1;
    config.default_attempt_deadline_us = 40'000;
    config.retry_budget = 1;       // 2 dials per request
    config.breaker_threshold = 2;  // ... so one request trips it
    router_ = std::make_unique<Router>(config);
    router_->add_shard("s0", shard0_->endpoint());
  }
};

TEST_F(BreakerTier, OpensFastFailsHalfOpensAndCloses) {
  make_single_shard_router();
  shard0_->set_fault(certain_fault(FaultSpec::Kind::kStall));
  const Matrix series = make_synth_series(32, 2, 13);

  // Request 1: both dials time out -> threshold crossed -> breaker opens.
  wire::WireResponse response = router_->infer("m0", series);
  EXPECT_EQ(response.status, wire::WireStatus::kUnavailable);
  EXPECT_EQ(router_->breaker_state("s0"), BreakerState::kOpen);
  EXPECT_EQ(router_->counters("s0").breaker_trips, 1u);
  const std::uint64_t dials_when_tripped = router_->counters("s0").requests;

  // Request 2: breaker open, nothing dialable -> typed fast-fail with ZERO
  // dials (the wedged shard is not contacted at all).
  const auto start = std::chrono::steady_clock::now();
  response = router_->infer("m0", series);
  EXPECT_EQ(response.status, wire::WireStatus::kBreakerOpen);
  EXPECT_LT(elapsed_ms(start), 1'000.0);  // no 40ms dial, let alone two
  EXPECT_EQ(router_->counters("s0").requests, dials_when_tripped);
  EXPECT_GE(router_->counters("s0").breaker_fastfails, 1u);

  // Heal the shard, then deliver the probe signal the poller would have:
  // the breaker half-opens.
  shard0_->set_fault(FaultSpec{});
  router_->note_health("s0", router_->health("s0"));
  EXPECT_EQ(router_->breaker_state("s0"), BreakerState::kHalfOpen);

  // Request 3: the half-open trial is admitted and succeeds -> closed.
  response = router_->infer("m0", series);
  EXPECT_EQ(response.status, wire::WireStatus::kOk);
  EXPECT_EQ(router_->breaker_state("s0"), BreakerState::kClosed);
}

TEST_F(BreakerTier, FailedHalfOpenTrialReopensWithAFreshTrip) {
  make_single_shard_router();
  shard0_->set_fault(certain_fault(FaultSpec::Kind::kStall));
  const Matrix series = make_synth_series(32, 2, 14);

  (void)router_->infer("m0", series);  // trips the breaker
  ASSERT_EQ(router_->breaker_state("s0"), BreakerState::kOpen);
  ASSERT_EQ(router_->counters("s0").breaker_trips, 1u);

  // Health still answers on a stall-faulted shard (the injector only wedges
  // inference), so the probe signal half-opens the breaker even though the
  // shard is NOT actually healed.
  router_->note_health("s0", router_->health("s0"));
  ASSERT_EQ(router_->breaker_state("s0"), BreakerState::kHalfOpen);

  // The trial dial times out: the breaker re-opens immediately (one
  // half-open failure suffices — no fresh threshold run), counted as a
  // fresh trip.
  const wire::WireResponse response = router_->infer("m0", series);
  EXPECT_NE(response.status, wire::WireStatus::kOk);
  EXPECT_EQ(router_->breaker_state("s0"), BreakerState::kOpen);
  EXPECT_EQ(router_->counters("s0").breaker_trips, 2u);
}

TEST_F(BreakerTier, DisabledBreakerNeverOpens) {
  RouterConfig config = fault_router_config();
  config.replicas = 1;
  config.default_attempt_deadline_us = 40'000;
  config.retry_budget = 2;
  config.breaker_threshold = 0;  // disabled
  router_ = std::make_unique<Router>(config);
  router_->add_shard("s0", shard0_->endpoint());
  shard0_->set_fault(certain_fault(FaultSpec::Kind::kStall));

  const Matrix series = make_synth_series(32, 2, 15);
  EXPECT_EQ(router_->infer("m0", series).status,
            wire::WireStatus::kUnavailable);
  EXPECT_EQ(router_->breaker_state("s0"), BreakerState::kClosed);
  EXPECT_EQ(router_->counters("s0").breaker_trips, 0u);
  EXPECT_EQ(router_->counters("s0").requests, 3u);  // every dial really dialed
}

TEST_F(FaultTier, BreakerStatsAppearOnTheStatsPage) {
  RouterConfig config = fault_router_config();
  config.replicas = 1;
  config.default_attempt_deadline_us = 40'000;
  config.retry_budget = 1;
  config.breaker_threshold = 2;
  router_ = std::make_unique<Router>(config);
  router_->add_shard("s0", shard0_->endpoint());
  shard0_->set_fault(certain_fault(FaultSpec::Kind::kStall));
  const Matrix series = make_synth_series(32, 2, 16);
  (void)router_->infer("m0", series);  // trips
  (void)router_->infer("m0", series);  // fast-fails

  std::ostringstream os;
  router_->export_stats(os);
  const std::string stats = os.str();
  EXPECT_NE(stats.find("dfr_router_breaker_trips_total{shard=\"s0\"} 1"),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("dfr_router_breaker_fastfails_total{shard=\"s0\"} 1"),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("dfr_router_breaker_state{shard=\"s0\"} 1"),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("dfr_router_timeouts_total{shard=\"s0\"} 2"),
            std::string::npos)
      << stats;
}

}  // namespace
