// Distributed-tier tests (serve/router.hpp + serve/shard.hpp): consistent-
// hash placement is deterministic across router instances, spreads models
// across the fleet, and remaps only a removed shard's keys; a 2-shard tier
// behind the router serves BIT-identical logits to a single in-process
// InferenceServer for the same requests (float and quantized); draining a
// shard under live traffic loses not a single accepted request (the typed
// kShutdown retry path moves traffic to the surviving replica); a dead
// replica is skipped via WireIoError retry; and authoritative rejections
// (unknown model) are returned as-is, never retried. Shards run in-process
// on Unix sockets under a private temp dir, so the suite is hermetic.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "serve/synth.hpp"
#include "serve/wire.hpp"
#include "util/check.hpp"

namespace {

using namespace dfr;
using namespace dfr::serve;

std::filesystem::path unique_socket_dir() {
  static std::atomic<int> counter{0};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dfr_dist_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir;
}

wire::Endpoint unix_endpoint(const std::filesystem::path& dir,
                             const std::string& name) {
  return wire::parse_endpoint("unix:" + (dir / name).string());
}

/// The shared 2-model synthetic fleet: both shards and the local reference
/// registry build m0/m1 from the same specs (the dfr_shard --synth-models
/// convention: per-model seed = base + index).
void register_synth_fleet(ModelRegistry& registry) {
  SynthModelSpec spec;
  for (std::size_t i = 0; i < 2; ++i) {
    spec.seed = 42 + i;
    registry.register_model(
        make_synth_artifact("m" + std::to_string(i), spec));
  }
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// ---- placement -------------------------------------------------------------

TEST(Placement, DeterministicAcrossRouterInstances) {
  const auto build = [] {
    auto router = std::make_unique<Router>(RouterConfig{.replicas = 2});
    router->add_shard("alpha", wire::parse_endpoint("tcp:127.0.0.1:1"));
    router->add_shard("beta", wire::parse_endpoint("tcp:127.0.0.1:2"));
    router->add_shard("gamma", wire::parse_endpoint("tcp:127.0.0.1:3"));
    return router;
  };
  const auto a = build();
  const auto b = build();
  for (int i = 0; i < 64; ++i) {
    const std::string id = "model-" + std::to_string(i);
    const std::vector<std::string> pa = a->placement(id);
    ASSERT_EQ(pa.size(), 2u);
    EXPECT_NE(pa[0], pa[1]);  // replicas are distinct shards
    EXPECT_EQ(pa, b->placement(id));
    EXPECT_EQ(pa, a->placement(id));  // and stable on repeat
  }
}

TEST(Placement, SpreadsModelsAcrossTheFleet) {
  Router router(RouterConfig{.replicas = 1});
  router.add_shard("alpha", wire::parse_endpoint("tcp:127.0.0.1:1"));
  router.add_shard("beta", wire::parse_endpoint("tcp:127.0.0.1:2"));
  router.add_shard("gamma", wire::parse_endpoint("tcp:127.0.0.1:3"));
  std::set<std::string> primaries;
  for (int i = 0; i < 200; ++i) {
    primaries.insert(router.placement("model-" + std::to_string(i))[0]);
  }
  // 200 ids over 3 shards with 64 vnodes each: every shard owns some keys.
  EXPECT_EQ(primaries.size(), 3u);
}

TEST(Placement, RemovalRemapsOnlyTheRemovedShardsKeys) {
  Router router(RouterConfig{.replicas = 1});
  for (const char* name : {"alpha", "beta", "gamma", "delta"}) {
    router.add_shard(name, wire::parse_endpoint("tcp:127.0.0.1:1"));
  }
  std::vector<std::string> before;
  for (int i = 0; i < 300; ++i) {
    before.push_back(router.placement("model-" + std::to_string(i))[0]);
  }
  router.remove_shard("beta");
  std::size_t survivors_moved = 0;
  for (int i = 0; i < 300; ++i) {
    const std::string after =
        router.placement("model-" + std::to_string(i))[0];
    if (before[static_cast<std::size_t>(i)] == "beta") {
      EXPECT_NE(after, "beta");  // its keys slid to a survivor
    } else if (after != before[static_cast<std::size_t>(i)]) {
      ++survivors_moved;  // consistent hashing: this must not happen
    }
  }
  EXPECT_EQ(survivors_moved, 0u);

  // Re-adding restores the original placement exactly (name seeds the ring).
  router.add_shard("beta", wire::parse_endpoint("tcp:127.0.0.1:9"));
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(router.placement("model-" + std::to_string(i))[0],
              before[static_cast<std::size_t>(i)]);
  }
}

TEST(Placement, Fnv1a64KnownVectors) {
  // Published FNV-1a 64 test vectors pin the ring hash across refactors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// ---- 2-shard tier vs in-process server ------------------------------------

class TwoShardTier : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = unique_socket_dir();
    register_synth_fleet(registry0_);
    register_synth_fleet(registry1_);
    shard0_ = std::make_unique<ShardServer>(registry0_,
                                            unix_endpoint(dir_, "s0.sock"));
    shard1_ = std::make_unique<ShardServer>(registry1_,
                                            unix_endpoint(dir_, "s1.sock"));
    router_ = std::make_unique<Router>(RouterConfig{.replicas = 2});
    router_->add_shard("s0", shard0_->endpoint());
    router_->add_shard("s1", shard1_->endpoint());
  }

  void TearDown() override {
    router_.reset();
    shard0_.reset();
    shard1_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  ModelRegistry registry0_;
  ModelRegistry registry1_;
  std::unique_ptr<ShardServer> shard0_;
  std::unique_ptr<ShardServer> shard1_;
  std::unique_ptr<Router> router_;
};

TEST_F(TwoShardTier, RoutedTrafficBitIdenticalToInProcessServer) {
  ModelRegistry local_registry;
  register_synth_fleet(local_registry);
  InferenceServer local(local_registry);

  for (int i = 0; i < 24; ++i) {
    const std::string model_id = "m" + std::to_string(i % 2);
    const Matrix series = make_synth_series(48, 2, 9000 + i);
    RequestOptions options;
    if (i % 3 == 2) options.engine = QuantizedEngineKind::kAuto;

    const wire::WireResponse routed =
        router_->infer(model_id, series, options);
    ASSERT_EQ(routed.status, wire::WireStatus::kOk) << "request " << i;

    InferFuture future = local.submit(model_id, series, options);
    const InferResult& reference = future.get();
    ASSERT_EQ(reference.status, RequestStatus::kOk);

    EXPECT_EQ(routed.label, reference.label) << "request " << i;
    ASSERT_EQ(routed.logits.size(), reference.logits.size());
    for (std::size_t k = 0; k < reference.logits.size(); ++k) {
      EXPECT_TRUE(same_bits(routed.logits[k], reference.logits[k]))
          << "request " << i << " logit " << k;
    }
  }
}

TEST_F(TwoShardTier, DrainMidTrafficLosesNoAcceptedRequest) {
  constexpr int kRequests = 200;
  const Matrix series = make_synth_series(32, 2, 123);

  std::atomic<int> ok{0};
  std::atomic<int> not_ok{0};
  std::thread traffic([&] {
    for (int i = 0; i < kRequests; ++i) {
      const wire::WireResponse response =
          router_->infer("m" + std::to_string(i % 2), series);
      if (response.status == wire::WireStatus::kOk) {
        ++ok;
      } else {
        ++not_ok;
      }
    }
  });

  // Let traffic start, then drain s0 while requests are in flight. The
  // retry policy must absorb the drain: requests racing it land on s1.
  while (ok.load() < kRequests / 10) std::this_thread::yield();
  router_->drain_shard("s0");
  traffic.join();

  EXPECT_EQ(ok.load(), kRequests);
  EXPECT_EQ(not_ok.load(), 0);
  EXPECT_TRUE(shard0_->draining());

  // Every request resolved somewhere: the two shards' completed counters
  // account for every accepted request (retries re-sent, never lost).
  std::uint64_t completed = 0;
  for (InferenceServer* server :
       {&shard0_->server(), &shard1_->server()}) {
    for (const auto& [id, stats] : server->stats()) {
      completed += stats.completed;
    }
  }
  EXPECT_EQ(completed, static_cast<std::uint64_t>(kRequests));

  // After the drain, s0 is out of placement: every group is just s1.
  for (int i = 0; i < 8; ++i) {
    const std::vector<std::string> group =
        router_->placement("model-" + std::to_string(i));
    ASSERT_EQ(group.size(), 1u);
    EXPECT_EQ(group[0], "s1");
  }
}

TEST_F(TwoShardTier, HealthReflectsDrainState) {
  wire::HealthInfo info = router_->health("s0");
  EXPECT_TRUE(info.accepting);
  EXPECT_FALSE(info.draining);
  EXPECT_EQ(info.models, 2u);

  router_->drain_shard("s0");
  // The shard still answers health probes after leaving placement.
  info = router_->health("s0");
  EXPECT_FALSE(info.accepting);
  EXPECT_TRUE(info.draining);
}

TEST_F(TwoShardTier, AuthoritativeRejectionIsNeverRetried) {
  const Matrix series = make_synth_series(16, 2, 7);
  const wire::WireResponse response = router_->infer("no-such-model", series);
  EXPECT_EQ(response.status, wire::WireStatus::kUnknownModel);
  // Exactly one shard answered; the rejection was not retried on the other.
  const ShardCounters c0 = router_->counters("s0");
  const ShardCounters c1 = router_->counters("s1");
  EXPECT_EQ(c0.rejected + c1.rejected, 1u);
  EXPECT_EQ(c0.retried + c1.retried, 0u);
}

// ---- replica failover ------------------------------------------------------

TEST(Failover, DeadPrimaryRetriesOntoLiveReplica) {
  const std::filesystem::path dir = unique_socket_dir();
  ModelRegistry registry;
  register_synth_fleet(registry);
  ShardServer live(registry, unix_endpoint(dir, "live.sock"));

  Router router(RouterConfig{.replicas = 2});
  router.add_shard("dead", unix_endpoint(dir, "nobody-listens.sock"));
  router.add_shard("live", live.endpoint());

  // Find a served model id whose PRIMARY is the dead shard so the retry
  // path is actually exercised (placement is deterministic, so check once).
  std::string victim_id;
  for (const std::string id : {"m0", "m1"}) {
    if (router.placement(id)[0] == "dead") {
      victim_id = id;
      break;
    }
  }
  const Matrix series = make_synth_series(16, 2, 7);
  if (victim_id.empty()) {
    // Neither served id hashes primary onto the dead shard — the request
    // must simply succeed on the live primary without any retry.
    const wire::WireResponse response = router.infer("m0", series);
    EXPECT_EQ(response.status, wire::WireStatus::kOk);
    EXPECT_EQ(router.counters("dead").io_failures, 0u);
  } else {
    const wire::WireResponse response = router.infer(victim_id, series);
    EXPECT_EQ(response.status, wire::WireStatus::kOk);
    EXPECT_GE(router.counters("dead").io_failures, 1u);
    EXPECT_GE(router.counters("dead").retried, 1u);
    EXPECT_EQ(router.counters("live").ok, 1u);
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---- load-aware replica choice ---------------------------------------------

/// Deterministic p2c harness: poller off (health_poll_ms = 0), samples
/// injected via note_health, so the replica choice is a pure function of
/// the injected load picture.
class LoadAwareTier : public TwoShardTier {
 protected:
  static RouterConfig load_aware_config() {
    RouterConfig config;
    config.replicas = 2;
    config.health_poll_ms = 0;           // no poller: tests inject samples
    config.health_staleness_us = 60'000'000;  // fresh for the whole test
    return config;
  }

  void rebuild_router(RouterConfig config) {
    router_ = std::make_unique<Router>(config);
    router_->add_shard("s0", shard0_->endpoint());
    router_->add_shard("s1", shard1_->endpoint());
  }

  static wire::HealthInfo load_sample(std::uint32_t queue_depth,
                                      double ewma_us) {
    wire::HealthInfo info;
    info.accepting = true;
    info.models = 2;
    info.queue_depth = queue_depth;
    info.queue_capacity = 256;
    info.ewma_service_us = ewma_us;
    return info;
  }
};

TEST_F(LoadAwareTier, PowerOfTwoChoicesDivertsAwayFromTheLoadedPrimary) {
  rebuild_router(load_aware_config());
  const std::vector<std::string> group = router_->placement("m0");
  ASSERT_EQ(group.size(), 2u);
  const std::string& primary = group[0];
  const std::string& alternate = group[1];

  // Primary reports a deep queue, alternate is idle: every first attempt
  // must divert to the alternate, and the divert is counted there.
  router_->note_health(primary, load_sample(50, 100.0));
  router_->note_health(alternate, load_sample(0, 100.0));
  const Matrix series = make_synth_series(16, 2, 41);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(router_->infer("m0", series).status, wire::WireStatus::kOk);
  }
  EXPECT_EQ(router_->counters(alternate).p2c_alternate, 8u);
  EXPECT_EQ(router_->counters(alternate).requests, 8u);
  EXPECT_EQ(router_->counters(primary).requests, 0u);

  // Flip the load picture: placement order wins again (counted on the
  // primary), traffic returns.
  router_->note_health(primary, load_sample(0, 100.0));
  router_->note_health(alternate, load_sample(50, 100.0));
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(router_->infer("m0", series).status, wire::WireStatus::kOk);
  }
  EXPECT_EQ(router_->counters(primary).p2c_primary, 8u);
  EXPECT_EQ(router_->counters(primary).requests, 8u);
}

TEST_F(LoadAwareTier, StaleOrAbsentSamplesFallBackToPlacementOrder) {
  // Samples never injected: every request must take placement order and
  // count p2c_stale on the nominal primary — a dead health feed degrades
  // to exactly the pre-load-aware router.
  rebuild_router(load_aware_config());
  const std::vector<std::string> group = router_->placement("m0");
  ASSERT_EQ(group.size(), 2u);
  const Matrix series = make_synth_series(16, 2, 42);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(router_->infer("m0", series).status, wire::WireStatus::kOk);
  }
  EXPECT_EQ(router_->counters(group[0]).p2c_stale, 6u);
  EXPECT_EQ(router_->counters(group[0]).requests, 6u);
  EXPECT_EQ(router_->counters(group[1]).requests, 0u);

  // An aged-out sample is as good as none: inject, then shrink the
  // staleness bound to zero via a fresh router and confirm fallback.
  RouterConfig config = load_aware_config();
  config.health_staleness_us = 0;
  rebuild_router(config);
  router_->note_health(group[0], load_sample(50, 100.0));
  router_->note_health(group[1], load_sample(0, 100.0));
  ASSERT_EQ(router_->infer("m0", series).status, wire::WireStatus::kOk);
  EXPECT_EQ(router_->counters(group[0]).p2c_stale, 1u);
  EXPECT_EQ(router_->counters(group[0]).requests, 1u);
}

TEST_F(LoadAwareTier, PolicyOffNeverReordersAndRetryWalkStillCoversGroup) {
  RouterConfig config = load_aware_config();
  config.load_aware = false;
  rebuild_router(config);
  const std::vector<std::string> group = router_->placement("m0");
  ASSERT_EQ(group.size(), 2u);
  // Even a screaming load signal must not move traffic with the policy off.
  router_->note_health(group[0], load_sample(1000, 10000.0));
  router_->note_health(group[1], load_sample(0, 1.0));
  const Matrix series = make_synth_series(16, 2, 43);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(router_->infer("m0", series).status, wire::WireStatus::kOk);
  }
  const ShardCounters c0 = router_->counters(group[0]);
  EXPECT_EQ(c0.requests, 5u);
  EXPECT_EQ(c0.p2c_primary + c0.p2c_alternate + c0.p2c_stale, 0u);

  // Load-aware ON with the primary diverted: kill the alternate and the
  // retry walk must still reach the (healthy) primary — the p2c swap only
  // reorders the first attempt, never shrinks the group.
  rebuild_router(load_aware_config());
  router_->note_health(group[0], load_sample(50, 100.0));
  router_->note_health(group[1], load_sample(0, 100.0));
  if (group[1] == "s0") {
    shard0_->stop();
  } else {
    shard1_->stop();
  }
  const wire::WireResponse response = router_->infer("m0", series);
  EXPECT_EQ(response.status, wire::WireStatus::kOk);
  EXPECT_EQ(router_->counters(group[1]).retried, 1u);
  EXPECT_EQ(router_->counters(group[0]).ok, 1u);
}

TEST_F(TwoShardTier, RouterExportStatsScrapeableFormat) {
  const Matrix series = make_synth_series(16, 2, 44);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(router_->infer("m" + std::to_string(i % 2), series).status,
              wire::WireStatus::kOk);
  }
  std::ostringstream out;
  router_->export_stats(out);
  const std::string page = out.str();
  EXPECT_NE(page.find("dfr_router_shards_live 2"), std::string::npos) << page;
  for (const char* shard : {"s0", "s1"}) {
    for (const char* metric :
         {"dfr_router_requests_total", "dfr_router_ok_total",
          "dfr_router_rejected_total", "dfr_router_retried_total",
          "dfr_router_io_failures_total", "dfr_router_p2c_primary_total",
          "dfr_router_p2c_alternate_total", "dfr_router_p2c_stale_total",
          "dfr_router_health_probes_total",
          "dfr_router_health_failures_total"}) {
      const std::string line =
          std::string(metric) + "{shard=\"" + shard + "\"} ";
      EXPECT_NE(page.find(line), std::string::npos)
          << "missing " << line << "\n" << page;
    }
  }
  // Every request went somewhere: the two requests_total lines sum to 4.
  EXPECT_EQ(router_->counters("s0").requests + router_->counters("s1").requests,
            4u);
}

TEST_F(TwoShardTier, BackgroundPollerPopulatesHealthGauges) {
  // A router with the poller ON (tight period) fills the cached gauges from
  // real shard health bodies without any traffic.
  Router poller_router(RouterConfig{
      .replicas = 2, .load_aware = true, .health_poll_ms = 10});
  poller_router.add_shard("s0", shard0_->endpoint());
  poller_router.add_shard("s1", shard1_->endpoint());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const ShardCounters c0 = poller_router.counters("s0");
    const ShardCounters c1 = poller_router.counters("s1");
    if (c0.health_probes > 0 && c1.health_probes > 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "poller never probed both shards";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::ostringstream out;
  poller_router.export_stats(out);
  EXPECT_NE(out.str().find("dfr_router_shard_queue_depth{shard=\"s0\"}"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("dfr_router_shard_ewma_service_us{shard=\"s1\"}"),
            std::string::npos)
      << out.str();
}

TEST(Failover, AllReplicasDeadIsTypedUnavailable) {
  const std::filesystem::path dir = unique_socket_dir();
  Router router(RouterConfig{.replicas = 2});
  router.add_shard("d0", unix_endpoint(dir, "d0.sock"));
  router.add_shard("d1", unix_endpoint(dir, "d1.sock"));
  const Matrix series = make_synth_series(8, 2, 7);
  const wire::WireResponse response = router.infer("m0", series);
  EXPECT_EQ(response.status, wire::WireStatus::kUnavailable);

  // An empty fleet is equally typed, not an exception.
  router.remove_shard("d0");
  router.remove_shard("d1");
  EXPECT_EQ(router.infer("m0", series).status,
            wire::WireStatus::kUnavailable);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
