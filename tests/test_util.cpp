// Unit tests for the utility substrate: RNG determinism, CLI, CSV, tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dfr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexUnbiasedCoverage) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, NormalMomentsReasonable) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  auto perm = random_permutation(50, rng);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.fork(1);
  Rng a2(21);
  // Parent stream advanced by fork; child differs from both.
  EXPECT_NE(child.next_u64(), a2.next_u64());
}

TEST(Rng, HashCombineIsDeterministicAndSpreads) {
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Cli, ParsesFlagsOptionsAndPositionals) {
  CliParser cli("prog", "test");
  cli.add_flag("full", "run full");
  cli.add_option("seed", "rng seed", "42");
  cli.add_option("name", "dataset", "ARAB");
  const char* argv[] = {"prog", "--full", "--seed", "7", "--name=ECG", "extra"};
  cli.parse(6, argv);
  EXPECT_TRUE(cli.get_flag("full"));
  EXPECT_EQ(cli.get_u64("seed"), 7u);
  EXPECT_EQ(cli.get("name"), "ECG");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "extra");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("prog", "test");
  cli.add_option("seed", "rng seed", "42");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_u64("seed"), 42u);
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(cli.parse(2, argv), CliError);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("prog", "test");
  cli.add_option("seed", "rng seed", "42");
  const char* argv[] = {"prog", "--seed"};
  EXPECT_THROW(cli.parse(2, argv), CliError);
}

TEST(Cli, BadNumberThrows) {
  CliParser cli("prog", "test");
  cli.add_option("seed", "rng seed", "42");
  const char* argv[] = {"prog", "--seed", "4x"};
  cli.parse(3, argv);
  EXPECT_THROW((void)cli.get_u64("seed"), CliError);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRoundTrippableFile) {
  const std::string path = std::filesystem::temp_directory_path() / "dfr_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"1", "x,y"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(Csv, RowArityMismatchThrows) {
  const std::string path = std::filesystem::temp_directory_path() / "dfr_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), CheckError);
  csv.close();
  std::remove(path.c_str());
}

TEST(Table, RendersAlignedGrid) {
  ConsoleTable t({"dataset", "acc"});
  t.add_row({"ARAB", "0.981"});
  t.add_row({"ECG", "0.850"});
  const std::string s = t.str();
  EXPECT_NE(s.find("dataset"), std::string::npos);
  EXPECT_NE(s.find("0.981"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), CheckError);
}

TEST(Table, FormattersProduceExpectedStrings) {
  EXPECT_EQ(fmt_double(0.98123, 3), "0.981");
  EXPECT_EQ(fmt_count(25040), "25,040");
  EXPECT_EQ(fmt_count(-1234567), "-1,234,567");
  EXPECT_EQ(fmt_ratio(701.94), "701.9");
  EXPECT_EQ(fmt_seconds(0.0123), "12.3ms");
  EXPECT_EQ(fmt_seconds(245.2), "245.2s");
}

}  // namespace
}  // namespace dfr
