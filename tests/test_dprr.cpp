// Unit tests for the DPRR layer and the alternative representations.
#include <gtest/gtest.h>

#include "dfr/dprr.hpp"
#include "dfr/representation.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

Matrix random_states(std::size_t t_len, std::size_t nx, std::uint64_t seed) {
  Rng rng(seed);
  Matrix states(t_len + 1, nx);  // row 0 stays zero (x(0) = 0)
  for (std::size_t k = 1; k <= t_len; ++k) {
    for (std::size_t n = 0; n < nx; ++n) states(k, n) = rng.normal();
  }
  return states;
}

TEST(Dprr, DimensionFormula) {
  EXPECT_EQ(dprr_dim(30), 930u);
  EXPECT_EQ(dprr_dim(1), 2u);
  EXPECT_EQ(dprr_dim(5), 30u);
}

TEST(Dprr, HandComputedTinyCase) {
  // Nx = 2, T = 2. x(0) = (0,0), x(1) = (1,2), x(2) = (3,4).
  Matrix states{{0, 0}, {1, 2}, {3, 4}};
  const Vector r = dprr_from_states(states);
  ASSERT_EQ(r.size(), 6u);
  // r[i*2+j] = sum_k x(k)_i x(k-1)_j:
  //   r[0] = 1*0 + 3*1 = 3;   r[1] = 1*0 + 3*2 = 6
  //   r[2] = 2*0 + 4*1 = 4;   r[3] = 2*0 + 4*2 = 8
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 6.0);
  EXPECT_DOUBLE_EQ(r[2], 4.0);
  EXPECT_DOUBLE_EQ(r[3], 8.0);
  // state sums: r[4] = 1+3 = 4; r[5] = 2+4 = 6.
  EXPECT_DOUBLE_EQ(r[4], 4.0);
  EXPECT_DOUBLE_EQ(r[5], 6.0);
}

TEST(Dprr, AccumulatorMatchesBatch) {
  const Matrix states = random_states(13, 7, 101);
  const Vector batch = dprr_from_states(states);
  DprrAccumulator acc(7);
  for (std::size_t k = 1; k <= 13; ++k) acc.add(states.row(k), states.row(k - 1));
  EXPECT_LT(max_abs_diff(acc.features(), batch), 1e-14);
  EXPECT_EQ(acc.steps(), 13u);
}

TEST(Dprr, ResetClearsState) {
  DprrAccumulator acc(3);
  Vector a = {1, 2, 3}, b = {4, 5, 6};
  acc.add(a, b);
  acc.reset();
  EXPECT_EQ(acc.steps(), 0u);
  EXPECT_EQ(max_abs(acc.features()), 0.0);
}

TEST(Dprr, MatchesOuterProductDefinition) {
  // r = vec( sum_k x(k) [x(k-1), 1]^T ) — check against a literal
  // outer-product implementation.
  const std::size_t nx = 5, t_len = 9;
  const Matrix states = random_states(t_len, nx, 77);
  Matrix outer(nx, nx + 1);
  for (std::size_t k = 1; k <= t_len; ++k) {
    for (std::size_t i = 0; i < nx; ++i) {
      for (std::size_t j = 0; j < nx; ++j) {
        outer(i, j) += states(k, i) * states(k - 1, j);
      }
      outer(i, nx) += states(k, i);
    }
  }
  const Vector r = dprr_from_states(states);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < nx; ++j) {
      EXPECT_NEAR(r[i * nx + j], outer(i, j), 1e-12);
    }
    EXPECT_NEAR(r[nx * nx + i], outer(i, nx), 1e-12);
  }
}

class DprrShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DprrShapeSweep, AccumulatorAgreesWithBatchAcrossShapes) {
  const auto [t_len, nx] = GetParam();
  const Matrix states = random_states(t_len, nx, 1000 + t_len * 31 + nx);
  const Vector batch = dprr_from_states(states);
  DprrAccumulator acc(nx);
  for (std::size_t k = 1; k <= t_len; ++k) acc.add(states.row(k), states.row(k - 1));
  EXPECT_LT(max_abs_diff(acc.features(), batch), 1e-12);
  EXPECT_EQ(batch.size(), dprr_dim(nx));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DprrShapeSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 50),
                       ::testing::Values<std::size_t>(1, 3, 10, 30)));

// ---- representations --------------------------------------------------------

TEST(Representation, DimsPerKind) {
  EXPECT_EQ(representation_dim(RepresentationKind::kDprr, 30), 930u);
  EXPECT_EQ(representation_dim(RepresentationKind::kLastState, 30), 30u);
  EXPECT_EQ(representation_dim(RepresentationKind::kMeanState, 30), 30u);
  EXPECT_EQ(representation_dim(RepresentationKind::kLastAndMean, 30), 60u);
}

TEST(Representation, DprrIsTimeAveraged) {
  const Matrix states = random_states(8, 4, 55);
  const Vector raw = dprr_from_states(states);
  const Vector rep = compute_representation(RepresentationKind::kDprr, states);
  ASSERT_EQ(rep.size(), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(rep[i], raw[i] / 8.0, 1e-15);
  }
}

TEST(Representation, LastStateIsFinalRow) {
  const Matrix states = random_states(6, 4, 66);
  const Vector rep = compute_representation(RepresentationKind::kLastState, states);
  EXPECT_LT(max_abs_diff(rep, states.row(6)), 1e-15);
}

TEST(Representation, MeanStateAveragesRows) {
  Matrix states{{0, 0}, {2, 4}, {4, 8}};
  const Vector rep = compute_representation(RepresentationKind::kMeanState, states);
  EXPECT_DOUBLE_EQ(rep[0], 3.0);
  EXPECT_DOUBLE_EQ(rep[1], 6.0);
}

TEST(Representation, LastAndMeanConcatenates) {
  Matrix states{{0, 0}, {2, 4}, {4, 8}};
  const Vector rep =
      compute_representation(RepresentationKind::kLastAndMean, states);
  ASSERT_EQ(rep.size(), 4u);
  EXPECT_DOUBLE_EQ(rep[0], 4.0);  // last
  EXPECT_DOUBLE_EQ(rep[1], 8.0);
  EXPECT_DOUBLE_EQ(rep[2], 3.0);  // mean
  EXPECT_DOUBLE_EQ(rep[3], 6.0);
}

TEST(Representation, ParseRoundTrip) {
  for (auto kind : {RepresentationKind::kDprr, RepresentationKind::kLastState,
                    RepresentationKind::kMeanState,
                    RepresentationKind::kLastAndMean}) {
    EXPECT_EQ(parse_representation(representation_name(kind)), kind);
  }
  EXPECT_THROW(parse_representation("bogus"), CheckError);
}

}  // namespace
}  // namespace dfr
