// Cross-module integration tests: the full pipeline on paper-shaped data,
// thread-determinism of feature extraction, and end-to-end serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "data/preprocess.hpp"
#include "util/rng.hpp"
#include "data/specs.hpp"
#include "data/synth.hpp"
#include "dfr/features.hpp"
#include "dfr/grid_search.hpp"
#include "dfr/model_io.hpp"
#include "dfr/trainer.hpp"

namespace dfr {
namespace {

DatasetPair small_spec_pair(const std::string& id, std::size_t cap) {
  DatasetSpec spec = *find_spec(id);
  spec.train_size = std::min(spec.train_size, cap);
  spec.test_size = std::min(spec.test_size, cap);
  DatasetPair pair = generate_synthetic(spec);
  standardize_pair(pair);
  return pair;
}

TEST(Integration, FullPipelineOnPaperShapedDataset) {
  // JPVOW shape: 12 channels, T=28, 9 classes — small enough for a test.
  const DatasetPair pair = small_spec_pair("JPVOW", 90);
  TrainerConfig config;
  config.nodes = 30;  // the paper's evaluation setting
  const TrainResult model =
      Trainer(config).fit_multistart(pair.train, Trainer::default_restarts());
  const double acc = evaluate_accuracy(model, pair.test);
  EXPECT_GT(acc, 0.8);  // chance is 1/9

  // The model must round-trip through serialization with identical
  // predictions on every test sample.
  const auto path =
      (std::filesystem::temp_directory_path() / "dfr_integration.dfrm").string();
  save_model(model, path);
  const LoadedModel loaded = load_model(path);
  std::remove(path.c_str());
  const auto reference = predict(model, pair.test);
  for (std::size_t i = 0; i < pair.test.size(); ++i) {
    // kScalar: exact-equality against the scalar training-side predictions;
    // SIMD-vs-scalar tolerance is test_simd.cpp's contract, not this test's.
    EXPECT_EQ(loaded.classify(pair.test[i].series, FloatEngineKind::kScalar),
              reference[i])
        << i;
  }
}

TEST(Integration, FeatureExtractionIsThreadDeterministic) {
  const DatasetPair pair = small_spec_pair("ECG", 60);
  Rng rng(3);
  const ModularReservoir reservoir(30, Nonlinearity{});
  const Mask mask(30, pair.train.channels(), MaskKind::kBinary, rng);
  const DfrParams params{0.2, 0.3};
  const FeatureMatrix serial = compute_features(
      reservoir, params, mask, pair.train, RepresentationKind::kDprr, 1);
  const FeatureMatrix parallel = compute_features(
      reservoir, params, mask, pair.train, RepresentationKind::kDprr, 8);
  EXPECT_TRUE(serial.features == parallel.features);
  EXPECT_EQ(serial.labels, parallel.labels);
}

TEST(Integration, GridSearchAndTrainerShareTheLandscape) {
  // The (A, B) the trainer selects must score comparably to the same (A, B)
  // evaluated through the grid-search candidate machinery — i.e. the two
  // pipelines (trainer ridge refit vs grid candidate refit) agree about the
  // model quality at a given operating point.
  const DatasetPair pair = small_spec_pair("ECG", 80);
  TrainerConfig tconfig;
  tconfig.nodes = 30;
  const TrainResult model =
      Trainer(tconfig).fit_multistart(pair.train, Trainer::default_restarts());
  const double trainer_acc = evaluate_accuracy(model, pair.test);

  GridSearchConfig gconfig;
  gconfig.nodes = 30;
  // One-point "grid" exactly at the trainer's solution.
  const double log_a = std::log10(std::max(1e-6, std::fabs(model.params.a)));
  const double log_b = std::log10(std::max(1e-6, std::fabs(model.params.b)));
  gconfig.log10_a_min = log_a - 1e-9;
  gconfig.log10_a_max = log_a + 1e-9;
  gconfig.log10_b_min = log_b - 1e-9;
  gconfig.log10_b_max = log_b + 1e-9;
  const GridLevelResult level = run_grid_level(gconfig, pair.train, pair.test, 1);
  ASSERT_TRUE(level.best().valid);
  // Sign of A/B may differ (symmetric solutions) and masks/splits are from
  // the same seed; allow a modest tolerance.
  EXPECT_NEAR(level.best().test_accuracy, trainer_acc, 0.15);
}

TEST(Integration, EscalationTotalsAreSumOfLevels) {
  const DatasetPair pair = small_spec_pair("ECG", 50);
  GridSearchConfig config;
  config.nodes = 12;
  const EscalationResult result =
      escalate_grid_search(config, pair.train, pair.test, 1.1, 3);
  ASSERT_EQ(result.levels.size(), 3u);
  double sum = 0.0;
  for (const auto& level : result.levels) sum += level.seconds;
  EXPECT_NEAR(result.total_seconds, sum, 1e-9);
  EXPECT_EQ(result.levels[0].candidates.size(), 1u);
  EXPECT_EQ(result.levels[1].candidates.size(), 4u);
  EXPECT_EQ(result.levels[2].candidates.size(), 9u);
}

}  // namespace
}  // namespace dfr
