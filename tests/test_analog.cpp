// Tests for the analog/classic DFR substrate and its equivalence with the
// modular DFR under the (A, B) = (eta (1 - e^{-theta}), e^{-theta}) mapping.
#include <gtest/gtest.h>

#include <cmath>

#include "analog/classic_dfr.hpp"
#include "analog/dde_sim.hpp"
#include "dfr/reservoir.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

Matrix random_drive(std::size_t t_len, std::size_t nx, std::uint64_t seed) {
  Rng rng(seed);
  Matrix j(t_len, nx);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t n = 0; n < nx; ++n) j(t, n) = rng.uniform(-1.0, 1.0);
  }
  return j;
}

TEST(ClassicDfr, ModularEquivalenceUnderParameterMapping) {
  // The modular DFR with f~ = Mackey-Glass and the mapped (A, B) must
  // reproduce the classic exponential-Euler DFR exactly, with gamma folded
  // into the drive. This is the modular-DFR paper's 3->2 parameter reduction.
  const std::size_t nx = 10, t_len = 30;
  const ClassicDfrParams cp{/*eta=*/0.8, /*gamma=*/0.3, /*theta=*/0.25, /*p=*/2.0};
  const ClassicDfr classic(nx, cp);
  const Matrix j = random_drive(t_len, nx, 3);
  const Matrix classic_states = classic.run(j);

  const auto [a, b] = classic.equivalent_modular_params();
  EXPECT_NEAR(a, cp.eta * (1.0 - std::exp(-cp.theta)), 1e-15);
  EXPECT_NEAR(b, std::exp(-cp.theta), 1e-15);

  const ModularReservoir modular(nx,
                                 Nonlinearity(NonlinearityKind::kMackeyGlass, cp.p));
  Matrix j_scaled = j;
  j_scaled *= cp.gamma;
  const Matrix modular_states = modular.run(j_scaled, DfrParams{a, b});

  ASSERT_EQ(classic_states.rows(), modular_states.rows());
  EXPECT_LT((classic_states - modular_states).max_abs(), 1e-12);
}

TEST(ClassicDfr, StatesBoundedByMackeyGlassSaturation) {
  // f_MG is bounded, so states are bounded by eta * max|f| / (1 - e^{-theta})
  // geometric accumulation — just check nothing blows up at long horizon.
  const ClassicDfr classic(8, ClassicDfrParams{1.0, 0.5, 0.2, 1.0});
  const Matrix j = random_drive(500, 8, 7);
  const Matrix states = classic.run(j);
  EXPECT_TRUE(states.all_finite());
  EXPECT_LT(states.max_abs(), 10.0);
}

TEST(ClassicDfr, InvalidParamsThrow) {
  EXPECT_THROW(ClassicDfr(0, ClassicDfrParams{}), CheckError);
  EXPECT_THROW(ClassicDfr(4, ClassicDfrParams{0.5, 0.1, -1.0, 1.0}), CheckError);
  EXPECT_THROW(ClassicDfr(4, ClassicDfrParams{0.5, 0.1, 0.2, 0.5}), CheckError);
}

TEST(DdeSimulator, RelaxesToFixedPointWithoutDrive) {
  // With j = 0: dx/dt = -x + eta * x_d/(1 + |x_d|^p). For eta < 1 the only
  // fixed point is 0; the trajectory must decay toward it.
  DdeConfig config;
  config.eta = 0.5;
  config.tau = 2.0;
  config.dt = 0.01;
  config.initial_value = 0.8;
  DdeSimulator sim(config);
  sim.advance(50.0, [](double) { return 0.0; });
  EXPECT_NEAR(sim.state(), 0.0, 1e-3);
}

TEST(DdeSimulator, TracksConstantDriveEquilibrium) {
  // With constant drive s* solves x* = eta f(x* + gamma j). Verify the
  // simulator settles to a self-consistent equilibrium.
  DdeConfig config;
  config.eta = 0.6;
  config.gamma = 0.4;
  config.tau = 3.0;
  config.dt = 0.01;
  config.p = 1.0;
  DdeSimulator sim(config);
  sim.advance(100.0, [](double) { return 1.0; });
  const double x_star = sim.state();
  const double s = x_star + config.gamma * 1.0;
  const double residual = -x_star + config.eta * s / (1.0 + std::fabs(s));
  EXPECT_NEAR(residual, 0.0, 1e-4);
}

TEST(DdeSimulator, ExponentialEulerApproximatesDdeOverOneInterval) {
  // Drive one virtual-node interval theta with constant input; the classic
  // digital model's exponential-Euler update assumes the delayed term frozen
  // at its interval-start value, so for tau >> theta and a slowly varying
  // history the two must agree to first order.
  const double theta = 0.2;
  DdeConfig config;
  config.eta = 0.7;
  config.gamma = 0.5;
  config.tau = 6.0;
  config.dt = 0.001;
  config.p = 1.0;
  DdeSimulator sim(config);
  // Warm up into a smooth regime.
  sim.advance(12.0, [](double) { return 0.3; });

  const double x0 = sim.state();
  const double x_delayed = sim.delayed_state(config.tau);
  const double drive = 0.8;
  sim.advance(theta, [drive](double) { return drive; });
  const double dde_result = sim.state();

  const double s = x_delayed + config.gamma * drive;
  const double f_mg = s / (1.0 + std::fabs(s));
  const double euler =
      x0 * std::exp(-theta) + config.eta * (1.0 - std::exp(-theta)) * f_mg;
  EXPECT_NEAR(dde_result, euler, 0.02);
}

TEST(DdeSimulator, RunSeriesShapesAndFiniteness) {
  DdeConfig config;
  config.tau = 8 * 0.25;  // Nx * theta
  config.dt = 0.005;
  DdeSimulator sim(config);
  const Matrix j = random_drive(12, 8, 11);
  const Matrix states = sim.run_series(j, 0.25);
  EXPECT_EQ(states.rows(), 12u);
  EXPECT_EQ(states.cols(), 8u);
  EXPECT_TRUE(states.all_finite());
}

}  // namespace
}  // namespace dfr
