// Unit tests for the dataset substrate: container, specs, synthetic
// generator, preprocessing, serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "data/io.hpp"
#include "data/preprocess.hpp"
#include "data/specs.hpp"
#include "data/synth.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

TEST(Dataset, AddValidatesShapeAndLabel) {
  Dataset d("t", 2, 4, 3);
  Sample good{Matrix(4, 3), 1};
  d.add(good);
  EXPECT_EQ(d.size(), 1u);
  Sample bad_shape{Matrix(5, 3), 0};
  EXPECT_THROW(d.add(bad_shape), CheckError);
  Sample bad_label{Matrix(4, 3), 2};
  EXPECT_THROW(d.add(bad_label), CheckError);
}

TEST(Dataset, ClassHistogram) {
  Dataset d("t", 3, 2, 1);
  for (int label : {0, 1, 1, 2, 2, 2}) d.add({Matrix(2, 1), label});
  const auto hist = d.class_histogram();
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 3u);
}

TEST(Dataset, CappedPreservesClassBalance) {
  Dataset d("t", 2, 2, 1);
  for (int i = 0; i < 20; ++i) d.add({Matrix(2, 1), 0});
  for (int i = 0; i < 20; ++i) d.add({Matrix(2, 1), 1});
  const Dataset capped = d.capped(10);
  EXPECT_EQ(capped.size(), 10u);
  const auto hist = capped.class_histogram();
  EXPECT_EQ(hist[0], 5u);
  EXPECT_EQ(hist[1], 5u);
}

TEST(Dataset, CappedNoOpWhenSmaller) {
  Dataset d("t", 2, 2, 1);
  d.add({Matrix(2, 1), 0});
  EXPECT_EQ(d.capped(100).size(), 1u);
}

TEST(Dataset, StratifiedSplitKeepsAllSamplesAndBothSidesPerClass) {
  Dataset d("t", 3, 2, 1);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) d.add({Matrix(2, 1), c});
  }
  Rng rng(3);
  auto [first, second] = d.stratified_split(0.8, rng);
  EXPECT_EQ(first.size() + second.size(), 30u);
  for (auto count : first.class_histogram()) EXPECT_GE(count, 1u);
  for (auto count : second.class_histogram()) EXPECT_GE(count, 1u);
  EXPECT_EQ(first.size(), 24u);
}

TEST(Specs, TwelveDatasetsWithPaperShapes) {
  const auto& specs = evaluation_specs();
  ASSERT_EQ(specs.size(), 12u);
  const auto arab = find_spec("ARAB");
  ASSERT_TRUE(arab.has_value());
  EXPECT_EQ(arab->channels, 13u);
  EXPECT_EQ(arab->length, 92u);
  EXPECT_EQ(arab->num_classes, 10);
  EXPECT_EQ(arab->train_size, 6600u);
  const auto walk = find_spec("WALK");
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->length, 1917u);
  EXPECT_EQ(walk->num_classes, 2);
  EXPECT_FALSE(find_spec("NOPE").has_value());
}

TEST(Synth, ShapesMatchSpec) {
  DatasetSpec spec = *find_spec("JPVOW");
  // Shrink sizes for test speed; shapes must still match the spec fields.
  spec.train_size = 27;
  spec.test_size = 18;
  const DatasetPair pair = generate_synthetic(spec);
  EXPECT_EQ(pair.train.size(), 27u);
  EXPECT_EQ(pair.test.size(), 18u);
  EXPECT_EQ(pair.train.length(), spec.length);
  EXPECT_EQ(pair.train.channels(), spec.channels);
  EXPECT_EQ(pair.train.num_classes(), spec.num_classes);
  // Balanced round-robin labels: every class present.
  for (auto count : pair.train.class_histogram()) EXPECT_GE(count, 3u);
}

TEST(Synth, DeterministicAcrossCalls) {
  const DatasetPair a = generate_toy_task(3, 2, 20, 4, 2, 0.5, 99);
  const DatasetPair b = generate_toy_task(3, 2, 20, 4, 2, 0.5, 99);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_TRUE(a.train[i].series == b.train[i].series);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
}

TEST(Synth, SeedChangesData) {
  const DatasetPair a = generate_toy_task(3, 2, 20, 4, 2, 0.5, 1);
  const DatasetPair b = generate_toy_task(3, 2, 20, 4, 2, 0.5, 2);
  EXPECT_FALSE(a.train[0].series == b.train[0].series);
}

TEST(Synth, ClassesAreSeparatedMoreThanWithinClassVariation) {
  // Mean pairwise distance between class prototypes should exceed the mean
  // distance between samples of the same class at moderate difficulty.
  const DatasetPair pair = generate_toy_task(2, 2, 64, 8, 1, 0.5, 7);
  auto mean_series = [&](int label) {
    Vector m(64 * 2, 0.0);
    int count = 0;
    for (const auto& s : pair.train.samples()) {
      if (s.label != label) continue;
      for (std::size_t t = 0; t < 64; ++t) {
        for (std::size_t v = 0; v < 2; ++v) m[t * 2 + v] += s.series(t, v);
      }
      ++count;
    }
    for (double& x : m) x /= count;
    return m;
  };
  const Vector m0 = mean_series(0), m1 = mean_series(1);
  double between = 0.0;
  for (std::size_t i = 0; i < m0.size(); ++i) {
    between += (m0[i] - m1[i]) * (m0[i] - m1[i]);
  }
  EXPECT_GT(std::sqrt(between / m0.size()), 0.3);
}

TEST(Preprocess, StandardizationZeroMeanUnitVariance) {
  DatasetPair pair = generate_toy_task(2, 3, 40, 10, 2, 1.0, 21);
  standardize_pair(pair);
  // Recompute stats on the standardized train split: ~N(0,1) per channel.
  const ChannelStats after = compute_channel_stats(pair.train);
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_NEAR(after.mean[v], 0.0, 1e-10);
    EXPECT_NEAR(after.scale[v], 1.0, 1e-6);  // scale = 1/std
  }
}

TEST(Preprocess, TestSplitUsesTrainStatistics) {
  DatasetPair pair = generate_toy_task(2, 1, 30, 5, 5, 0.5, 23);
  const double raw_test_value = pair.test[0].series(0, 0);
  const ChannelStats stats = compute_channel_stats(pair.train);
  standardize_pair(pair);
  EXPECT_NEAR(pair.test[0].series(0, 0),
              (raw_test_value - stats.mean[0]) * stats.scale[0], 1e-12);
}

TEST(Preprocess, ResampleLengthEndpointsPreserved) {
  Dataset d("t", 2, 5, 1);
  Sample s;
  s.series = Matrix{{0.0}, {1.0}, {2.0}, {3.0}, {4.0}};
  s.label = 0;
  d.add(s);
  const Dataset up = resample_length(d, 9);
  EXPECT_EQ(up.length(), 9u);
  EXPECT_DOUBLE_EQ(up[0].series(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(up[0].series(8, 0), 4.0);
  EXPECT_NEAR(up[0].series(4, 0), 2.0, 1e-12);  // midpoint
}

TEST(Io, RoundTripPreservesEverything) {
  const auto tmp =
      (std::filesystem::temp_directory_path() / "dfr_io_test.rcds").string();
  const DatasetPair pair = generate_toy_task(3, 2, 15, 3, 1, 0.5, 31);
  save_dataset(pair.train, tmp);
  const Dataset loaded = load_dataset(tmp);
  EXPECT_EQ(loaded.name(), pair.train.name());
  EXPECT_EQ(loaded.num_classes(), pair.train.num_classes());
  ASSERT_EQ(loaded.size(), pair.train.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_TRUE(loaded[i].series == pair.train[i].series);
    EXPECT_EQ(loaded[i].label, pair.train[i].label);
  }
  std::remove(tmp.c_str());
}

TEST(Io, RejectsGarbageFile) {
  const auto tmp =
      (std::filesystem::temp_directory_path() / "dfr_io_garbage.rcds").string();
  {
    std::ofstream out(tmp, std::ios::binary);
    out << "this is not an RCDS file";
  }
  EXPECT_THROW(load_dataset(tmp), CheckError);
  std::remove(tmp.c_str());
}

TEST(Io, PairRoundTrip) {
  const auto prefix =
      (std::filesystem::temp_directory_path() / "dfr_io_pair").string();
  const DatasetPair pair = generate_toy_task(2, 1, 10, 2, 2, 0.5, 37);
  save_pair(pair, prefix);
  const DatasetPair loaded = load_pair(prefix);
  EXPECT_EQ(loaded.train.size(), pair.train.size());
  EXPECT_EQ(loaded.test.size(), pair.test.size());
  std::remove((prefix + ".train.rcds").c_str());
  std::remove((prefix + ".test.rcds").c_str());
}

}  // namespace
}  // namespace dfr
