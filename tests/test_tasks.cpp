// Tests for the prediction-task substrate: NARMA, Mackey-Glass series, and
// the per-step DFR readout.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/stats.hpp"
#include "tasks/mackey_glass_series.hpp"
#include "tasks/narma.hpp"
#include "tasks/prediction.hpp"

namespace dfr {
namespace {

TEST(Narma, GeneratesBoundedSeries) {
  const NarmaSeries series = generate_narma(2000, 10, 42);
  ASSERT_EQ(series.input.size(), 2000u);
  ASSERT_EQ(series.target.size(), 2000u);
  for (double u : series.input) {
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 0.5);
  }
  for (double y : series.target) {
    EXPECT_TRUE(std::isfinite(y));
    EXPECT_LE(std::fabs(y), 1.0);
  }
}

TEST(Narma, DeterministicPerSeed) {
  const NarmaSeries a = generate_narma(500, 10, 7);
  const NarmaSeries b = generate_narma(500, 10, 7);
  EXPECT_EQ(a.input, b.input);
  EXPECT_EQ(a.target, b.target);
  const NarmaSeries c = generate_narma(500, 10, 8);
  EXPECT_NE(a.input, c.input);
}

TEST(Narma, TargetDependsOnDelayedInput) {
  // NARMA-10's 1.5 u(t-9) u(t) term: correlation between target and the
  // 9-step-delayed input must be clearly positive.
  const NarmaSeries series = generate_narma(3000, 10, 11);
  Vector delayed(series.input.size() - 9);
  Vector target_tail(series.input.size() - 9);
  for (std::size_t t = 9; t < series.input.size(); ++t) {
    delayed[t - 9] = series.input[t - 9] * series.input[t];
    target_tail[t - 9] = series.target[t];
  }
  EXPECT_GT(pearson(delayed, target_tail), 0.4);
}

TEST(Narma, RespectsOrderParameter) {
  const NarmaSeries n2 = generate_narma(300, 2, 3);
  EXPECT_TRUE(all_finite(n2.target));
  EXPECT_THROW(generate_narma(5, 10, 3), CheckError);  // too short
}

TEST(MackeyGlassSeries, ChaoticRegimeIsBoundedAndNonConstant) {
  const Vector series = generate_mackey_glass(2000);
  ASSERT_EQ(series.size(), 2000u);
  EXPECT_TRUE(all_finite(series));
  EXPECT_GT(max_value(series), 0.4);
  EXPECT_LT(max_value(series), 2.0);
  EXPECT_GT(stddev(series), 0.05);  // genuinely oscillating
}

TEST(MackeyGlassSeries, TauSeventeenIsAperiodic) {
  // Crude chaos check: the autocorrelation at lag 100 must be well below 1.
  const Vector series = generate_mackey_glass(4000);
  Vector head(series.begin(), series.end() - 100);
  Vector tail(series.begin() + 100, series.end());
  EXPECT_LT(std::fabs(pearson(head, tail)), 0.95);
}

TEST(Prediction, NarmaTenReachesReasonableNrmse) {
  const NarmaSeries series = generate_narma(2200, 10, 42);
  PredictionConfig config;
  config.nodes = 40;
  config.nonlinearity = NonlinearityKind::kIdentity;  // best in a small sweep
  config.params = DfrParams{0.4, 0.5};
  const PredictionResult result =
      run_prediction_task(config, series.input, series.target, 1700);
  // Published DFRs reach NRMSE ~0.2-0.4 on NARMA-10 with ~400 virtual nodes
  // (Appeltant et al.); at 40 nodes ~0.5 is the expected regime. The bar
  // here is "well under the trivial predictor" (NRMSE = 1).
  EXPECT_LT(result.train_nrmse, 0.55);
  EXPECT_LT(result.test_nrmse, 0.6);
  EXPECT_EQ(result.test_prediction.size(), 2200u - 1700u);
}

TEST(Prediction, ReservoirBeatsMemorylessReadout) {
  // The same ridge readout on a memoryless reservoir (B = 0 kills both the
  // within-step chain and, with A small, state memory) must be worse than a
  // properly tuned one — the reservoir's memory is doing real work.
  const NarmaSeries series = generate_narma(1500, 10, 13);
  PredictionConfig good;
  good.nodes = 30;
  good.params = DfrParams{0.4, 0.6};
  PredictionConfig memoryless = good;
  memoryless.params = DfrParams{0.4, 0.0};
  const double good_nrmse =
      run_prediction_task(good, series.input, series.target, 1100).test_nrmse;
  const double poor_nrmse =
      run_prediction_task(memoryless, series.input, series.target, 1100).test_nrmse;
  EXPECT_LT(good_nrmse, poor_nrmse);
}

TEST(Prediction, MackeyGlassOneStepPrediction) {
  const Vector series = generate_mackey_glass(1600);
  Vector input(series.begin(), series.end() - 1);
  Vector target(series.begin() + 1, series.end());
  PredictionConfig config;
  config.nodes = 30;
  config.params = DfrParams{0.5, 0.5};
  const PredictionResult result =
      run_prediction_task(config, input, target, 1200);
  EXPECT_LT(result.test_nrmse, 0.2);  // one-step MG prediction is easy
}

TEST(Prediction, InvalidSplitsThrow) {
  const NarmaSeries series = generate_narma(300, 10, 5);
  PredictionConfig config;
  EXPECT_THROW(
      run_prediction_task(config, series.input, series.target, 10),  // < washout
      CheckError);
  EXPECT_THROW(
      run_prediction_task(config, series.input, series.target, 300),  // no test
      CheckError);
}

}  // namespace
}  // namespace dfr
