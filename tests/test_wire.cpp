// Wire-protocol tests (serve/wire.hpp): every field of every message
// round-trips BIT-identically (including NaN payloads, infinities, and
// signed zeros in the series/logits); malformed frames — truncated at every
// byte boundary, garbage magic/version/type, oversized or inconsistent
// declared lengths, trailing bytes after the last field, length fields whose
// product would overflow — throw typed CheckError and never over-read; and
// the socket transport reassembles partial reads, distinguishes a clean EOF
// at a frame boundary (false) from a peer dying mid-frame (WireIoError), and
// round-trips frames over a real socketpair. Same corruption-granularity
// style as the .dfrm reader tests in test_artifact_store.cpp.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "serve/wire.hpp"
#include "util/check.hpp"

namespace {

using namespace dfr;
using namespace dfr::serve;
using namespace dfr::serve::wire;

// Doubles whose bit patterns a lossy path would destroy: quiet NaN with a
// payload, signaling-NaN-ish pattern, +/-inf, -0.0, a denormal, and an
// ordinary value.
std::vector<double> tricky_doubles() {
  return {std::bit_cast<double>(0x7ff8dead'beef0001ull),
          std::bit_cast<double>(0x7ff00000'00000001ull),
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          -0.0,
          std::numeric_limits<double>::denorm_min(),
          1.25e-3};
}

Matrix tricky_series() {
  const std::vector<double> values = tricky_doubles();
  Matrix series(3, values.size());
  for (std::size_t r = 0; r < series.rows(); ++r) {
    for (std::size_t c = 0; c < series.cols(); ++c) {
      series(r, c) = values[(r * series.cols() + c) % values.size()] *
                     (r % 2 == 0 ? 1.0 : -1.0);
    }
  }
  return series;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Patch `bytes` little-endian at `offset` (headers and length fields).
template <typename T>
void patch(std::vector<std::byte>& frame, std::size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), frame.size());
  std::memcpy(frame.data() + offset, &value, sizeof(T));
}

WireRequest sample_request() {
  WireRequest request;
  request.seq = 0xfeedface12345678ull;
  request.model_id = "models/clinical-ecg.v7";
  request.options.engine = QuantizedEngineKind::kSimd;
  request.options.deadline_us = 123456789ull;
  request.options.priority = -7;
  request.series = tricky_series();
  return request;
}

// ---- round-trip bit-identity ----------------------------------------------

TEST(WireRoundTrip, RequestEveryFieldBitIdentical) {
  const WireRequest request = sample_request();
  std::vector<std::byte> frame;
  encode_request(request, frame);

  const WireRequest decoded = decode_request(frame);
  EXPECT_EQ(decoded.seq, request.seq);
  EXPECT_EQ(decoded.model_id, request.model_id);
  EXPECT_EQ(decoded.options.deadline_us, request.options.deadline_us);
  EXPECT_EQ(decoded.options.priority, request.options.priority);
  ASSERT_TRUE(std::holds_alternative<QuantizedEngineKind>(
      decoded.options.engine));
  EXPECT_EQ(std::get<QuantizedEngineKind>(decoded.options.engine),
            QuantizedEngineKind::kSimd);
  ASSERT_EQ(decoded.series.rows(), request.series.rows());
  ASSERT_EQ(decoded.series.cols(), request.series.cols());
  for (std::size_t i = 0; i < request.series.size(); ++i) {
    EXPECT_TRUE(same_bits(decoded.series.data()[i], request.series.data()[i]))
        << "series element " << i;
  }
}

TEST(WireRoundTrip, EveryEngineVariantSurvives) {
  const auto variants = {
      RequestOptions{.engine = FloatEngineKind::kAuto},
      RequestOptions{.engine = FloatEngineKind::kScalar},
      RequestOptions{.engine = FloatEngineKind::kSimd},
      RequestOptions{.engine = QuantizedEngineKind::kAuto},
      RequestOptions{.engine = QuantizedEngineKind::kScalar},
      RequestOptions{.engine = QuantizedEngineKind::kSimd},
  };
  const Matrix series(1, 1);
  for (const RequestOptions& options : variants) {
    WireRequest request;
    request.model_id = "m";
    request.options = options;
    request.series = series;
    std::vector<std::byte> frame;
    encode_request(request, frame);
    const WireRequest decoded = decode_request(frame);
    EXPECT_EQ(decoded.options.engine, options.engine);
  }
}

TEST(WireRoundTrip, ResponseEveryStatusAndTrickyLogits) {
  for (int s = 0; s <= static_cast<int>(WireStatus::kUnavailable); ++s) {
    WireResponse response;
    response.seq = 42 + static_cast<std::uint64_t>(s);
    response.status = static_cast<WireStatus>(s);
    response.label = s - 3;
    response.latency_us = std::bit_cast<double>(0x7ff8000000000042ull);
    response.logits = tricky_doubles();
    std::vector<std::byte> frame;
    encode_response(response, frame);
    const WireResponse decoded = decode_response(frame);
    EXPECT_EQ(decoded.seq, response.seq);
    EXPECT_EQ(decoded.status, response.status);
    EXPECT_EQ(decoded.label, response.label);
    EXPECT_TRUE(same_bits(decoded.latency_us, response.latency_us));
    ASSERT_EQ(decoded.logits.size(), response.logits.size());
    for (std::size_t i = 0; i < response.logits.size(); ++i) {
      EXPECT_TRUE(same_bits(decoded.logits[i], response.logits[i]));
    }
  }
}

TEST(WireRoundTrip, HealthAndDrainFrames) {
  std::vector<std::byte> frame;
  encode_health_response(HealthInfo{true, false, 12}, 7, frame);
  const HealthInfo info = decode_health_response(frame);
  EXPECT_TRUE(info.accepting);
  EXPECT_FALSE(info.draining);
  EXPECT_EQ(info.models, 12u);

  frame.clear();
  encode_health_request(8, frame);
  EXPECT_EQ(decode_header(frame).type,
            static_cast<std::uint16_t>(MessageType::kHealthRequest));
  EXPECT_EQ(decode_header(frame).seq, 8u);
  EXPECT_EQ(decode_header(frame).body_bytes, 0u);

  frame.clear();
  encode_drain_request(9, frame);
  EXPECT_EQ(decode_header(frame).type,
            static_cast<std::uint16_t>(MessageType::kDrainRequest));
  frame.clear();
  encode_drain_response(10, frame);
  EXPECT_EQ(decode_header(frame).type,
            static_cast<std::uint16_t>(MessageType::kDrainResponse));
  EXPECT_EQ(decode_header(frame).seq, 10u);
}

TEST(WireRoundTrip, HealthV2LoadFieldsRoundTrip) {
  HealthInfo sent;
  sent.accepting = true;
  sent.draining = false;
  sent.models = 3;
  sent.queue_depth = 17;
  sent.queue_capacity = 256;
  sent.ewma_service_us = 123.456;
  std::vector<std::byte> frame;
  encode_health_response(sent, 11, frame);
  const HealthInfo got = decode_health_response(frame);
  EXPECT_EQ(got.queue_depth, 17u);
  EXPECT_EQ(got.queue_capacity, 256u);
  EXPECT_DOUBLE_EQ(got.ewma_service_us, 123.456);  // bit-identical double

  // The wire slot for queue depth is the old u16 reserved field; deeper
  // queues saturate instead of wrapping.
  sent.queue_depth = 1u << 20;
  frame.clear();
  encode_health_response(sent, 12, frame);
  EXPECT_EQ(decode_health_response(frame).queue_depth, 0xffffu);
}

TEST(WireRoundTrip, HealthV1BodyStillDecodes) {
  // A v1 peer sends the 8-byte health body under header version 1. The
  // decoder must accept both (kWireVersionMin) and default the missing load
  // fields to zero — the router then treats the sample as load-less rather
  // than failing the probe.
  HealthInfo sent;
  sent.accepting = true;
  sent.draining = true;
  sent.models = 9;
  sent.queue_depth = 5;
  sent.queue_capacity = 64;
  sent.ewma_service_us = 77.0;
  std::vector<std::byte> frame;
  encode_health_response(sent, 13, frame);
  // Truncate the body back to the v1 layout and re-stamp header fields.
  frame.resize(sizeof(FrameHeader) + 8);
  patch<std::uint16_t>(frame, 4, 1);    // header version: v1
  patch<std::uint64_t>(frame, 16, 8);   // body_bytes: v1 health body
  const HealthInfo got = decode_health_response(frame);
  EXPECT_TRUE(got.accepting);
  EXPECT_TRUE(got.draining);
  EXPECT_EQ(got.models, 9u);
  EXPECT_EQ(got.queue_depth, 5u);  // the u16 was the reserved slot all along
  EXPECT_EQ(got.queue_capacity, 0u);
  EXPECT_DOUBLE_EQ(got.ewma_service_us, 0.0);
}

TEST(WireRoundTrip, StatusMirrorsRequestStatus) {
  EXPECT_EQ(to_wire_status(RequestStatus::kOk), WireStatus::kOk);
  EXPECT_EQ(to_wire_status(RequestStatus::kQueueFull), WireStatus::kQueueFull);
  EXPECT_EQ(to_wire_status(RequestStatus::kDeadlineExceeded),
            WireStatus::kDeadlineExceeded);
}

// ---- malformed frames ------------------------------------------------------

TEST(WireMalformed, TruncationAtEveryByteIsTyped) {
  std::vector<std::byte> frame;
  encode_request(sample_request(), frame);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::vector<std::byte> cut(frame.begin(),
                                     frame.begin() + static_cast<long>(len));
    EXPECT_THROW((void)decode_request(cut), CheckError) << "length " << len;
  }
  // The intact frame still decodes — the loop above proved strictness, this
  // proves it is not rejecting everything.
  EXPECT_NO_THROW((void)decode_request(frame));
}

TEST(WireMalformed, GarbageMagicVersionTypeRejected) {
  std::vector<std::byte> good;
  encode_request(sample_request(), good);

  auto copy = good;
  copy[0] = std::byte{'X'};
  EXPECT_THROW((void)decode_header(copy), CheckError);

  copy = good;
  patch<std::uint16_t>(copy, 4, kWireVersion + 1);  // future version
  EXPECT_THROW((void)decode_header(copy), CheckError);

  copy = good;
  patch<std::uint16_t>(copy, 6, 0);  // type below range
  EXPECT_THROW((void)decode_header(copy), CheckError);
  patch<std::uint16_t>(copy, 6, 7);  // type above range
  EXPECT_THROW((void)decode_header(copy), CheckError);
}

TEST(WireMalformed, DeclaredBodyMustMatchAndRespectCap) {
  std::vector<std::byte> good;
  encode_request(sample_request(), good);

  // body_bytes lies small / large while the buffer stays the same size.
  auto copy = good;
  patch<std::uint64_t>(copy, 16, good.size() - sizeof(FrameHeader) - 1);
  EXPECT_THROW((void)decode_header(copy), CheckError);
  patch<std::uint64_t>(copy, 16, good.size() - sizeof(FrameHeader) + 1);
  EXPECT_THROW((void)decode_header(copy), CheckError);

  // A body claiming to be astronomically large is rejected by the cap even
  // though nothing is allocated for it.
  patch<std::uint64_t>(copy, 16, kMaxFrameBytes + 1);
  EXPECT_THROW((void)decode_header(copy), CheckError);
  patch<std::uint64_t>(copy, 16, std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW((void)decode_header(copy), CheckError);

  // Trailing garbage after a self-consistent body: the header check catches
  // the mismatch.
  copy = good;
  copy.push_back(std::byte{0});
  EXPECT_THROW((void)decode_header(copy), CheckError);
}

TEST(WireMalformed, TrailingBytesInsideBodyRejected) {
  // Keep header and body_bytes self-consistent but append a byte AFTER the
  // last real field — only the decoder's finish() check can catch this one.
  std::vector<std::byte> frame;
  encode_request(sample_request(), frame);
  frame.push_back(std::byte{0xAB});
  patch<std::uint64_t>(frame, 16, frame.size() - sizeof(FrameHeader));
  EXPECT_NO_THROW((void)decode_header(frame));
  EXPECT_THROW((void)decode_request(frame), CheckError);
}

TEST(WireMalformed, SeriesDimensionLiesNeverOverRead) {
  std::vector<std::byte> frame;
  const WireRequest request = sample_request();
  encode_request(request, frame);
  // Offsets inside the body: fixed options block, then the id, then dims.
  const std::size_t dims_off = sizeof(FrameHeader) + 1 + 1 + 2 + 4 + 8 + 4 +
                               request.model_id.size();

  // rows * cols would overflow 64 bits to a small number; the division-form
  // bound must reject it before any multiplication happens.
  auto copy = frame;
  patch<std::uint64_t>(copy, dims_off, 1ull << 40);
  patch<std::uint64_t>(copy, dims_off + 8, 1ull << 40);
  EXPECT_THROW((void)decode_request(copy), CheckError);

  // Dims larger than the payload actually present.
  copy = frame;
  patch<std::uint64_t>(copy, dims_off, request.series.rows() + 1);
  EXPECT_THROW((void)decode_request(copy), CheckError);
  copy = frame;
  patch<std::uint64_t>(copy, dims_off + 8, request.series.cols() + 1);
  EXPECT_THROW((void)decode_request(copy), CheckError);

  // Dims SMALLER than the payload leave trailing bytes — also rejected.
  copy = frame;
  patch<std::uint64_t>(copy, dims_off, request.series.rows() - 1);
  EXPECT_THROW((void)decode_request(copy), CheckError);
}

TEST(WireMalformed, ModelIdAndLogitsLengthLiesRejected) {
  std::vector<std::byte> frame;
  encode_request(sample_request(), frame);
  const std::size_t id_len_off = sizeof(FrameHeader) + 1 + 1 + 2 + 4 + 8;
  patch<std::uint32_t>(frame, id_len_off, 0x7fffffffu);
  EXPECT_THROW((void)decode_request(frame), CheckError);

  WireResponse response;
  response.logits = {1.0, 2.0};
  std::vector<std::byte> reply;
  encode_response(response, reply);
  const std::size_t logits_len_off = sizeof(FrameHeader) + 4 + 4 + 8;
  patch<std::uint32_t>(reply, logits_len_off, 0x7fffffffu);
  EXPECT_THROW((void)decode_response(reply), CheckError);
}

TEST(WireMalformed, BadEngineEncodingRejected) {
  std::vector<std::byte> frame;
  encode_request(sample_request(), frame);
  auto copy = frame;
  patch<std::uint8_t>(copy, sizeof(FrameHeader), 2);  // family beyond quantized
  EXPECT_THROW((void)decode_request(copy), CheckError);
  copy = frame;
  patch<std::uint8_t>(copy, sizeof(FrameHeader) + 1, 3);  // kind beyond simd
  EXPECT_THROW((void)decode_request(copy), CheckError);
}

TEST(WireMalformed, WrongMessageTypeForDecoderRejected) {
  std::vector<std::byte> frame;
  encode_health_request(1, frame);
  EXPECT_THROW((void)decode_request(frame), CheckError);
  EXPECT_THROW((void)decode_response(frame), CheckError);
  EXPECT_THROW((void)decode_health_response(frame), CheckError);
}

// ---- transport over a real socketpair -------------------------------------

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(WireTransport, FrameRoundTripOverSocket) {
  SocketPair pair;
  std::vector<std::byte> frame;
  encode_request(sample_request(), frame);
  write_frame(pair.a, frame);

  std::vector<std::byte> received;
  ASSERT_TRUE(read_frame(pair.b, received));
  ASSERT_EQ(received.size(), frame.size());
  EXPECT_EQ(std::memcmp(received.data(), frame.data(), frame.size()), 0);
}

TEST(WireTransport, PartialWritesReassemble) {
  SocketPair pair;
  std::vector<std::byte> frame;
  encode_request(sample_request(), frame);

  // Dribble the frame one byte at a time from another thread; read_frame
  // must block and reassemble exactly one frame.
  std::thread writer([&] {
    for (const std::byte b : frame) {
      ASSERT_EQ(::send(pair.a, &b, 1, 0), 1);
    }
  });
  std::vector<std::byte> received;
  ASSERT_TRUE(read_frame(pair.b, received));
  writer.join();
  ASSERT_EQ(received.size(), frame.size());
  EXPECT_EQ(std::memcmp(received.data(), frame.data(), frame.size()), 0);
  const WireRequest decoded = decode_request(received);
  EXPECT_EQ(decoded.model_id, sample_request().model_id);
}

TEST(WireTransport, CleanEofAtBoundaryIsFalse) {
  SocketPair pair;
  ::close(pair.a);
  pair.a = -1;
  std::vector<std::byte> frame;
  EXPECT_FALSE(read_frame(pair.b, frame));
}

TEST(WireTransport, EofMidHeaderAndMidBodyAreIoErrors) {
  {
    SocketPair pair;
    const std::byte partial[7] = {};
    ASSERT_EQ(::send(pair.a, partial, sizeof(partial), 0),
              static_cast<ssize_t>(sizeof(partial)));
    ::close(pair.a);
    pair.a = -1;
    std::vector<std::byte> frame;
    EXPECT_THROW((void)read_frame(pair.b, frame), WireIoError);
  }
  {
    SocketPair pair;
    std::vector<std::byte> full;
    encode_request(sample_request(), full);
    ASSERT_EQ(::send(pair.a, full.data(), full.size() - 5, 0),
              static_cast<ssize_t>(full.size() - 5));
    ::close(pair.a);
    pair.a = -1;
    std::vector<std::byte> frame;
    EXPECT_THROW((void)read_frame(pair.b, frame), WireIoError);
  }
}

TEST(WireTransport, HostileHeaderRejectedBeforeBodyAllocation) {
  SocketPair pair;
  std::vector<std::byte> frame;
  encode_request(sample_request(), frame);
  patch<std::uint64_t>(frame, 16, std::numeric_limits<std::uint64_t>::max());
  write_frame(pair.a, frame);
  std::vector<std::byte> received;
  // The reader must reject the declared length from the header alone —
  // otherwise it would try to allocate ~16 EiB or block reading it.
  EXPECT_THROW((void)read_frame(pair.b, received), CheckError);
}

TEST(WireTransport, WriteToClosedPeerIsIoErrorNotSignal) {
  SocketPair pair;
  ::close(pair.b);
  pair.b = -1;
  std::vector<std::byte> frame;
  encode_request(sample_request(), frame);
  // Without MSG_NOSIGNAL this would SIGPIPE and kill the process; the first
  // or second write must instead surface a typed WireIoError.
  try {
    write_frame(pair.a, frame);
    write_frame(pair.a, frame);
    FAIL() << "expected WireIoError";
  } catch (const WireIoError&) {
  }
}

// ---- endpoints -------------------------------------------------------------

TEST(WireEndpoint, ParseAndToStringRoundTrip) {
  const Endpoint unix_ep = parse_endpoint("unix:/tmp/dfr_test.sock");
  EXPECT_EQ(unix_ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.host_or_path, "/tmp/dfr_test.sock");
  EXPECT_EQ(unix_ep.to_string(), "unix:/tmp/dfr_test.sock");

  const Endpoint tcp_ep = parse_endpoint("tcp:127.0.0.1:8421");
  EXPECT_EQ(tcp_ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep.host_or_path, "127.0.0.1");
  EXPECT_EQ(tcp_ep.port, 8421);
  EXPECT_EQ(tcp_ep.to_string(), "tcp:127.0.0.1:8421");

  EXPECT_THROW((void)parse_endpoint("http://nope"), dfr::CheckError);
  EXPECT_THROW((void)parse_endpoint("tcp:hostonly"), dfr::CheckError);
  EXPECT_THROW((void)parse_endpoint("tcp:host:notaport"), dfr::CheckError);
  EXPECT_THROW((void)parse_endpoint("unix:"), dfr::CheckError);
  EXPECT_THROW((void)parse_endpoint(""), dfr::CheckError);
}

TEST(WireEndpoint, ParseRejectsMalformedSpecsTyped) {
  // Every rejection is a typed CheckError (config error), never an
  // IoError (transport) and never an accept-with-garbage.
  const char* bad[] = {
      "",                      // empty spec
      "unix:",                 // empty unix path
      "tcp:",                  // no host, no port
      "tcp:host",              // missing port
      "tcp::8421",             // empty host
      "tcp:host:",             // empty port
      "tcp:host:notaport",     // non-numeric port
      "tcp:host:8421x",        // trailing garbage after the port
      "tcp:host:84 21",        // embedded whitespace
      "tcp:host:-1",           // negative port
      "tcp:host:65536",        // port above u16 range
      "tcp:host:999999999999", // port overflows parse
      "http://nope",           // unknown scheme
      "udp:host:53",           // unknown scheme, well-formed shape
      "UNIX:/tmp/x.sock",      // schemes are case-sensitive
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)parse_endpoint(spec), dfr::CheckError) << spec;
  }
  // Boundary sanity: the largest valid port still parses.
  EXPECT_EQ(parse_endpoint("tcp:host:65535").port, 65535);
}

TEST(WireEndpoint, ConnectToNothingIsIoError) {
  EXPECT_THROW((void)connect_endpoint(
                   parse_endpoint("unix:/tmp/dfr_no_such_shard.sock")),
               WireIoError);
}

}  // namespace
