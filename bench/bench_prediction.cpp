// Extension bench: classic DFR prediction tasks (NARMA-10 and Mackey-Glass
// one-step prediction) with a small (A, B) sweep — the workloads the original
// DFR literature (Appeltant et al.) evaluates, exercising the per-time-step
// readout path of the library.
//
// Usage: bench_prediction [--nodes N] [--seed N]
// Output: console table + prediction.csv.
#include <iostream>

#include "bench_common.hpp"
#include "linalg/stats.hpp"
#include "tasks/mackey_glass_series.hpp"
#include "tasks/narma.hpp"
#include "tasks/prediction.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dfr;
  using dfr::bench::BenchCsv;
  using dfr::bench::add_csv_option;

  CliParser cli("bench_prediction", "NARMA-10 / Mackey-Glass prediction NRMSE");
  cli.add_option("nodes", "virtual nodes", "40");
  cli.add_option("seed", "RNG seed", "42");
  add_csv_option(cli, "prediction.csv");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const auto nodes = cli.get_u64("nodes");
  const auto seed = cli.get_u64("seed");

  // NARMA-10.
  const NarmaSeries narma = generate_narma(2200, 10, seed);
  // Mackey-Glass one-step-ahead.
  const Vector mg = generate_mackey_glass(1800);
  Vector mg_in(mg.begin(), mg.end() - 1);
  Vector mg_target(mg.begin() + 1, mg.end());

  const NonlinearityKind kinds[] = {NonlinearityKind::kIdentity,
                                    NonlinearityKind::kMackeyGlass,
                                    NonlinearityKind::kTanh};
  const DfrParams param_grid[] = {{0.2, 0.5}, {0.4, 0.5}, {0.4, 0.7}, {0.6, 0.3}};

  ConsoleTable table({"task", "nonlinearity", "A", "B", "train NRMSE",
                      "test NRMSE"});
  BenchCsv csv(cli, {"task", "nonlinearity", "a", "b",
                                 "train_nrmse", "test_nrmse"});

  auto run = [&](const std::string& task, const Vector& input,
                 const Vector& target, std::size_t train_len) {
    double best = 1e9;
    for (NonlinearityKind kind : kinds) {
      for (const DfrParams& params : param_grid) {
        PredictionConfig config;
        config.nodes = nodes;
        config.nonlinearity = kind;
        config.params = params;
        config.seed = seed;
        const PredictionResult result =
            run_prediction_task(config, input, target, train_len);
        best = std::min(best, result.test_nrmse);
        table.add_row({task, nonlinearity_name(kind), fmt_double(params.a, 2),
                       fmt_double(params.b, 2), fmt_double(result.train_nrmse, 3),
                       fmt_double(result.test_nrmse, 3)});
        csv.add_row({task, nonlinearity_name(kind), fmt_double(params.a, 3),
                     fmt_double(params.b, 3), fmt_double(result.train_nrmse, 4),
                     fmt_double(result.test_nrmse, 4)});
      }
    }
    return best;
  };

  const double narma_best = run("NARMA-10", narma.input, narma.target, 1700);
  const double mg_best = run("MG one-step", mg_in, mg_target, 1300);

  table.print();
  std::cout << "\nbest test NRMSE — NARMA-10: " << fmt_double(narma_best, 3)
            << " (literature ~0.2-0.4 at 400 nodes), MG one-step: "
            << fmt_double(mg_best, 3) << '\n';
  csv.report();
  return 0;
}
