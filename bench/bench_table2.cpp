// Reproduction of paper Table 2: storage reduction by truncated
// backpropagation, for all 12 datasets at Nx = 30.
//
// Columns: naive (full-BPTT stored values), simplified (truncated), and the
// reduction percentage. The analytic model reproduces the paper's numbers
// *exactly* (they are a function of (T, Ny, Nx) only); in addition this
// bench instruments the real forward passes and asserts the live buffer
// sizes match the analytic reservoir-state component, so the table is backed
// by the implementation rather than by formulas alone.
//
// Usage: bench_table2 [--seed N]   Output: console table + table2.csv.
#include <iostream>

#include "bench_common.hpp"
#include "dfr/backprop.hpp"
#include "dfr/memory_model.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dfr;
  using namespace dfr::bench;

  CliParser cli("bench_table2", "reproduce Table 2 (truncated-backprop storage)");
  cli.add_option("seed", "RNG seed for the live-buffer verification", "42");
  add_csv_option(cli, "table2.csv");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  constexpr std::size_t kNx = 30;
  // Paper Table 2, for the "matches paper" column.
  struct PaperRow {
    const char* id;
    std::size_t naive;
    std::size_t simplified;
  };
  constexpr PaperRow kPaper[] = {
      {"ARAB", 13030, 10300}, {"AUS", 93455, 89435}, {"CHAR", 25700, 19610},
      {"CMU", 20192, 2852},   {"ECG", 7352, 2852},   {"JPVOW", 10179, 9369},
      {"KICK", 28022, 2852},  {"LIB", 16245, 14955}, {"NET", 42853, 13093},
      {"UWAV", 17828, 8438},  {"WAF", 8732, 2852},   {"WALK", 60332, 2852},
  };

  std::cout << "Table 2 reproduction — stored values (reservoir state + "
               "representation + weights), Nx = 30\n\n";

  ConsoleTable table({"dataset", "naive (a)", "simplified (b)", "(a-b)/a",
                      "live-verified", "matches paper"});
  BenchCsv csv(cli, {"dataset", "T", "Ny", "naive", "simplified", "reduction",
                 "paper_naive", "paper_simplified", "match"});

  Rng rng(cli.get_u64("seed"));
  bool all_match = true;
  for (const PaperRow& expected : kPaper) {
    const DatasetSpec spec = *find_spec(expected.id);
    const MemoryBreakdown naive = naive_memory(spec.length, kNx, spec.num_classes);
    const MemoryBreakdown simplified =
        truncated_memory(/*window=*/1, kNx, spec.num_classes);
    const double reduction = memory_reduction(naive, simplified);
    const bool match =
        naive.total() == expected.naive && simplified.total() == expected.simplified;
    all_match = all_match && match;

    // Live verification: run actual forward passes at this dataset's exact
    // shape and compare the instrumented state-buffer sizes.
    const ModularReservoir reservoir(kNx, Nonlinearity{});
    const Mask mask(kNx, spec.channels, MaskKind::kBinary, rng);
    Matrix series(spec.length, spec.channels);
    for (std::size_t t = 0; t < spec.length; ++t) {
      for (std::size_t v = 0; v < spec.channels; ++v) series(t, v) = rng.normal();
    }
    const DfrParams params{0.1, 0.1};
    const FullForward full = run_forward_full(reservoir, params, mask, series);
    const TruncatedForward trunc =
        run_forward_truncated(reservoir, params, mask, series, 1);
    const bool live_ok =
        full.stored_state_values() == naive.reservoir_state &&
        trunc.stored_state_values() == simplified.reservoir_state;
    all_match = all_match && live_ok;

    table.add_row({spec.id, fmt_count(static_cast<long long>(naive.total())),
                   fmt_count(static_cast<long long>(simplified.total())),
                   fmt_double(reduction * 100.0, 0) + "%",
                   live_ok ? "yes" : "NO", match ? "yes" : "NO"});
    csv.add_row({spec.id, std::to_string(spec.length),
                 std::to_string(spec.num_classes), std::to_string(naive.total()),
                 std::to_string(simplified.total()), fmt_double(reduction, 4),
                 std::to_string(expected.naive), std::to_string(expected.simplified),
                 match && live_ok ? "1" : "0"});
  }

  table.print();
  std::cout << (all_match
                    ? "\nall 12 rows match the paper's Table 2 exactly\n"
                    : "\nMISMATCH against the paper's Table 2 — investigate!\n");
  csv.report();
  return all_match ? 0 : 1;
}
