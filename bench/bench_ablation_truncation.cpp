// Ablation: truncation window w vs accuracy, training time, and state memory
// (our generalization axis of the paper's Section 3.4; w = 1 is the paper's
// method, w = 0 is full BPTT).
//
// Usage: bench_ablation_truncation [--datasets ECG,JPVOW] [--cap N] [--seed N]
// Output: console table + ablation_truncation.csv.
#include <iostream>

#include "bench_common.hpp"
#include "dfr/memory_model.hpp"
#include "dfr/trainer.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dfr;
  using namespace dfr::bench;

  CliParser cli("bench_ablation_truncation",
                "truncation window vs accuracy / time / memory");
  add_scale_options(cli);
  add_csv_option(cli, "ablation_truncation.csv");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  ScaleOptions options = read_scale_options(cli);

  // Default to two datasets with contrasting series lengths.
  std::vector<DatasetSpec> specs;
  if (cli.get("datasets").empty()) {
    specs = {*find_spec("JPVOW"), *find_spec("ECG")};
  } else {
    specs = selected_specs(cli);
  }

  const std::size_t windows[] = {1, 2, 4, 8, 16, 0};  // 0 = full BPTT

  ConsoleTable table({"dataset", "window", "test acc", "train time",
                      "state values", "state mem vs full"});
  BenchCsv csv(cli, {"dataset", "window", "test_acc",
                                 "train_seconds", "state_values",
                                 "state_fraction"});

  for (const DatasetSpec& spec : specs) {
    const DatasetPair data = prepare_dataset(spec, options);
    const std::size_t full_states = (data.train.length() + 1) * 30;
    for (std::size_t window : windows) {
      TrainerConfig config;
      config.nodes = 30;
      config.seed = options.seed;
      config.threads = options.threads;
      config.truncation_window = window;
      const Trainer trainer(config);
      Timer timer;
      const TrainResult model =
          trainer.fit_multistart(data.train, Trainer::default_restarts());
      const double seconds = timer.elapsed_seconds();
      const double acc = evaluate_accuracy(model, data.test);
      const double fraction = static_cast<double>(model.stored_state_values) /
                              static_cast<double>(full_states);
      const std::string label = window == 0 ? "full" : std::to_string(window);
      table.add_row({spec.id, label, fmt_double(acc, 3), fmt_seconds(seconds),
                     fmt_count(static_cast<long long>(model.stored_state_values)),
                     fmt_double(fraction * 100.0, 1) + "%"});
      csv.add_row({spec.id, label, fmt_double(acc, 4), fmt_double(seconds, 3),
                   std::to_string(model.stored_state_values),
                   fmt_double(fraction, 5)});
    }
  }
  table.print();
  std::cout << "\n(The paper's method is window=1; expectation: comparable "
               "accuracy to full BPTT at a fraction of state memory and "
               "backward-pass time.)\n";
  csv.report();
  return 0;
}
