// Reproduction of paper Table 1: runtime comparison between the proposed
// backpropagation (bp) and grid search (gs) over the 12 evaluation datasets.
//
// Protocol (paper Section 4.1):
//   bp: the full optimization protocol (25-epoch SGD with truncated backprop,
//       then ridge refit with beta selection), multi-start over the bench's
//       restart set; "bp time" is the total wall time including restarts.
//   gs: escalate the (A, B) grid from 1 division upward — ranges
//       A in [10^-3.75, 10^-0.25], B in [10^-2.75, 10^-0.25], beta swept the
//       same way as bp — until the grid's test accuracy reaches bp's.
//       "gs time" is the cumulative wall time of all levels run.
//
// Expected shape (not absolute numbers — substrate differs, see
// EXPERIMENTS.md): bp accuracy ~ gs accuracy, with (gs time)/(bp time)
// ratios growing steeply for datasets that need fine grids, and ~<1 for
// datasets where the coarsest grid already matches (the paper's CMU, KICK,
// NET, WALK rows).
//
// Usage: bench_table1 [--full] [--cap N] [--datasets ARAB,ECG] [--max-divs N]
// Output: console table + table1.csv.
#include <iostream>

#include "bench_common.hpp"
#include "dfr/grid_search.hpp"
#include "dfr/trainer.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct Row {
  std::string id;
  double bp_acc = 0.0;
  double bp_seconds = 0.0;
  std::size_t gs_divs = 0;
  bool gs_reached = false;
  double gs_seconds = 0.0;
  double paper_bp_acc = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dfr;
  using namespace dfr::bench;

  CliParser cli("bench_table1", "reproduce Table 1 (bp vs grid-search runtime)");
  add_scale_options(cli);
  add_csv_option(cli, "table1.csv");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const ScaleOptions options = read_scale_options(cli);
  const auto specs = selected_specs(cli);

  std::cout << "Table 1 reproduction — bp vs grid search ("
            << (options.full ? "FULL" : "reduced") << " scale, cap="
            << options.cap << ", seed=" << options.seed << ")\n\n";

  BenchCsv csv(cli, {"dataset", "bp_acc", "bp_time_s", "gs_divs", "gs_reached",
                 "gs_time_s", "ratio", "paper_bp_acc"});
  ConsoleTable table({"dataset", "bp acc", "bp time", "gs divs", "gs time",
                      "(gs time)/(bp time)", "paper bp acc"});

  double max_ratio = 0.0;
  std::vector<Row> rows;
  for (const DatasetSpec& spec : specs) {
    log_info("dataset ", spec.id, ": generating (T=", spec.length,
             ", V=", spec.channels, ", Ny=", spec.num_classes, ")");
    const DatasetPair data = prepare_dataset(spec, options);

    // --- proposed method -------------------------------------------------
    TrainerConfig tconfig;
    tconfig.nodes = 30;  // paper's evaluation setting
    tconfig.seed = options.seed;
    tconfig.threads = options.threads;
    const Trainer trainer(tconfig);
    Timer bp_timer;
    const TrainResult model =
        trainer.fit_multistart(data.train, Trainer::default_restarts());
    const double bp_seconds = bp_timer.elapsed_seconds();
    const double bp_acc = evaluate_accuracy(model, data.test);
    log_info(spec.id, ": bp acc=", bp_acc, " time=", bp_seconds, "s (A=",
             model.params.a, ", B=", model.params.b, ", beta=",
             model.chosen_beta, ")");

    // --- grid-search baseline --------------------------------------------
    GridSearchConfig gconfig;
    gconfig.nodes = 30;
    gconfig.seed = options.seed;
    gconfig.threads = options.threads;
    const EscalationResult gs = escalate_grid_search(
        gconfig, data.train, data.test, bp_acc, options.max_divs);
    const auto& final_level = gs.final_level();
    log_info(spec.id, ": gs divs=", final_level.divs,
             " acc=", final_level.best_by_test().test_accuracy,
             " time=", gs.total_seconds, "s",
             gs.reached_target ? "" : "  [target not reached]");

    Row row{spec.id, bp_acc, bp_seconds, final_level.divs, gs.reached_target,
            gs.total_seconds, spec.paper_bp_accuracy};
    rows.push_back(row);

    const double ratio = gs.total_seconds / bp_seconds;
    max_ratio = std::max(max_ratio, ratio);
    table.add_row({row.id, fmt_double(row.bp_acc, 3), fmt_seconds(row.bp_seconds),
                   std::to_string(row.gs_divs) + (row.gs_reached ? "" : "+"),
                   fmt_seconds(row.gs_seconds), fmt_ratio(ratio),
                   fmt_double(row.paper_bp_acc, 3)});
    csv.add_row({row.id, fmt_double(row.bp_acc, 4), fmt_double(row.bp_seconds, 4),
                 std::to_string(row.gs_divs), row.gs_reached ? "1" : "0",
                 fmt_double(row.gs_seconds, 4), fmt_double(ratio, 2),
                 fmt_double(row.paper_bp_acc, 3)});
  }

  std::cout << '\n';
  table.print();
  std::cout << "\n('N+' in gs divs = escalation bound hit before matching bp "
               "accuracy)\n";
  std::cout << "max (gs time)/(bp time) ratio: " << fmt_ratio(max_ratio)
            << "x  (paper's headline: up to ~700x at full scale)\n";
  csv.report();
  return 0;
}
