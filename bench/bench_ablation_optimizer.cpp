// Ablation: optimizer family for the joint (A, B, W, b) training phase under
// the same epoch budget — plain SGD (the paper), momentum, Nesterov, AdaGrad,
// Adam. Learning rates are each family's conventional scale; the step-decay
// schedule is the paper's.
//
// Usage: bench_ablation_optimizer [--datasets ECG,JPVOW] [--cap N]
// Output: console table + ablation_optimizer.csv.
#include <iostream>

#include "bench_common.hpp"
#include "dfr/trainer.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dfr;
  using namespace dfr::bench;

  CliParser cli("bench_ablation_optimizer", "optimizer family ablation");
  add_scale_options(cli);
  add_csv_option(cli, "ablation_optimizer.csv");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const ScaleOptions options = read_scale_options(cli);

  std::vector<DatasetSpec> specs;
  if (cli.get("datasets").empty()) {
    specs = {*find_spec("JPVOW"), *find_spec("CHAR")};
  } else {
    specs = selected_specs(cli);
  }

  struct Variant {
    OptimizerKind kind;
    double lr;
  };
  const Variant variants[] = {
      {OptimizerKind::kSgd, 1.0},      {OptimizerKind::kMomentum, 0.1},
      {OptimizerKind::kNesterov, 0.1}, {OptimizerKind::kAdaGrad, 0.1},
      {OptimizerKind::kAdam, 0.01},
  };

  ConsoleTable table({"dataset", "optimizer", "lr", "test acc", "final A",
                      "final B", "train time"});
  BenchCsv csv(cli, {"dataset", "optimizer", "lr", "test_acc", "a", "b", "seconds"});

  for (const DatasetSpec& spec : specs) {
    const DatasetPair data = prepare_dataset(spec, options);
    for (const Variant& variant : variants) {
      TrainerConfig config;
      config.nodes = 30;
      config.seed = options.seed;
      config.threads = options.threads;
      config.optimizer = variant.kind;
      config.base_lr_reservoir = variant.lr;
      config.base_lr_output = variant.lr;
      Timer timer;
      const TrainResult model =
          Trainer(config).fit_multistart(data.train, Trainer::default_restarts());
      const double seconds = timer.elapsed_seconds();
      const double acc = evaluate_accuracy(model, data.test);
      table.add_row({spec.id, optimizer_kind_name(variant.kind),
                     fmt_double(variant.lr, 2), fmt_double(acc, 3),
                     fmt_double(model.params.a, 3), fmt_double(model.params.b, 3),
                     fmt_seconds(seconds)});
      csv.add_row({spec.id, optimizer_kind_name(variant.kind),
                   fmt_double(variant.lr, 4), fmt_double(acc, 4),
                   fmt_double(model.params.a, 4), fmt_double(model.params.b, 4),
                   fmt_double(seconds, 3)});
    }
  }
  table.print();
  csv.report();
  return 0;
}
