// Extension bench: fixed-point word length vs accuracy for the deployed
// (bp-optimized) DFR — the hardware question the DFR literature cares about.
// Sweeps a symmetric Q(i, f) family for the state/feature/weight datapaths.
//
// Usage: bench_quantization [--datasets JPVOW,ECG] [--cap N]
// Output: console table + quantization.csv.
#include <iostream>

#include "bench_common.hpp"
#include "dfr/model_io.hpp"
#include "dfr/trainer.hpp"
#include "fixedpoint/quantized_dfr.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dfr;
  using namespace dfr::bench;

  CliParser cli("bench_quantization", "fixed-point word length vs accuracy");
  add_scale_options(cli);
  add_csv_option(cli, "quantization.csv");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const ScaleOptions options = read_scale_options(cli);

  std::vector<DatasetSpec> specs;
  if (cli.get("datasets").empty()) {
    specs = {*find_spec("JPVOW"), *find_spec("ECG")};
  } else {
    specs = selected_specs(cli);
  }

  struct Format {
    int int_bits;
    int frac_bits;
  };
  const Format formats[] = {{2, 3},  {2, 5},  {3, 8},
                            {4, 11}, {5, 14}, {6, 19}};

  ConsoleTable table({"dataset", "format", "word bits", "quant acc",
                      "float acc", "acc drop"});
  BenchCsv csv(cli, {"dataset", "int_bits", "frac_bits",
                                 "word_bits", "quant_acc", "float_acc"});

  for (const DatasetSpec& spec : specs) {
    const DatasetPair data = prepare_dataset(spec, options);
    TrainerConfig config;
    config.nodes = 30;
    config.seed = options.seed;
    config.threads = options.threads;
    const TrainResult model =
        Trainer(config).fit_multistart(data.train, Trainer::default_restarts());
    const double float_acc = evaluate_accuracy(model, data.test);

    const std::string path = "bench_quant_model.dfrm";
    save_model(model, path);
    const LoadedModel loaded = load_model(path);
    std::remove(path.c_str());

    for (const Format& format : formats) {
      const FixedPointFormat fmt(format.int_bits, format.frac_bits);
      // Feature accumulator gets 4 extra integer bits (it sums over nodes).
      QuantizedInferenceConfig qconfig{
          fmt, FixedPointFormat(format.int_bits + 4, format.frac_bits), fmt};
      QuantizedDfr qdfr(loaded, qconfig);
      qdfr.calibrate(data.train);
      const double quant_acc = quantized_accuracy(qdfr, data.test);
      table.add_row({spec.id, fmt.to_string(), std::to_string(fmt.word_length()),
                     fmt_double(quant_acc, 3), fmt_double(float_acc, 3),
                     fmt_double(float_acc - quant_acc, 3)});
      csv.add_row({spec.id, std::to_string(format.int_bits),
                   std::to_string(format.frac_bits),
                   std::to_string(fmt.word_length()), fmt_double(quant_acc, 4),
                   fmt_double(float_acc, 4)});
    }
  }
  table.print();
  csv.report();
  return 0;
}
