#pragma once
// Shared helpers for the benchmark harnesses.
//
// Scale model: the paper's evaluation uses the full Bianchi et al. datasets
// (up to 6600 training samples) and reports grid searches of up to ~7 hours.
// The default bench mode caps each split at --cap samples (class-balanced)
// so the entire suite reruns in minutes; --full removes the caps. Shapes
// (T, V, Ny) are never reduced — they are what the memory accounting and the
// compute-scaling claims depend on.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "data/preprocess.hpp"
#include "data/specs.hpp"
#include "data/synth.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace dfr::bench {

struct ScaleOptions {
  bool full = false;
  std::size_t cap = 200;        // per-split sample cap in reduced mode
  std::uint64_t seed = 42;
  std::size_t max_divs = 12;    // grid-escalation bound in reduced mode
  unsigned threads = 0;         // pool slots for sweep stages (0 = all cores,
                                // the ParallelOptions convention)
};

inline void add_scale_options(CliParser& cli) {
  cli.add_flag("full", "run at full dataset scale (paper sizes; slow)");
  cli.add_option("cap", "per-split sample cap in reduced mode", "200");
  cli.add_option("seed", "master RNG seed", "42");
  cli.add_option("max-divs", "grid-escalation bound", "12");
  cli.add_option("threads",
                 "worker threads for grid / feature / restart sweeps "
                 "(0 = all cores; results identical for any value)",
                 "0");
  cli.add_option("datasets", "comma-separated dataset ids (default: all 12)", "");
}

inline ScaleOptions read_scale_options(const CliParser& cli) {
  ScaleOptions options;
  options.full = cli.get_flag("full");
  options.cap = cli.get_u64("cap");
  options.seed = cli.get_u64("seed");
  options.max_divs = cli.get_u64("max-divs");
  options.threads = static_cast<unsigned>(cli.get_u64("threads"));
  return options;
}

/// The shared `--csv <path>` option: every bench emits machine-readable rows
/// under one flag name so the perf-trajectory tooling (BENCH_*.json) can
/// drive any harness uniformly. An empty path disables emission.
inline void add_csv_option(CliParser& cli, const std::string& default_path) {
  cli.add_option("csv", "output CSV path (empty = no CSV)", default_path);
}

/// CSV sink honoring --csv: forwards rows when a path was given, else no-ops.
class BenchCsv {
 public:
  BenchCsv(const CliParser& cli, const std::vector<std::string>& header) {
    const std::string path = cli.get("csv");
    if (!path.empty()) writer_ = std::make_unique<CsvWriter>(path, header);
  }

  void add_row(const std::vector<std::string>& cells) {
    if (writer_) writer_->add_row(cells);
  }

  [[nodiscard]] bool enabled() const noexcept { return writer_ != nullptr; }

  /// Print the standard "CSV written to ..." trailer (no-op when disabled).
  void report() const {
    if (writer_) std::cout << "CSV written to " << writer_->path() << '\n';
  }

 private:
  std::unique_ptr<CsvWriter> writer_;
};

/// The dataset ids selected by --datasets (all 12 when empty).
inline std::vector<DatasetSpec> selected_specs(const CliParser& cli) {
  const std::string arg = cli.get("datasets");
  if (arg.empty()) return evaluation_specs();
  std::vector<DatasetSpec> specs;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string id = arg.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!id.empty()) {
      const auto spec = find_spec(id);
      if (!spec) throw CliError("unknown dataset id: " + id);
      specs.push_back(*spec);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (specs.empty()) throw CliError("--datasets selected nothing");
  return specs;
}

/// Generate, cap (reduced mode), and standardize one dataset.
inline DatasetPair prepare_dataset(const DatasetSpec& spec,
                                   const ScaleOptions& options) {
  SynthConfig config;
  config.seed = options.seed;
  DatasetSpec sized = spec;
  if (!options.full) {
    sized.train_size = std::min(sized.train_size, options.cap);
    sized.test_size = std::min(sized.test_size, options.cap);
  }
  DatasetPair pair = generate_synthetic(sized, config);
  standardize_pair(pair);
  return pair;
}

}  // namespace dfr::bench
