// Microbenchmarks (google-benchmark) for the computational claims of paper
// Section 3.4:
//   * BM_BackpropFull vs BM_BackpropTruncated across T — the truncated
//     backward pass is O(Nx^2) regardless of T while full BPTT is O(T Nx^2),
//     i.e. the ~1/T compute reduction the paper states;
//   * forward / DPRR / mask / ridge kernels for profiling context.
#include <benchmark/benchmark.h>

#include "data/synth.hpp"
#include "dfr/backprop.hpp"
#include "dfr/output.hpp"
#include "dfr/ridge.hpp"
#include "linalg/cholesky.hpp"
#include "util/rng.hpp"

namespace {

using namespace dfr;

Matrix random_series(std::size_t t_len, std::size_t channels, std::uint64_t seed) {
  Rng rng(seed);
  Matrix series(t_len, channels);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t v = 0; v < channels; ++v) series(t, v) = rng.normal();
  }
  return series;
}

struct Fixture {
  std::size_t nx = 30;
  ModularReservoir reservoir{30, Nonlinearity{}};
  Mask mask;
  DfrParams params{0.2, 0.3};
  Matrix series;
  OutputLayer output{3, dprr_dim(30)};

  explicit Fixture(std::size_t t_len) : mask(Matrix(1, 1)), series(1, 1) {
    Rng rng(7);
    mask = Mask(nx, 4, MaskKind::kBinary, rng);
    series = random_series(t_len, 4, 11);
    for (std::size_t c = 0; c < output.weights().rows(); ++c) {
      for (std::size_t f = 0; f < output.weights().cols(); ++f) {
        output.mutable_weights()(c, f) = 0.01 * rng.normal();
      }
    }
  }
};

void BM_ForwardFull(benchmark::State& state) {
  const Fixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto fwd = run_forward_full(fx.reservoir, fx.params, fx.mask, fx.series);
    benchmark::DoNotOptimize(fwd.dprr.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForwardFull)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

void BM_ForwardTruncated(benchmark::State& state) {
  const Fixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto fwd =
        run_forward_truncated(fx.reservoir, fx.params, fx.mask, fx.series, 1);
    benchmark::DoNotOptimize(fwd.dprr.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForwardTruncated)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

void BM_BackpropFull(benchmark::State& state) {
  const Fixture fx(static_cast<std::size_t>(state.range(0)));
  const auto fwd = run_forward_full(fx.reservoir, fx.params, fx.mask, fx.series);
  const auto out = fx.output.backward(fwd.dprr, 1);
  for (auto _ : state) {
    auto grads = backprop_full(fx.reservoir, fx.params, fwd.states, fwd.j,
                               out.dfeatures);
    benchmark::DoNotOptimize(grads);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BackpropFull)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

void BM_BackpropTruncated(benchmark::State& state) {
  // The truncated backward pass touches only the last step — its time must
  // be flat in T (compare against BM_BackpropFull: the paper's ~1/T claim).
  const Fixture fx(static_cast<std::size_t>(state.range(0)));
  const auto fwd =
      run_forward_truncated(fx.reservoir, fx.params, fx.mask, fx.series, 1);
  const auto out = fx.output.backward(fwd.dprr, 1);
  for (auto _ : state) {
    auto grads = backprop_through_dprr(fx.reservoir, fx.params, fwd.tail_states,
                                       fwd.tail_j, out.dfeatures, 1);
    benchmark::DoNotOptimize(grads);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BackpropTruncated)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

void BM_DprrAccumulate(benchmark::State& state) {
  const auto nx = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Vector x(nx), x_prev(nx);
  for (std::size_t n = 0; n < nx; ++n) {
    x[n] = rng.normal();
    x_prev[n] = rng.normal();
  }
  DprrAccumulator acc(nx);
  for (auto _ : state) {
    acc.add(x, x_prev);
    benchmark::DoNotOptimize(acc.features().data());
  }
}
BENCHMARK(BM_DprrAccumulate)->Arg(10)->Arg(30)->Arg(100);

void BM_MaskApply(benchmark::State& state) {
  Rng rng(5);
  const Mask mask(30, static_cast<std::size_t>(state.range(0)),
                  MaskKind::kBinary, rng);
  Vector input(static_cast<std::size_t>(state.range(0)));
  for (double& v : input) v = rng.normal();
  for (auto _ : state) {
    auto j = mask.apply(input);
    benchmark::DoNotOptimize(j.data());
  }
}
BENCHMARK(BM_MaskApply)->Arg(2)->Arg(13)->Arg(62);

void BM_RidgePrimalVsDual(benchmark::State& state) {
  // range(0): sample count. Below the feature dimension (931) the dual path
  // engages; above it the primal.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  FeatureMatrix fm;
  fm.features.resize(n, dprr_dim(30));
  fm.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < fm.features.cols(); ++f) {
      fm.features(i, f) = rng.normal();
    }
    fm.labels[i] = static_cast<int>(i % 3);
  }
  for (auto _ : state) {
    auto layer = fit_ridge(fm, 3, 1e-4);
    benchmark::DoNotOptimize(layer.weights().data());
  }
}
BENCHMARK(BM_RidgePrimalVsDual)->Arg(100)->Arg(400)->Arg(1200)
    ->Unit(benchmark::kMillisecond);

void BM_CholeskyFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  Matrix base(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) base(r, c) = rng.normal();
  }
  const Matrix spd = gram_at_a(base, 1.0);
  for (auto _ : state) {
    auto l = cholesky_factor(spd);
    benchmark::DoNotOptimize(l->data());
  }
}
BENCHMARK(BM_CholeskyFactor)->Arg(64)->Arg(256)->Arg(931)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
