// Ablation: reservoir representation — DPRR (the paper's choice) vs the
// simpler alternatives it cites (last state, mean state, last+mean). Each
// representation gets the same reservoir parameters (the bp-optimized ones)
// and a ridge readout with the paper's beta sweep.
//
// Usage: bench_ablation_representation [--datasets ...] [--cap N]
// Output: console table + ablation_representation.csv.
#include <iostream>

#include "bench_common.hpp"
#include "dfr/features.hpp"
#include "util/rng.hpp"
#include "dfr/trainer.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dfr;
  using namespace dfr::bench;

  CliParser cli("bench_ablation_representation",
                "DPRR vs simpler reservoir representations");
  add_scale_options(cli);
  add_csv_option(cli, "ablation_representation.csv");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const ScaleOptions options = read_scale_options(cli);

  std::vector<DatasetSpec> specs;
  if (cli.get("datasets").empty()) {
    specs = {*find_spec("JPVOW"), *find_spec("CHAR"), *find_spec("ECG")};
  } else {
    specs = selected_specs(cli);
  }

  const RepresentationKind kinds[] = {
      RepresentationKind::kDprr, RepresentationKind::kLastState,
      RepresentationKind::kMeanState, RepresentationKind::kLastAndMean};

  ConsoleTable table(
      {"dataset", "representation", "features", "test acc", "beta"});
  BenchCsv csv(cli, {"dataset", "representation", "features", "test_acc", "beta"});

  for (const DatasetSpec& spec : specs) {
    const DatasetPair data = prepare_dataset(spec, options);

    // Optimize (A, B) once with the paper's method, then swap readouts.
    TrainerConfig config;
    config.nodes = 30;
    config.seed = options.seed;
    config.threads = options.threads;
    const TrainResult model =
        Trainer(config).fit_multistart(data.train, Trainer::default_restarts());
    const ModularReservoir reservoir(config.nodes, model.nonlinearity);

    for (RepresentationKind kind : kinds) {
      const FeatureMatrix train_features = compute_features(
          reservoir, model.params, model.mask, data.train, kind);
      const FeatureMatrix test_features = compute_features(
          reservoir, model.params, model.mask, data.test, kind);

      // beta selection on a validation split of the training features.
      Rng split_rng(options.seed);
      auto [fit_split, val_split] = data.train.stratified_split(0.8, split_rng);
      const FeatureMatrix fit_f = compute_features(
          reservoir, model.params, model.mask, fit_split, kind);
      const FeatureMatrix val_f = compute_features(
          reservoir, model.params, model.mask, val_split, kind);
      const RidgeSweep sweep =
          sweep_ridge(fit_f, val_f, data.train.num_classes());
      const OutputLayer layer =
          fit_ridge(train_features, data.train.num_classes(), sweep.best().beta);
      const double acc = evaluate_accuracy(layer, test_features);

      table.add_row({spec.id, representation_name(kind),
                     std::to_string(representation_dim(kind, config.nodes)),
                     fmt_double(acc, 3), fmt_double(sweep.best().beta, 6)});
      csv.add_row({spec.id, representation_name(kind),
                   std::to_string(representation_dim(kind, config.nodes)),
                   fmt_double(acc, 4), fmt_double(sweep.best().beta, 8)});
    }
  }
  table.print();
  std::cout << "(Expectation per Ikeda et al. TCAD'22: DPRR dominates the "
               "cheaper representations.)\n";
  csv.report();
  return 0;
}
