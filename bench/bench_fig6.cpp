// Reproduction of paper Fig. 6: the CHAR grid-search landscape at two
// refinement levels, illustrating why recursive grid refinement can miss the
// global optimum.
//
// Level 1 is a coarse grid over the full (A, B) search range; level 2 zooms
// into the best level-1 cell (the "recursively dig the best region" strategy
// the paper discusses). A fine reference grid over the full range locates
// the true optimum; the bench reports whether it falls inside the level-1
// winning cell — when it does not, recursive refinement is trapped, which is
// the figure's point.
//
// Usage: bench_fig6 [--cap N] [--coarse N] [--fine N] [--dataset CHAR]
// Output: two ASCII heatmaps + fig6_level1.csv / fig6_level2.csv /
// fig6_reference.csv.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "dfr/grid_search.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using dfr::GridLevelResult;

/// Render a divs x divs accuracy grid as an ASCII heatmap ('.' low, '#' high,
/// '*' best, 'x' invalid/diverged).
std::string render_heatmap(const GridLevelResult& level) {
  const std::size_t divs = level.divs;
  std::string out;
  const char* shades = " .:-=+*#";
  double lo = 1.0, hi = 0.0;
  for (const auto& c : level.candidates) {
    if (c.valid) {
      lo = std::min(lo, c.test_accuracy);
      hi = std::max(hi, c.test_accuracy);
    }
  }
  const double span = std::max(1e-9, hi - lo);
  // Rows: B descending (matrix-style, like the paper's plots); cols: A.
  for (std::size_t bi = divs; bi > 0; --bi) {
    out += "  ";
    for (std::size_t ai = 0; ai < divs; ++ai) {
      const auto& c = level.candidates[ai * divs + (bi - 1)];
      if (!c.valid) {
        out += 'x';
      } else if (ai * divs + (bi - 1) == level.best_index) {
        out += 'O';
      } else {
        const auto shade = static_cast<std::size_t>(
            std::round((c.test_accuracy - lo) / span * 7.0));
        out += shades[shade];
      }
    }
    out += '\n';
  }
  return out;
}

void write_level_csv(const std::string& path, const GridLevelResult& level) {
  dfr::CsvWriter csv(path, {"a", "b", "beta", "valid", "val_loss", "test_acc"});
  for (const auto& c : level.candidates) {
    csv.add_row({dfr::fmt_double(c.a, 6), dfr::fmt_double(c.b, 6),
                 dfr::fmt_double(c.beta, 8), c.valid ? "1" : "0",
                 dfr::fmt_double(c.validation_loss, 6),
                 dfr::fmt_double(c.test_accuracy, 4)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfr;
  using namespace dfr::bench;

  CliParser cli("bench_fig6", "reproduce Fig. 6 (grid landscape, CHAR)");
  add_scale_options(cli);
  cli.add_option("dataset", "dataset id for the landscape", "CHAR");
  cli.add_option("coarse", "level-1 grid divisions", "6");
  cli.add_option("fine", "reference grid divisions", "12");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const ScaleOptions options = read_scale_options(cli);
  const auto spec = find_spec(cli.get("dataset"));
  if (!spec) {
    std::cerr << "unknown dataset: " << cli.get("dataset") << '\n';
    return 1;
  }
  const std::size_t coarse = cli.get_u64("coarse");
  const std::size_t fine = cli.get_u64("fine");

  std::cout << "Fig. 6 reproduction — grid-search landscape on " << spec->id
            << " (" << (options.full ? "FULL" : "reduced") << " scale)\n\n";
  const DatasetPair data = prepare_dataset(*spec, options);

  GridSearchConfig config;
  config.nodes = 30;
  config.seed = options.seed;
  config.threads = options.threads;

  // Level 1: coarse grid over the paper's full range.
  const GridLevelResult level1 = run_grid_level(config, data.train, data.test, coarse);
  std::cout << "level 1 (" << coarse << "x" << coarse
            << " over the full range), best acc = "
            << fmt_double(level1.best().test_accuracy, 3) << " at A="
            << fmt_double(level1.best().a, 4) << " B="
            << fmt_double(level1.best().b, 4) << ":\n"
            << render_heatmap(level1) << '\n';

  // Level 2: the same number of divisions *inside the winning level-1 cell*
  // (recursive refinement).
  const double a_width = (config.log10_a_max - config.log10_a_min) /
                         static_cast<double>(coarse);
  const double b_width = (config.log10_b_max - config.log10_b_min) /
                         static_cast<double>(coarse);
  const double best_log_a = std::log10(level1.best().a);
  const double best_log_b = std::log10(level1.best().b);
  GridSearchConfig zoomed = config;
  zoomed.log10_a_min = best_log_a - 0.5 * a_width;
  zoomed.log10_a_max = best_log_a + 0.5 * a_width;
  zoomed.log10_b_min = best_log_b - 0.5 * b_width;
  zoomed.log10_b_max = best_log_b + 0.5 * b_width;
  const GridLevelResult level2 =
      run_grid_level(zoomed, data.train, data.test, coarse);
  std::cout << "level 2 (zoom into the winning level-1 cell), best acc = "
            << fmt_double(level2.best().test_accuracy, 3) << ":\n"
            << render_heatmap(level2) << '\n';

  // Reference: fine grid over the full range (ground truth for the optimum).
  const GridLevelResult reference =
      run_grid_level(config, data.train, data.test, fine);
  const auto& global_best = reference.best();
  std::cout << "reference (" << fine << "x" << fine << " full range): best acc = "
            << fmt_double(global_best.test_accuracy, 3) << " at A="
            << fmt_double(global_best.a, 4) << " B="
            << fmt_double(global_best.b, 4) << "\n\n";

  const bool optimum_inside_cell =
      std::log10(global_best.a) >= zoomed.log10_a_min &&
      std::log10(global_best.a) <= zoomed.log10_a_max &&
      std::log10(global_best.b) >= zoomed.log10_b_min &&
      std::log10(global_best.b) <= zoomed.log10_b_max;
  std::cout << "global optimum inside the level-1 winning cell: "
            << (optimum_inside_cell ? "yes" : "NO") << '\n';
  std::cout << "recursive refinement (level 2) vs true optimum: "
            << fmt_double(level2.best().test_accuracy, 3) << " vs "
            << fmt_double(global_best.test_accuracy, 3)
            << (level2.best().test_accuracy + 1e-9 <
                        global_best.test_accuracy
                    ? "  -> refinement trapped (the figure's failure mode)"
                    : "  -> refinement sufficed on this draw")
            << '\n';

  write_level_csv("fig6_level1.csv", level1);
  write_level_csv("fig6_level2.csv", level2);
  write_level_csv("fig6_reference.csv", reference);
  std::cout << "CSVs written to fig6_level{1,2}.csv, fig6_reference.csv\n";
  return 0;
}
