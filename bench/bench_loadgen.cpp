// Open-loop load generator: the saturation-behavior harness the closed-loop
// bench_serving rows cannot provide. Requests arrive on a Poisson schedule
// at a target offered QPS regardless of how the system is doing — when the
// server falls behind, arrivals do NOT slow down (open loop), so queueing
// delay, deadline sheds, and queue-full rejections show up in the numbers
// instead of being absorbed by a waiting client. Latency is measured from
// each request's SCHEDULED arrival, not from when the generator got around
// to sending it, so dispatcher lag counts against the system (the standard
// coordinated-omission correction).
//
// Two targets behind one harness:
//   --mode inproc   drive an in-process InferenceServer (models +
//                   traffic from serve/synth.hpp) — the CI perf job's
//                   latency-vs-offered-load + shed-measurement rows.
//   --mode socket   drive a shard fleet through the Router
//                   (serve/router.hpp): --shards unix:/a.sock,unix:/b.sock
//                   — the CI distributed-smoke job's traffic source.
//
// Each --qps point emits one CSV row (and a console line):
//   row          loadgen-inproc | router-<K>shard, with a -shed suffix when
//                --deadline-us is set (the queue-position shed measurement)
//   offered_qps / achieved_qps, sent/completed/shed/rejected/errors,
//   p50/p90/p99_us over completed requests, shed_frac, reject_frac.
// A sweep (>= 4 points, e.g. --qps 200,500,1000,2000) is the
// latency-vs-offered-load curve; the perf rollup keys trajectory columns
// offered_qps/achieved_p99_us off the highest offered point.
//
// Skew + policy A/B (--skew zipf:<s>, --policy load-aware|placement): Zipf
// model picks concentrate traffic on hot models, so with a replicated fleet
// the hot shard queues while its replica idles — the pair of rows the two
// policies emit at the same offered QPS is the load-aware-routing p99
// measurement. Fleet mode (--fleet on, inproc only) serves .dfrm files
// through an LRU ArtifactStore (--resident-models cap) and reports the
// fraction of requests that took a request-path cold fault
// (cold_fault_frac, last CSV column) — with --prefetch on, the store's
// successor predictor faults the next model in from a background worker and
// that fraction collapses to the warm-up transient. One caveat when the cap
// is far below the working set: a request queued behind a deep backlog can
// see its model LRU-evicted before the worker dequeues it (typed
// kUnknownModel, counted in errors) — size --resident-models >= the hot set
// when that matters.
//
// Chaos mode (--chaos on, socket only): point the fleet at shards running
// `dfr_shard --fault ...` — rows gain a -chaos suffix and every point prints
// a chaos-taxonomy line proving each sent request resolved to a typed
// outcome (ok / shed / rejected / error, with timeout and breaker-fast-fail
// fractions split out). The router's robustness knobs are exposed as
// --attempt-deadline-us / --retry-budget / --breaker-threshold; the CI
// chaos-smoke job asserts a wedged or kill -9'd shard loses nothing.
//
// Usage:
//   bench_loadgen --qps 200,500,1000,2000 --duration-s 2 --csv loadgen.csv
//   bench_loadgen --mode socket --shards unix:/tmp/s0.sock,unix:/tmp/s1.sock
//                 --models 2 --replicas 2 --qps 100,200,400,800
//   bench_loadgen --mode socket --shards ... --skew zipf:1.2 --policy placement
//   bench_loadgen --mode socket --shards ... --chaos on --breaker-threshold 3
//   bench_loadgen --fleet on --models 12 --resident-models 4 --prefetch on

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "dfr/trainer.hpp"
#include "linalg/stats.hpp"
#include "serve/artifact_store.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/synth.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dfr;
using Clock = std::chrono::steady_clock;

/// Outcome tallies + completed-request latencies for one offered-QPS point.
struct PointResult {
  double offered_qps = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;      // typed kDeadlineExceeded (submit/queue/dequeue)
  std::uint64_t rejected = 0;  // kQueueFull / kShutdown / kUnavailable
  std::uint64_t errors = 0;    // anything else that is not kOk
  // Router failure taxonomy (socket mode; both also count in `rejected` so
  // the sent = completed + shed + rejected + errors ledger still balances):
  std::uint64_t timeouts = 0;   // kTimeout: retry walk ran out of deadline
  std::uint64_t fastfails = 0;  // kBreakerOpen: no replica was dialable
  double duration_s = 0.0;     // wall clock, first arrival -> last resolution
  Vector latencies_us;         // completed requests, scheduled-arrival based

  void count(serve::RequestStatus status, double latency_us) {
    switch (status) {
      case serve::RequestStatus::kOk:
        ++completed;
        latencies_us.push_back(latency_us);
        break;
      case serve::RequestStatus::kDeadlineExceeded: ++shed; break;
      case serve::RequestStatus::kQueueFull:
      case serve::RequestStatus::kShutdown: ++rejected; break;
      default: ++errors; break;
    }
  }
};

/// Deterministic Poisson arrival schedule: exponential inter-arrival gaps at
/// `qps`, for `duration_s` of offered load.
std::vector<double> make_arrivals_s(double qps, double duration_s,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<std::size_t>(qps * duration_s * 1.2) + 16);
  double t = 0.0;
  for (;;) {
    // Inverse-CDF exponential; 1-u keeps log()'s argument in (0, 1].
    t += -std::log(1.0 - rng.uniform()) / qps;
    if (t >= duration_s) break;
    arrivals.push_back(t);
  }
  return arrivals;
}

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Per-arrival model picks. zipf_s == 0 keeps the legacy uniform cycle
/// (i % models, so unskewed rows stay comparable across PRs); zipf_s > 0
/// draws i.i.d. Zipf(s) ranks via the precomputed CDF and the repo Rng —
/// deterministic for a given (seed, n), hot model first (m0 hottest).
std::vector<std::size_t> make_model_picks(std::size_t n, std::size_t models,
                                          double zipf_s, std::uint64_t seed) {
  std::vector<std::size_t> picks(n);
  if (zipf_s <= 0.0) {
    for (std::size_t i = 0; i < n; ++i) picks[i] = i % models;
    return picks;
  }
  std::vector<double> cdf(models);
  double total = 0.0;
  for (std::size_t k = 0; k < models; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), zipf_s);
    cdf[k] = total;
  }
  Rng rng(seed ^ 0x5ca1ab1eu);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform() * total;
    picks[i] = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (picks[i] >= models) picks[i] = models - 1;
  }
  return picks;
}

// ---- in-process target -----------------------------------------------------

/// One offered-QPS point against an in-process InferenceServer. The main
/// thread dispatches on schedule (submit never blocks); a harvester
/// collects futures FIFO so slots recycle while the point is still running
/// (futures hold their slot until released — harvesting IS the client).
PointResult run_point_inproc(serve::InferenceServer& server,
                             const std::vector<std::string>& model_ids,
                             const std::vector<Matrix>& series_pool,
                             double qps, double duration_s,
                             std::uint64_t deadline_us, std::uint64_t seed,
                             double zipf_s = 0.0,
                             serve::ArtifactStore* store = nullptr) {
  PointResult result;
  result.offered_qps = qps;
  const std::vector<double> arrivals = make_arrivals_s(qps, duration_s, seed);
  const std::vector<std::size_t> picks =
      make_model_picks(arrivals.size(), model_ids.size(), zipf_s, seed);

  struct Pending {
    serve::InferFuture future;
    double dispatch_lag_us;  // scheduled arrival -> actual submit
  };
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Pending> inflight;
  bool done_dispatching = false;

  std::thread harvester([&] {
    for (;;) {
      Pending pending;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return !inflight.empty() || done_dispatching; });
        if (inflight.empty()) return;
        pending = Pending{std::move(inflight.front().future),
                          inflight.front().dispatch_lag_us};
        inflight.pop_front();
      }
      const serve::InferResult& r = pending.future.get();
      // Scheduled-arrival latency: server-side submit->done plus however
      // long the dispatcher ran behind schedule.
      result.count(r.status, pending.dispatch_lag_us + r.latency_us);
    }
  });

  serve::RequestOptions options;
  options.deadline_us = deadline_us;
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Clock::time_point scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrivals[i]));
    std::this_thread::sleep_until(scheduled);
    // Fleet mode: resolve the artifact through the store FIRST, so a cold
    // model's fault-in (or its prefetch-avoided absence) lands on the
    // request path exactly where a real server would pay it — the
    // dispatch-lag correction below folds the load time into latency.
    if (store != nullptr) (void)store->get(model_ids[picks[i]]);
    serve::InferFuture future =
        server.submit(model_ids[picks[i]],
                      series_pool[i % series_pool.size()], options);
    const double lag_us = std::max(0.0, us_between(scheduled, Clock::now()));
    {
      std::lock_guard<std::mutex> lock(mutex);
      inflight.push_back(Pending{std::move(future), lag_us});
    }
    cv.notify_one();
    ++result.sent;
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    done_dispatching = true;
  }
  cv.notify_all();
  harvester.join();
  result.duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

// ---- socket-tier target ----------------------------------------------------

/// One offered-QPS point through the Router against live shards. Arrivals
/// are stamped into a job queue on schedule; `senders` synchronous sender
/// threads drain it, so when every sender is busy the jobs age in the queue
/// and that aging lands in the measured latency (open-loop honesty — the
/// schedule never slows down for a saturated fleet).
PointResult run_point_socket(serve::Router& router,
                             const std::vector<std::string>& model_ids,
                             const std::vector<Matrix>& series_pool,
                             double qps, double duration_s,
                             std::uint64_t deadline_us, std::size_t senders,
                             std::uint64_t seed, double zipf_s = 0.0) {
  PointResult result;
  result.offered_qps = qps;
  const std::vector<double> arrivals = make_arrivals_s(qps, duration_s, seed);
  const std::vector<std::size_t> picks =
      make_model_picks(arrivals.size(), model_ids.size(), zipf_s, seed);

  struct Job {
    Clock::time_point scheduled;
    std::size_t index;
  };
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Job> jobs;
  bool done_dispatching = false;

  serve::RequestOptions options;
  options.deadline_us = deadline_us;

  std::vector<PointResult> per_sender(senders);
  std::vector<std::thread> threads;
  threads.reserve(senders);
  for (std::size_t s = 0; s < senders; ++s) {
    threads.emplace_back([&, s] {
      for (;;) {
        Job job;
        {
          std::unique_lock<std::mutex> lock(mutex);
          cv.wait(lock, [&] { return !jobs.empty() || done_dispatching; });
          if (jobs.empty()) return;
          job = jobs.front();
          jobs.pop_front();
        }
        const serve::wire::WireResponse response =
            router.infer(model_ids[picks[job.index]],
                         series_pool[job.index % series_pool.size()], options);
        const double latency_us =
            std::max(0.0, us_between(job.scheduled, Clock::now()));
        // WireStatus 0..6 mirror RequestStatus; the router-local statuses
        // (kUnavailable / kTimeout / kBreakerOpen) count rejected, with
        // timeout/fast-fail tallied separately for the chaos taxonomy.
        if (response.status == serve::wire::WireStatus::kUnavailable) {
          ++per_sender[s].rejected;
        } else if (response.status == serve::wire::WireStatus::kTimeout) {
          ++per_sender[s].rejected;
          ++per_sender[s].timeouts;
        } else if (response.status == serve::wire::WireStatus::kBreakerOpen) {
          ++per_sender[s].rejected;
          ++per_sender[s].fastfails;
        } else {
          per_sender[s].count(
              static_cast<serve::RequestStatus>(response.status), latency_us);
        }
      }
    });
  }

  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Clock::time_point scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrivals[i]));
    std::this_thread::sleep_until(scheduled);
    {
      std::lock_guard<std::mutex> lock(mutex);
      jobs.push_back(Job{scheduled, i});
    }
    cv.notify_one();
    ++result.sent;
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    done_dispatching = true;
  }
  cv.notify_all();
  for (std::thread& t : threads) t.join();
  result.duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (PointResult& part : per_sender) {
    result.completed += part.completed;
    result.shed += part.shed;
    result.rejected += part.rejected;
    result.errors += part.errors;
    result.timeouts += part.timeouts;
    result.fastfails += part.fastfails;
    result.latencies_us.insert(result.latencies_us.end(),
                               part.latencies_us.begin(),
                               part.latencies_us.end());
  }
  return result;
}

// ---- reporting -------------------------------------------------------------

std::string fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", v);
  return buffer;
}

void report_point(const std::string& row, std::size_t shards,
                  std::size_t workers, const PointResult& point,
                  bench::BenchCsv& csv, double cold_fault_frac = 0.0) {
  const Summary latency = point.latencies_us.empty()
                              ? Summary{}
                              : summarize(point.latencies_us);
  const double denom = point.sent > 0 ? static_cast<double>(point.sent) : 1.0;
  const double shed_frac = static_cast<double>(point.shed) / denom;
  const double reject_frac = static_cast<double>(point.rejected) / denom;
  const double achieved =
      point.duration_s > 0.0
          ? static_cast<double>(point.completed) / point.duration_s
          : 0.0;
  std::cout << row << ": offered=" << fmt(point.offered_qps)
            << "qps achieved=" << fmt(achieved) << "qps sent=" << point.sent
            << " p50=" << fmt(latency.p50) << "us p99=" << fmt(latency.p99)
            << "us shed=" << fmt(100.0 * shed_frac)
            << "% rejected=" << fmt(100.0 * reject_frac)
            << "% errors=" << point.errors;
  if (cold_fault_frac > 0.0) {
    std::cout << " cold_faults=" << fmt(100.0 * cold_fault_frac) << "%";
  }
  const double timeout_frac = static_cast<double>(point.timeouts) / denom;
  const double fastfail_frac = static_cast<double>(point.fastfails) / denom;
  if (point.timeouts > 0 || point.fastfails > 0) {
    std::cout << " timeouts=" << fmt(100.0 * timeout_frac)
              << "% breaker_fastfails=" << fmt(100.0 * fastfail_frac) << "%";
  }
  std::cout << "\n";
  // cold_fault_frac / timeout_frac / breaker_fastfail_frac are APPENDED so
  // the CI awk checks' column indices and the perf rollup's existing parses
  // stay valid.
  csv.add_row({row, "synth", std::to_string(shards), std::to_string(workers),
               fmt(point.offered_qps), fmt(point.duration_s),
               std::to_string(point.sent), std::to_string(point.completed),
               std::to_string(point.shed), std::to_string(point.rejected),
               std::to_string(point.errors), fmt(achieved), fmt(latency.p50),
               fmt(latency.p90), fmt(latency.p99), fmt(shed_frac),
               fmt(reject_frac), fmt(cold_fault_frac), fmt(timeout_frac),
               fmt(fastfail_frac)});
}

std::vector<double> parse_qps_list(const std::string& text) {
  std::vector<double> points;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) points.push_back(std::stod(text.substr(start, end - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  DFR_CHECK_MSG(!points.empty(), "--qps selected no points");
  return points;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int run(int argc, char** argv) {
  CliParser cli("bench_loadgen",
                "Open-loop Poisson load generator: latency vs offered load "
                "against the in-process server or the sharded socket tier");
  cli.add_option("mode", "inproc | socket", "inproc");
  cli.add_option("qps", "comma list of offered-QPS sweep points",
                 "200,500,1000,2000");
  cli.add_option("duration-s", "offered-load seconds per point", "2");
  cli.add_option("deadline-us",
                 "per-request completion budget (0 = none; rows gain a "
                 "-shed suffix and measure the shed fraction)",
                 "0");
  cli.add_option("models", "synthetic model count (ids m0..m{N-1})", "2");
  cli.add_option("channels", "synthetic series channels", "2");
  cli.add_option("classes", "synthetic model classes", "4");
  cli.add_option("nodes", "synthetic model virtual nodes (Nx)", "30");
  cli.add_option("steps", "synthetic series length (T)", "64");
  cli.add_option("seed", "master seed (models + arrivals)", "42");
  cli.add_option("workers", "inproc: serving threads", "1");
  cli.add_option("queue-capacity", "inproc: bounded queue capacity", "256");
  cli.add_option("shards",
                 "socket: comma list of shard endpoints "
                 "(unix:/path or tcp:host:port)",
                 "");
  cli.add_option("replicas", "socket: replica-group size", "1");
  cli.add_option("senders", "socket: concurrent sender threads", "8");
  cli.add_option("skew",
                 "model-pick distribution: none | zipf:<s> (deterministic; "
                 "rows gain a -zipf suffix)",
                 "none");
  cli.add_option("policy",
                 "socket: replica choice, load-aware | placement "
                 "(placement rows gain a -placement suffix)",
                 "load-aware");
  cli.add_option("health-poll-ms",
                 "socket: router health-probe interval (shorter polls damp "
                 "p2c herding on stale samples)",
                 "50");
  cli.add_option("chaos",
                 "socket: off | on — fault-tolerance reporting mode: rows "
                 "gain a -chaos suffix and the console prints the full "
                 "error-taxonomy fractions per point (point the fleet at "
                 "shards running dfr_shard --fault ...)",
                 "off");
  cli.add_option("attempt-deadline-us",
                 "socket: router per-attempt wire deadline for requests "
                 "without their own --deadline-us (0 = unlimited)",
                 "2000000");
  cli.add_option("retry-budget",
                 "socket: router retries per request after the first attempt",
                 "3");
  cli.add_option("breaker-threshold",
                 "socket: consecutive failures that open a shard's circuit "
                 "breaker (0 = disabled)",
                 "5");
  cli.add_option("fleet",
                 "inproc: off | on — serve .dfrm artifacts through an "
                 "LRU ArtifactStore (rows become loadgen-fleet and report "
                 "cold_fault_frac)",
                 "off");
  cli.add_option("resident-models",
                 "fleet: LRU cap as a model count (0 = unbounded)", "0");
  cli.add_option("prefetch",
                 "fleet: off | on — background successor prefetch "
                 "(rows gain a -prefetch suffix)",
                 "off");
  bench::add_csv_option(cli, "");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const std::string mode = cli.get("mode");
  DFR_CHECK_MSG(mode == "inproc" || mode == "socket",
                "--mode must be inproc or socket");
  const std::vector<double> qps_points = parse_qps_list(cli.get("qps"));
  const double duration_s = cli.get_double("duration-s");
  const std::uint64_t deadline_us = cli.get_u64("deadline-us");
  const std::uint64_t seed = cli.get_u64("seed");
  const std::size_t model_count = cli.get_u64("models");
  DFR_CHECK_MSG(model_count > 0, "--models must be >= 1");

  serve::SynthModelSpec spec;
  spec.channels = cli.get_u64("channels");
  spec.num_classes = static_cast<int>(cli.get_i64("classes"));
  spec.nodes = cli.get_u64("nodes");

  std::vector<std::string> model_ids;
  for (std::size_t i = 0; i < model_count; ++i) {
    model_ids.push_back("m" + std::to_string(i));
  }
  // Distinct series cycled across requests; the shapes (T x V) are what the
  // serving cost depends on, so 32 deterministic instances are plenty.
  std::vector<Matrix> series_pool;
  for (std::size_t i = 0; i < 32; ++i) {
    series_pool.push_back(
        serve::make_synth_series(cli.get_u64("steps"), spec.channels,
                                 seed + 7000 + i));
  }

  bench::BenchCsv csv(cli, {"row", "dataset", "shards", "workers",
                            "offered_qps", "duration_s", "sent", "completed",
                            "shed", "rejected", "errors", "achieved_qps",
                            "p50_us", "p90_us", "p99_us", "shed_frac",
                            "reject_frac", "cold_fault_frac", "timeout_frac",
                            "breaker_fastfail_frac"});

  const std::string skew = cli.get("skew");
  double zipf_s = 0.0;
  if (skew != "none") {
    DFR_CHECK_MSG(skew.rfind("zipf:", 0) == 0,
                  "--skew must be none or zipf:<s>");
    zipf_s = std::stod(skew.substr(5));
    DFR_CHECK_MSG(zipf_s > 0.0, "--skew zipf:<s> needs s > 0");
  }
  const std::string policy = cli.get("policy");
  DFR_CHECK_MSG(policy == "load-aware" || policy == "placement",
                "--policy must be load-aware or placement");
  std::string suffix = deadline_us > 0 ? "-shed" : "";
  if (zipf_s > 0.0) suffix += "-zipf";

  if (mode == "inproc") {
    const bool fleet = cli.get("fleet") == "on";
    const bool prefetch_on = cli.get("prefetch") == "on";
    serve::ModelRegistry registry;
    std::unique_ptr<serve::ArtifactStore> store;
    std::string fleet_dir;
    if (fleet) {
      // Materialize the synthetic fleet as real .dfrm files so the store's
      // mmap fault path (and its madvise hints) is what the numbers
      // measure, not an in-memory shortcut.
      fleet_dir = "/tmp/dfr_loadgen_fleet." + std::to_string(::getpid());
      DFR_CHECK_MSG(::mkdir(fleet_dir.c_str(), 0700) == 0,
                    "cannot create fleet dir: " + fleet_dir);
      std::size_t artifact_bytes = 0;
      for (std::size_t i = 0; i < model_count; ++i) {
        spec.seed = seed + i;
        const ModelArtifactPtr artifact =
            serve::make_synth_artifact(model_ids[i], spec);
        TrainResult trained;
        trained.params = artifact->params;
        trained.mask = artifact->mask;
        trained.nonlinearity = artifact->nonlinearity;
        trained.readout = artifact->readout;
        trained.chosen_beta = artifact->chosen_beta;
        const std::string path = fleet_dir + "/" + model_ids[i] + ".dfrm";
        save_model(trained, path, /*format_version=*/2);
        if (artifact_bytes == 0) {
          struct stat st{};
          DFR_CHECK_MSG(::stat(path.c_str(), &st) == 0, "cannot stat " + path);
          artifact_bytes = static_cast<std::size_t>(st.st_size);
        }
      }
      serve::ArtifactStoreConfig store_config;
      const std::size_t resident = cli.get_u64("resident-models");
      store_config.max_resident_bytes = resident * artifact_bytes;
      store_config.prefetch = prefetch_on;
      store = std::make_unique<serve::ArtifactStore>(registry, store_config);
      for (std::size_t i = 0; i < model_count; ++i) {
        store->add(model_ids[i], fleet_dir + "/" + model_ids[i] + ".dfrm");
      }
    } else {
      for (std::size_t i = 0; i < model_count; ++i) {
        spec.seed = seed + i;
        registry.register_model(serve::make_synth_artifact(model_ids[i], spec));
      }
    }
    serve::ServerConfig config;
    config.workers = cli.get_u64("workers");
    config.queue_capacity = cli.get_u64("queue-capacity");
    serve::InferenceServer server(registry, config);
    const std::string row = fleet ? "loadgen-fleet" +
                                        std::string(prefetch_on ? "-prefetch"
                                                                : "") +
                                        suffix
                                  : "loadgen-inproc" + suffix;
    for (std::size_t p = 0; p < qps_points.size(); ++p) {
      const std::uint64_t faults_before =
          store != nullptr ? store->counters().faults : 0;
      const PointResult point =
          run_point_inproc(server, model_ids, series_pool, qps_points[p],
                           duration_s, deadline_us, seed + 100 + p, zipf_s,
                           store.get());
      double cold_fault_frac = 0.0;
      if (store != nullptr && point.sent > 0) {
        store->wait_prefetch_idle();
        cold_fault_frac =
            static_cast<double>(store->counters().faults - faults_before) /
            static_cast<double>(point.sent);
      }
      report_point(row, /*shards=*/0, config.workers, point, csv,
                   cold_fault_frac);
    }
    if (store != nullptr) {
      store->export_stats(std::cout);
      for (std::size_t i = 0; i < model_count; ++i) {
        (void)::unlink(
            (fleet_dir + "/" + model_ids[i] + ".dfrm").c_str());
      }
      (void)::rmdir(fleet_dir.c_str());
    }
  } else {
    const std::vector<std::string> endpoints = split_list(cli.get("shards"));
    DFR_CHECK_MSG(!endpoints.empty(),
                  "--mode socket requires --shards endpoint list");
    const bool chaos = cli.get("chaos") == "on";
    serve::RouterConfig router_config;
    router_config.replicas = cli.get_u64("replicas");
    router_config.load_aware = policy == "load-aware";
    router_config.health_poll_ms = cli.get_u64("health-poll-ms");
    router_config.default_attempt_deadline_us =
        cli.get_u64("attempt-deadline-us");
    router_config.retry_budget = cli.get_u64("retry-budget");
    router_config.breaker_threshold =
        static_cast<std::uint32_t>(cli.get_u64("breaker-threshold"));
    router_config.seed = seed;
    serve::Router router(router_config);
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      router.add_shard("s" + std::to_string(i),
                       serve::wire::parse_endpoint(endpoints[i]));
    }
    const std::string row = "router-" + std::to_string(endpoints.size()) +
                            "shard" + suffix +
                            (policy == "placement" ? "-placement" : "") +
                            (chaos ? "-chaos" : "");
    for (std::size_t p = 0; p < qps_points.size(); ++p) {
      const PointResult point = run_point_socket(
          router, model_ids, series_pool, qps_points[p], duration_s,
          deadline_us, cli.get_u64("senders"), seed + 100 + p, zipf_s);
      report_point(row, endpoints.size(), /*workers=*/0, point, csv);
      if (chaos && point.sent > 0) {
        // The chaos ledger: every sent request accounted for with a typed
        // outcome — the "no request is ever silently lost" claim, printed
        // per point so a CI grep can assert on it.
        const double denom = static_cast<double>(point.sent);
        std::cout << "chaos-taxonomy: sent=" << point.sent
                  << " ok_frac=" << fmt(static_cast<double>(point.completed) /
                                        denom)
                  << " shed_frac=" << fmt(static_cast<double>(point.shed) /
                                          denom)
                  << " rejected_frac=" << fmt(
                         static_cast<double>(point.rejected) / denom)
                  << " error_frac=" << fmt(static_cast<double>(point.errors) /
                                           denom)
                  << " timeout_frac=" << fmt(
                         static_cast<double>(point.timeouts) / denom)
                  << " breaker_fastfail_frac=" << fmt(
                         static_cast<double>(point.fastfails) / denom)
                  << " accounted=" << (point.completed + point.shed +
                                               point.rejected + point.errors ==
                                           point.sent
                                       ? "yes"
                                       : "NO")
                  << "\n";
      }
    }
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      const serve::ShardCounters counters =
          router.counters("s" + std::to_string(i));
      std::cout << "shard s" << i << ": requests=" << counters.requests
                << " ok=" << counters.ok << " retried=" << counters.retried
                << " io_failures=" << counters.io_failures
                << " timeouts=" << counters.timeouts
                << " breaker_trips=" << counters.breaker_trips
                << " breaker_fastfails=" << counters.breaker_fastfails << "\n";
    }
    router.export_stats(std::cout);
  }
  csv.report();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_loadgen: " << e.what() << "\n";
    return 1;
  }
}
