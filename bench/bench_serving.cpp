// Serving bench: what the unified streaming inference engine
// (serve/engine.hpp) delivers at deployment time — single-stream latency
// percentiles (p50/p90/p99) and batch throughput across thread counts, for
// the float, SIMD (runtime-dispatched; force with
// DFR_SIMD=scalar|avx2|avx512|neon) and calibrated fixed-point datapaths
// (quant-scalar vs the vectorized quant-<backend>, bit-identical by the
// quantized SIMD contract) — plus the cross-request batched SoA engine rows
// (batched-<backend> / batched-quant-<backend>: one BatchedEngine running
// `--lanes` concurrent series per step, per-series latency = batch time /
// lanes, speedup vs the single-series simd-<backend> serial loop) — plus
// the multi-model serving rows: 1/2/4 registered models behind the
// request-queue InferenceServer (serve/server.hpp) under interleaved
// traffic, reporting request throughput and end-to-end latency (queue wait
// + inference) per worker count, for float and per-request-routed quantized
// traffic (server-*-quant rows), and the same traffic through a
// micro-batching server (server-batched-* rows, max_batch = --lanes).
//
// Thread-sweep and multi-worker rows are only meaningful when the host has
// the cores to run them: on hosts with fewer than 4 cores, rows that would
// oversubscribe (threads/workers > cores) are emitted as explicit
// `skipped(ncores=N)` markers instead of misleading numbers — CSV consumers
// (the CI perf rollup) treat the marker as "not measured", never as zero.
//
// The model is built directly (random mask + random readout at the paper's
// Nx=30 shape): serving cost depends only on shapes (T, V, Nx, Ny), never on
// weight values, so skipping training keeps the bench pure-serving and fast
// enough for CI. Throughput speedups are hardware-dependent; the speedup
// column reports batch `classify_batch` throughput relative to a serial
// per-series loop on one engine.
//
// Usage: bench_serving [--datasets ECG,JPVOW] [--cap N] [--batch 256]
//                      [--repeats 3] [--csv serving.csv]
#include <algorithm>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dfr/dprr.hpp"
#include "fixedpoint/quantized_dfr.hpp"
#include "linalg/stats.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace dfr;

/// Deployment-shaped model with random (but deterministic) weights.
LoadedModel make_serving_model(const Dataset& data, std::size_t nodes,
                               std::uint64_t seed) {
  Rng rng(seed);
  LoadedModel model;
  model.params = DfrParams{0.1, 0.05};
  model.mask = Mask(nodes, data.channels(), MaskKind::kBinary, rng);
  Matrix w(static_cast<std::size_t>(data.num_classes()), dprr_dim(nodes));
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) w(i, j) = rng.uniform(-1.0, 1.0);
  }
  Vector b(w.rows(), 0.0);
  for (double& v : b) v = rng.uniform(-0.1, 0.1);
  model.readout = OutputLayer(std::move(w), std::move(b));
  return model;
}

/// Batch of `size` series cycled from the test split.
std::vector<Matrix> make_batch(const Dataset& data, std::size_t size) {
  std::vector<Matrix> batch;
  batch.reserve(size);
  for (std::size_t i = 0; i < size; ++i) batch.push_back(data[i % data.size()].series);
  return batch;
}

struct StreamResult {
  Summary latency_us;   // per-classify latency distribution
  double serial_sps = 0.0;  // serial per-series loop, one engine
};

struct ServerRunResult {
  Summary latency_us;       // end-to-end request latency (queue + inference)
  double requests_per_s = 0.0;
};

/// One traffic wave through the request-queue server: `batch.size()` requests
/// interleaved round-robin across `model_ids`, submitted as fast as the
/// queue admits (futures held, so capacity = batch size: no rejections).
/// `options` selects the per-request engine routing (float or quantized).
ServerRunResult run_server_traffic(serve::InferenceServer& server,
                                   const std::vector<std::string>& model_ids,
                                   const std::vector<Matrix>& batch,
                                   std::size_t repeats,
                                   serve::RequestOptions options = {}) {
  ServerRunResult result;
  Vector latencies;
  latencies.reserve(batch.size() * repeats);
  double seconds = 0.0;
  for (std::size_t r = 0; r <= repeats; ++r) {  // pass 0 = untimed warm-up
    std::vector<serve::InferFuture> futures;
    futures.reserve(batch.size());
    Timer t;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      futures.push_back(
          server.submit(model_ids[i % model_ids.size()], batch[i], options));
    }
    for (serve::InferFuture& future : futures) future.wait();
    if (r == 0) continue;
    seconds += t.elapsed_seconds();
    for (const serve::InferFuture& future : futures) {
      latencies.push_back(future.get().latency_us);
    }
  }
  result.latency_us = summarize(latencies);
  result.requests_per_s =
      static_cast<double>(batch.size() * repeats) / seconds;
  return result;
}

/// Cross-request batched SoA engine over `batch`, `lanes` series per call:
/// per-series latency is the batch call's time divided by its lane count
/// (each recorded once per lane so percentiles weight series, not chunks).
template <typename Engine>
StreamResult run_batched_stream(Engine engine, const std::vector<Matrix>& batch,
                                std::size_t lanes, std::size_t repeats) {
  std::vector<const Matrix*> ptrs(lanes, nullptr);
  const auto run_chunk = [&](std::size_t start) {
    const std::size_t n = std::min(lanes, batch.size() - start);
    for (std::size_t l = 0; l < n; ++l) ptrs[l] = &batch[start + l];
    engine.infer(std::span<const Matrix* const>(ptrs.data(), n));
    return n;
  };
  for (std::size_t s = 0; s < batch.size(); s += lanes) run_chunk(s);  // warmup
  StreamResult result;
  Vector latencies;
  latencies.reserve(batch.size() * repeats);
  Timer total;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t s = 0; s < batch.size(); s += lanes) {
      Timer t;
      const std::size_t n = run_chunk(s);
      const double per_series =
          static_cast<double>(t.elapsed_ns()) * 1e-3 / static_cast<double>(n);
      for (std::size_t l = 0; l < n; ++l) latencies.push_back(per_series);
    }
  }
  result.serial_sps =
      static_cast<double>(batch.size() * repeats) / total.elapsed_seconds();
  result.latency_us = summarize(latencies);
  return result;
}

/// Single-stream latencies + serial-loop throughput over `batch`.
template <typename Engine>
StreamResult run_single_stream(Engine engine, const std::vector<Matrix>& batch,
                               std::size_t repeats) {
  for (const Matrix& series : batch) engine.classify(series);  // warmup
  Vector latencies;
  latencies.reserve(batch.size() * repeats);
  Timer total;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const Matrix& series : batch) {
      Timer t;
      engine.classify(series);
      latencies.push_back(static_cast<double>(t.elapsed_ns()) * 1e-3);
    }
  }
  StreamResult result;
  result.latency_us = summarize(latencies);
  result.serial_sps =
      static_cast<double>(batch.size() * repeats) / total.elapsed_seconds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfr::bench;

  CliParser cli("bench_serving",
                "streaming-engine latency percentiles and batch throughput");
  add_scale_options(cli);
  add_csv_option(cli, "serving.csv");
  cli.add_option("nodes", "virtual nodes Nx", "30");
  cli.add_option("batch", "batch size for throughput runs", "256");
  cli.add_option("repeats", "latency passes over the batch", "3");
  cli.add_option("lanes", "batched-engine lanes / server max_batch", "8");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const ScaleOptions options = read_scale_options(cli);
  const std::size_t nodes = cli.get_u64("nodes");
  const std::size_t batch_size = cli.get_u64("batch");
  const std::size_t repeats = std::max<std::size_t>(1, cli.get_u64("repeats"));
  const std::size_t lanes = std::clamp<std::size_t>(
      cli.get_u64("lanes"), 1, dfr::simd::kBatchedMaxLanes);
  const unsigned ncores = dfr::hardware_threads();
  // Oversubscribed rows on small hosts are noise, not data (satellite of the
  // perf-trajectory fix): mark them instead of timing them.
  const auto skip_marker = [&](unsigned want) {
    return (ncores < 4 && want > ncores)
               ? "skipped(ncores=" + std::to_string(ncores) + ")"
               : std::string();
  };

  std::vector<DatasetSpec> specs;
  if (cli.get("datasets").empty()) {
    specs = {*find_spec("ECG"), *find_spec("JPVOW")};
  } else {
    specs = selected_specs(cli);
  }

  const unsigned thread_sweep[] = {1, 2, 4, 8};

  ConsoleTable latency_table({"dataset", "datapath", "T", "V", "p50 us",
                              "p90 us", "p99 us", "max us"});
  ConsoleTable throughput_table(
      {"dataset", "datapath", "threads", "series/s", "speedup"});
  ConsoleTable server_table({"dataset", "models", "workers", "req/s",
                             "p50 us", "p90 us", "p99 us"});
  BenchCsv csv(cli, {"dataset", "datapath", "threads", "batch", "p50_us",
                     "p90_us", "p99_us", "serial_sps", "batch_sps", "speedup"});

  for (const DatasetSpec& spec : specs) {
    const DatasetPair data = prepare_dataset(spec, options);
    const LoadedModel model =
        make_serving_model(data.test, nodes, options.seed);
    // Held by shared_ptr so the batched quantized engine can share ownership.
    auto quantized_ptr =
        std::make_shared<QuantizedDfr>(model, QuantizedInferenceConfig{});
    quantized_ptr->calibrate(data.train);
    const QuantizedDfr& quantized = *quantized_ptr;
    const std::vector<Matrix> batch = make_batch(data.test, batch_size);

    struct Datapath {
      std::string name;
      StreamResult stream;
      std::function<std::vector<int>(unsigned)> run_batch;
    };
    std::vector<Datapath> datapaths;
    datapaths.push_back(
        {"float", run_single_stream(make_engine(model), batch, repeats),
         [&](unsigned threads) {
           return classify_batch(model, std::span<const Matrix>(batch), threads,
                                 FloatEngineKind::kScalar);
         }});
    datapaths.push_back(
        {"simd-" + std::string(simd::backend_name(simd::active_backend())),
         run_single_stream(make_simd_engine(model), batch, repeats),
         [&](unsigned threads) {
           return classify_batch(model, std::span<const Matrix>(batch), threads,
                                 FloatEngineKind::kSimd);
         }});
    datapaths.push_back(
        {"quant-scalar",
         run_single_stream(make_engine(quantized), batch, repeats),
         [&](unsigned threads) {
           return classify_batch(quantized, std::span<const Matrix>(batch),
                                 threads, QuantizedEngineKind::kScalar);
         }});
    datapaths.push_back(
        {"quant-" + std::string(simd::backend_name(simd::active_backend())),
         run_single_stream(make_simd_engine(quantized), batch, repeats),
         [&](unsigned threads) {
           return classify_batch(quantized, std::span<const Matrix>(batch),
                                 threads, QuantizedEngineKind::kSimd);
         }});

    for (const Datapath& dp : datapaths) {
      const Summary& lat = dp.stream.latency_us;
      latency_table.add_row(
          {spec.id, dp.name, std::to_string(data.test.length()),
           std::to_string(data.test.channels()), fmt_double(lat.p50, 1),
           fmt_double(lat.p90, 1), fmt_double(lat.p99, 1),
           fmt_double(lat.max, 1)});

      for (unsigned threads : thread_sweep) {
        const std::string marker = skip_marker(threads);
        if (!marker.empty()) {
          throughput_table.add_row(
              {spec.id, dp.name, std::to_string(threads), marker, marker});
          csv.add_row({spec.id, dp.name, std::to_string(threads),
                       std::to_string(batch.size()), fmt_double(lat.p50, 2),
                       fmt_double(lat.p90, 2), fmt_double(lat.p99, 2),
                       fmt_double(dp.stream.serial_sps, 1), marker, marker});
          continue;
        }
        // Untimed warm-up: the first threaded run pays the lazy creation of
        // the process-wide pool, which must not land in a recorded cell.
        dp.run_batch(threads);
        Timer t;
        const std::vector<int> predictions = dp.run_batch(threads);
        const double seconds = t.elapsed_seconds();
        const double sps = static_cast<double>(predictions.size()) / seconds;
        const double speedup = sps / dp.stream.serial_sps;
        throughput_table.add_row({spec.id, dp.name, std::to_string(threads),
                                  fmt_double(sps, 0), fmt_double(speedup, 2)});
        csv.add_row({spec.id, dp.name, std::to_string(threads),
                     std::to_string(batch.size()), fmt_double(lat.p50, 2),
                     fmt_double(lat.p90, 2), fmt_double(lat.p99, 2),
                     fmt_double(dp.stream.serial_sps, 1), fmt_double(sps, 1),
                     fmt_double(speedup, 3)});
      }
    }

    // Cross-request batched SoA engine: one engine, `lanes` concurrent
    // series per call. The speedup column is the headline batched metric —
    // batched series/s over the single-series simd-<backend> serial loop
    // (same backend, same model), i.e. what coalescing alone buys.
    {
      const std::string backend(simd::backend_name(simd::active_backend()));
      const ModelArtifactPtr artifact = model.artifact("bench");
      struct BatchedRow {
        std::string name;
        StreamResult stream;
        double baseline_sps;  // single-series simd serial loop, same family
      };
      const BatchedRow batched_rows[] = {
          {"batched-" + backend,
           run_batched_stream(make_batched_engine(artifact, lanes), batch,
                              lanes, repeats),
           datapaths[1].stream.serial_sps},
          {"batched-quant-" + backend,
           run_batched_stream(make_batched_engine(quantized_ptr, lanes), batch,
                              lanes, repeats),
           datapaths[3].stream.serial_sps},
      };
      for (const BatchedRow& row : batched_rows) {
        const Summary& lat = row.stream.latency_us;
        const double batch_speedup = row.stream.serial_sps / row.baseline_sps;
        latency_table.add_row(
            {spec.id, row.name, std::to_string(data.test.length()),
             std::to_string(data.test.channels()), fmt_double(lat.p50, 1),
             fmt_double(lat.p90, 1), fmt_double(lat.p99, 1),
             fmt_double(lat.max, 1)});
        throughput_table.add_row({spec.id, row.name,
                                  "1x" + std::to_string(lanes) + "lanes",
                                  fmt_double(row.stream.serial_sps, 0),
                                  fmt_double(batch_speedup, 2)});
        csv.add_row({spec.id, row.name, "1", std::to_string(lanes),
                     fmt_double(lat.p50, 2), fmt_double(lat.p90, 2),
                     fmt_double(lat.p99, 2), fmt_double(row.baseline_sps, 1),
                     fmt_double(row.stream.serial_sps, 1),
                     fmt_double(batch_speedup, 3)});
      }
    }

    // Multi-model serving: M models behind the request-queue server, traffic
    // interleaved round-robin across them (mixed routing on every worker).
    // Every artifact carries a calibrated quantized twin so the same
    // registry serves the per-request quantized routing rows.
    for (std::size_t num_models : {1u, 2u, 4u}) {
      std::vector<std::string> ids;
      serve::ModelRegistry registry;
      for (std::size_t m = 0; m < num_models; ++m) {
        ids.push_back("m" + std::to_string(m));
        const LoadedModel served =
            make_serving_model(data.test, nodes, options.seed + m);
        QuantizedDfr served_quant(served, QuantizedInferenceConfig{});
        served_quant.calibrate(data.train);
        registry.register_model(with_quantized(
            served.artifact(ids.back()),
            std::make_shared<const QuantizedDfr>(std::move(served_quant))));
      }
      struct TrafficKind {
        const char* suffix;  // "" = float kAuto, "-quant" = quantized kAuto
        serve::RequestOptions options;
      };
      const TrafficKind traffic_kinds[] = {
          {"", serve::RequestOptions{}},
          {"-quant", serve::RequestOptions{QuantizedEngineKind::kAuto}},
      };
      for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        const std::string marker = skip_marker(static_cast<unsigned>(workers));
        if (!marker.empty()) {
          for (const TrafficKind& kind : traffic_kinds) {
            server_table.add_row(
                {spec.id, std::to_string(num_models) + kind.suffix,
                 std::to_string(workers), marker, marker, marker, marker});
            csv.add_row({spec.id,
                         "server-" + std::to_string(num_models) + "m" +
                             kind.suffix,
                         std::to_string(workers), std::to_string(batch.size()),
                         marker, marker, marker, "0", marker, "0"});
          }
          continue;
        }
        serve::InferenceServer server(
            registry, {.workers = workers, .queue_capacity = batch.size()});
        // Same registry and traffic through a micro-batching server: queued
        // neighbors for one (model, variant, shape) coalesce into SoA
        // batches of up to `lanes` lanes.
        serve::InferenceServer batched_server(
            registry, {.workers = workers,
                       .queue_capacity = batch.size(),
                       .max_batch = lanes,
                       .batch_window_us = 200});
        for (const TrafficKind& kind : traffic_kinds) {
          const ServerRunResult run =
              run_server_traffic(server, ids, batch, repeats, kind.options);
          const ServerRunResult batched_run = run_server_traffic(
              batched_server, ids, batch, repeats, kind.options);
          server_table.add_row(
              {spec.id, std::to_string(num_models) + kind.suffix,
               std::to_string(workers), fmt_double(run.requests_per_s, 0),
               fmt_double(run.latency_us.p50, 1),
               fmt_double(run.latency_us.p90, 1),
               fmt_double(run.latency_us.p99, 1)});
          server_table.add_row(
              {spec.id, std::to_string(num_models) + kind.suffix + "+batch",
               std::to_string(workers),
               fmt_double(batched_run.requests_per_s, 0),
               fmt_double(batched_run.latency_us.p50, 1),
               fmt_double(batched_run.latency_us.p90, 1),
               fmt_double(batched_run.latency_us.p99, 1)});
          csv.add_row({spec.id,
                       "server-" + std::to_string(num_models) + "m" +
                           kind.suffix,
                       std::to_string(workers), std::to_string(batch.size()),
                       fmt_double(run.latency_us.p50, 2),
                       fmt_double(run.latency_us.p90, 2),
                       fmt_double(run.latency_us.p99, 2), "0",
                       fmt_double(run.requests_per_s, 1), "0"});
          csv.add_row({spec.id,
                       "server-batched-" + std::to_string(num_models) + "m" +
                           kind.suffix,
                       std::to_string(workers), std::to_string(batch.size()),
                       fmt_double(batched_run.latency_us.p50, 2),
                       fmt_double(batched_run.latency_us.p90, 2),
                       fmt_double(batched_run.latency_us.p99, 2), "0",
                       fmt_double(batched_run.requests_per_s, 1), "0"});
        }
      }
    }
  }

  std::cout << "SIMD dispatch: " << simd::backend_name(simd::active_backend())
            << " (best available: "
            << simd::backend_name(simd::best_backend())
            << "; override with DFR_SIMD=scalar|avx2|avx512|neon)\n\n";
  std::cout << "single-stream latency (one engine, reused scratch):\n";
  latency_table.print();
  std::cout << "\nbatch throughput (classify_batch vs serial per-series loop; "
               "speedup is hardware-dependent):\n";
  throughput_table.print();
  std::cout << "\nmulti-model serving (request-queue InferenceServer, "
               "round-robin traffic; latency = queue wait + inference):\n";
  server_table.print();
  csv.report();
  return 0;
}
