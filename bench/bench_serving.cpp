// Serving bench: what the unified streaming inference engine
// (serve/engine.hpp) delivers at deployment time — single-stream latency
// percentiles (p50/p90/p99) and batch throughput across thread counts, for
// the float, SIMD (runtime-dispatched; force with
// DFR_SIMD=scalar|avx2|avx512|neon) and calibrated fixed-point datapaths
// (quant-scalar vs the vectorized quant-<backend>, bit-identical by the
// quantized SIMD contract) — plus the cross-request batched SoA engine rows
// (batched-<backend> / batched-quant-<backend>: one BatchedEngine running
// `--lanes` concurrent series per step, per-series latency = batch time /
// lanes, speedup vs the single-series simd-<backend> serial loop) — plus
// the multi-model serving rows: 1/2/4 registered models behind the
// request-queue InferenceServer (serve/server.hpp) under interleaved
// traffic, reporting request throughput and end-to-end latency (queue wait
// + inference) per worker count, for float and per-request-routed quantized
// traffic (server-*-quant rows), and the same traffic through a
// micro-batching server (server-batched-* rows, max_batch = --lanes) — plus
// the model-fleet rows (fleet-{mmap,copy}-<N>m for N = 16/256/1024 ids
// through an ArtifactStore: cold-load p50, warm-hit p50, and the VmRSS
// delta of the cold sweep, contrasting the zero-copy mmap loader against
// the copying baseline; 16 distinct .dfrm v2 files are cycled across the
// ids so the 1024-id sweep stays I/O-light) — plus the offered-deadline
// shed row (shed-deadline: one worker, every request submitted with a
// deadline a few service times wide, reporting the fraction the server
// shed with kDeadlineExceeded before spending engine time; the CSV row
// carries the shed fraction in the shed_frac column).
//
// Thread-sweep and multi-worker rows are only meaningful when the host has
// the cores to run them: on hosts with fewer than 4 cores, rows that would
// oversubscribe (threads/workers > cores) are emitted as explicit
// `skipped(ncores=N)` markers instead of misleading numbers — CSV consumers
// (the CI perf rollup) treat the marker as "not measured", never as zero.
//
// The model is built directly (random mask + random readout at the paper's
// Nx=30 shape): serving cost depends only on shapes (T, V, Nx, Ny), never on
// weight values, so skipping training keeps the bench pure-serving and fast
// enough for CI. Throughput speedups are hardware-dependent; the speedup
// column reports batch `classify_batch` throughput relative to a serial
// per-series loop on one engine.
//
// Usage: bench_serving [--datasets ECG,JPVOW] [--cap N] [--batch 256]
//                      [--repeats 3] [--csv serving.csv]
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dfr/dprr.hpp"
#include "dfr/model_io.hpp"
#include "fixedpoint/quantized_dfr.hpp"
#include "linalg/stats.hpp"
#include "serve/artifact_store.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace dfr;

/// Deployment-shaped model with random (but deterministic) weights.
LoadedModel make_serving_model(const Dataset& data, std::size_t nodes,
                               std::uint64_t seed) {
  Rng rng(seed);
  LoadedModel model;
  model.params = DfrParams{0.1, 0.05};
  model.mask = Mask(nodes, data.channels(), MaskKind::kBinary, rng);
  Matrix w(static_cast<std::size_t>(data.num_classes()), dprr_dim(nodes));
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) w(i, j) = rng.uniform(-1.0, 1.0);
  }
  Vector b(w.rows(), 0.0);
  for (double& v : b) v = rng.uniform(-0.1, 0.1);
  model.readout = OutputLayer(std::move(w), std::move(b));
  return model;
}

/// Batch of `size` series cycled from the test split.
std::vector<Matrix> make_batch(const Dataset& data, std::size_t size) {
  std::vector<Matrix> batch;
  batch.reserve(size);
  for (std::size_t i = 0; i < size; ++i) batch.push_back(data[i % data.size()].series);
  return batch;
}

struct StreamResult {
  Summary latency_us;   // per-classify latency distribution
  double serial_sps = 0.0;  // serial per-series loop, one engine
};

struct ServerRunResult {
  Summary latency_us;       // end-to-end request latency (queue + inference)
  double requests_per_s = 0.0;
};

/// One traffic wave through the request-queue server: `batch.size()` requests
/// interleaved round-robin across `model_ids`, submitted as fast as the
/// queue admits (futures held, so capacity = batch size: no rejections).
/// `options` selects the per-request engine routing (float or quantized).
ServerRunResult run_server_traffic(serve::InferenceServer& server,
                                   const std::vector<std::string>& model_ids,
                                   const std::vector<Matrix>& batch,
                                   std::size_t repeats,
                                   serve::RequestOptions options = {}) {
  ServerRunResult result;
  Vector latencies;
  latencies.reserve(batch.size() * repeats);
  double seconds = 0.0;
  for (std::size_t r = 0; r <= repeats; ++r) {  // pass 0 = untimed warm-up
    std::vector<serve::InferFuture> futures;
    futures.reserve(batch.size());
    Timer t;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      futures.push_back(
          server.submit(model_ids[i % model_ids.size()], batch[i], options));
    }
    for (serve::InferFuture& future : futures) future.wait();
    if (r == 0) continue;
    seconds += t.elapsed_seconds();
    for (const serve::InferFuture& future : futures) {
      latencies.push_back(future.get().latency_us);
    }
  }
  result.latency_us = summarize(latencies);
  result.requests_per_s =
      static_cast<double>(batch.size() * repeats) / seconds;
  return result;
}

/// Cross-request batched SoA engine over `batch`, `lanes` series per call:
/// per-series latency is the batch call's time divided by its lane count
/// (each recorded once per lane so percentiles weight series, not chunks).
template <typename Engine>
StreamResult run_batched_stream(Engine engine, const std::vector<Matrix>& batch,
                                std::size_t lanes, std::size_t repeats) {
  std::vector<const Matrix*> ptrs(lanes, nullptr);
  const auto run_chunk = [&](std::size_t start) {
    const std::size_t n = std::min(lanes, batch.size() - start);
    for (std::size_t l = 0; l < n; ++l) ptrs[l] = &batch[start + l];
    engine.infer(std::span<const Matrix* const>(ptrs.data(), n));
    return n;
  };
  for (std::size_t s = 0; s < batch.size(); s += lanes) run_chunk(s);  // warmup
  StreamResult result;
  Vector latencies;
  latencies.reserve(batch.size() * repeats);
  Timer total;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t s = 0; s < batch.size(); s += lanes) {
      Timer t;
      const std::size_t n = run_chunk(s);
      const double per_series =
          static_cast<double>(t.elapsed_ns()) * 1e-3 / static_cast<double>(n);
      for (std::size_t l = 0; l < n; ++l) latencies.push_back(per_series);
    }
  }
  result.serial_sps =
      static_cast<double>(batch.size() * repeats) / total.elapsed_seconds();
  result.latency_us = summarize(latencies);
  return result;
}

/// Current VmRSS in kilobytes from /proc/self/status (0 when unavailable,
/// e.g. non-Linux — fleet rows then report a 0 MB delta, never garbage).
std::size_t vm_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::size_t>(std::stoull(line.substr(6)));
    }
  }
  return 0;
}

/// Write `count` distinct .dfrm v2 files (different weight seeds, same
/// shape) under `dir`, returning their paths. Fleet sweeps cycle ids over
/// these, so a 1024-id sweep needs 16 files, not 1024.
std::vector<std::string> write_fleet_files(const std::filesystem::path& dir,
                                           const Dataset& data,
                                           std::size_t nodes,
                                           std::uint64_t seed,
                                           std::size_t count) {
  std::vector<std::string> paths;
  paths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const LoadedModel model = make_serving_model(data, nodes, seed + i);
    TrainResult trained;
    trained.params = model.params;
    trained.mask = model.mask;
    trained.nonlinearity = model.nonlinearity;
    trained.readout = model.readout;
    trained.chosen_beta = model.chosen_beta;
    paths.push_back((dir / ("fleet" + std::to_string(i) + ".dfrm")).string());
    save_model(trained, paths.back());
  }
  return paths;
}

struct FleetResult {
  Summary cold_us;      // per-get fault-in latency, first pass
  Summary warm_us;      // per-get hit latency, second pass
  double rss_delta_mb = 0.0;  // VmRSS growth across the cold sweep
};

/// One fleet sweep: `num_models` ids (cycling `files`) through a fresh
/// ArtifactStore in `mode`, cold pass then warm pass, VmRSS delta around
/// the cold pass.
FleetResult run_fleet(serve::ModelRegistry& registry,
                      const std::vector<std::string>& files,
                      std::size_t num_models, serve::LoadMode mode) {
  serve::ArtifactStore store(registry,
                             serve::ArtifactStoreConfig{.mode = mode});
  std::vector<std::string> ids;
  ids.reserve(num_models);
  for (std::size_t m = 0; m < num_models; ++m) {
    ids.push_back("f" + std::to_string(m));
    store.add(ids.back(), files[m % files.size()]);
  }
  FleetResult result;
  Vector cold, warm;
  cold.reserve(num_models);
  warm.reserve(num_models);
  const std::size_t rss_before = vm_rss_kb();
  for (const std::string& id : ids) {
    Timer t;
    (void)store.get(id);
    cold.push_back(static_cast<double>(t.elapsed_ns()) * 1e-3);
  }
  const std::size_t rss_after = vm_rss_kb();
  for (const std::string& id : ids) {
    Timer t;
    (void)store.get(id);
    warm.push_back(static_cast<double>(t.elapsed_ns()) * 1e-3);
  }
  result.cold_us = summarize(cold);
  result.warm_us = summarize(warm);
  result.rss_delta_mb =
      static_cast<double>(rss_after - std::min(rss_before, rss_after)) / 1024.0;
  // Tear the fleet down before the next mode measures its own RSS delta.
  for (const std::string& id : ids) store.erase(id);
  return result;
}

/// Single-stream latencies + serial-loop throughput over `batch`.
template <typename Engine>
StreamResult run_single_stream(Engine engine, const std::vector<Matrix>& batch,
                               std::size_t repeats) {
  for (const Matrix& series : batch) engine.classify(series);  // warmup
  Vector latencies;
  latencies.reserve(batch.size() * repeats);
  Timer total;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const Matrix& series : batch) {
      Timer t;
      engine.classify(series);
      latencies.push_back(static_cast<double>(t.elapsed_ns()) * 1e-3);
    }
  }
  StreamResult result;
  result.latency_us = summarize(latencies);
  result.serial_sps =
      static_cast<double>(batch.size() * repeats) / total.elapsed_seconds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfr::bench;

  CliParser cli("bench_serving",
                "streaming-engine latency percentiles and batch throughput");
  add_scale_options(cli);
  add_csv_option(cli, "serving.csv");
  cli.add_option("nodes", "virtual nodes Nx", "30");
  cli.add_option("batch", "batch size for throughput runs", "256");
  cli.add_option("repeats", "latency passes over the batch", "3");
  cli.add_option("lanes", "batched-engine lanes / server max_batch", "8");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const ScaleOptions options = read_scale_options(cli);
  const std::size_t nodes = cli.get_u64("nodes");
  const std::size_t batch_size = cli.get_u64("batch");
  const std::size_t repeats = std::max<std::size_t>(1, cli.get_u64("repeats"));
  const std::size_t lanes = std::clamp<std::size_t>(
      cli.get_u64("lanes"), 1, dfr::simd::kBatchedMaxLanes);
  const unsigned ncores = dfr::hardware_threads();
  // Oversubscribed rows on small hosts are noise, not data (satellite of the
  // perf-trajectory fix): mark them instead of timing them.
  const auto skip_marker = [&](unsigned want) {
    return (ncores < 4 && want > ncores)
               ? "skipped(ncores=" + std::to_string(ncores) + ")"
               : std::string();
  };

  std::vector<DatasetSpec> specs;
  if (cli.get("datasets").empty()) {
    specs = {*find_spec("ECG"), *find_spec("JPVOW")};
  } else {
    specs = selected_specs(cli);
  }

  const unsigned thread_sweep[] = {1, 2, 4, 8};

  ConsoleTable latency_table({"dataset", "datapath", "T", "V", "p50 us",
                              "p90 us", "p99 us", "max us"});
  ConsoleTable throughput_table(
      {"dataset", "datapath", "threads", "series/s", "speedup"});
  ConsoleTable server_table({"dataset", "models", "workers", "req/s",
                             "p50 us", "p90 us", "p99 us"});
  ConsoleTable fleet_table({"dataset", "mode", "models", "cold p50 us",
                            "warm p50 us", "rss_delta_mb"});
  // load_p50_us / resident_mb are filled by the fleet rows, shed_frac by the
  // shed-deadline row; every other row carries zeros in those columns.
  BenchCsv csv(cli, {"dataset", "datapath", "threads", "batch", "p50_us",
                     "p90_us", "p99_us", "serial_sps", "batch_sps", "speedup",
                     "load_p50_us", "resident_mb", "shed_frac"});
  std::vector<std::string> shed_lines;  // printed after the tables

  for (const DatasetSpec& spec : specs) {
    const DatasetPair data = prepare_dataset(spec, options);
    const LoadedModel model =
        make_serving_model(data.test, nodes, options.seed);
    // Held by shared_ptr so the batched quantized engine can share ownership.
    auto quantized_ptr =
        std::make_shared<QuantizedDfr>(model, QuantizedInferenceConfig{});
    quantized_ptr->calibrate(data.train);
    const QuantizedDfr& quantized = *quantized_ptr;
    const std::vector<Matrix> batch = make_batch(data.test, batch_size);

    struct Datapath {
      std::string name;
      StreamResult stream;
      std::function<std::vector<int>(unsigned)> run_batch;
    };
    std::vector<Datapath> datapaths;
    datapaths.push_back(
        {"float", run_single_stream(make_engine(model), batch, repeats),
         [&](unsigned threads) {
           return classify_batch(model, std::span<const Matrix>(batch), threads,
                                 FloatEngineKind::kScalar);
         }});
    datapaths.push_back(
        {"simd-" + std::string(simd::backend_name(simd::active_backend())),
         run_single_stream(make_simd_engine(model), batch, repeats),
         [&](unsigned threads) {
           return classify_batch(model, std::span<const Matrix>(batch), threads,
                                 FloatEngineKind::kSimd);
         }});
    datapaths.push_back(
        {"quant-scalar",
         run_single_stream(make_engine(quantized), batch, repeats),
         [&](unsigned threads) {
           return classify_batch(quantized, std::span<const Matrix>(batch),
                                 threads, QuantizedEngineKind::kScalar);
         }});
    datapaths.push_back(
        {"quant-" + std::string(simd::backend_name(simd::active_backend())),
         run_single_stream(make_simd_engine(quantized), batch, repeats),
         [&](unsigned threads) {
           return classify_batch(quantized, std::span<const Matrix>(batch),
                                 threads, QuantizedEngineKind::kSimd);
         }});

    for (const Datapath& dp : datapaths) {
      const Summary& lat = dp.stream.latency_us;
      latency_table.add_row(
          {spec.id, dp.name, std::to_string(data.test.length()),
           std::to_string(data.test.channels()), fmt_double(lat.p50, 1),
           fmt_double(lat.p90, 1), fmt_double(lat.p99, 1),
           fmt_double(lat.max, 1)});

      for (unsigned threads : thread_sweep) {
        const std::string marker = skip_marker(threads);
        if (!marker.empty()) {
          throughput_table.add_row(
              {spec.id, dp.name, std::to_string(threads), marker, marker});
          csv.add_row({spec.id, dp.name, std::to_string(threads),
                       std::to_string(batch.size()), fmt_double(lat.p50, 2),
                       fmt_double(lat.p90, 2), fmt_double(lat.p99, 2),
                       fmt_double(dp.stream.serial_sps, 1), marker, marker,
                       "0", "0", "0"});
          continue;
        }
        // Untimed warm-up: the first threaded run pays the lazy creation of
        // the process-wide pool, which must not land in a recorded cell.
        dp.run_batch(threads);
        Timer t;
        const std::vector<int> predictions = dp.run_batch(threads);
        const double seconds = t.elapsed_seconds();
        const double sps = static_cast<double>(predictions.size()) / seconds;
        const double speedup = sps / dp.stream.serial_sps;
        throughput_table.add_row({spec.id, dp.name, std::to_string(threads),
                                  fmt_double(sps, 0), fmt_double(speedup, 2)});
        csv.add_row({spec.id, dp.name, std::to_string(threads),
                     std::to_string(batch.size()), fmt_double(lat.p50, 2),
                     fmt_double(lat.p90, 2), fmt_double(lat.p99, 2),
                     fmt_double(dp.stream.serial_sps, 1), fmt_double(sps, 1),
                     fmt_double(speedup, 3), "0", "0", "0"});
      }
    }

    // Cross-request batched SoA engine: one engine, `lanes` concurrent
    // series per call. The speedup column is the headline batched metric —
    // batched series/s over the single-series simd-<backend> serial loop
    // (same backend, same model), i.e. what coalescing alone buys.
    {
      const std::string backend(simd::backend_name(simd::active_backend()));
      const ModelArtifactPtr artifact = model.artifact("bench");
      struct BatchedRow {
        std::string name;
        StreamResult stream;
        double baseline_sps;  // single-series simd serial loop, same family
      };
      const BatchedRow batched_rows[] = {
          {"batched-" + backend,
           run_batched_stream(make_batched_engine(artifact, lanes), batch,
                              lanes, repeats),
           datapaths[1].stream.serial_sps},
          {"batched-quant-" + backend,
           run_batched_stream(make_batched_engine(quantized_ptr, lanes), batch,
                              lanes, repeats),
           datapaths[3].stream.serial_sps},
      };
      for (const BatchedRow& row : batched_rows) {
        const Summary& lat = row.stream.latency_us;
        const double batch_speedup = row.stream.serial_sps / row.baseline_sps;
        latency_table.add_row(
            {spec.id, row.name, std::to_string(data.test.length()),
             std::to_string(data.test.channels()), fmt_double(lat.p50, 1),
             fmt_double(lat.p90, 1), fmt_double(lat.p99, 1),
             fmt_double(lat.max, 1)});
        throughput_table.add_row({spec.id, row.name,
                                  "1x" + std::to_string(lanes) + "lanes",
                                  fmt_double(row.stream.serial_sps, 0),
                                  fmt_double(batch_speedup, 2)});
        csv.add_row({spec.id, row.name, "1", std::to_string(lanes),
                     fmt_double(lat.p50, 2), fmt_double(lat.p90, 2),
                     fmt_double(lat.p99, 2), fmt_double(row.baseline_sps, 1),
                     fmt_double(row.stream.serial_sps, 1),
                     fmt_double(batch_speedup, 3), "0", "0", "0"});
      }
    }

    // Multi-model serving: M models behind the request-queue server, traffic
    // interleaved round-robin across them (mixed routing on every worker).
    // Every artifact carries a calibrated quantized twin so the same
    // registry serves the per-request quantized routing rows.
    for (std::size_t num_models : {1u, 2u, 4u}) {
      std::vector<std::string> ids;
      serve::ModelRegistry registry;
      for (std::size_t m = 0; m < num_models; ++m) {
        ids.push_back("m" + std::to_string(m));
        const LoadedModel served =
            make_serving_model(data.test, nodes, options.seed + m);
        QuantizedDfr served_quant(served, QuantizedInferenceConfig{});
        served_quant.calibrate(data.train);
        registry.register_model(with_quantized(
            served.artifact(ids.back()),
            std::make_shared<const QuantizedDfr>(std::move(served_quant))));
      }
      struct TrafficKind {
        const char* suffix;  // "" = float kAuto, "-quant" = quantized kAuto
        serve::RequestOptions options;
      };
      const TrafficKind traffic_kinds[] = {
          {"", serve::RequestOptions{}},
          {"-quant", serve::RequestOptions{QuantizedEngineKind::kAuto}},
      };
      for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        const std::string marker = skip_marker(static_cast<unsigned>(workers));
        if (!marker.empty()) {
          for (const TrafficKind& kind : traffic_kinds) {
            server_table.add_row(
                {spec.id, std::to_string(num_models) + kind.suffix,
                 std::to_string(workers), marker, marker, marker, marker});
            csv.add_row({spec.id,
                         "server-" + std::to_string(num_models) + "m" +
                             kind.suffix,
                         std::to_string(workers), std::to_string(batch.size()),
                         marker, marker, marker, "0", marker, "0", "0", "0",
                         "0"});
          }
          continue;
        }
        serve::InferenceServer server(
            registry, {.workers = workers, .queue_capacity = batch.size()});
        // Same registry and traffic through a micro-batching server: queued
        // neighbors for one (model, variant, shape) coalesce into SoA
        // batches of up to `lanes` lanes.
        serve::InferenceServer batched_server(
            registry, {.workers = workers,
                       .queue_capacity = batch.size(),
                       .max_batch = lanes,
                       .batch_window_us = 200});
        for (const TrafficKind& kind : traffic_kinds) {
          const ServerRunResult run =
              run_server_traffic(server, ids, batch, repeats, kind.options);
          const ServerRunResult batched_run = run_server_traffic(
              batched_server, ids, batch, repeats, kind.options);
          server_table.add_row(
              {spec.id, std::to_string(num_models) + kind.suffix,
               std::to_string(workers), fmt_double(run.requests_per_s, 0),
               fmt_double(run.latency_us.p50, 1),
               fmt_double(run.latency_us.p90, 1),
               fmt_double(run.latency_us.p99, 1)});
          server_table.add_row(
              {spec.id, std::to_string(num_models) + kind.suffix + "+batch",
               std::to_string(workers),
               fmt_double(batched_run.requests_per_s, 0),
               fmt_double(batched_run.latency_us.p50, 1),
               fmt_double(batched_run.latency_us.p90, 1),
               fmt_double(batched_run.latency_us.p99, 1)});
          csv.add_row({spec.id,
                       "server-" + std::to_string(num_models) + "m" +
                           kind.suffix,
                       std::to_string(workers), std::to_string(batch.size()),
                       fmt_double(run.latency_us.p50, 2),
                       fmt_double(run.latency_us.p90, 2),
                       fmt_double(run.latency_us.p99, 2), "0",
                       fmt_double(run.requests_per_s, 1), "0", "0", "0", "0"});
          csv.add_row({spec.id,
                       "server-batched-" + std::to_string(num_models) + "m" +
                           kind.suffix,
                       std::to_string(workers), std::to_string(batch.size()),
                       fmt_double(batched_run.latency_us.p50, 2),
                       fmt_double(batched_run.latency_us.p90, 2),
                       fmt_double(batched_run.latency_us.p99, 2), "0",
                       fmt_double(batched_run.requests_per_s, 1), "0", "0",
                       "0", "0"});
        }
      }
    }

    // Model-fleet sweep through the ArtifactStore: N ids (cycling 16
    // distinct .dfrm v2 files) cold-faulted then warm-hit, zero-copy mmap
    // vs the copying loader. The cold-sweep VmRSS delta is the headline
    // zero-copy number: mmap loads touch only the pages validation reads,
    // the copying loader heap-allocates every weight per id.
    {
      std::error_code ec;
      const std::filesystem::path dir =
          std::filesystem::temp_directory_path() /
          ("dfr_fleet_" + spec.id + "_" + std::to_string(::getpid()));
      std::filesystem::create_directories(dir, ec);
      const std::vector<std::string> files =
          write_fleet_files(dir, data.test, nodes, options.seed, 16);
      serve::ModelRegistry fleet_registry;
      struct ModeRow {
        const char* name;
        serve::LoadMode mode;
      };
      const ModeRow modes[] = {{"mmap", serve::LoadMode::kMmap},
                               {"copy", serve::LoadMode::kCopy}};
      for (std::size_t num_models : {16u, 256u, 1024u}) {
        for (const ModeRow& m : modes) {
          const FleetResult fleet =
              run_fleet(fleet_registry, files, num_models, m.mode);
          fleet_table.add_row({spec.id, m.name, std::to_string(num_models),
                               fmt_double(fleet.cold_us.p50, 1),
                               fmt_double(fleet.warm_us.p50, 2),
                               fmt_double(fleet.rss_delta_mb, 2)});
          csv.add_row({spec.id,
                       "fleet-" + std::string(m.name) + "-" +
                           std::to_string(num_models) + "m",
                       "1", std::to_string(num_models),
                       fmt_double(fleet.warm_us.p50, 2),
                       fmt_double(fleet.warm_us.p90, 2),
                       fmt_double(fleet.warm_us.p99, 2), "0", "0", "0",
                       fmt_double(fleet.cold_us.p50, 2),
                       fmt_double(fleet.rss_delta_mb, 3), "0"});
        }
      }
      std::filesystem::remove_all(dir, ec);
    }

    // Offered-deadline shed: one worker, every request submitted with a
    // deadline a few single-stream service times wide, so most of the
    // queue cannot make it. The server sheds late requests with typed
    // kDeadlineExceeded before spending engine time on them; the fraction
    // shed rides in the CSV shed_frac column.
    {
      serve::ModelRegistry shed_registry;
      shed_registry.register_model(model.artifact("shed"));
      serve::InferenceServer shed_server(
          shed_registry, {.workers = 1, .queue_capacity = batch.size()});
      serve::RequestOptions shed_opts;
      shed_opts.deadline_us = static_cast<std::uint64_t>(
          std::max(100.0, 4.0 * datapaths[0].stream.latency_us.p50));
      std::vector<serve::InferFuture> futures;
      futures.reserve(batch.size());
      for (const Matrix& series : batch) {
        futures.push_back(shed_server.submit("shed", series, shed_opts));
      }
      std::size_t shed = 0;
      Vector completed_us;
      for (serve::InferFuture& future : futures) {
        const serve::InferResult& r = future.get();
        if (r.status == serve::RequestStatus::kDeadlineExceeded) {
          ++shed;
        } else if (r.status == serve::RequestStatus::kOk) {
          completed_us.push_back(r.latency_us);
        }
      }
      const double frac =
          static_cast<double>(shed) / static_cast<double>(futures.size());
      const Summary lat =
          completed_us.empty() ? Summary{} : summarize(completed_us);
      shed_lines.push_back(
          "shed-deadline (" + spec.id + "): offered=" +
          std::to_string(futures.size()) + " completed=" +
          std::to_string(completed_us.size()) + " shed=" +
          std::to_string(shed) + " shed_frac=" + fmt_double(frac, 2) +
          " deadline_us=" + std::to_string(shed_opts.deadline_us));
      csv.add_row({spec.id, "shed-deadline", "1", std::to_string(batch.size()),
                   fmt_double(lat.p50, 2), fmt_double(lat.p90, 2),
                   fmt_double(lat.p99, 2), "0", "0", "0", "0", "0",
                   fmt_double(frac, 3)});
    }
  }

  std::cout << "SIMD dispatch: " << simd::backend_name(simd::active_backend())
            << " (best available: "
            << simd::backend_name(simd::best_backend())
            << "; override with DFR_SIMD=scalar|avx2|avx512|neon)\n\n";
  std::cout << "single-stream latency (one engine, reused scratch):\n";
  latency_table.print();
  std::cout << "\nbatch throughput (classify_batch vs serial per-series loop; "
               "speedup is hardware-dependent):\n";
  throughput_table.print();
  std::cout << "\nmulti-model serving (request-queue InferenceServer, "
               "round-robin traffic; latency = queue wait + inference):\n";
  server_table.print();
  std::cout << "\nmodel fleet through the ArtifactStore (cold fault-in vs "
               "warm hit; rss_delta_mb = VmRSS growth of the cold sweep):\n";
  fleet_table.print();
  std::cout << "\nSLO-aware admission (deadline shed before engine time):\n";
  for (const std::string& line : shed_lines) std::cout << line << '\n';
  csv.report();
  return 0;
}
