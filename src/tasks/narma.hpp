#pragma once
// NARMA benchmark series — the canonical reservoir-computing prediction task
// (used by the original DFR paper of Appeltant et al. and most follow-ups).
//
// NARMA-10:  y(t+1) = 0.3 y(t) + 0.05 y(t) sum_{i=0..9} y(t-i)
//                     + 1.5 u(t-9) u(t) + 0.1,   u(t) ~ U[0, 0.5].
// The order-q generalization replaces 10 by q (coefficients per Atiya &
// Parlos). The generator rejects diverged runs (|y| > 1) by re-drawing with a
// fresh stream, which matches common practice.

#include <cstdint>

#include "linalg/matrix.hpp"

namespace dfr {

struct NarmaSeries {
  Vector input;   // u(t)
  Vector target;  // y(t+1) aligned with input index t
};

/// Generate `length` steps of NARMA-`order`. Deterministic in `seed`.
NarmaSeries generate_narma(std::size_t length, int order = 10,
                           std::uint64_t seed = 42);

}  // namespace dfr
