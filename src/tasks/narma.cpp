#include "tasks/narma.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dfr {

NarmaSeries generate_narma(std::size_t length, int order, std::uint64_t seed) {
  DFR_CHECK(length > static_cast<std::size_t>(order) && order >= 1);
  const auto q = static_cast<std::size_t>(order);

  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    Rng rng(hash_combine(seed, attempt));
    Vector u(length), y(length + 1, 0.0);
    for (double& v : u) v = rng.uniform(0.0, 0.5);

    bool diverged = false;
    for (std::size_t t = 0; t + 1 <= length; ++t) {
      double window_sum = 0.0;
      for (std::size_t i = 0; i < q; ++i) {
        window_sum += (t >= i) ? y[t - i] : 0.0;
      }
      const double u_delayed = (t >= q - 1) ? u[t - (q - 1)] : 0.0;
      y[t + 1] = 0.3 * y[t] + 0.05 * y[t] * window_sum +
                 1.5 * u_delayed * u[t] + 0.1;
      if (!std::isfinite(y[t + 1]) || std::fabs(y[t + 1]) > 1.0) {
        diverged = true;
        break;
      }
    }
    if (diverged) continue;

    NarmaSeries out;
    out.input = std::move(u);
    out.target.assign(y.begin() + 1, y.end());
    return out;
  }
  DFR_CHECK_MSG(false, "NARMA generation kept diverging");
  return {};
}

}  // namespace dfr
