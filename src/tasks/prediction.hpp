#pragma once
// One-step-ahead prediction with a DFR: the per-time-step readout regime
// (reservoir state -> scalar target), as opposed to the per-sequence DPRR
// classification regime. Used by the NARMA / Mackey-Glass extension benches.

#include <cstdint>

#include "dfr/mask.hpp"
#include "dfr/reservoir.hpp"

namespace dfr {

struct PredictionConfig {
  std::size_t nodes = 30;
  NonlinearityKind nonlinearity = NonlinearityKind::kMackeyGlass;
  double mg_exponent = 1.0;
  DfrParams params{0.3, 0.6};
  MaskKind mask_kind = MaskKind::kBinary;
  std::size_t washout = 50;   // initial states excluded from the fit
  double ridge_beta = 1e-6;
  std::uint64_t seed = 42;
};

struct PredictionResult {
  double train_nrmse = 0.0;
  double test_nrmse = 0.0;
  Vector test_prediction;  // aligned with the test targets
};

/// Fit a linear readout from reservoir states to `target` on the first
/// `train_len` steps (after washout) and evaluate on the remainder.
PredictionResult run_prediction_task(const PredictionConfig& config,
                                     const Vector& input, const Vector& target,
                                     std::size_t train_len);

}  // namespace dfr
