#include "tasks/prediction.hpp"

#include <limits>

#include "linalg/cholesky.hpp"
#include "linalg/stats.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dfr {

PredictionResult run_prediction_task(const PredictionConfig& config,
                                     const Vector& input, const Vector& target,
                                     std::size_t train_len) {
  DFR_CHECK(input.size() == target.size());
  DFR_CHECK(train_len > config.washout + 2 && train_len < input.size());

  Rng rng(config.seed);
  const Nonlinearity f(config.nonlinearity, config.mg_exponent);
  const ModularReservoir reservoir(config.nodes, f);
  const Mask mask(config.nodes, 1, config.mask_kind, rng);

  // Single-channel series -> T x 1 matrix -> reservoir states (T+1) x Nx.
  Matrix series(input.size(), 1);
  for (std::size_t t = 0; t < input.size(); ++t) series(t, 0) = input[t];
  const Matrix states = reservoir.run_series(mask, series, config.params);

  // Design matrix: [x(k), 1] for k = washout+1 .. T (state row k predicts
  // target[k-1], i.e. the target aligned with input step k-1).
  const std::size_t nx = config.nodes;
  auto build = [&](std::size_t begin, std::size_t end) {
    Matrix x(end - begin, nx + 1);
    Vector y(end - begin);
    for (std::size_t k = begin; k < end; ++k) {
      const auto row = states.row(k + 1);  // x(k+1) sees input[k]
      std::copy(row.begin(), row.end(), x.row(k - begin).begin());
      x(k - begin, nx) = 1.0;
      y[k - begin] = target[k];
    }
    return std::make_pair(std::move(x), std::move(y));
  };

  auto [x_train, y_train] = build(config.washout, train_len);
  auto [x_test, y_test] = build(train_len, input.size());

  // A diverged reservoir (possible for expansive (A, B) with an unbounded
  // nonlinearity) cannot be fit; report infinite error instead of failing
  // inside the solver so parameter sweeps can treat it as "invalid".
  if (!x_train.all_finite() || !x_test.all_finite()) {
    PredictionResult out;
    out.train_nrmse = std::numeric_limits<double>::infinity();
    out.test_nrmse = std::numeric_limits<double>::infinity();
    out.test_prediction.assign(y_test.size(), 0.0);
    return out;
  }

  const Matrix gram = gram_at_a(x_train, config.ridge_beta);
  const CholeskySolver solver(gram);
  if (!gram.all_finite() || !solver.ok()) {
    // Numerically degenerate (near-overflow state magnitudes): invalid fit.
    PredictionResult out;
    out.train_nrmse = std::numeric_limits<double>::infinity();
    out.test_nrmse = std::numeric_limits<double>::infinity();
    out.test_prediction.assign(y_test.size(), 0.0);
    return out;
  }
  const Vector rhs = matvec_t(x_train, y_train);
  const Vector w = solver.solve(rhs);

  PredictionResult out;
  const Vector pred_train = matvec(x_train, w);
  out.train_nrmse = nrmse(pred_train, y_train);
  out.test_prediction = matvec(x_test, w);
  out.test_nrmse = nrmse(out.test_prediction, y_test);
  return out;
}

}  // namespace dfr
