#pragma once
// Chaotic Mackey-Glass time series (tau = 17 is the classic chaotic regime),
// the second canonical reservoir prediction benchmark. Integrated with RK4
// and a linear-interpolated delay buffer, then subsampled to unit spacing.

#include <cstdint>

#include "linalg/matrix.hpp"

namespace dfr {

struct MackeyGlassConfig {
  double beta = 0.2;
  double gamma = 0.1;
  double tau = 17.0;
  double n = 10.0;          // exponent
  double dt = 0.1;          // integration step
  double sample_every = 1.0;  // output spacing in model time
  double initial_value = 1.2;
  std::size_t washout_samples = 200;  // discarded transient (in samples)
};

/// `length` samples of the Mackey-Glass attractor.
Vector generate_mackey_glass(std::size_t length, const MackeyGlassConfig& config = {});

}  // namespace dfr
