#include "tasks/mackey_glass_series.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dfr {
namespace {

double mg_derivative(const MackeyGlassConfig& cfg, double x_now, double x_delayed) {
  return cfg.beta * x_delayed / (1.0 + std::pow(x_delayed, cfg.n)) -
         cfg.gamma * x_now;
}

}  // namespace

Vector generate_mackey_glass(std::size_t length, const MackeyGlassConfig& cfg) {
  DFR_CHECK(length > 0 && cfg.dt > 0.0 && cfg.tau > cfg.dt);
  DFR_CHECK(cfg.sample_every >= cfg.dt);

  const auto delay_slots =
      static_cast<std::size_t>(std::ceil(cfg.tau / cfg.dt)) + 2;
  std::vector<double> history(delay_slots, cfg.initial_value);
  std::size_t head = 0;
  double x = cfg.initial_value;

  auto delayed = [&](double delay) {
    const double steps = delay / cfg.dt;
    const auto lo = static_cast<std::size_t>(steps);
    const double frac = steps - static_cast<double>(lo);
    const std::size_t n_slots = history.size();
    const double v_lo = history[(head + n_slots - lo % n_slots) % n_slots];
    const double v_hi = history[(head + n_slots - (lo + 1) % n_slots) % n_slots];
    return (1.0 - frac) * v_lo + frac * v_hi;
  };

  auto step = [&]() {
    const double xd0 = delayed(cfg.tau);
    const double xd_half = delayed(cfg.tau - 0.5 * cfg.dt);
    const double xd1 = delayed(cfg.tau - cfg.dt);
    const double k1 = mg_derivative(cfg, x, xd0);
    const double k2 = mg_derivative(cfg, x + 0.5 * cfg.dt * k1, xd_half);
    const double k3 = mg_derivative(cfg, x + 0.5 * cfg.dt * k2, xd_half);
    const double k4 = mg_derivative(cfg, x + cfg.dt * k3, xd1);
    x += cfg.dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    head = (head + 1) % history.size();
    history[head] = x;
  };

  const auto steps_per_sample =
      static_cast<std::size_t>(std::llround(cfg.sample_every / cfg.dt));
  // Transient washout.
  for (std::size_t i = 0; i < cfg.washout_samples * steps_per_sample; ++i) step();

  Vector out(length);
  for (std::size_t s = 0; s < length; ++s) {
    for (std::size_t i = 0; i < steps_per_sample; ++i) step();
    out[s] = x;
  }
  return out;
}

}  // namespace dfr
