#include "linalg/cholesky.hpp"

#include <cmath>

namespace dfr {

std::optional<Matrix> cholesky_factor(const Matrix& a) {
  DFR_CHECK_MSG(a.rows() == a.cols(), "cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      const double* li = l.data() + i * n;
      const double* lj = l.data() + j * n;
      for (std::size_t k = 0; k < j; ++k) sum -= li[k] * lj[k];
      l(i, j) = sum / ljj;
    }
  }
  return l;
}

Vector forward_substitute(const Matrix& l, std::span<const double> b) {
  const std::size_t n = l.rows();
  DFR_CHECK(l.cols() == n && b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const double* li = l.data() + i * n;
    for (std::size_t k = 0; k < i; ++k) sum -= li[k] * y[k];
    y[i] = sum / li[i];
  }
  return y;
}

Vector backward_substitute(const Matrix& l, std::span<const double> y) {
  const std::size_t n = l.rows();
  DFR_CHECK(l.cols() == n && y.size() == n);
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Vector cholesky_solve(const Matrix& a, std::span<const double> b) {
  auto l = cholesky_factor(a);
  DFR_CHECK_MSG(l.has_value(), "matrix is not positive definite");
  return backward_substitute(*l, forward_substitute(*l, b));
}

Matrix cholesky_solve_matrix(const Matrix& a, const Matrix& b) {
  CholeskySolver solver(a);
  DFR_CHECK_MSG(solver.ok(), "matrix is not positive definite");
  return solver.solve(b);
}

CholeskySolver::CholeskySolver(const Matrix& a) {
  auto l = cholesky_factor(a);
  if (l) {
    l_ = std::move(*l);
    ok_ = true;
  }
}

Vector CholeskySolver::solve(std::span<const double> b) const {
  DFR_CHECK_MSG(ok_, "solver not factorized");
  return backward_substitute(l_, forward_substitute(l_, b));
}

Matrix CholeskySolver::solve(const Matrix& b) const {
  DFR_CHECK_MSG(ok_, "solver not factorized");
  DFR_CHECK(b.rows() == l_.rows());
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) column[r] = b(r, c);
    Vector xc = solve(column);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

double CholeskySolver::log_det() const {
  DFR_CHECK_MSG(ok_, "solver not factorized");
  double sum = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

}  // namespace dfr
