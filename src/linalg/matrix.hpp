#pragma once
// Dense row-major double matrix / vector types used across dfrlib.
//
// Scope: the library needs exactly the operations that reservoir computing
// with a ridge-regression readout requires — GEMM/GEMV, transpose products,
// symmetric rank-k updates, and an SPD solver. A hand-rolled implementation
// keeps the build dependency-free and deterministic; kernels are written as
// straightforward cache-friendly triple loops (ikj order) which is plenty for
// the ~1000-dimensional systems involved (Nx=30 → N_r=931).

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace dfr {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    DFR_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    DFR_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw storage (row-major).
  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  /// View of row r.
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    DFR_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    DFR_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of column c.
  [[nodiscard]] Vector col(std::size_t c) const;

  void fill(double v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  /// Resize (content is discarded, zero-filled).
  void resize(std::size_t rows, std::size_t cols);

  /// Set row r from a span (length must equal cols()).
  void set_row(std::size_t r, std::span<const double> values);

  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Max |a_ij|.
  [[nodiscard]] double max_abs() const noexcept;

  /// True if all entries are finite.
  [[nodiscard]] bool all_finite() const noexcept;

  /// Identity of size n.
  static Matrix identity(std::size_t n);

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;

  /// Human-readable (small matrices; tests / debugging).
  [[nodiscard]] std::string to_string(int precision = 4) const;

  friend bool operator==(const Matrix& a, const Matrix& b) noexcept {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- free-function algebra ------------------------------------------------

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s) noexcept;
Matrix operator*(double s, Matrix a) noexcept;

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B  (computed without forming A^T).
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T  (computed without forming B^T).
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// y = A * x.
Vector matvec(const Matrix& a, std::span<const double> x);

/// y = A * x into a caller-owned buffer (no allocation; y must not alias x).
void matvec_into(const Matrix& a, std::span<const double> x, std::span<double> y);

/// y = A^T * x.
Vector matvec_t(const Matrix& a, std::span<const double> x);

/// G = A^T A + lambda I   (symmetric; only needs one pass over A's rows).
Matrix gram_at_a(const Matrix& a, double lambda = 0.0);

/// Rank-1 update: A += alpha * x y^T.
void add_outer(Matrix& a, double alpha, std::span<const double> x,
               std::span<const double> y);

// ---- vector helpers --------------------------------------------------------

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a) noexcept;
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scale(std::span<double> x, double alpha) noexcept;
double max_abs(std::span<const double> a) noexcept;
bool all_finite(std::span<const double> a) noexcept;

/// Max |a_i - b_i| (spans must have equal length).
double max_abs_diff(std::span<const double> a, std::span<const double> b);

}  // namespace dfr
