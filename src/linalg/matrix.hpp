#pragma once
// Dense row-major double matrix / vector types used across dfrlib.
//
// Scope: the library needs exactly the operations that reservoir computing
// with a ridge-regression readout requires — GEMM/GEMV, transpose products,
// symmetric rank-k updates, and an SPD solver. A hand-rolled implementation
// keeps the build dependency-free and deterministic; kernels are written as
// straightforward cache-friendly triple loops (ikj order) which is plenty for
// the ~1000-dimensional systems involved (Nx=30 → N_r=931).

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace dfr {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Two storage modes share the const read path:
///   - owning (default): the matrix holds its elements in a private vector.
///   - borrowed: `Matrix::borrow()` wraps caller-owned read-only storage
///     (e.g. a page inside an mmap'ed .dfrm file — serve/artifact_store.hpp)
///     without copying. A borrowed matrix is read-only: every mutating entry
///     point CHECKs against it, and the borrower must keep the underlying
///     storage alive for the matrix's lifetime (artifact files do this with a
///     refcounted mapping handle on the ModelArtifact). Copying a borrowed
///     matrix copies the view, not the elements.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Read-only view over caller-owned row-major storage (no copy). `data`
  /// must stay valid and unmodified for the lifetime of the returned matrix
  /// and of every copy made from it.
  [[nodiscard]] static Matrix borrow(const double* data, std::size_t rows,
                                     std::size_t cols) noexcept {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.view_ = data;
    return m;
  }

  /// True when this matrix is a read-only view over external storage.
  [[nodiscard]] bool borrowed() const noexcept { return view_ != nullptr; }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_ * cols_; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    DFR_DCHECK(!borrowed() && r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    DFR_DCHECK(r < rows_ && c < cols_);
    return cdata()[r * cols_ + c];
  }

  /// Raw storage (row-major). The mutable overload CHECKs on borrowed views.
  [[nodiscard]] double* data() {
    DFR_CHECK_MSG(!borrowed(), "mutating a borrowed Matrix view");
    return data_.data();
  }
  [[nodiscard]] const double* data() const noexcept { return cdata(); }

  /// View of row r. The mutable overload CHECKs on borrowed views.
  [[nodiscard]] std::span<double> row(std::size_t r) {
    DFR_DCHECK(r < rows_);
    DFR_CHECK_MSG(!borrowed(), "mutating a borrowed Matrix view");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    DFR_DCHECK(r < rows_);
    return {cdata() + r * cols_, cols_};
  }

  /// Copy of column c.
  [[nodiscard]] Vector col(std::size_t c) const;

  void fill(double v) {
    DFR_CHECK_MSG(!borrowed(), "mutating a borrowed Matrix view");
    std::fill(data_.begin(), data_.end(), v);
  }

  /// Resize (content is discarded, zero-filled).
  void resize(std::size_t rows, std::size_t cols);

  /// Set row r from a span (length must equal cols()).
  void set_row(std::size_t r, std::span<const double> values);

  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Max |a_ij|.
  [[nodiscard]] double max_abs() const noexcept;

  /// True if all entries are finite.
  [[nodiscard]] bool all_finite() const noexcept;

  /// Identity of size n.
  static Matrix identity(std::size_t n);

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Human-readable (small matrices; tests / debugging).
  [[nodiscard]] std::string to_string(int precision = 4) const;

  /// Element-wise equality; owning and borrowed matrices compare by content.
  friend bool operator==(const Matrix& a, const Matrix& b) noexcept {
    if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
    const double* pa = a.cdata();
    const double* pb = b.cdata();
    return pa == pb || std::equal(pa, pa + a.size(), pb);
  }

 private:
  /// Read path shared by both storage modes.
  [[nodiscard]] const double* cdata() const noexcept {
    return view_ ? view_ : data_.data();
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;          // owning mode storage (empty when borrowed)
  const double* view_ = nullptr;      // borrowed mode storage (null when owning)
};

// ---- free-function algebra ------------------------------------------------

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B  (computed without forming A^T).
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T  (computed without forming B^T).
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// y = A * x.
Vector matvec(const Matrix& a, std::span<const double> x);

/// y = A * x into a caller-owned buffer (no allocation; y must not alias x).
void matvec_into(const Matrix& a, std::span<const double> x, std::span<double> y);

/// y = A^T * x.
Vector matvec_t(const Matrix& a, std::span<const double> x);

/// G = A^T A + lambda I   (symmetric; only needs one pass over A's rows).
Matrix gram_at_a(const Matrix& a, double lambda = 0.0);

/// Rank-1 update: A += alpha * x y^T.
void add_outer(Matrix& a, double alpha, std::span<const double> x,
               std::span<const double> y);

// ---- vector helpers --------------------------------------------------------

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a) noexcept;
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scale(std::span<double> x, double alpha) noexcept;
double max_abs(std::span<const double> a) noexcept;
bool all_finite(std::span<const double> a) noexcept;

/// Max |a_i - b_i| (spans must have equal length).
double max_abs_diff(std::span<const double> a, std::span<const double> b);

}  // namespace dfr
