#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dfr {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    DFR_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Vector Matrix::col(std::size_t c) const {
  DFR_CHECK(c < cols_);
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  DFR_CHECK_MSG(!borrowed(), "mutating a borrowed Matrix view");
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  DFR_CHECK(r < rows_ && values.size() == cols_);
  DFR_CHECK_MSG(!borrowed(), "mutating a borrowed Matrix view");
  std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  const double* p = data();
  for (std::size_t i = 0; i < size(); ++i) sum += p[i] * p[i];
  return std::sqrt(sum);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  const double* p = data();
  for (std::size_t i = 0; i < size(); ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

bool Matrix::all_finite() const noexcept {
  const double* p = data();
  for (std::size_t i = 0; i < size(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DFR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  DFR_CHECK_MSG(!borrowed(), "mutating a borrowed Matrix view");
  const double* p = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += p[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DFR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  DFR_CHECK_MSG(!borrowed(), "mutating a borrowed Matrix view");
  const double* p = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= p[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  DFR_CHECK_MSG(!borrowed(), "mutating a borrowed Matrix view");
  for (double& v : data_) v *= scalar;
  return *this;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  DFR_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix c(a.rows(), b.cols());
  const std::size_t n = a.rows(), k_dim = a.cols(), m = b.cols();
  for (std::size_t i = 0; i < n; ++i) {
    double* ci = c.data() + i * m;
    const double* ai = a.data() + i * k_dim;
    for (std::size_t k = 0; k < k_dim; ++k) {
      const double aik = ai[k];
      if (aik == 0.0) continue;
      const double* bk = b.data() + k * m;
      for (std::size_t j = 0; j < m; ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  DFR_CHECK_MSG(a.rows() == b.rows(), "matmul_at_b shape mismatch");
  Matrix c(a.cols(), b.cols());
  const std::size_t n = a.rows(), p = a.cols(), m = b.cols();
  for (std::size_t r = 0; r < n; ++r) {
    const double* ar = a.data() + r * p;
    const double* br = b.data() + r * m;
    for (std::size_t i = 0; i < p; ++i) {
      const double ari = ar[i];
      if (ari == 0.0) continue;
      double* ci = c.data() + i * m;
      for (std::size_t j = 0; j < m; ++j) ci[j] += ari * br[j];
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  DFR_CHECK_MSG(a.cols() == b.cols(), "matmul_a_bt shape mismatch");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      c(i, j) = dot(a.row(i), b.row(j));
    }
  }
  return c;
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  Vector y(a.rows(), 0.0);
  matvec_into(a, x, y);
  return y;
}

void matvec_into(const Matrix& a, std::span<const double> x, std::span<double> y) {
  DFR_CHECK_MSG(a.cols() == x.size(), "matvec shape mismatch");
  DFR_CHECK_MSG(a.rows() == y.size(), "matvec output length mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
}

Vector matvec_t(const Matrix& a, std::span<const double> x) {
  DFR_CHECK_MSG(a.rows() == x.size(), "matvec_t shape mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* ai = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * ai[j];
  }
  return y;
}

Matrix gram_at_a(const Matrix& a, double lambda) {
  const std::size_t n = a.rows(), p = a.cols();
  Matrix g(p, p);
  for (std::size_t r = 0; r < n; ++r) {
    const double* ar = a.data() + r * p;
    for (std::size_t i = 0; i < p; ++i) {
      const double ari = ar[i];
      if (ari == 0.0) continue;
      double* gi = g.data() + i * p;
      // Upper triangle only, mirrored afterwards.
      for (std::size_t j = i; j < p; ++j) gi[j] += ari * ar[j];
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
    g(i, i) += lambda;
  }
  return g;
}

void add_outer(Matrix& a, double alpha, std::span<const double> x,
               std::span<const double> y) {
  DFR_CHECK(a.rows() == x.size() && a.cols() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double axi = alpha * x[i];
    if (axi == 0.0) continue;
    double* ai = a.data() + i * a.cols();
    for (std::size_t j = 0; j < y.size(); ++j) ai[j] += axi * y[j];
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  DFR_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(std::span<const double> a) noexcept {
  double sum = 0.0;
  for (double v : a) sum += v * v;
  return std::sqrt(sum);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  DFR_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) noexcept {
  for (double& v : x) v *= alpha;
}

double max_abs(std::span<const double> a) noexcept {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

bool all_finite(std::span<const double> a) noexcept {
  for (double v : a) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  DFR_CHECK(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace dfr
