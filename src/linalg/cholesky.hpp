#pragma once
// Cholesky factorization and SPD linear solves.
//
// The ridge-regression readout solves (R^T R + beta I) W^T = R^T D, whose
// left-hand side is symmetric positive definite for beta > 0. Cholesky is the
// right tool: half the flops of LU, no pivoting, and failure (non-SPD input)
// is detected exactly where regularization was forgotten.

#include <optional>

#include "linalg/matrix.hpp"

namespace dfr {

/// Lower-triangular Cholesky factor L with A = L L^T.
/// Returns std::nullopt if A is not (numerically) positive definite.
std::optional<Matrix> cholesky_factor(const Matrix& a);

/// Solve L y = b (forward substitution), L lower-triangular.
Vector forward_substitute(const Matrix& l, std::span<const double> b);

/// Solve L^T x = y (backward substitution using the lower factor).
Vector backward_substitute(const Matrix& l, std::span<const double> y);

/// Solve A x = b for SPD A via Cholesky. Throws CheckError if not SPD.
Vector cholesky_solve(const Matrix& a, std::span<const double> b);

/// Solve A X = B column-wise for SPD A (factorizes once).
Matrix cholesky_solve_matrix(const Matrix& a, const Matrix& b);

/// Reusable factorization: factor once, solve many right-hand sides.
class CholeskySolver {
 public:
  /// Factorizes a copy of `a`. ok() reports success.
  explicit CholeskySolver(const Matrix& a);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const Matrix& factor() const noexcept { return l_; }

  /// Solve A x = b. Requires ok().
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Solve A X = B. Requires ok().
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// log(det(A)) = 2 * sum(log(diag(L))). Requires ok().
  [[nodiscard]] double log_det() const;

 private:
  Matrix l_;
  bool ok_ = false;
};

}  // namespace dfr
