#pragma once
// Descriptive statistics used by dataset preprocessing and metrics.

#include <span>

#include "linalg/matrix.hpp"

namespace dfr {

double mean(std::span<const double> values);

/// Unbiased (n-1) sample variance; returns 0 for n < 2.
double variance(std::span<const double> values);

double stddev(std::span<const double> values);

double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Pearson correlation; returns 0 if either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Normalized root-mean-square error: ||y - t||_rms / std(t).
/// The standard reservoir-computing figure of merit for prediction tasks.
double nrmse(std::span<const double> prediction, std::span<const double> target);

/// p-th percentile (p in [0, 100]) with linear interpolation between order
/// statistics (the "linear" / type-7 estimator): rank = p/100 * (n-1), value
/// interpolated between floor(rank) and ceil(rank). Sorts a copy; O(n log n).
double percentile(std::span<const double> values, double p);

/// One-pass descriptive summary of a sample (latency distributions etc.).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summary of `values` (min/p50/p90/p99/max share one sorted copy).
Summary summarize(std::span<const double> values);

/// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased variance; 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dfr
