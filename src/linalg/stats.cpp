#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dfr {

double mean(std::span<const double> values) {
  DFR_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mu = mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mu) * (v - mu);
  return sum / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double min_value(std::span<const double> values) {
  DFR_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  DFR_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double pearson(std::span<const double> a, std::span<const double> b) {
  DFR_CHECK(a.size() == b.size() && a.size() >= 2);
  const double ma = mean(a), mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double nrmse(std::span<const double> prediction, std::span<const double> target) {
  DFR_CHECK(prediction.size() == target.size() && !target.empty());
  double se = 0.0;
  for (std::size_t i = 0; i < target.size(); ++i) {
    const double e = prediction[i] - target[i];
    se += e * e;
  }
  const double rms = std::sqrt(se / static_cast<double>(target.size()));
  const double sd = stddev(target);
  DFR_CHECK_MSG(sd > 0.0, "NRMSE undefined for constant target");
  return rms / sd;
}

namespace {

/// Percentile of an already-sorted sample (the shared kernel of percentile()
/// and summarize()).
double sorted_percentile(const Vector& sorted, double p) {
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double percentile(std::span<const double> values, double p) {
  DFR_CHECK_MSG(!values.empty(), "percentile of an empty sample");
  DFR_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  Vector sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_percentile(sorted, p);
}

Summary summarize(std::span<const double> values) {
  DFR_CHECK_MSG(!values.empty(), "summary of an empty sample");
  Vector sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.mean = mean(sorted);
  s.min = sorted.front();
  s.p50 = sorted_percentile(sorted, 50.0);
  s.p90 = sorted_percentile(sorted, 90.0);
  s.p99 = sorted_percentile(sorted, 99.0);
  s.max = sorted.back();
  return s;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace dfr
