#pragma once
// Tiny declarative command-line parser for benches and examples.
//
//   CliParser cli("bench_table1", "Reproduce Table 1");
//   cli.add_flag("full", "run at full dataset scale");
//   cli.add_option("seed", "RNG seed", "42");
//   cli.parse(argc, argv);            // throws CliError on bad input
//   auto seed = cli.get_u64("seed");

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace dfr {

class CliError : public std::runtime_error {
 public:
  explicit CliError(const std::string& what) : std::runtime_error(what) {}
};

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Boolean switch (`--name`), default false.
  void add_flag(const std::string& name, const std::string& help);

  /// Valued option (`--name value` or `--name=value`) with a default.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv. Recognizes --help (sets help_requested()). Throws CliError
  /// on unknown options or missing values.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }
  [[nodiscard]] std::string help_text() const;

  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_i64(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;

  /// Positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  struct Entry {
    bool is_flag = false;
    std::string help;
    std::string value;     // current (default until overridden)
    std::string default_value;
    bool set_by_user = false;
  };

  const Entry& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace dfr
