#pragma once
// Wall-clock timing helpers used by the benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace dfr {

/// Monotonic stopwatch. start() on construction; elapsed_* query without stop.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer: sums durations across multiple start/stop windows.
class AccumTimer {
 public:
  void start() noexcept {
    running_ = true;
    t_.restart();
  }
  void stop() noexcept {
    if (running_) total_ += t_.elapsed_seconds();
    running_ = false;
  }
  void reset() noexcept {
    total_ = 0.0;
    running_ = false;
  }
  [[nodiscard]] double total_seconds() const noexcept {
    return total_ + (running_ ? t_.elapsed_seconds() : 0.0);
  }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace dfr
