#include "util/log.hpp"

#include <atomic>

namespace dfr {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "[debug]";
    case LogLevel::kInfo: return "[info ]";
    case LogLevel::kWarn: return "[warn ]";
    case LogLevel::kError: return "[error]";
    case LogLevel::kOff: return "[off  ]";
  }
  return "[?]";
}

}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  auto& stream = (level >= LogLevel::kWarn) ? std::cerr : std::cout;
  stream << level_tag(level) << ' ' << message << '\n';
}
}  // namespace detail

}  // namespace dfr
