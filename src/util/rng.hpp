#pragma once
// Deterministic pseudo-random number generation for dfrlib.
//
// All stochastic components of the library (mask generation, synthetic data,
// shuffling, weight jitter) draw from Rng so that a single 64-bit seed makes
// every experiment bit-reproducible across platforms. std::mt19937 and the
// std::*_distribution classes are deliberately avoided: their output is not
// specified identically across standard libraries for the distributions.
//
// Generator: xoshiro256** (Blackman & Vigna), seeded via SplitMix64.

#include <array>
#include <cstdint>
#include <vector>

namespace dfr {

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic counter-based hash combining two 64-bit values.
/// Useful for deriving independent stream seeds, e.g. per-sample seeds.
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** PRNG with explicit, portable output semantics.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// UniformReal in [0, 1).
  double uniform() noexcept;

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be > 0. Unbiased (rejection sampling).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal (Box–Muller with cached second value).
  double normal() noexcept;

  /// Normal with mean mu and standard deviation sigma.
  double normal(double mu, double sigma) noexcept;

  /// Random sign: +1.0 or -1.0 with equal probability.
  double sign() noexcept;

  /// true with probability p.
  bool bernoulli(double p) noexcept;

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& idx) noexcept;

  /// Derive a child RNG with an independent stream (hash of state + tag).
  Rng fork(std::uint64_t tag) noexcept;

  // UniformRandomBitGenerator interface (so std::shuffle etc. also work).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Convenience: a shuffled identity permutation [0, n).
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace dfr
