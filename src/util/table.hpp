#pragma once
// Console table formatting for the benchmark harnesses: the Table-1/Table-2
// reproductions print rows in the same layout as the paper.

#include <string>
#include <vector>

namespace dfr {

/// Column-aligned ASCII table with a header row.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment. Numeric-looking cells are right-aligned.
  [[nodiscard]] std::string str() const;

  /// Render and write to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fmt_double(double v, int precision);

/// Format seconds adaptively (ms below 1 s, 1 decimal above).
std::string fmt_seconds(double seconds);

/// Format an integer with thousands separators (e.g. 25,040).
std::string fmt_count(long long v);

/// Format a ratio like the paper's "(gs time)/(bp time)" column.
std::string fmt_ratio(double v);

}  // namespace dfr
