#include "util/csv.hpp"

#include "util/check.hpp"

namespace dfr {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), arity_(header.size()) {
  DFR_CHECK_MSG(out_.is_open(), "cannot open CSV file: " + path);
  DFR_CHECK_MSG(!header.empty(), "CSV header must be non-empty");
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  DFR_CHECK_MSG(cells.size() == arity_, "CSV row arity mismatch");
  write_row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace dfr
