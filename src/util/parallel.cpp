#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dfr {
namespace {

thread_local bool tls_in_parallel_region = false;

}  // namespace

struct ThreadPool::Impl {
  std::mutex submit_mutex;  // serializes whole jobs from distinct callers
  std::mutex mutex;
  std::condition_variable work_cv;   // wakes workers when a job opens
  std::condition_variable done_cv;   // wakes the caller when the job drains
  std::vector<std::thread> threads;
  bool stopping = false;

  // Current job. Guarded by `mutex` except `next_block`, which participants
  // race on deliberately.
  std::uint64_t generation = 0;       // bumped per job; workers join each once
  bool job_open = false;              // accepting new participants
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t job_n = 0;
  std::size_t job_grain = 1;
  unsigned worker_slots = 0;          // pool workers allowed into this job
  unsigned joined = 0;                // pool workers that took a slot
  unsigned active = 0;                // pool workers still running blocks
  std::atomic<std::size_t> next_block{0};
  std::exception_ptr error;

  void run_blocks() {
    const std::size_t blocks = (job_n + job_grain - 1) / job_grain;
    for (;;) {
      const std::size_t b = next_block.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks) return;
      const std::size_t begin = b * job_grain;
      const std::size_t end = std::min(job_n, begin + job_grain);
      try {
        for (std::size_t i = begin; i < end; ++i) (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        // Cancel the blocks nobody claimed yet; claimed ones finish.
        next_block.store(blocks, std::memory_order_relaxed);
      }
    }
  }

  void worker_loop() {
    std::uint64_t last_generation = 0;
    tls_in_parallel_region = true;  // bodies run here are always nested
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] {
          return stopping ||
                 (job_open && generation != last_generation && joined < worker_slots);
        });
        if (stopping) return;
        last_generation = generation;
        ++joined;
        ++active;
      }
      run_blocks();
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--active == 0) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned workers) : impl_(std::make_unique<Impl>()) {
  impl_->threads.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (auto& thread : impl_->threads) thread.join();
}

unsigned ThreadPool::workers() const noexcept {
  return static_cast<unsigned>(impl_->threads.size());
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& body,
                                ParallelOptions options) {
  if (n == 0) return;
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const unsigned budget =
      options.threads == 0 ? workers() + 1 : options.threads;
  const std::size_t blocks = (n + grain - 1) / grain;

  // Serial path: explicit request, nothing to split, a nested call (the pool
  // must never be re-entered from a worker), or an empty pool.
  if (budget <= 1 || blocks <= 1 || tls_in_parallel_region || workers() == 0) {
    const bool was_nested = tls_in_parallel_region;
    tls_in_parallel_region = true;
    try {
      for (std::size_t i = 0; i < n; ++i) body(i);
    } catch (...) {
      tls_in_parallel_region = was_nested;
      throw;
    }
    tls_in_parallel_region = was_nested;
    return;
  }

  Impl& impl = *impl_;
  // A second external caller blocks here until the current job drains; its
  // job then runs with the full pool. (Workers never reach this path — the
  // nesting guard above already diverted them to the serial loop.)
  std::lock_guard<std::mutex> submit_lock(impl.submit_mutex);
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    DFR_CHECK_MSG(!impl.job_open, "ThreadPool invariant violated: job open");
    ++impl.generation;
    impl.job_open = true;
    impl.body = &body;
    impl.job_n = n;
    impl.job_grain = grain;
    impl.joined = 0;
    impl.active = 0;
    // The caller takes one participant slot; never hand out more slots than
    // there are blocks to run.
    const unsigned extra = static_cast<unsigned>(
        std::min<std::size_t>({budget - 1, workers(), blocks - 1}));
    impl.worker_slots = extra;
    impl.next_block.store(0, std::memory_order_relaxed);
    impl.error = nullptr;
  }
  impl.work_cv.notify_all();

  tls_in_parallel_region = true;
  impl.run_blocks();
  tls_in_parallel_region = false;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl.mutex);
    impl.job_open = false;  // late wakers must not join a drained job
    impl.done_cv.wait(lock, [&] { return impl.active == 0; });
    error = impl.error;
    impl.error = nullptr;
    impl.body = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

// ---- BackgroundQueue -------------------------------------------------------

struct BackgroundQueue::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;  // worker waits for tasks / stop
  std::condition_variable idle_cv;  // drain() waits for empty + not running
  std::vector<std::function<void()>> tasks;  // FIFO: pop from the front
  bool running = false;  // a task is currently executing
  bool stop = false;
  std::thread worker;

  void run() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      work_cv.wait(lock, [this] { return stop || !tasks.empty(); });
      if (tasks.empty()) return;  // stop requested and everything ran
      std::function<void()> task = std::move(tasks.front());
      tasks.erase(tasks.begin());
      running = true;
      lock.unlock();
      try {
        task();
      } catch (...) {
        // Advisory work: swallowed by contract (see header).
      }
      lock.lock();
      running = false;
      if (tasks.empty()) idle_cv.notify_all();
    }
  }
};

BackgroundQueue::BackgroundQueue() : impl_(std::make_unique<Impl>()) {
  impl_->worker = std::thread([impl = impl_.get()] { impl->run(); });
}

BackgroundQueue::~BackgroundQueue() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  if (impl_->worker.joinable()) impl_->worker.join();
}

void BackgroundQueue::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->tasks.push_back(std::move(task));
  }
  impl_->work_cv.notify_one();
}

void BackgroundQueue::drain() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->idle_cv.wait(
      lock, [this] { return impl_->tasks.empty() && !impl_->running; });
}

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool& global_pool() {
  // One worker fewer than the core count (the calling thread participates),
  // but always at least one so the threaded paths exist — and are exercised
  // by the determinism tests — even on single-core machines.
  static ThreadPool pool(std::max(1u, hardware_threads() - 1));
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ParallelOptions options) {
  global_pool().for_each_index(n, body, options);
}

std::uint64_t parallel_seed(std::uint64_t base_seed, std::uint64_t index) noexcept {
  return hash_combine(base_seed, hash_combine(0x9E3779B97F4A7C15ULL, index));
}

bool inside_parallel_region() noexcept { return tls_in_parallel_region; }

}  // namespace dfr
