#pragma once
// CSV emission. Every bench writes a machine-readable CSV alongside its
// console table so results can be re-plotted (gnuplot / pandas / etc.).

#include <fstream>
#include <string>
#include <vector>

namespace dfr {

/// Quote a CSV field per RFC 4180 when needed.
std::string csv_escape(const std::string& field);

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row immediately.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append a row; arity must match the header.
  void add_row(const std::vector<std::string>& cells);

  /// Flush and close. Called by the destructor as well.
  void close();

  [[nodiscard]] bool is_open() const noexcept { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void write_row(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t arity_ = 0;
};

}  // namespace dfr
