#pragma once
// Minimal leveled logger. Benches and examples log progress through this so
// output can be silenced (e.g. inside unit tests) via set_log_level.

#include <iostream>
#include <sstream>
#include <string>

namespace dfr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  detail::log_emit(level, os.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace dfr
