#pragma once
// Shared parallel execution engine.
//
// One persistent thread pool serves every sweep-shaped workload in the
// library — grid-search candidates, per-sample feature extraction, backprop
// multi-start restarts, node-parallel gradient kernels — instead of each
// call site spawning and joining its own std::thread batch. Workers are
// created once (lazily, on first parallel_for) and block on a condition
// variable between jobs, so repeated small sweeps pay no thread start-up
// cost.
//
// Determinism contract: parallel_for(n, body) calls body(i) exactly once for
// every i in [0, n). Bodies must write only to index-i-owned state; under
// that contract results are bit-identical for any thread count, because no
// output depends on scheduling order. Stochastic bodies must derive their
// randomness from parallel_seed(base, i) (a pure hash), never from a shared
// RNG stream.
//
// Nesting: a parallel_for issued from inside a worker body runs serially on
// that worker (the pool is never re-entered), so composed layers — e.g.
// multi-start restarts whose inner fit extracts features — stay deadlock-free
// and deterministic without call sites coordinating thread budgets.
//
// Exceptions: the first exception thrown by any body cancels the remaining
// blocks and is rethrown on the calling thread once the job drains.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace dfr {

struct ParallelOptions {
  /// Upper bound on threads used for this job, including the calling thread.
  /// 0 = use every pool worker; 1 = run serially on the caller.
  unsigned threads = 0;
  /// Indices handed to a thread per scheduling step. Raise it when the body
  /// is cheap so scheduling overhead amortizes; results do not depend on it.
  std::size_t grain = 1;
};

/// Persistent worker pool. Most code should use the free parallel_for over
/// the process-wide pool (global_pool()) rather than constructing one.
class ThreadPool {
 public:
  /// Creates `workers` blocked worker threads (callers participate in jobs,
  /// so total parallelism is workers + 1).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned workers() const noexcept;

  /// Runs body(i) once for every i in [0, n); blocks until all complete.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& body,
                      ParallelOptions options = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Single-thread FIFO runner for fire-and-forget background work (artifact
/// prefetch, deferred maintenance) — deliberately separate from ThreadPool,
/// whose one-blocking-job design cannot host detached tasks. Tasks run in
/// post() order on one dedicated thread; exceptions a task throws are
/// swallowed (background work is advisory — a broken input surfaces as a
/// typed error on the foreground path that eventually needs it, not as a
/// crash from a thread nobody is joining). The destructor finishes every
/// task already posted, then joins.
class BackgroundQueue {
 public:
  BackgroundQueue();
  ~BackgroundQueue();

  BackgroundQueue(const BackgroundQueue&) = delete;
  BackgroundQueue& operator=(const BackgroundQueue&) = delete;

  /// Enqueue `task` (FIFO). Safe from any thread, including from inside a
  /// running task.
  void post(std::function<void()> task);

  /// Block until the queue is empty AND no task is mid-run. Tests use this
  /// to make background effects deterministic before asserting on them.
  void drain();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide pool (hardware_threads() - 1 workers, lazily created).
ThreadPool& global_pool();

/// std::thread::hardware_concurrency clamped to at least 1.
unsigned hardware_threads() noexcept;

/// Runs body(i) for i in [0, n) on the global pool. options.threads caps the
/// worker count (0 = all cores); nested calls degrade to a serial loop.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ParallelOptions options = {});

/// Deterministic per-index seed stream: a pure hash of (base_seed, index),
/// identical for every thread count and scheduling order.
std::uint64_t parallel_seed(std::uint64_t base_seed, std::uint64_t index) noexcept;

/// True while the calling thread is inside a parallel_for body (used by the
/// nesting guard; exposed for tests and diagnostics).
bool inside_parallel_region() noexcept;

}  // namespace dfr
