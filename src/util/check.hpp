#pragma once
// Lightweight precondition / invariant checking.
//
// DFR_CHECK is always on (it guards API misuse with negligible cost relative
// to the numerical kernels it protects); DFR_DCHECK compiles out in NDEBUG
// builds and is used inside hot loops.

#include <sstream>
#include <stdexcept>
#include <string>

namespace dfr {

/// Error thrown on violated preconditions across the library.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "DFR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace dfr

#define DFR_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::dfr::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DFR_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::dfr::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define DFR_DCHECK(expr) ((void)0)
#else
#define DFR_DCHECK(expr) DFR_CHECK(expr)
#endif
