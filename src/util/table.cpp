#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace dfr {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == ',' || c == 'e' || c == 'E' || c == '%' || c == 'x')) {
      return false;
    }
  }
  return true;
}

}  // namespace

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DFR_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  DFR_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = width[c] - row[c].size();
      const bool right = align_numeric && looks_numeric(row[c]);
      os << ' ';
      if (right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  auto emit_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  emit_rule();
  emit_row(headers_, /*align_numeric=*/false);
  emit_rule();
  for (const auto& row : rows_) emit_row(row, /*align_numeric=*/true);
  emit_rule();
  return os.str();
}

void ConsoleTable::print() const { std::cout << str() << std::flush; }

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_seconds(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  }
  return buf;
}

std::string fmt_count(long long v) {
  const bool negative = v < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(v)
               : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_ratio(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace dfr
