#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace dfr {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mu, double sigma) noexcept {
  return mu + sigma * normal();
}

double Rng::sign() noexcept { return (next_u64() & 1ULL) ? 1.0 : -1.0; }

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

void Rng::shuffle(std::vector<std::size_t>& idx) noexcept {
  for (std::size_t i = idx.size(); i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  return Rng(hash_combine(next_u64(), tag));
}

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  return idx;
}

}  // namespace dfr
