#include "util/cli.hpp"

#include <sstream>

namespace dfr {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  Entry e;
  e.is_flag = true;
  e.help = help;
  e.value = "false";
  e.default_value = "false";
  entries_[name] = std::move(e);
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  Entry e;
  e.is_flag = false;
  e.help = help;
  e.value = default_value;
  e.default_value = default_value;
  entries_[name] = std::move(e);
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      inline_value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_inline = true;
    }
    auto it = entries_.find(body);
    if (it == entries_.end()) throw CliError("unknown option: --" + body);
    Entry& e = it->second;
    if (e.is_flag) {
      if (has_inline) throw CliError("flag --" + body + " does not take a value");
      e.value = "true";
    } else if (has_inline) {
      e.value = inline_value;
    } else {
      if (i + 1 >= argc) throw CliError("option --" + body + " needs a value");
      e.value = argv[++i];
    }
    e.set_by_user = true;
  }
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name;
    if (!e.is_flag) os << " <value>";
    os << "\n      " << e.help;
    if (!e.is_flag) os << " (default: " << e.default_value << ")";
    os << '\n';
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

const CliParser::Entry& CliParser::find(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) throw CliError("option not declared: " + name);
  return it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  return find(name).value == "true";
}

std::string CliParser::get(const std::string& name) const { return find(name).value; }

std::int64_t CliParser::get_i64(const std::string& name) const {
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  if (pos != v.size()) throw CliError("not an integer: --" + name + "=" + v);
  return out;
}

std::uint64_t CliParser::get_u64(const std::string& name) const {
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  const std::uint64_t out = std::stoull(v, &pos);
  if (pos != v.size()) throw CliError("not an unsigned integer: --" + name + "=" + v);
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size()) throw CliError("not a number: --" + name + "=" + v);
  return out;
}

}  // namespace dfr
