#include "opt/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace dfr {

StepSchedule::StepSchedule(double base_lr, std::vector<int> milestones, double factor)
    : base_lr_(base_lr), milestones_(std::move(milestones)), factor_(factor) {
  std::sort(milestones_.begin(), milestones_.end());
}

double StepSchedule::lr_at(int epoch) const {
  double lr = base_lr_;
  for (int m : milestones_) {
    if (epoch >= m) lr *= factor_;
    else break;
  }
  return lr;
}

double ExponentialSchedule::lr_at(int epoch) const {
  return base_lr_ * std::pow(decay_, epoch);
}

CosineSchedule::CosineSchedule(double base_lr, double floor_lr, int total_epochs)
    : base_lr_(base_lr), floor_lr_(floor_lr), total_epochs_(total_epochs) {
  DFR_CHECK(total_epochs_ > 0);
}

double CosineSchedule::lr_at(int epoch) const {
  const double progress = std::clamp(
      static_cast<double>(epoch) / static_cast<double>(total_epochs_), 0.0, 1.0);
  return floor_lr_ +
         0.5 * (base_lr_ - floor_lr_) * (1.0 + std::cos(std::numbers::pi * progress));
}

std::unique_ptr<LrSchedule> paper_reservoir_schedule() {
  return std::make_unique<StepSchedule>(1.0, std::vector<int>{5, 10, 15, 20}, 0.1);
}

std::unique_ptr<LrSchedule> paper_output_schedule() {
  return std::make_unique<StepSchedule>(1.0, std::vector<int>{10, 15, 20}, 0.1);
}

}  // namespace dfr
