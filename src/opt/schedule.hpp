#pragma once
// Learning-rate schedules.
//
// The paper's protocol is a step schedule: lr starts at 1 and is multiplied
// by 0.1 at fixed epochs ({5,10,15,20} for the reservoir parameters,
// {10,15,20} for the output layer). Exponential and cosine schedules are
// provided for the ablation benches.

#include <memory>
#include <vector>

namespace dfr {

/// Maps a 0-based epoch index to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  [[nodiscard]] virtual double lr_at(int epoch) const = 0;
};

/// Constant learning rate.
class ConstantSchedule final : public LrSchedule {
 public:
  explicit ConstantSchedule(double lr) : lr_(lr) {}
  [[nodiscard]] double lr_at(int) const override { return lr_; }

 private:
  double lr_;
};

/// lr = base * factor^(number of milestones passed). An epoch e "passes" a
/// milestone m when e >= m. Matches the paper: milestones {5,10,15,20},
/// factor 0.1, base 1.
class StepSchedule final : public LrSchedule {
 public:
  StepSchedule(double base_lr, std::vector<int> milestones, double factor);
  [[nodiscard]] double lr_at(int epoch) const override;

 private:
  double base_lr_;
  std::vector<int> milestones_;  // sorted ascending
  double factor_;
};

/// lr = base * decay^epoch.
class ExponentialSchedule final : public LrSchedule {
 public:
  ExponentialSchedule(double base_lr, double decay) : base_lr_(base_lr), decay_(decay) {}
  [[nodiscard]] double lr_at(int epoch) const override;

 private:
  double base_lr_;
  double decay_;
};

/// Cosine annealing from base to floor over `total_epochs`.
class CosineSchedule final : public LrSchedule {
 public:
  CosineSchedule(double base_lr, double floor_lr, int total_epochs);
  [[nodiscard]] double lr_at(int epoch) const override;

 private:
  double base_lr_;
  double floor_lr_;
  int total_epochs_;
};

/// The paper's reservoir-parameter schedule: 1.0, x0.1 at {5,10,15,20}.
std::unique_ptr<LrSchedule> paper_reservoir_schedule();

/// The paper's output-layer schedule: 1.0, x0.1 at {10,15,20}.
std::unique_ptr<LrSchedule> paper_output_schedule();

}  // namespace dfr
