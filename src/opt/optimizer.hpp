#pragma once
// First-order optimizers over flat parameter vectors.
//
// The paper uses plain per-sample SGD; Momentum / Nesterov / AdaGrad / Adam
// are included as ablation axes (bench_ablation_optimizer). An Optimizer owns
// per-parameter state (velocity, moment estimates) sized on first use, so one
// instance must be bound to one parameter vector for its lifetime.

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace dfr {

enum class OptimizerKind { kSgd, kMomentum, kNesterov, kAdaGrad, kAdam };

/// Parse "sgd" | "momentum" | "nesterov" | "adagrad" | "adam".
OptimizerKind parse_optimizer_kind(const std::string& name);
std::string optimizer_kind_name(OptimizerKind kind);

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kSgd;
  double momentum = 0.9;   // Momentum / Nesterov
  double beta1 = 0.9;      // Adam
  double beta2 = 0.999;    // Adam
  double epsilon = 1e-8;   // Adam / AdaGrad
};

class Optimizer {
 public:
  explicit Optimizer(OptimizerConfig config = {});

  /// In-place update: params -= lr * direction(grads).
  /// `params` and `grads` must keep the same size across calls.
  void step(std::span<double> params, std::span<const double> grads, double lr);

  /// Reset internal state (velocity / moments / step counter).
  void reset() noexcept;

  [[nodiscard]] const OptimizerConfig& config() const noexcept { return config_; }

 private:
  void ensure_state(std::size_t n);

  OptimizerConfig config_;
  std::vector<double> velocity_;  // momentum family / Adam m
  std::vector<double> second_;    // Adam v / AdaGrad accumulator
  long step_count_ = 0;
};

}  // namespace dfr
