#include "opt/optimizer.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dfr {

OptimizerKind parse_optimizer_kind(const std::string& name) {
  if (name == "sgd") return OptimizerKind::kSgd;
  if (name == "momentum") return OptimizerKind::kMomentum;
  if (name == "nesterov") return OptimizerKind::kNesterov;
  if (name == "adagrad") return OptimizerKind::kAdaGrad;
  if (name == "adam") return OptimizerKind::kAdam;
  DFR_CHECK_MSG(false, "unknown optimizer: " + name);
  return OptimizerKind::kSgd;
}

std::string optimizer_kind_name(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd: return "sgd";
    case OptimizerKind::kMomentum: return "momentum";
    case OptimizerKind::kNesterov: return "nesterov";
    case OptimizerKind::kAdaGrad: return "adagrad";
    case OptimizerKind::kAdam: return "adam";
  }
  return "?";
}

Optimizer::Optimizer(OptimizerConfig config) : config_(config) {}

void Optimizer::ensure_state(std::size_t n) {
  if (velocity_.size() != n) {
    velocity_.assign(n, 0.0);
    second_.assign(n, 0.0);
    step_count_ = 0;
  }
}

void Optimizer::reset() noexcept {
  std::fill(velocity_.begin(), velocity_.end(), 0.0);
  std::fill(second_.begin(), second_.end(), 0.0);
  step_count_ = 0;
}

void Optimizer::step(std::span<double> params, std::span<const double> grads,
                     double lr) {
  DFR_CHECK_MSG(params.size() == grads.size(), "param/grad size mismatch");
  ensure_state(params.size());
  ++step_count_;

  switch (config_.kind) {
    case OptimizerKind::kSgd: {
      for (std::size_t i = 0; i < params.size(); ++i) params[i] -= lr * grads[i];
      break;
    }
    case OptimizerKind::kMomentum: {
      for (std::size_t i = 0; i < params.size(); ++i) {
        velocity_[i] = config_.momentum * velocity_[i] - lr * grads[i];
        params[i] += velocity_[i];
      }
      break;
    }
    case OptimizerKind::kNesterov: {
      for (std::size_t i = 0; i < params.size(); ++i) {
        const double prev = velocity_[i];
        velocity_[i] = config_.momentum * velocity_[i] - lr * grads[i];
        params[i] += -config_.momentum * prev + (1.0 + config_.momentum) * velocity_[i];
      }
      break;
    }
    case OptimizerKind::kAdaGrad: {
      for (std::size_t i = 0; i < params.size(); ++i) {
        second_[i] += grads[i] * grads[i];
        params[i] -= lr * grads[i] / (std::sqrt(second_[i]) + config_.epsilon);
      }
      break;
    }
    case OptimizerKind::kAdam: {
      const double bias1 =
          1.0 - std::pow(config_.beta1, static_cast<double>(step_count_));
      const double bias2 =
          1.0 - std::pow(config_.beta2, static_cast<double>(step_count_));
      for (std::size_t i = 0; i < params.size(); ++i) {
        velocity_[i] = config_.beta1 * velocity_[i] + (1.0 - config_.beta1) * grads[i];
        second_[i] =
            config_.beta2 * second_[i] + (1.0 - config_.beta2) * grads[i] * grads[i];
        const double m_hat = velocity_[i] / bias1;
        const double v_hat = second_[i] / bias2;
        params[i] -= lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
      }
      break;
    }
  }
}

}  // namespace dfr
