#include "fixedpoint/fixed.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dfr {

FixedPointFormat::FixedPointFormat(int int_bits, int frac_bits)
    : int_bits_(int_bits), frac_bits_(frac_bits) {
  DFR_CHECK_MSG(int_bits >= 0 && frac_bits >= 0 && int_bits + frac_bits >= 1,
                "fixed-point format needs at least one magnitude bit");
  DFR_CHECK_MSG(int_bits + frac_bits <= 62, "format too wide");
  resolution_ = std::ldexp(1.0, -frac_bits);
  // Largest representable value: 2^int_bits - 1 ulp.
  max_value_ = std::ldexp(1.0, int_bits) - resolution_;
}

double FixedPointFormat::quantize(double value) const noexcept {
  if (std::isnan(value)) return 0.0;
  const double scaled = std::nearbyint(value / resolution_);
  const double q = scaled * resolution_;
  if (q > max_value_) return max_value_;
  if (q < -max_value_ - resolution_) return -max_value_ - resolution_;  // two's complement min
  return q;
}

void FixedPointFormat::quantize(Vector& values) const noexcept {
  for (double& v : values) v = quantize(v);
}

void FixedPointFormat::quantize(Matrix& values) const noexcept {
  for (std::size_t r = 0; r < values.rows(); ++r) {
    for (std::size_t c = 0; c < values.cols(); ++c) {
      values(r, c) = quantize(values(r, c));
    }
  }
}

std::string FixedPointFormat::to_string() const {
  return "Q" + std::to_string(int_bits_) + "." + std::to_string(frac_bits_) +
         " (" + std::to_string(word_length()) + "b)";
}

}  // namespace dfr
