#include "fixedpoint/quantized_dfr.hpp"

#include <algorithm>
#include <cmath>

#include "dfr/dprr.hpp"
#include "dfr/metrics.hpp"
#include "serve/engine.hpp"
#include "util/check.hpp"

namespace dfr {
namespace {

/// Smallest power of two s with max_abs / s <= limit (s >= 1 only scales
/// down; values already in range keep s = 1).
double pow2_prescaler(double max_abs, double limit) {
  if (!(max_abs > limit) || limit <= 0.0) return 1.0;
  return std::exp2(std::ceil(std::log2(max_abs / limit)));
}

}  // namespace

QuantizedDfr::QuantizedDfr(const LoadedModel& model,
                           QuantizedInferenceConfig config)
    : model_(model), quant_readout_(model.readout), config_(config) {
  requantize_readout();
}

void QuantizedDfr::requantize_readout() {
  quant_readout_ = model_.readout;
  Matrix& w = quant_readout_.mutable_weights();
  Vector& b = quant_readout_.mutable_bias();
  // Weights divided by the weight prescaler; bias additionally by the total
  // feature scaling so logits stay proportional to the float logits:
  //   logits' = (W/s_w) (r/s_f) + b/(s_w s_f) = logits / (s_w s_f).
  const double s_f = scales_.state * scales_.state * scales_.feature;
  w *= 1.0 / scales_.weight;
  for (double& v : b) v /= scales_.weight * s_f;
  config_.weight_format.quantize(w);
  config_.weight_format.quantize(b);
}

void QuantizedDfr::calibrate(const Dataset& data, std::size_t max_samples) {
  DFR_CHECK(!data.empty());
  const std::size_t count = std::min(max_samples, data.size());
  const std::size_t nx = model_.mask.nodes();
  const ModularReservoir reservoir(nx, model_.nonlinearity);

  // Float-pipeline dynamic ranges.
  double max_state = 0.0;
  double max_feature = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const Matrix j = model_.mask.apply_series(data[i].series);
    max_state = std::max(max_state, j.max_abs());
    const Matrix states = reservoir.run(j, model_.params);
    max_state = std::max(max_state, states.max_abs());
    Vector r = dprr_from_states(states);
    scale(r, dprr_time_scale(data[i].series.rows()));
    max_feature = std::max(max_feature, max_abs(r));
  }

  scales_.state = pow2_prescaler(max_state, config_.state_format.max_value());
  // Features of the scaled pipeline are r / state^2; the residual prescaler
  // covers what remains outside the feature format.
  const double scaled_feature_range =
      max_feature / (scales_.state * scales_.state);
  scales_.feature =
      pow2_prescaler(scaled_feature_range, config_.feature_format.max_value());
  scales_.weight = pow2_prescaler(model_.readout.weights().max_abs(),
                                  config_.weight_format.max_value());
  requantize_readout();
}

Vector QuantizedDfr::features(const Matrix& series,
                              QuantizedEngineKind kind) const {
  if (kind == QuantizedEngineKind::kScalar) {
    QuantizedInferenceEngine engine = make_engine(*this);
    const std::span<const double> r = engine.features(series);
    return Vector(r.begin(), r.end());
  }
  SimdQuantizedInferenceEngine engine = make_simd_engine(*this);
  const std::span<const double> r = engine.features(series);
  return Vector(r.begin(), r.end());
}

int QuantizedDfr::classify(const Matrix& series,
                           QuantizedEngineKind kind) const {
  if (kind == QuantizedEngineKind::kScalar) {
    QuantizedInferenceEngine engine = make_engine(*this);
    return engine.classify(series);
  }
  SimdQuantizedInferenceEngine engine = make_simd_engine(*this);
  return engine.classify(series);
}

double quantized_accuracy(const QuantizedDfr& dfr, const Dataset& dataset,
                          unsigned threads, QuantizedEngineKind engine) {
  DFR_CHECK(!dataset.empty());
  const std::vector<int> predicted =
      classify_batch(dfr, dataset, threads, engine);
  std::vector<int> actual(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) actual[i] = dataset[i].label;
  return accuracy(predicted, actual);
}

}  // namespace dfr
