#include "fixedpoint/quantized_dfr.hpp"

#include <algorithm>
#include <cmath>

#include "dfr/dprr.hpp"
#include "dfr/metrics.hpp"
#include "util/check.hpp"

namespace dfr {
namespace {

/// Smallest power of two s with max_abs / s <= limit (s >= 1 only scales
/// down; values already in range keep s = 1).
double pow2_prescaler(double max_abs, double limit) {
  if (!(max_abs > limit) || limit <= 0.0) return 1.0;
  return std::exp2(std::ceil(std::log2(max_abs / limit)));
}

}  // namespace

QuantizedDfr::QuantizedDfr(const LoadedModel& model,
                           QuantizedInferenceConfig config)
    : model_(model), quant_readout_(model.readout), config_(config) {
  requantize_readout();
}

void QuantizedDfr::requantize_readout() {
  quant_readout_ = model_.readout;
  Matrix& w = quant_readout_.mutable_weights();
  Vector& b = quant_readout_.mutable_bias();
  // Weights divided by the weight prescaler; bias additionally by the total
  // feature scaling so logits stay proportional to the float logits:
  //   logits' = (W/s_w) (r/s_f) + b/(s_w s_f) = logits / (s_w s_f).
  const double s_f = scales_.state * scales_.state * scales_.feature;
  w *= 1.0 / scales_.weight;
  for (double& v : b) v /= scales_.weight * s_f;
  config_.weight_format.quantize(w);
  config_.weight_format.quantize(b);
}

void QuantizedDfr::calibrate(const Dataset& data, std::size_t max_samples) {
  DFR_CHECK(!data.empty());
  const std::size_t count = std::min(max_samples, data.size());
  const std::size_t nx = model_.mask.nodes();
  const ModularReservoir reservoir(nx, model_.nonlinearity);

  // Float-pipeline dynamic ranges.
  double max_state = 0.0;
  double max_feature = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const Matrix j = model_.mask.apply_series(data[i].series);
    max_state = std::max(max_state, j.max_abs());
    const Matrix states = reservoir.run(j, model_.params);
    max_state = std::max(max_state, states.max_abs());
    Vector r = dprr_from_states(states);
    scale(r, dprr_time_scale(data[i].series.rows()));
    max_feature = std::max(max_feature, max_abs(r));
  }

  scales_.state = pow2_prescaler(max_state, config_.state_format.max_value());
  // Features of the scaled pipeline are r / state^2; the residual prescaler
  // covers what remains outside the feature format.
  const double scaled_feature_range =
      max_feature / (scales_.state * scales_.state);
  scales_.feature =
      pow2_prescaler(scaled_feature_range, config_.feature_format.max_value());
  scales_.weight = pow2_prescaler(model_.readout.weights().max_abs(),
                                  config_.weight_format.max_value());
  requantize_readout();
}

Vector QuantizedDfr::features(const Matrix& series) const {
  const std::size_t nx = model_.mask.nodes();
  const Nonlinearity& f = model_.nonlinearity;
  const FixedPointFormat& state_fmt = config_.state_format;
  const double inv_state = 1.0 / scales_.state;

  Vector x_prev(nx, 0.0), x_cur(nx, 0.0);
  DprrAccumulator dprr(nx);
  for (std::size_t k = 0; k < series.rows(); ++k) {
    Vector j = model_.mask.apply(series.row(k));
    for (double& v : j) v = state_fmt.quantize(v * inv_state);
    double prev_node = x_prev[nx - 1];
    for (std::size_t n = 0; n < nx; ++n) {
      const double s = state_fmt.quantize(j[n] + x_prev[n]);
      const double value =
          model_.params.a * f.value(s) + model_.params.b * prev_node;
      prev_node = state_fmt.quantize(value);
      x_cur[n] = prev_node;
    }
    dprr.add(x_cur, x_prev);
    std::swap(x_prev, x_cur);
  }
  Vector r = dprr.features();
  // Time-average (matches the trained readout) plus residual prescale.
  scale(r, dprr_time_scale(series.rows()) / scales_.feature);
  config_.feature_format.quantize(r);
  return r;
}

int QuantizedDfr::classify(const Matrix& series) const {
  return quant_readout_.predict(features(series));
}

double quantized_accuracy(const QuantizedDfr& dfr, const Dataset& dataset) {
  DFR_CHECK(!dataset.empty());
  std::vector<int> predicted(dataset.size());
  std::vector<int> actual(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    predicted[i] = dfr.classify(dataset[i].series);
    actual[i] = dataset[i].label;
  }
  return accuracy(predicted, actual);
}

}  // namespace dfr
