#pragma once
// Fixed-point arithmetic model for hardware deployment studies.
//
// DFRs exist to be implemented in small digital/analog circuits; a deployed
// modular DFR quantizes states, mask products and readout weights to a signed
// fixed-point format Q(int_bits, frac_bits). This module models that format
// in software: quantize() rounds-to-nearest and saturates, so accuracy-vs-
// word-length sweeps (bench_quantization) predict the silicon behaviour of a
// given format choice.

#include <cstdint>
#include <string>

#include "linalg/matrix.hpp"

namespace dfr {

/// Signed fixed-point format: 1 sign bit + int_bits + frac_bits.
class FixedPointFormat {
 public:
  FixedPointFormat(int int_bits, int frac_bits);

  [[nodiscard]] int int_bits() const noexcept { return int_bits_; }
  [[nodiscard]] int frac_bits() const noexcept { return frac_bits_; }
  [[nodiscard]] int word_length() const noexcept {
    return 1 + int_bits_ + frac_bits_;
  }

  /// Representable magnitude bound (saturation threshold).
  [[nodiscard]] double max_value() const noexcept { return max_value_; }
  /// Quantization step (1 ulp).
  [[nodiscard]] double resolution() const noexcept { return resolution_; }

  /// Round-to-nearest, saturate to the representable range.
  [[nodiscard]] double quantize(double value) const noexcept;

  /// Quantize a whole vector / matrix in place.
  void quantize(Vector& values) const noexcept;
  void quantize(Matrix& values) const noexcept;

  /// e.g. "Q4.11 (16b)".
  [[nodiscard]] std::string to_string() const;

 private:
  int int_bits_;
  int frac_bits_;
  double resolution_;
  double max_value_;
};

}  // namespace dfr
