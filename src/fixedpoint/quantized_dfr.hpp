#pragma once
// Quantized DFR inference: the trained floating-point model executed with
// fixed-point state, feature, and readout arithmetic. Quantization points
// match a realistic datapath: the masked input, every node state, the DPRR
// accumulator, and the readout weights/biases are each held in the chosen
// format.
//
// Real fixed-point designs pick a per-tensor binary scaling (the "binary
// point position") from calibration data; calibrate() does exactly that —
// it measures the dynamic range of states and features on a few samples and
// of the readout weights directly, then selects power-of-two prescalers so
// each tensor fills its format. Scaling is exact for the identity
// nonlinearity (the paper's evaluation setting) because the node update is
// then homogeneous; for saturating nonlinearities it is the usual
// engineering approximation. All scales cancel in the argmax, so reported
// accuracy reflects only quantization error, not scaling.

#include "dfr/model_io.hpp"
#include "fixedpoint/fixed.hpp"

namespace dfr {

struct QuantizedInferenceConfig {
  FixedPointFormat state_format{4, 11};    // node states & masked inputs
  FixedPointFormat feature_format{8, 15};  // DPRR accumulator (wider: sums)
  FixedPointFormat weight_format{4, 11};   // readout W, b
};

/// Power-of-two prescalers chosen by calibration (1.0 = no scaling).
struct QuantizationScales {
  double state = 1.0;    // states and masked inputs divided by this
  double feature = 1.0;  // residual feature scaling beyond state^2
  double weight = 1.0;   // readout weights divided by this
};

class QuantizedDfr {
 public:
  /// Wraps a trained model. Call calibrate() before classify() unless the
  /// model's dynamic ranges already fit the formats.
  QuantizedDfr(const LoadedModel& model, QuantizedInferenceConfig config);

  /// Choose power-of-two prescalers from up to `max_samples` of `data` (state
  /// and feature ranges) and from the readout weights. Re-quantizes the
  /// readout under the new scale.
  void calibrate(const Dataset& data, std::size_t max_samples = 8);

  /// Classify one series with the quantized datapath. Convenience wrapper
  /// that builds a fresh engine per call; sustained serving should hold an
  /// engine (serve/engine.hpp) and reuse its scratch. `engine` selects the
  /// implementation (default kAuto = SIMD best-available); every kind is
  /// bit-identical — the quantized SIMD contract — so the knob trades
  /// latency only.
  [[nodiscard]] int classify(
      const Matrix& series,
      QuantizedEngineKind engine = QuantizedEngineKind::kAuto) const;

  /// Quantized, prescaled DPRR features for one series (for tests).
  [[nodiscard]] Vector features(
      const Matrix& series,
      QuantizedEngineKind engine = QuantizedEngineKind::kAuto) const;

  [[nodiscard]] const QuantizedInferenceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const QuantizationScales& scales() const noexcept {
    return scales_;
  }
  /// The wrapped float model (mask, params, nonlinearity).
  [[nodiscard]] const LoadedModel& model() const noexcept { return model_; }
  /// The prescaled, quantized readout used by the fixed-point datapath.
  [[nodiscard]] const OutputLayer& quantized_readout() const noexcept {
    return quant_readout_;
  }

 private:
  void requantize_readout();

  LoadedModel model_;          // original float model (kept pristine)
  OutputLayer quant_readout_;  // scaled + quantized readout
  QuantizedInferenceConfig config_;
  QuantizationScales scales_;
};

/// Accuracy of the quantized datapath over a dataset. `threads` caps the
/// pool slots used for the batch (0 = all cores, 1 = serial); results are
/// bit-identical for any value — and for any `engine` kind (the quantized
/// SIMD contract).
double quantized_accuracy(const QuantizedDfr& dfr, const Dataset& dataset,
                          unsigned threads = 1,
                          QuantizedEngineKind engine =
                              QuantizedEngineKind::kAuto);

}  // namespace dfr
