#include "data/dataset.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace dfr {

void Dataset::add(Sample sample) {
  DFR_CHECK_MSG(sample.series.rows() == length_ && sample.series.cols() == channels_,
                "sample shape mismatch for dataset " + name_);
  DFR_CHECK_MSG(sample.label >= 0 && sample.label < num_classes_,
                "label out of range for dataset " + name_);
  samples_.push_back(std::move(sample));
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(num_classes_), 0);
  for (const auto& s : samples_) ++hist[static_cast<std::size_t>(s.label)];
  return hist;
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(name_, num_classes_, length_, channels_);
  for (std::size_t i : indices) {
    DFR_CHECK(i < samples_.size());
    out.add(samples_[i]);
  }
  return out;
}

Dataset Dataset::capped(std::size_t max_samples) const {
  if (samples_.size() <= max_samples) return *this;
  // Round-robin over classes so small classes keep representation.
  std::vector<std::vector<std::size_t>> per_class(
      static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    per_class[static_cast<std::size_t>(samples_[i].label)].push_back(i);
  }
  std::vector<std::size_t> chosen;
  chosen.reserve(max_samples);
  std::size_t round = 0;
  while (chosen.size() < max_samples) {
    bool any = false;
    for (const auto& cls : per_class) {
      if (round < cls.size() && chosen.size() < max_samples) {
        chosen.push_back(cls[round]);
        any = true;
      }
    }
    if (!any) break;
    ++round;
  }
  std::sort(chosen.begin(), chosen.end());
  return subset(chosen);
}

std::pair<Dataset, Dataset> Dataset::stratified_split(double first_fraction,
                                                      Rng& rng) const {
  DFR_CHECK(first_fraction > 0.0 && first_fraction < 1.0);
  std::vector<std::vector<std::size_t>> per_class(
      static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    per_class[static_cast<std::size_t>(samples_[i].label)].push_back(i);
  }
  std::vector<std::size_t> first_idx, second_idx;
  for (auto& cls : per_class) {
    rng.shuffle(cls);
    // At least one sample on each side when the class has >= 2 samples.
    std::size_t n_first = static_cast<std::size_t>(
        static_cast<double>(cls.size()) * first_fraction + 0.5);
    if (cls.size() >= 2) {
      n_first = std::clamp<std::size_t>(n_first, 1, cls.size() - 1);
    } else {
      n_first = std::min<std::size_t>(n_first, cls.size());
    }
    for (std::size_t i = 0; i < cls.size(); ++i) {
      (i < n_first ? first_idx : second_idx).push_back(cls[i]);
    }
  }
  std::sort(first_idx.begin(), first_idx.end());
  std::sort(second_idx.begin(), second_idx.end());
  return {subset(first_idx), subset(second_idx)};
}

}  // namespace dfr
