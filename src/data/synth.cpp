#include "data/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace dfr {
namespace {

/// Per-(class, channel) harmonic signature.
struct Signature {
  std::vector<double> freq;   // cycles per series
  std::vector<double> amp;
  std::vector<double> phase;
};

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<std::vector<Signature>> make_signatures(const DatasetSpec& spec,
                                                    const SynthConfig& cfg,
                                                    Rng& rng,
                                                    std::size_t signature_sets) {
  std::vector<std::vector<Signature>> sig(signature_sets);
  for (auto& per_channel : sig) {
    per_channel.resize(spec.channels);
    for (auto& s : per_channel) {
      s.freq.resize(static_cast<std::size_t>(cfg.harmonics));
      s.amp.resize(static_cast<std::size_t>(cfg.harmonics));
      s.phase.resize(static_cast<std::size_t>(cfg.harmonics));
      for (int h = 0; h < cfg.harmonics; ++h) {
        s.freq[static_cast<std::size_t>(h)] = rng.uniform(cfg.min_freq, cfg.max_freq);
        s.amp[static_cast<std::size_t>(h)] = rng.uniform(0.5, 1.5);
        s.phase[static_cast<std::size_t>(h)] =
            rng.uniform(0.0, 2.0 * std::numbers::pi);
      }
    }
  }
  return sig;
}

Sample draw_sample(const DatasetSpec& spec, const SynthConfig& cfg,
                   const std::vector<std::vector<Signature>>& signatures,
                   const std::vector<Signature>& shared, int label, Rng& rng) {
  Sample sample;
  sample.label = label;
  sample.series.resize(spec.length, spec.channels);

  const auto& class_sig = signatures[static_cast<std::size_t>(label)];
  const double warp = 1.0 + rng.uniform(-cfg.warp_jitter, cfg.warp_jitter);
  const double global_phase = rng.normal(0.0, cfg.phase_jitter);
  // Class-informative fraction of the signal: `overlap` of the energy is a
  // signature common to all classes (background structure), only the rest
  // discriminates.
  const double w_shared = std::clamp(spec.overlap, 0.0, 0.99);
  const double w_class = 1.0 - w_shared;

  for (std::size_t v = 0; v < spec.channels; ++v) {
    const Signature& s = class_sig[v];
    const Signature& base = shared[v];
    const double amp_scale = 1.0 + rng.uniform(-cfg.amp_jitter, cfg.amp_jitter);
    double noise = 0.0;  // AR(1) state
    const double innovation_sd =
        spec.difficulty * std::sqrt(1.0 - cfg.ar_coefficient * cfg.ar_coefficient);
    for (std::size_t t = 0; t < spec.length; ++t) {
      const double phase_t =
          2.0 * std::numbers::pi * warp * static_cast<double>(t) /
          static_cast<double>(spec.length);
      double value = 0.0;
      for (std::size_t h = 0; h < s.freq.size(); ++h) {
        value +=
            w_class * s.amp[h] *
                std::sin(s.freq[h] * phase_t + s.phase[h] + global_phase) +
            w_shared * base.amp[h] *
                std::sin(base.freq[h] * phase_t + base.phase[h] + global_phase);
      }
      noise = cfg.ar_coefficient * noise + rng.normal(0.0, innovation_sd);
      sample.series(t, v) = amp_scale * value + noise;
    }
  }
  return sample;
}

// ---- event-order generator --------------------------------------------------
//
// A pool of burst prototypes (windowed sinusoids with per-channel amplitude
// patterns) is shared by ALL classes; a class is a specific ordering of the
// same multiset of prototypes over L slots. Marginal statistics are therefore
// class-independent by construction — only temporal context separates
// classes, which is exactly the regime where reservoir memory (and hence the
// choice of A, B) matters.

struct BurstPrototype {
  double freq = 1.0;                 // cycles per slot
  double phase = 0.0;
  std::vector<double> channel_amp;   // per-channel signed amplitude
};

struct EventTask {
  std::vector<BurstPrototype> prototypes;
  std::vector<std::vector<std::size_t>> class_sequence;  // [class][slot]
  std::size_t slots = 0;
};

EventTask make_event_task(const DatasetSpec& spec, Rng& rng) {
  EventTask task;
  task.slots = std::clamp<std::size_t>(spec.length / 12, 5, 16);
  const std::size_t pool = std::min<std::size_t>(5, task.slots);

  task.prototypes.resize(pool);
  for (auto& proto : task.prototypes) {
    proto.freq = rng.uniform(1.0, 3.0);
    proto.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    proto.channel_amp.resize(spec.channels);
    for (double& amp : proto.channel_amp) {
      amp = rng.sign() * rng.uniform(0.6, 1.4);
    }
  }

  // Base multiset: slots cycle through the pool, then one dataset-level
  // shuffle. Every class permutes THIS multiset, so per-prototype occupancy
  // is identical across classes.
  std::vector<std::size_t> base(task.slots);
  for (std::size_t l = 0; l < task.slots; ++l) base[l] = l % pool;
  rng.shuffle(base);

  task.class_sequence.resize(static_cast<std::size_t>(spec.num_classes));
  for (auto& seq : task.class_sequence) {
    seq = base;
    rng.shuffle(seq);
  }
  return task;
}

Sample draw_event_sample(const DatasetSpec& spec, const SynthConfig& cfg,
                         const EventTask& task, int label, Rng& rng) {
  Sample sample;
  sample.label = label;
  sample.series.resize(spec.length, spec.channels);

  const auto& seq = task.class_sequence[static_cast<std::size_t>(label)];
  const double slot_len =
      static_cast<double>(spec.length) / static_cast<double>(task.slots);
  const double phase_jitter = rng.normal(0.0, cfg.phase_jitter);
  const double amp_scale = 1.0 + rng.uniform(-cfg.amp_jitter, cfg.amp_jitter);

  // Deterministic per-sample slot timing jitter (up to ~20% of a slot).
  std::vector<double> slot_start(task.slots);
  for (std::size_t l = 0; l < task.slots; ++l) {
    slot_start[l] = (static_cast<double>(l) +
                     rng.uniform(-0.2, 0.2)) * slot_len;
  }

  // Render bursts.
  for (std::size_t l = 0; l < task.slots; ++l) {
    const BurstPrototype& proto = task.prototypes[seq[l]];
    const auto t_begin = static_cast<std::size_t>(
        std::max(0.0, slot_start[l]));
    const auto t_end = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(spec.length),
                         slot_start[l] + slot_len));
    for (std::size_t t = t_begin; t < t_end; ++t) {
      const double u = (static_cast<double>(t) - slot_start[l]) / slot_len;
      const double envelope = std::sin(std::numbers::pi * u);
      const double carrier = std::sin(2.0 * std::numbers::pi * proto.freq * u +
                                      proto.phase + phase_jitter);
      const double value = envelope * envelope * carrier;
      for (std::size_t v = 0; v < spec.channels; ++v) {
        sample.series(t, v) += amp_scale * proto.channel_amp[v] * value;
      }
    }
  }

  // Additive AR(1) noise, scale = difficulty.
  const double innovation_sd =
      spec.difficulty * std::sqrt(1.0 - cfg.ar_coefficient * cfg.ar_coefficient);
  for (std::size_t v = 0; v < spec.channels; ++v) {
    double noise = 0.0;
    for (std::size_t t = 0; t < spec.length; ++t) {
      noise = cfg.ar_coefficient * noise + rng.normal(0.0, innovation_sd);
      sample.series(t, v) += noise;
    }
  }
  return sample;
}

Dataset draw_event_split(const DatasetSpec& spec, const SynthConfig& cfg,
                         const EventTask& task, std::size_t total, Rng& rng,
                         const std::string& split_name) {
  Dataset out(spec.id + "/" + split_name, spec.num_classes, spec.length,
              spec.channels);
  for (std::size_t i = 0; i < total; ++i) {
    const int label =
        static_cast<int>(i % static_cast<std::size_t>(spec.num_classes));
    out.add(draw_event_sample(spec, cfg, task, label, rng));
  }
  return out;
}

Dataset draw_split(const DatasetSpec& spec, const SynthConfig& cfg,
                   const std::vector<std::vector<Signature>>& signatures,
                   const std::vector<Signature>& shared, std::size_t total,
                   Rng& rng, const std::string& split_name) {
  Dataset out(spec.id + "/" + split_name, spec.num_classes, spec.length,
              spec.channels);
  // Balanced round-robin labels so every class appears even in tiny splits.
  for (std::size_t i = 0; i < total; ++i) {
    const int label = static_cast<int>(i % static_cast<std::size_t>(spec.num_classes));
    out.add(draw_sample(spec, cfg, signatures, shared, label, rng));
  }
  return out;
}

}  // namespace

DatasetPair generate_synthetic(const DatasetSpec& spec, const SynthConfig& cfg) {
  DFR_CHECK(spec.num_classes >= 2 && spec.channels > 0 && spec.length > 1);
  Rng rng(hash_combine(cfg.seed, fnv1a(spec.id)));
  DatasetPair pair;
  if (spec.kind == TaskKind::kEventOrder) {
    const EventTask task = make_event_task(spec, rng);
    Rng rng_train = rng.fork(1);
    Rng rng_test = rng.fork(2);
    pair.train = draw_event_split(spec, cfg, task, spec.train_size, rng_train,
                                  "train");
    pair.test =
        draw_event_split(spec, cfg, task, spec.test_size, rng_test, "test");
    return pair;
  }
  const auto signatures = make_signatures(
      spec, cfg, rng, static_cast<std::size_t>(spec.num_classes));
  const auto shared = make_signatures(spec, cfg, rng, 1)[0];
  Rng rng_train = rng.fork(1);
  Rng rng_test = rng.fork(2);
  pair.train = draw_split(spec, cfg, signatures, shared, spec.train_size,
                          rng_train, "train");
  pair.test =
      draw_split(spec, cfg, signatures, shared, spec.test_size, rng_test, "test");
  return pair;
}

DatasetPair generate_toy_task(int num_classes, std::size_t channels,
                              std::size_t length, std::size_t train_per_class,
                              std::size_t test_per_class, double difficulty,
                              std::uint64_t seed) {
  DatasetSpec spec;
  spec.id = "TOY";
  spec.channels = channels;
  spec.length = length;
  spec.num_classes = num_classes;
  spec.train_size = train_per_class * static_cast<std::size_t>(num_classes);
  spec.test_size = test_per_class * static_cast<std::size_t>(num_classes);
  spec.paper_bp_accuracy = 0.0;
  spec.difficulty = difficulty;
  SynthConfig cfg;
  cfg.seed = seed;
  return generate_synthetic(spec, cfg);
}

}  // namespace dfr
