#include "data/io.hpp"

#include <cstdint>
#include <fstream>

#include "util/csv.hpp"

namespace dfr {
namespace {

constexpr char kMagic[4] = {'R', 'C', 'D', 'S'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  DFR_CHECK_MSG(static_cast<bool>(in), "unexpected end of dataset file");
}

}  // namespace

void save_dataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  DFR_CHECK_MSG(out.is_open(), "cannot open for writing: " + path);
  out.write(kMagic, 4);
  write_pod(out, kVersion);
  const auto name_len = static_cast<std::uint32_t>(dataset.name().size());
  write_pod(out, name_len);
  out.write(dataset.name().data(), name_len);
  write_pod(out, static_cast<std::int32_t>(dataset.num_classes()));
  write_pod(out, static_cast<std::uint64_t>(dataset.length()));
  write_pod(out, static_cast<std::uint64_t>(dataset.channels()));
  write_pod(out, static_cast<std::uint64_t>(dataset.size()));
  for (const auto& s : dataset.samples()) {
    write_pod(out, static_cast<std::int32_t>(s.label));
    out.write(reinterpret_cast<const char*>(s.series.data()),
              static_cast<std::streamsize>(s.series.size() * sizeof(double)));
  }
  DFR_CHECK_MSG(static_cast<bool>(out), "write failure: " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DFR_CHECK_MSG(in.is_open(), "cannot open for reading: " + path);
  char magic[4];
  in.read(magic, 4);
  DFR_CHECK_MSG(in && std::equal(magic, magic + 4, kMagic),
                "not an RCDS file: " + path);
  std::uint32_t version = 0;
  read_pod(in, version);
  DFR_CHECK_MSG(version == kVersion, "unsupported RCDS version");
  std::uint32_t name_len = 0;
  read_pod(in, name_len);
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  DFR_CHECK_MSG(static_cast<bool>(in), "unexpected end of dataset file");
  std::int32_t num_classes = 0;
  std::uint64_t length = 0, channels = 0, count = 0;
  read_pod(in, num_classes);
  read_pod(in, length);
  read_pod(in, channels);
  read_pod(in, count);
  DFR_CHECK_MSG(num_classes >= 2 && length > 0 && channels > 0,
                "malformed RCDS header");

  Dataset dataset(name, num_classes, length, channels);
  for (std::uint64_t i = 0; i < count; ++i) {
    Sample s;
    std::int32_t label = 0;
    read_pod(in, label);
    s.label = label;
    s.series.resize(length, channels);
    in.read(reinterpret_cast<char*>(s.series.data()),
            static_cast<std::streamsize>(s.series.size() * sizeof(double)));
    DFR_CHECK_MSG(static_cast<bool>(in), "truncated sample data");
    dataset.add(std::move(s));
  }
  return dataset;
}

void save_pair(const DatasetPair& pair, const std::string& prefix) {
  save_dataset(pair.train, prefix + ".train.rcds");
  save_dataset(pair.test, prefix + ".test.rcds");
}

DatasetPair load_pair(const std::string& prefix) {
  DatasetPair pair;
  pair.train = load_dataset(prefix + ".train.rcds");
  pair.test = load_dataset(prefix + ".test.rcds");
  return pair;
}

void export_csv(const Dataset& dataset, const std::string& path) {
  CsvWriter csv(path, {"sample", "label", "t", "channel", "value"});
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Sample& s = dataset[i];
    for (std::size_t t = 0; t < s.series.rows(); ++t) {
      for (std::size_t v = 0; v < s.series.cols(); ++v) {
        csv.add_row({std::to_string(i), std::to_string(s.label), std::to_string(t),
                     std::to_string(v), std::to_string(s.series(t, v))});
      }
    }
  }
}

}  // namespace dfr
