#include "data/preprocess.hpp"

#include <cmath>

namespace dfr {

ChannelStats compute_channel_stats(const Dataset& train, double epsilon) {
  DFR_CHECK(!train.empty());
  const std::size_t v_dim = train.channels();
  ChannelStats stats;
  stats.mean.assign(v_dim, 0.0);
  stats.scale.assign(v_dim, 1.0);

  Vector sum(v_dim, 0.0), sum_sq(v_dim, 0.0);
  std::size_t count = 0;
  for (const auto& s : train.samples()) {
    for (std::size_t t = 0; t < s.series.rows(); ++t) {
      for (std::size_t v = 0; v < v_dim; ++v) {
        const double x = s.series(t, v);
        sum[v] += x;
        sum_sq[v] += x * x;
      }
    }
    count += s.series.rows();
  }
  const auto n = static_cast<double>(count);
  for (std::size_t v = 0; v < v_dim; ++v) {
    stats.mean[v] = sum[v] / n;
    const double var = std::max(0.0, sum_sq[v] / n - stats.mean[v] * stats.mean[v]);
    stats.scale[v] = 1.0 / std::max(std::sqrt(var), epsilon);
  }
  return stats;
}

void apply_standardization(Dataset& dataset, const ChannelStats& stats) {
  DFR_CHECK(stats.mean.size() == dataset.channels());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    Matrix& m = dataset[i].series;
    for (std::size_t t = 0; t < m.rows(); ++t) {
      for (std::size_t v = 0; v < m.cols(); ++v) {
        m(t, v) = (m(t, v) - stats.mean[v]) * stats.scale[v];
      }
    }
  }
}

ChannelStats standardize_pair(DatasetPair& pair) {
  ChannelStats stats = compute_channel_stats(pair.train);
  apply_standardization(pair.train, stats);
  apply_standardization(pair.test, stats);
  return stats;
}

Dataset resample_length(const Dataset& dataset, std::size_t new_length) {
  DFR_CHECK(new_length >= 2);
  Dataset out(dataset.name(), dataset.num_classes(), new_length, dataset.channels());
  for (const auto& s : dataset.samples()) {
    Sample resampled;
    resampled.label = s.label;
    resampled.series.resize(new_length, dataset.channels());
    const std::size_t old_length = s.series.rows();
    for (std::size_t t = 0; t < new_length; ++t) {
      // Map new index into the old [0, T-1] axis.
      const double pos = static_cast<double>(t) *
                         static_cast<double>(old_length - 1) /
                         static_cast<double>(new_length - 1);
      const auto lo = static_cast<std::size_t>(pos);
      const std::size_t hi = std::min(lo + 1, old_length - 1);
      const double frac = pos - static_cast<double>(lo);
      for (std::size_t v = 0; v < dataset.channels(); ++v) {
        resampled.series(t, v) =
            (1.0 - frac) * s.series(lo, v) + frac * s.series(hi, v);
      }
    }
    out.add(std::move(resampled));
  }
  return out;
}

}  // namespace dfr
