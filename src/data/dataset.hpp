#pragma once
// Multivariate time-series classification dataset container.
//
// A sample is a T x V matrix (T time steps, V channels) plus an integer class
// label in [0, num_classes). Samples within one dataset share T and V — the
// paper (following Bianchi et al.) resamples variable-length series to a
// common length before feeding the reservoir.

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace dfr {

struct Sample {
  Matrix series;   // T x V
  int label = 0;   // class index in [0, num_classes)
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, int num_classes, std::size_t length,
          std::size_t channels)
      : name_(std::move(name)),
        num_classes_(num_classes),
        length_(length),
        channels_(channels) {}

  /// Append a sample; shape and label range are validated.
  void add(Sample sample);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t length() const noexcept { return length_; }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] const Sample& operator[](std::size_t i) const {
    DFR_CHECK(i < samples_.size());
    return samples_[i];
  }
  [[nodiscard]] Sample& operator[](std::size_t i) {
    DFR_CHECK(i < samples_.size());
    return samples_[i];
  }

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// Per-class sample counts.
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Subset by indices (copies).
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Keep at most `max_samples`, preserving class balance as far as possible
  /// (round-robin over classes in original order). Used by the reduced-scale
  /// bench mode.
  [[nodiscard]] Dataset capped(std::size_t max_samples) const;

  /// Split into (first, second) with `first_fraction` of samples in the first
  /// part, stratified by class. Deterministic given the rng.
  [[nodiscard]] std::pair<Dataset, Dataset> stratified_split(
      double first_fraction, class Rng& rng) const;

 private:
  std::string name_;
  int num_classes_ = 0;
  std::size_t length_ = 0;
  std::size_t channels_ = 0;
  std::vector<Sample> samples_;
};

/// Train/test pair as distributed by Bianchi et al.'s npz archives.
struct DatasetPair {
  Dataset train;
  Dataset test;
};

}  // namespace dfr
