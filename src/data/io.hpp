#pragma once
// Binary dataset serialization (.rcds) and CSV export.
//
// Format (little-endian, fixed-width):
//   magic "RCDS" | u32 version | u32 name_len | name bytes
//   i32 num_classes | u64 length | u64 channels | u64 num_samples
//   per sample: i32 label | length*channels f64 (row-major)
// The format exists so generated benchmarks are cacheable and so users can
// feed their own recorded data to the examples without npz tooling.

#include <string>

#include "data/dataset.hpp"

namespace dfr {

/// Serialize to `path`. Throws CheckError on I/O failure.
void save_dataset(const Dataset& dataset, const std::string& path);

/// Deserialize from `path`. Throws CheckError on malformed input.
Dataset load_dataset(const std::string& path);

/// Save train+test as `<prefix>.train.rcds` / `<prefix>.test.rcds`.
void save_pair(const DatasetPair& pair, const std::string& prefix);

/// Load a pair saved by save_pair.
DatasetPair load_pair(const std::string& prefix);

/// Long-format CSV export: sample,label,t,channel,value (for plotting).
void export_csv(const Dataset& dataset, const std::string& path);

}  // namespace dfr
