#pragma once
// Dataset preprocessing: per-channel standardization (train statistics applied
// to both splits, as in Bianchi et al.) and simple length resampling.

#include "data/dataset.hpp"

namespace dfr {

/// Per-channel affine normalization parameters.
struct ChannelStats {
  Vector mean;   // size V
  Vector scale;  // size V; 1/std (std floored at epsilon)
};

/// Compute per-channel mean/std over all samples and time steps of `train`.
ChannelStats compute_channel_stats(const Dataset& train, double epsilon = 1e-12);

/// Apply x <- (x - mean) * scale in place.
void apply_standardization(Dataset& dataset, const ChannelStats& stats);

/// Standardize train and test using train statistics. Returns the stats used.
ChannelStats standardize_pair(DatasetPair& pair);

/// Linear-interpolation resampling of every sample to `new_length` steps.
Dataset resample_length(const Dataset& dataset, std::size_t new_length);

}  // namespace dfr
