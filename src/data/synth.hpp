#pragma once
// Synthetic multivariate time-series generator.
//
// Substitutes for the Bianchi et al. npz archives (see specs.hpp). Each class
// is a multi-harmonic "signature" per channel; samples are the signature with
// per-sample phase jitter, amplitude jitter, mild time warp, and additive
// AR(1) noise whose scale is the spec's `difficulty`. This produces tasks
// where the discriminative information lives in the temporal structure — the
// regime a reservoir is designed for — with tunable achievable accuracy.

#include <cstdint>

#include "data/dataset.hpp"
#include "data/specs.hpp"

namespace dfr {

struct SynthConfig {
  std::uint64_t seed = 42;      // master seed; dataset id is mixed in
  int harmonics = 3;            // sine components per (class, channel)
  double min_freq = 1.0;        // cycles per series
  double max_freq = 8.0;
  double phase_jitter = 0.35;   // radians, per sample
  double amp_jitter = 0.15;     // relative, per sample
  double warp_jitter = 0.06;    // relative time-axis stretch, per sample
  double ar_coefficient = 0.7;  // AR(1) noise memory
};

/// Generate the train/test pair for one dataset spec.
/// Deterministic in (config.seed, spec.id); train and test are drawn from the
/// same class-conditional distribution with disjoint sample streams.
DatasetPair generate_synthetic(const DatasetSpec& spec,
                               const SynthConfig& config = {});

/// Convenience: a small ad-hoc task for tests/examples (classes, channels,
/// length, samples per class per split).
DatasetPair generate_toy_task(int num_classes, std::size_t channels,
                              std::size_t length, std::size_t train_per_class,
                              std::size_t test_per_class, double difficulty,
                              std::uint64_t seed);

}  // namespace dfr
