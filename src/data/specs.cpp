#include "data/specs.hpp"

namespace dfr {

const std::vector<DatasetSpec>& evaluation_specs() {
  // (T, Ny) recovered exactly from paper Table 2 at Nx = 30:
  //   naive      = (T+1)*Nx + Nx*(Nx+1) + Ny*(Nx*(Nx+1)+1)
  //   simplified =     2*Nx + Nx*(Nx+1) + Ny*(Nx*(Nx+1)+1)
  // (V, train/test sizes) from Bianchi et al. 2020, Table 1.
  // `difficulty` scales the synthetic generator's noise so the achievable
  // accuracy lands near the paper's band (1.0 = hardest we use).
  // difficulty (noise scale) and overlap (shared-signature fraction) are
  // calibrated per dataset so that (a) the proposed method's accuracy lands
  // near the paper's "bp acc" column and (b) the grid-escalation depth is in
  // the paper's regime (coarse-grid-suffices datasets vs fine-grid datasets).
  // Generator family follows the paper's Table-1 regimes: datasets whose
  // grid search succeeded at 1 division (CMU, KICK, NET, WALK) are harmonic
  // (accuracy insensitive to (A, B)); datasets that needed fine grids are
  // event-order tasks, where only reservoir memory separates classes.
  // All twelve use the harmonic generator; `overlap` is what tilts the
  // (A, B) landscape (small-A reservoirs cannot separate classes whose
  // signatures mostly share a background signature). The event-order
  // generator (TaskKind::kEventOrder) is kept as a library extension — pure
  // order tasks turn out to exceed the memory a 30-node identity-f DFR can
  // deliver inside the paper's (A, B) box, so they are not used for the
  // Table-1 reproduction (see DESIGN.md).
  static const std::vector<DatasetSpec> specs = {
      //  id      V     T    Ny  train  test   bp-acc  difficulty  overlap
      {"ARAB", 13, 92, 10, 6600, 2200, 0.981, 0.85, 0.40},
      {"AUS", 22, 135, 95, 1140, 1425, 0.954, 0.75, 0.60},
      {"CHAR", 3, 204, 20, 300, 2558, 0.918, 0.45, 0.60},
      {"CMU", 62, 579, 2, 29, 29, 0.931, 5.00, 0.00},
      {"ECG", 2, 151, 2, 100, 100, 0.850, 1.00, 0.70},
      {"JPVOW", 12, 28, 9, 270, 370, 0.978, 0.60, 0.55},
      {"KICK", 62, 840, 2, 16, 10, 0.800, 4.50, 0.20},
      {"LIB", 2, 44, 15, 180, 180, 0.806, 0.45, 0.60},
      {"NET", 4, 993, 13, 803, 534, 0.783, 1.70, 0.00},
      {"UWAV", 3, 314, 8, 200, 427, 0.850, 0.85, 0.60},
      {"WAF", 6, 197, 2, 298, 896, 0.983, 1.20, 0.30},
      {"WALK", 62, 1917, 2, 28, 16, 1.000, 0.25, 0.00},
  };
  return specs;
}

std::optional<DatasetSpec> find_spec(const std::string& id) {
  for (const auto& spec : evaluation_specs()) {
    if (spec.id == id) return spec;
  }
  return std::nullopt;
}

}  // namespace dfr
