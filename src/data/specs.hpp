#pragma once
// Shape specifications of the 12 evaluation datasets.
//
// The paper evaluates on the multivariate time-series classification archives
// of Bianchi et al. (npz files), which are not redistributable here. Their
// *shapes* are recoverable exactly: (T, Ny) per dataset from the paper's own
// Table 2 stored-value counts at Nx = 30, and (V, train/test sizes) from
// Bianchi et al.'s dataset table. The synthetic generator (synth.hpp)
// manufactures class-separable data with these exact shapes; every code path
// the paper measures (mask width, reservoir length, DPRR size, ridge
// dimensions, memory accounting) depends only on the shapes.

#include <optional>
#include <string>
#include <vector>

namespace dfr {

/// Generator family for a dataset.
///
/// kHarmonic: classes are distinct multi-sine signatures; discriminative
///   information is present in instantaneous/lag-1 statistics, so accuracy is
///   largely insensitive to (A, B) — the regime where the paper's grid search
///   succeeds at 1 division (CMU, KICK, NET, WALK).
/// kEventOrder: classes are *permutations of the same burst prototypes* —
///   marginal statistics are class-independent and only temporal integration
///   (reservoir memory, i.e. well-tuned (A, B)) separates them. This models
///   the gesture/speech/waveform datasets where the paper's grid search
///   needed many divisions.
enum class TaskKind { kHarmonic, kEventOrder };

struct DatasetSpec {
  std::string id;            // paper's abbreviation, e.g. "ARAB"
  std::size_t channels;      // V
  std::size_t length;        // T (time steps fed to the reservoir)
  int num_classes;           // Ny
  std::size_t train_size;    // samples in the train split
  std::size_t test_size;     // samples in the test split
  double paper_bp_accuracy;  // Table 1 "bp acc" column (reference only)
  double difficulty;         // synthetic noise scale; calibrated per dataset
  double overlap = 0.0;      // fraction of the class signature shared across
                             // classes (0 = fully distinct, ->1 = identical);
                             // raises task hardness without more noise
  TaskKind kind = TaskKind::kHarmonic;
};

/// All 12 specs in the paper's (alphabetical) order.
const std::vector<DatasetSpec>& evaluation_specs();

/// Lookup by id (case-sensitive). nullopt if unknown.
std::optional<DatasetSpec> find_spec(const std::string& id);

}  // namespace dfr
