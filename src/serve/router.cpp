#include "serve/router.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <ostream>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dfr::serve {

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {
/// 64-bit avalanche finalizer (MurmurHash3 fmix64) applied on top of
/// FNV-1a for every ring position. Raw FNV barely diffuses a short suffix
/// into the high bits, so common-prefix inputs — "alpha#0".."alpha#63" —
/// cluster into ONE tight arc per shard and the "vnodes" stop spreading
/// load at all (a 3-shard ring degenerated to 2 effective owners in the
/// placement test). The finalizer spreads every input over the whole ring.
std::uint64_t ring_mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

std::uint64_t ring_hash(std::string_view text) noexcept {
  return ring_mix(fnv1a64(text));
}
}  // namespace

/// One shard: identity, address, live flag, and its connection pool. The
/// struct outlives its ring points (shared_ptr), so an infer() that
/// snapshotted a replica group keeps valid shards across a concurrent
/// remove_shard; a removed shard's `live` flag stops new pool checkouts.
struct Router::Shard {
  std::string name;
  wire::Endpoint endpoint;
  bool live = true;  // guarded by router mutex_ (placement-side state)

  std::mutex pool_mutex;
  std::vector<int> idle_fds;       // pooled connections, LIFO
  ShardCounters counters;          // guarded by pool_mutex

  /// Requests this router currently has outstanding on this shard. Folded
  /// into the p2c score so a burst routed between two health polls is
  /// visible immediately instead of only after the next sample.
  std::atomic<std::uint32_t> inflight{0};

  // Last cached health sample (guarded by pool_mutex). `health_when` is
  // default-constructed (epoch) until the first sample, which reads as
  // maximally stale — p2c correctly distrusts a never-probed shard.
  wire::HealthInfo last_health;
  std::chrono::steady_clock::time_point health_when{};
  bool health_valid = false;

  ~Shard() {
    for (const int fd : idle_fds) ::close(fd);
  }

  /// Pop a pooled connection or dial a fresh one (throws WireIoError).
  [[nodiscard]] int acquire() {
    {
      std::lock_guard<std::mutex> lock(pool_mutex);
      if (!idle_fds.empty()) {
        const int fd = idle_fds.back();
        idle_fds.pop_back();
        return fd;
      }
    }
    return wire::connect_endpoint(endpoint);
  }

  void release(int fd, std::size_t pool_capacity) {
    std::lock_guard<std::mutex> lock(pool_mutex);
    if (idle_fds.size() < pool_capacity) {
      idle_fds.push_back(fd);
      return;
    }
    ::close(fd);
  }

  void close_pool() {
    std::lock_guard<std::mutex> lock(pool_mutex);
    for (const int fd : idle_fds) ::close(fd);
    idle_fds.clear();
  }
};

Router::Router(RouterConfig config) : config_(config) {
  DFR_CHECK_MSG(config_.replicas >= 1, "router: replicas must be >= 1");
  DFR_CHECK_MSG(config_.vnodes >= 1, "router: vnodes must be >= 1");
  if (config_.health_poll_ms > 0) {
    poll_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(poll_mutex_);
      while (!poll_stop_) {
        lock.unlock();
        poll_health_once();
        lock.lock();
        poll_cv_.wait_for(lock,
                          std::chrono::milliseconds(config_.health_poll_ms),
                          [this] { return poll_stop_; });
      }
    });
  }
}

Router::~Router() {
  {
    std::lock_guard<std::mutex> lock(poll_mutex_);
    poll_stop_ = true;
  }
  poll_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
}

void Router::add_shard(std::string name, const wire::Endpoint& endpoint) {
  DFR_CHECK_MSG(!name.empty(), "router: shard name must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& shard : shards_) {
    if (shard->name == name) {
      // Re-add (e.g. after drain): same ring points, fresh address.
      shard->endpoint = endpoint;
      shard->live = true;
      rebuild_ring_locked();
      return;
    }
  }
  auto shard = std::make_shared<Shard>();
  shard->name = std::move(name);
  shard->endpoint = endpoint;
  shards_.push_back(std::move(shard));
  rebuild_ring_locked();
}

void Router::remove_shard(std::string_view name) {
  std::shared_ptr<Shard> removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& shard : shards_) {
      if (shard->name == name && shard->live) {
        shard->live = false;
        removed = shard;
        break;
      }
    }
    if (removed) rebuild_ring_locked();
  }
  if (removed) removed->close_pool();
}

void Router::drain_shard(std::string_view name) {
  const std::shared_ptr<Shard> shard = find_shard(name);
  DFR_CHECK_MSG(shard != nullptr, "router: unknown shard name");
  // Out of placement first: requests racing the drain retry onto the
  // remaining replicas instead of piling typed kShutdown rejections.
  remove_shard(name);

  const int fd = wire::connect_endpoint(shard->endpoint);
  try {
    std::vector<std::byte> frame;
    wire::encode_drain_request(next_seq_.fetch_add(1), frame);
    wire::write_frame(fd, frame);
    std::vector<std::byte> reply;
    if (!wire::read_frame(fd, reply)) {
      throw wire::WireIoError("router: shard closed before the drain ack");
    }
    const wire::FrameHeader header = wire::decode_header(reply);
    DFR_CHECK_MSG(header.type == static_cast<std::uint16_t>(
                                     wire::MessageType::kDrainResponse),
                  "router: drain answered with the wrong frame type");
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void Router::rebuild_ring_locked() {
  ring_.clear();
  for (const auto& shard : shards_) {
    if (!shard->live) continue;
    for (std::size_t v = 0; v < config_.vnodes; ++v) {
      ring_.push_back(RingPoint{
          ring_hash(shard->name + "#" + std::to_string(v)), shard.get()});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              // Name tie-break keeps placement deterministic even on a
              // (vanishingly unlikely) 64-bit hash collision.
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.shard->name < b.shard->name;
            });
}

std::shared_ptr<Router::Shard> Router::find_shard(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    if (shard->name == name) return shard;
  }
  return nullptr;
}

std::vector<std::shared_ptr<Router::Shard>> Router::replicas_for(
    std::string_view model_id) const {
  std::vector<std::shared_ptr<Shard>> group;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return group;
  const std::uint64_t key = ring_hash(model_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const RingPoint& point, std::uint64_t k) { return point.hash < k; });
  // Walk clockwise collecting distinct shards; the ring has at most
  // live-shards * vnodes points, so one full lap terminates.
  for (std::size_t step = 0;
       step < ring_.size() && group.size() < config_.replicas; ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    Shard* candidate = it->shard;
    const bool seen =
        std::any_of(group.begin(), group.end(),
                    [&](const auto& s) { return s.get() == candidate; });
    if (seen) continue;
    for (const auto& owned : shards_) {
      if (owned.get() == candidate) {
        group.push_back(owned);
        break;
      }
    }
  }
  return group;
}

std::vector<std::string> Router::placement(std::string_view model_id) const {
  std::vector<std::string> names;
  for (const auto& shard : replicas_for(model_id)) names.push_back(shard->name);
  return names;
}

bool Router::try_shard(Shard& shard, std::span<const std::byte> frame,
                       std::uint64_t seq, wire::WireResponse& response) {
  {
    std::lock_guard<std::mutex> lock(shard.pool_mutex);
    ++shard.counters.requests;
  }
  int fd = -1;
  try {
    fd = shard.acquire();
    wire::write_frame(fd, frame);
    std::vector<std::byte> reply;
    if (!wire::read_frame(fd, reply)) {
      throw wire::WireIoError("router: shard closed before responding");
    }
    response = wire::decode_response(reply);
    if (response.seq != seq) {
      // A desynced connection can misattribute responses; drop it and treat
      // the attempt as an I/O failure (safe to retry — nothing trustworthy
      // came back).
      throw wire::WireIoError("router: response seq mismatch");
    }
    shard.release(fd, config_.pool_capacity);
    return true;
  } catch (const wire::WireIoError& e) {
    if (fd >= 0) ::close(fd);
    std::lock_guard<std::mutex> lock(shard.pool_mutex);
    ++shard.counters.io_failures;
    log_debug("router: ", shard.name, ": ", e.what());
    return false;
  } catch (const CheckError& e) {
    // Malformed response frame: the connection is poisoned, but the shard
    // DID answer — still retryable on another replica for the same reason
    // as a seq mismatch (no authoritative response reached us).
    if (fd >= 0) ::close(fd);
    std::lock_guard<std::mutex> lock(shard.pool_mutex);
    ++shard.counters.io_failures;
    log_warn("router: ", shard.name, " sent a malformed frame: ", e.what());
    return false;
  }
}

void Router::order_replicas(
    std::vector<std::shared_ptr<Shard>>& group) const {
  const auto now = std::chrono::steady_clock::now();
  const auto staleness =
      std::chrono::microseconds(config_.health_staleness_us);
  double score[2];
  bool fresh = true;
  for (std::size_t i = 0; i < 2; ++i) {
    Shard& shard = *group[i];
    std::uint32_t queue_depth = 0;
    double ewma_us = 0.0;
    {
      std::lock_guard<std::mutex> lock(shard.pool_mutex);
      if (!shard.health_valid || now - shard.health_when > staleness) {
        fresh = false;
        break;
      }
      queue_depth = shard.last_health.queue_depth;
      ewma_us = shard.last_health.ewma_service_us;
    }
    // Planned wait ~ (queued + our own outstanding) x per-request cost. The
    // EWMA floor keeps a never-exercised shard comparable instead of
    // scoring a free 0 forever.
    const double load = static_cast<double>(queue_depth) +
                        static_cast<double>(
                            shard.inflight.load(std::memory_order_relaxed));
    score[i] = load * std::max(ewma_us, 1.0);
  }
  if (!fresh) {
    std::lock_guard<std::mutex> lock(group[0]->pool_mutex);
    ++group[0]->counters.p2c_stale;
    return;
  }
  if (score[1] < score[0]) {
    std::swap(group[0], group[1]);
    std::lock_guard<std::mutex> lock(group[0]->pool_mutex);
    ++group[0]->counters.p2c_alternate;
  } else {
    std::lock_guard<std::mutex> lock(group[0]->pool_mutex);
    ++group[0]->counters.p2c_primary;
  }
}

wire::WireResponse Router::infer(std::string_view model_id,
                                 const Matrix& series,
                                 RequestOptions options) {
  const std::uint64_t seq = next_seq_.fetch_add(1);
  wire::WireRequest request;
  request.seq = seq;
  request.model_id = std::string(model_id);
  request.options = options;
  std::vector<std::byte> frame;
  wire::encode_request(request, series, frame);

  std::vector<std::shared_ptr<Shard>> group = replicas_for(model_id);
  if (config_.load_aware && group.size() >= 2) order_replicas(group);

  wire::WireResponse response;
  for (const auto& shard : group) {
    shard->inflight.fetch_add(1, std::memory_order_relaxed);
    const bool delivered = try_shard(*shard, frame, seq, response);
    shard->inflight.fetch_sub(1, std::memory_order_relaxed);
    if (!delivered) {
      std::lock_guard<std::mutex> lock(shard->pool_mutex);
      ++shard->counters.retried;
      continue;
    }
    if (response.status == wire::WireStatus::kShutdown) {
      // Typed rejection from a draining shard: not executed, safe to move
      // to the next replica.
      std::lock_guard<std::mutex> lock(shard->pool_mutex);
      ++shard->counters.retried;
      continue;
    }
    std::lock_guard<std::mutex> lock(shard->pool_mutex);
    if (response.status == wire::WireStatus::kOk) {
      ++shard->counters.ok;
    } else {
      ++shard->counters.rejected;
    }
    return response;
  }
  response = wire::WireResponse{};
  response.seq = seq;
  response.status = wire::WireStatus::kUnavailable;
  return response;
}

wire::HealthInfo Router::health(std::string_view name) {
  const std::shared_ptr<Shard> shard = find_shard(name);
  DFR_CHECK_MSG(shard != nullptr, "router: unknown shard name");
  const int fd = wire::connect_endpoint(shard->endpoint);
  try {
    std::vector<std::byte> frame;
    wire::encode_health_request(next_seq_.fetch_add(1), frame);
    wire::write_frame(fd, frame);
    std::vector<std::byte> reply;
    if (!wire::read_frame(fd, reply)) {
      throw wire::WireIoError("router: shard closed before the health reply");
    }
    const wire::HealthInfo info = wire::decode_health_response(reply);
    ::close(fd);
    return info;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

std::vector<std::string> Router::shard_names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    if (shard->live) names.push_back(shard->name);
  }
  return names;
}

ShardCounters Router::counters(std::string_view name) const {
  const std::shared_ptr<Shard> shard = find_shard(name);
  DFR_CHECK_MSG(shard != nullptr, "router: unknown shard name");
  std::lock_guard<std::mutex> lock(shard->pool_mutex);
  return shard->counters;
}

void Router::note_health(std::string_view name, const wire::HealthInfo& info) {
  const std::shared_ptr<Shard> shard = find_shard(name);
  if (!shard) return;
  std::lock_guard<std::mutex> lock(shard->pool_mutex);
  shard->last_health = info;
  shard->health_when = std::chrono::steady_clock::now();
  shard->health_valid = true;
}

void Router::poll_health_once() {
  // Snapshot live shards, then probe without the router lock held: a slow
  // or dead shard must not stall placement changes or other probes' caches.
  std::vector<std::shared_ptr<Shard>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      if (shard->live) live.push_back(shard);
    }
  }
  for (const auto& shard : live) {
    int fd = -1;
    try {
      fd = wire::connect_endpoint(shard->endpoint);
      std::vector<std::byte> frame;
      wire::encode_health_request(next_seq_.fetch_add(1), frame);
      wire::write_frame(fd, frame);
      std::vector<std::byte> reply;
      if (!wire::read_frame(fd, reply)) {
        throw wire::WireIoError("router: shard closed before the health reply");
      }
      const wire::HealthInfo info = wire::decode_health_response(reply);
      ::close(fd);
      fd = -1;
      std::lock_guard<std::mutex> lock(shard->pool_mutex);
      shard->last_health = info;
      shard->health_when = std::chrono::steady_clock::now();
      shard->health_valid = true;
      ++shard->counters.health_probes;
    } catch (const std::exception&) {
      // Unreachable or malformed: keep (and age out) the previous sample
      // rather than inventing one; staleness handles the rest.
      if (fd >= 0) ::close(fd);
      std::lock_guard<std::mutex> lock(shard->pool_mutex);
      ++shard->counters.health_failures;
    }
  }
}

void Router::export_stats(std::ostream& os) const {
  std::vector<std::shared_ptr<Shard>> snapshot;
  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = shards_;
    for (const auto& shard : snapshot) live += shard->live ? 1 : 0;
  }
  os << "dfr_router_shards_live " << live << '\n';
  for (const auto& shard : snapshot) {
    const std::string label = "{shard=\"" + shard->name + "\"}";
    std::lock_guard<std::mutex> lock(shard->pool_mutex);
    const ShardCounters& c = shard->counters;
    os << "dfr_router_requests_total" << label << ' ' << c.requests << '\n';
    os << "dfr_router_ok_total" << label << ' ' << c.ok << '\n';
    os << "dfr_router_rejected_total" << label << ' ' << c.rejected << '\n';
    os << "dfr_router_retried_total" << label << ' ' << c.retried << '\n';
    os << "dfr_router_io_failures_total" << label << ' ' << c.io_failures
       << '\n';
    os << "dfr_router_p2c_primary_total" << label << ' ' << c.p2c_primary
       << '\n';
    os << "dfr_router_p2c_alternate_total" << label << ' ' << c.p2c_alternate
       << '\n';
    os << "dfr_router_p2c_stale_total" << label << ' ' << c.p2c_stale << '\n';
    os << "dfr_router_health_probes_total" << label << ' ' << c.health_probes
       << '\n';
    os << "dfr_router_health_failures_total" << label << ' '
       << c.health_failures << '\n';
    if (shard->health_valid) {
      os << "dfr_router_shard_queue_depth" << label << ' '
         << shard->last_health.queue_depth << '\n';
      os << "dfr_router_shard_ewma_service_us" << label << ' '
         << shard->last_health.ewma_service_us << '\n';
    }
  }
}

}  // namespace dfr::serve
