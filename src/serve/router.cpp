#include "serve/router.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <ostream>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dfr::serve {

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {
/// 64-bit avalanche finalizer (MurmurHash3 fmix64) applied on top of
/// FNV-1a for every ring position. Raw FNV barely diffuses a short suffix
/// into the high bits, so common-prefix inputs — "alpha#0".."alpha#63" —
/// cluster into ONE tight arc per shard and the "vnodes" stop spreading
/// load at all (a 3-shard ring degenerated to 2 effective owners in the
/// placement test). The finalizer spreads every input over the whole ring.
std::uint64_t ring_mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

std::uint64_t ring_hash(std::string_view text) noexcept {
  return ring_mix(fnv1a64(text));
}
}  // namespace

/// One shard: identity, address, live flag, and its connection pool. The
/// struct outlives its ring points (shared_ptr), so an infer() that
/// snapshotted a replica group keeps valid shards across a concurrent
/// remove_shard; a removed shard's `live` flag stops new pool checkouts.
struct Router::Shard {
  std::string name;
  wire::Endpoint endpoint;
  bool live = true;  // guarded by router mutex_ (placement-side state)

  std::mutex pool_mutex;
  std::vector<int> idle_fds;       // pooled connections, LIFO
  ShardCounters counters;          // guarded by pool_mutex

  // Circuit breaker (guarded by pool_mutex). `consecutive_failures` counts
  // transport failures with no intervening success; crossing the configured
  // threshold opens the breaker.
  BreakerState breaker = BreakerState::kClosed;
  std::uint32_t consecutive_failures = 0;

  /// Requests this router currently has outstanding on this shard. Folded
  /// into the p2c score so a burst routed between two health polls is
  /// visible immediately instead of only after the next sample.
  std::atomic<std::uint32_t> inflight{0};

  // Last cached health sample (guarded by pool_mutex). `health_when` is
  // default-constructed (epoch) until the first sample, which reads as
  // maximally stale — p2c correctly distrusts a never-probed shard.
  wire::HealthInfo last_health;
  std::chrono::steady_clock::time_point health_when{};
  bool health_valid = false;

  ~Shard() {
    for (const int fd : idle_fds) ::close(fd);
  }

  /// Pop a pooled connection or dial a fresh one within `deadline` (throws
  /// WireIoError — Kind::kTimeout when the dial ran out of budget).
  [[nodiscard]] int acquire(wire::Deadline deadline) {
    {
      std::lock_guard<std::mutex> lock(pool_mutex);
      if (!idle_fds.empty()) {
        const int fd = idle_fds.back();
        idle_fds.pop_back();
        return fd;
      }
    }
    return wire::connect_endpoint(endpoint, deadline);
  }

  void release(int fd, std::size_t pool_capacity) {
    std::lock_guard<std::mutex> lock(pool_mutex);
    if (idle_fds.size() < pool_capacity) {
      idle_fds.push_back(fd);
      return;
    }
    ::close(fd);
  }

  void close_pool() {
    std::lock_guard<std::mutex> lock(pool_mutex);
    for (const int fd : idle_fds) ::close(fd);
    idle_fds.clear();
  }
};

Router::Router(RouterConfig config) : config_(config) {
  DFR_CHECK_MSG(config_.replicas >= 1, "router: replicas must be >= 1");
  DFR_CHECK_MSG(config_.vnodes >= 1, "router: vnodes must be >= 1");
  if (config_.health_poll_ms > 0) {
    poll_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(poll_mutex_);
      while (!poll_stop_) {
        lock.unlock();
        poll_health_once();
        lock.lock();
        poll_cv_.wait_for(lock,
                          std::chrono::milliseconds(config_.health_poll_ms),
                          [this] { return poll_stop_; });
      }
    });
  }
}

Router::~Router() {
  {
    std::lock_guard<std::mutex> lock(poll_mutex_);
    poll_stop_ = true;
  }
  poll_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
}

void Router::add_shard(std::string name, const wire::Endpoint& endpoint) {
  DFR_CHECK_MSG(!name.empty(), "router: shard name must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& shard : shards_) {
    if (shard->name == name) {
      // Re-add (e.g. after drain): same ring points, fresh address.
      shard->endpoint = endpoint;
      shard->live = true;
      rebuild_ring_locked();
      return;
    }
  }
  auto shard = std::make_shared<Shard>();
  shard->name = std::move(name);
  shard->endpoint = endpoint;
  shards_.push_back(std::move(shard));
  rebuild_ring_locked();
}

void Router::remove_shard(std::string_view name) {
  std::shared_ptr<Shard> removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& shard : shards_) {
      if (shard->name == name && shard->live) {
        shard->live = false;
        removed = shard;
        break;
      }
    }
    if (removed) rebuild_ring_locked();
  }
  if (removed) removed->close_pool();
}

void Router::drain_shard(std::string_view name) {
  const std::shared_ptr<Shard> shard = find_shard(name);
  DFR_CHECK_MSG(shard != nullptr, "router: unknown shard name");
  // Out of placement first: requests racing the drain retry onto the
  // remaining replicas instead of piling typed kShutdown rejections.
  remove_shard(name);

  const int fd = wire::connect_endpoint(shard->endpoint);
  try {
    std::vector<std::byte> frame;
    wire::encode_drain_request(next_seq_.fetch_add(1), frame);
    wire::write_frame(fd, frame);
    std::vector<std::byte> reply;
    if (!wire::read_frame(fd, reply)) {
      throw wire::WireIoError("router: shard closed before the drain ack");
    }
    const wire::FrameHeader header = wire::decode_header(reply);
    DFR_CHECK_MSG(header.type == static_cast<std::uint16_t>(
                                     wire::MessageType::kDrainResponse),
                  "router: drain answered with the wrong frame type");
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void Router::rebuild_ring_locked() {
  ring_.clear();
  for (const auto& shard : shards_) {
    if (!shard->live) continue;
    for (std::size_t v = 0; v < config_.vnodes; ++v) {
      ring_.push_back(RingPoint{
          ring_hash(shard->name + "#" + std::to_string(v)), shard.get()});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              // Name tie-break keeps placement deterministic even on a
              // (vanishingly unlikely) 64-bit hash collision.
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.shard->name < b.shard->name;
            });
}

std::shared_ptr<Router::Shard> Router::find_shard(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    if (shard->name == name) return shard;
  }
  return nullptr;
}

std::vector<std::shared_ptr<Router::Shard>> Router::replicas_for(
    std::string_view model_id) const {
  std::vector<std::shared_ptr<Shard>> group;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return group;
  const std::uint64_t key = ring_hash(model_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const RingPoint& point, std::uint64_t k) { return point.hash < k; });
  // Walk clockwise collecting distinct shards; the ring has at most
  // live-shards * vnodes points, so one full lap terminates.
  for (std::size_t step = 0;
       step < ring_.size() && group.size() < config_.replicas; ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    Shard* candidate = it->shard;
    const bool seen =
        std::any_of(group.begin(), group.end(),
                    [&](const auto& s) { return s.get() == candidate; });
    if (seen) continue;
    for (const auto& owned : shards_) {
      if (owned.get() == candidate) {
        group.push_back(owned);
        break;
      }
    }
  }
  return group;
}

std::vector<std::string> Router::placement(std::string_view model_id) const {
  std::vector<std::string> names;
  for (const auto& shard : replicas_for(model_id)) names.push_back(shard->name);
  return names;
}

bool Router::try_shard(Shard& shard, std::span<const std::byte> frame,
                       std::uint64_t seq, wire::WireResponse& response,
                       wire::Deadline deadline) {
  {
    std::lock_guard<std::mutex> lock(shard.pool_mutex);
    ++shard.counters.requests;
  }
  // Breaker advance on one transport failure: call with pool_mutex held.
  // A half-open trial that fails re-opens immediately (one bad probe must
  // not readmit a dead shard), a closed breaker opens once the consecutive
  // run crosses the threshold.
  const auto breaker_failure_locked = [&](bool timed_out) {
    ++shard.counters.io_failures;
    if (timed_out) ++shard.counters.timeouts;
    if (config_.breaker_threshold == 0) return;
    ++shard.consecutive_failures;
    const bool trip =
        shard.breaker == BreakerState::kHalfOpen ||
        (shard.breaker == BreakerState::kClosed &&
         shard.consecutive_failures >= config_.breaker_threshold);
    if (trip && shard.breaker != BreakerState::kOpen) {
      shard.breaker = BreakerState::kOpen;
      ++shard.counters.breaker_trips;
      log_warn("router: breaker OPEN on ", shard.name, " after ",
               shard.consecutive_failures, " consecutive failure(s)");
    }
  };
  int fd = -1;
  try {
    fd = shard.acquire(deadline);
    wire::write_frame(fd, frame, deadline);
    std::vector<std::byte> reply;
    if (!wire::read_frame(fd, reply, deadline)) {
      throw wire::WireIoError("router: shard closed before responding",
                              wire::WireIoError::Kind::kEof);
    }
    response = wire::decode_response(reply);
    if (response.seq != seq) {
      // A desynced connection can misattribute responses; drop it and treat
      // the attempt as an I/O failure (safe to retry — nothing trustworthy
      // came back).
      throw wire::WireIoError("router: response seq mismatch");
    }
    shard.release(fd, config_.pool_capacity);
    // ANY decoded authoritative response — including kShutdown from a
    // draining shard — proves the transport works: reset the breaker.
    std::lock_guard<std::mutex> lock(shard.pool_mutex);
    shard.consecutive_failures = 0;
    shard.breaker = BreakerState::kClosed;
    return true;
  } catch (const wire::WireIoError& e) {
    if (fd >= 0) ::close(fd);
    std::lock_guard<std::mutex> lock(shard.pool_mutex);
    breaker_failure_locked(e.kind() == wire::WireIoError::Kind::kTimeout);
    log_debug("router: ", shard.name, ": ", e.what());
    return false;
  } catch (const CheckError& e) {
    // Malformed response frame: the connection is poisoned, but the shard
    // DID answer — still retryable on another replica for the same reason
    // as a seq mismatch (no authoritative response reached us).
    if (fd >= 0) ::close(fd);
    std::lock_guard<std::mutex> lock(shard.pool_mutex);
    breaker_failure_locked(/*timed_out=*/false);
    log_warn("router: ", shard.name, " sent a malformed frame: ", e.what());
    return false;
  }
}

bool Router::breaker_allows(Shard& shard) const {
  if (config_.breaker_threshold == 0) return true;
  std::lock_guard<std::mutex> lock(shard.pool_mutex);
  if (shard.breaker != BreakerState::kOpen) return true;
  ++shard.counters.breaker_fastfails;
  return false;
}

wire::Deadline Router::attempt_deadline(bool has_overall,
                                        wire::Deadline overall) const {
  if (has_overall) return overall;
  return config_.default_attempt_deadline_us > 0
             ? wire::Deadline::after_us(config_.default_attempt_deadline_us)
             : wire::Deadline::never();
}

bool Router::backoff_before_retry(std::size_t retry, wire::Deadline overall) {
  if (config_.backoff_base_us == 0) return !overall.expired();
  // min(max, base << (retry-1)), shift clamped so a deep retry walk cannot
  // overflow past backoff_max_us.
  const unsigned shift =
      static_cast<unsigned>(std::min<std::size_t>(retry - 1, 20));
  std::uint64_t delay =
      std::min(config_.backoff_max_us, config_.backoff_base_us << shift);
  // Deterministic jitter into [delay/2, delay): same seed, same draw
  // sequence, same delays — the chaos runs replay exactly.
  std::uint64_t h =
      hash_combine(config_.seed, rng_seq_.fetch_add(1, std::memory_order_relaxed));
  const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  delay -= static_cast<std::uint64_t>(u * static_cast<double>(delay / 2));
  const std::uint64_t remaining = overall.remaining_us();
  if (remaining == 0) return false;
  if (!overall.unlimited() && delay >= remaining) {
    // The backoff alone outlives the request budget: sleep out what's left
    // so the caller answers kTimeout at (not before) the deadline.
    std::this_thread::sleep_for(std::chrono::microseconds(remaining));
    return false;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(delay));
  return true;
}

std::pair<std::size_t, std::size_t> p2c_pair(std::uint64_t seed,
                                             std::uint64_t seq,
                                             std::size_t n) noexcept {
  // Two splitmix64 draws off one counter hash; the second index is drawn
  // from [0, n-1) and bumped past the first, so the pair is always
  // distinct. (Modulo bias is immaterial at replica-group sizes.) For
  // n == 2 every draw yields {0, 1} — exactly the pre-randomization pair.
  std::uint64_t state = hash_combine(seed, seq);
  const std::size_t first =
      static_cast<std::size_t>(splitmix64(state) % n);
  std::size_t second = static_cast<std::size_t>(splitmix64(state) % (n - 1));
  if (second >= first) ++second;
  return {std::min(first, second), std::max(first, second)};
}

void Router::order_replicas(
    std::vector<std::shared_ptr<Shard>>& group) const {
  const auto now = std::chrono::steady_clock::now();
  const auto staleness =
      std::chrono::microseconds(config_.health_staleness_us);
  // Sample WHICH two replicas to compare (seeded, deterministic per draw):
  // wide groups get every pair compared over time instead of replicas 2..
  // only ever seeing retry traffic. pick[0] < pick[1], so on a tie or a
  // stale fallback the better-placed replica keeps the request.
  const auto [low, high] = p2c_pair(
      config_.seed, rng_seq_.fetch_add(1, std::memory_order_relaxed),
      group.size());
  const std::size_t pick[2] = {low, high};
  double score[2];
  bool fresh = true;
  for (std::size_t i = 0; i < 2; ++i) {
    Shard& shard = *group[pick[i]];
    std::uint32_t queue_depth = 0;
    double ewma_us = 0.0;
    {
      std::lock_guard<std::mutex> lock(shard.pool_mutex);
      ++shard.counters.p2c_considered;
      if (!shard.health_valid || now - shard.health_when > staleness) {
        fresh = false;
        break;
      }
      queue_depth = shard.last_health.queue_depth;
      ewma_us = shard.last_health.ewma_service_us;
    }
    // Planned wait ~ (queued + our own outstanding) x per-request cost. The
    // EWMA floor keeps a never-exercised shard comparable instead of
    // scoring a free 0 forever.
    const double load = static_cast<double>(queue_depth) +
                        static_cast<double>(
                            shard.inflight.load(std::memory_order_relaxed));
    score[i] = load * std::max(ewma_us, 1.0);
  }
  if (!fresh) {
    std::lock_guard<std::mutex> lock(group[0]->pool_mutex);
    ++group[0]->counters.p2c_stale;
    return;
  }
  const std::size_t winner = score[1] < score[0] ? pick[1] : pick[0];
  if (winner != 0) {
    std::swap(group[0], group[winner]);
    std::lock_guard<std::mutex> lock(group[0]->pool_mutex);
    ++group[0]->counters.p2c_alternate;
  } else {
    std::lock_guard<std::mutex> lock(group[0]->pool_mutex);
    ++group[0]->counters.p2c_primary;
  }
}

wire::WireResponse Router::infer(std::string_view model_id,
                                 const Matrix& series,
                                 RequestOptions options) {
  const std::uint64_t seq = next_seq_.fetch_add(1);
  wire::WireRequest request;
  request.seq = seq;
  request.model_id = std::string(model_id);
  request.options = options;
  std::vector<std::byte> frame;
  wire::encode_request(request, series, frame);

  // Deadline discipline: a request's own deadline_us is ONE budget across
  // the whole retry walk; deadline-free traffic gets a fresh
  // default_attempt_deadline_us window per attempt.
  const bool has_overall = options.deadline_us > 0;
  const wire::Deadline overall =
      has_overall ? wire::Deadline::after_us(options.deadline_us)
                  : wire::Deadline::never();

  std::vector<std::shared_ptr<Shard>> group = replicas_for(model_id);
  if (config_.load_aware && group.size() >= 2) order_replicas(group);

  wire::WireResponse response;
  const std::size_t max_attempts = 1 + config_.retry_budget;
  std::size_t attempts = 0;  // dials actually made (breaker skips are free)
  bool timed_out = false;
  bool exhausted = false;
  while (!group.empty() && !timed_out && !exhausted) {
    bool dialed_this_round = false;
    for (const auto& shard : group) {
      if (overall.expired()) {
        timed_out = true;
        break;
      }
      // Open breaker: skip without dialing (a half-open shard is admitted
      // as the trial request). Skips don't consume the retry budget —
      // they cost nothing, and the budget meters real dials.
      if (!breaker_allows(*shard)) continue;
      dialed_this_round = true;
      shard->inflight.fetch_add(1, std::memory_order_relaxed);
      const bool delivered = try_shard(*shard, frame, seq, response,
                                       attempt_deadline(has_overall, overall));
      shard->inflight.fetch_sub(1, std::memory_order_relaxed);
      ++attempts;
      if (!delivered) {
        {
          std::lock_guard<std::mutex> lock(shard->pool_mutex);
          ++shard->counters.retried;
        }
        if (attempts >= max_attempts) {
          exhausted = true;
          break;
        }
        // Transport failure: back off (exponential, jittered) before the
        // next dial so a flapping shard isn't hammered at line rate.
        if (!backoff_before_retry(attempts, overall)) {
          timed_out = true;
          break;
        }
        continue;
      }
      if (response.status == wire::WireStatus::kShutdown) {
        // Typed rejection from a draining shard: not executed, safe to move
        // to the next replica — immediately, since the shard answered fast
        // and authoritatively (no transport backoff applies).
        std::lock_guard<std::mutex> lock(shard->pool_mutex);
        ++shard->counters.retried;
        if (attempts >= max_attempts) exhausted = true;
        if (exhausted) break;
        continue;
      }
      std::lock_guard<std::mutex> lock(shard->pool_mutex);
      if (response.status == wire::WireStatus::kOk) {
        ++shard->counters.ok;
      } else {
        ++shard->counters.rejected;
      }
      return response;
    }
    if (!dialed_this_round && !timed_out) break;  // every breaker open
  }
  response = wire::WireResponse{};
  response.seq = seq;
  if (timed_out) {
    response.status = wire::WireStatus::kTimeout;
  } else if (attempts == 0 && !group.empty()) {
    // Not one replica was dialable: the typed breaker fast-fail.
    response.status = wire::WireStatus::kBreakerOpen;
  } else {
    response.status = wire::WireStatus::kUnavailable;
  }
  return response;
}

wire::HealthInfo Router::health(std::string_view name) {
  const std::shared_ptr<Shard> shard = find_shard(name);
  DFR_CHECK_MSG(shard != nullptr, "router: unknown shard name");
  const wire::Deadline deadline =
      attempt_deadline(/*has_overall=*/false, wire::Deadline::never());
  const int fd = wire::connect_endpoint(shard->endpoint, deadline);
  try {
    std::vector<std::byte> frame;
    wire::encode_health_request(next_seq_.fetch_add(1), frame);
    wire::write_frame(fd, frame, deadline);
    std::vector<std::byte> reply;
    if (!wire::read_frame(fd, reply, deadline)) {
      throw wire::WireIoError("router: shard closed before the health reply",
                              wire::WireIoError::Kind::kEof);
    }
    const wire::HealthInfo info = wire::decode_health_response(reply);
    ::close(fd);
    return info;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

std::vector<std::string> Router::shard_names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    if (shard->live) names.push_back(shard->name);
  }
  return names;
}

ShardCounters Router::counters(std::string_view name) const {
  const std::shared_ptr<Shard> shard = find_shard(name);
  DFR_CHECK_MSG(shard != nullptr, "router: unknown shard name");
  std::lock_guard<std::mutex> lock(shard->pool_mutex);
  return shard->counters;
}

BreakerState Router::breaker_state(std::string_view name) const {
  const std::shared_ptr<Shard> shard = find_shard(name);
  if (!shard) return BreakerState::kClosed;
  std::lock_guard<std::mutex> lock(shard->pool_mutex);
  return shard->breaker;
}

void Router::note_health(std::string_view name, const wire::HealthInfo& info) {
  const std::shared_ptr<Shard> shard = find_shard(name);
  if (!shard) return;
  std::lock_guard<std::mutex> lock(shard->pool_mutex);
  shard->last_health = info;
  shard->health_when = std::chrono::steady_clock::now();
  shard->health_valid = true;
  // A health sample is probe-equivalent evidence the shard talks: an open
  // breaker moves to half-open so the next request runs the trial.
  if (shard->breaker == BreakerState::kOpen) {
    shard->breaker = BreakerState::kHalfOpen;
  }
}

void Router::poll_health_once() {
  // Snapshot live shards, then probe without the router lock held: a slow
  // or dead shard must not stall placement changes or other probes' caches.
  std::vector<std::shared_ptr<Shard>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      if (shard->live) live.push_back(shard);
    }
  }
  for (const auto& shard : live) {
    // Probe under the default attempt deadline: a wedged shard that
    // accepts-and-ignores must not park the poller (which would starve
    // every OTHER shard of fresh samples too).
    const wire::Deadline deadline =
        config_.default_attempt_deadline_us > 0
            ? wire::Deadline::after_us(config_.default_attempt_deadline_us)
            : wire::Deadline::never();
    int fd = -1;
    try {
      fd = wire::connect_endpoint(shard->endpoint, deadline);
      std::vector<std::byte> frame;
      wire::encode_health_request(next_seq_.fetch_add(1), frame);
      wire::write_frame(fd, frame, deadline);
      std::vector<std::byte> reply;
      if (!wire::read_frame(fd, reply, deadline)) {
        throw wire::WireIoError("router: shard closed before the health reply",
                                wire::WireIoError::Kind::kEof);
      }
      const wire::HealthInfo info = wire::decode_health_response(reply);
      ::close(fd);
      fd = -1;
      std::lock_guard<std::mutex> lock(shard->pool_mutex);
      shard->last_health = info;
      shard->health_when = std::chrono::steady_clock::now();
      shard->health_valid = true;
      ++shard->counters.health_probes;
      // Successful probe: an open breaker earns a half-open trial. (The
      // trial request — not the probe — is what closes it: shards answer
      // health even when inference is wedged, so a probe alone is not
      // proof of service.)
      if (shard->breaker == BreakerState::kOpen) {
        shard->breaker = BreakerState::kHalfOpen;
        log_info("router: breaker HALF-OPEN on ", shard->name,
                 " (health probe answered)");
      }
    } catch (const std::exception&) {
      // Unreachable or malformed: keep (and age out) the previous sample
      // rather than inventing one; staleness handles the rest.
      if (fd >= 0) ::close(fd);
      std::lock_guard<std::mutex> lock(shard->pool_mutex);
      ++shard->counters.health_failures;
      // A failed probe revokes a half-open trial before traffic wastes a
      // dial on it (counted as a fresh trip).
      if (shard->breaker == BreakerState::kHalfOpen) {
        shard->breaker = BreakerState::kOpen;
        ++shard->counters.breaker_trips;
      }
    }
  }
}

void Router::export_stats(std::ostream& os) const {
  std::vector<std::shared_ptr<Shard>> snapshot;
  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = shards_;
    for (const auto& shard : snapshot) live += shard->live ? 1 : 0;
  }
  os << "dfr_router_shards_live " << live << '\n';
  for (const auto& shard : snapshot) {
    const std::string label = "{shard=\"" + shard->name + "\"}";
    std::lock_guard<std::mutex> lock(shard->pool_mutex);
    const ShardCounters& c = shard->counters;
    os << "dfr_router_requests_total" << label << ' ' << c.requests << '\n';
    os << "dfr_router_ok_total" << label << ' ' << c.ok << '\n';
    os << "dfr_router_rejected_total" << label << ' ' << c.rejected << '\n';
    os << "dfr_router_retried_total" << label << ' ' << c.retried << '\n';
    os << "dfr_router_io_failures_total" << label << ' ' << c.io_failures
       << '\n';
    os << "dfr_router_p2c_primary_total" << label << ' ' << c.p2c_primary
       << '\n';
    os << "dfr_router_p2c_alternate_total" << label << ' ' << c.p2c_alternate
       << '\n';
    os << "dfr_router_p2c_stale_total" << label << ' ' << c.p2c_stale << '\n';
    os << "dfr_router_p2c_considered_total" << label << ' ' << c.p2c_considered
       << '\n';
    os << "dfr_router_health_probes_total" << label << ' ' << c.health_probes
       << '\n';
    os << "dfr_router_health_failures_total" << label << ' '
       << c.health_failures << '\n';
    os << "dfr_router_timeouts_total" << label << ' ' << c.timeouts << '\n';
    os << "dfr_router_breaker_trips_total" << label << ' ' << c.breaker_trips
       << '\n';
    os << "dfr_router_breaker_fastfails_total" << label << ' '
       << c.breaker_fastfails << '\n';
    // 0 = closed, 1 = open, 2 = half-open (BreakerState's numeric values).
    os << "dfr_router_breaker_state" << label << ' '
       << static_cast<int>(shard->breaker) << '\n';
    if (shard->health_valid) {
      os << "dfr_router_shard_queue_depth" << label << ' '
         << shard->last_health.queue_depth << '\n';
      os << "dfr_router_shard_ewma_service_us" << label << ' '
         << shard->last_health.ewma_service_us << '\n';
    }
  }
}

}  // namespace dfr::serve
