#include "serve/shard.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <span>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dfr::serve {

ShardServer::ShardServer(ModelRegistry& registry,
                         const wire::Endpoint& endpoint, ServerConfig config)
    : registry_(&registry), server_(registry, config), endpoint_(endpoint) {
  listen_fd_ = wire::listen_endpoint(endpoint_);
  if (endpoint_.kind == wire::Endpoint::Kind::kTcp && endpoint_.port == 0) {
    endpoint_.port = wire::bound_port(listen_fd_);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::drain() {
  // Serialize the transition so concurrent drain requests (wire + stop())
  // both return only after the queue is actually empty.
  std::lock_guard<std::mutex> lock(drain_mutex_);
  draining_.store(true, std::memory_order_release);
  server_.shutdown();  // drain-then-join; idempotent
}

void ShardServer::stop() {
  if (stop_.exchange(true)) {
    drain();  // make repeated stop() as strong as the first
    return;
  }
  drain();
  // The accept loop polls with a short timeout and checks stop_, so it
  // exits without us racing a close() against its poll().
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (endpoint_.kind == wire::Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.host_or_path.c_str());
    }
  }
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (auto& conn : connections_) {
    // Unblocks a connection thread parked in recv(); buffered responses
    // (e.g. the drain ack) are still delivered before the FIN.
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  connections_.clear();
}

void ShardServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout, EINTR, or transient error: re-check
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (fault_.draw_accept_drop()) {
      // drop-accept fault: the TCP/unix handshake succeeded, then the shard
      // hangs up before a single frame — the router sees a clean EOF on its
      // first read and must treat the attempt as an I/O failure.
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve_connection(*raw); });
    connections_.push_back(std::move(conn));
  }
}

void ShardServer::reap_finished_locked() {
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) return false;
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
    return true;
  });
}

void ShardServer::stall_until_closed(int fd) {
  // A wedged shard holds the connection open and says nothing. Anything the
  // peer still sends is drained and discarded (so poll never spins hot);
  // the park ends when the peer gives up — its read deadline fired and it
  // closed — or the shard itself stops.
  std::byte sink[256];
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout / EINTR: re-check stop_
    const ssize_t r = ::recv(fd, sink, sizeof(sink), MSG_DONTWAIT);
    if (r == 0) return;  // peer closed
    if (r < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      return;  // connection error: nothing left to wedge
    }
  }
}

void ShardServer::sleep_interruptible(std::uint64_t ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!stop_.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<std::uint64_t>(ms, 50)));
  }
}

void ShardServer::serve_connection(Connection& conn) {
  std::vector<std::byte> in;
  std::vector<std::byte> out;
  bool alive = true;
  try {
    while (alive && wire::read_frame(conn.fd, in)) {
      const wire::FrameHeader header = wire::decode_header(in);
      switch (static_cast<wire::MessageType>(header.type)) {
        case wire::MessageType::kInferRequest: {
          const wire::WireRequest request = wire::decode_request(in);
          const FaultSpec fault = fault_.draw_response_fault();
          if (fault.kind == FaultSpec::Kind::kStall) {
            // The request is accepted and never answered (and never
            // executed — a wedged shard does no work). The client's read
            // deadline is what gets it unstuck.
            stall_until_closed(conn.fd);
            alive = false;
            break;
          }
          if (fault.kind == FaultSpec::Kind::kGarbage) {
            // A syntactically valid header over a garbage body: the client
            // must reject the frame typed (CheckError) without over-reading.
            wire::FrameHeader bad{};
            std::memcpy(bad.magic, wire::kMagic, sizeof(wire::kMagic));
            bad.version = wire::kWireVersion;
            bad.type =
                static_cast<std::uint16_t>(wire::MessageType::kInferResponse);
            bad.seq = request.seq;
            bad.body_bytes = 32;
            out.assign(sizeof(bad) + 32, std::byte{0xA5});
            std::memcpy(out.data(), &bad, sizeof(bad));
            wire::write_frame(conn.fd, out);
            break;
          }
          if (fault.kind == FaultSpec::Kind::kDelay) {
            sleep_interruptible(fault.delay_ms);
          }
          // Synchronous resolve: the decoded request owns the series, and
          // the future is collected before the next frame is read, so the
          // zero-copy submit contract holds trivially.
          const InferFuture future =
              server_.submit(request.model_id, request.series, request.options);
          const InferResult& result = future.get();
          wire::WireResponse response;
          response.seq = request.seq;
          response.status = wire::to_wire_status(result.status);
          response.label = result.label;
          response.latency_us = result.latency_us;
          response.logits = result.logits;
          wire::encode_response(response, out);
          if (fault.kind == FaultSpec::Kind::kCloseMidFrame) {
            // The work was done, the response was lost: write half the
            // frame, then hang up — the client sees a mid-frame EOF.
            wire::write_frame(
                conn.fd, std::span<const std::byte>(out).first(out.size() / 2));
            alive = false;
            break;
          }
          wire::write_frame(conn.fd, out);
          break;
        }
        case wire::MessageType::kHealthRequest: {
          wire::HealthInfo info;
          info.accepting = server_.accepting();
          info.draining = draining();
          info.models = static_cast<std::uint32_t>(registry_->size());
          // The v2 load fields: instantaneous queue depth + service-time
          // EWMA feed the router's load-aware replica choice.
          info.queue_depth =
              static_cast<std::uint32_t>(server_.queue_depth());
          info.queue_capacity =
              static_cast<std::uint32_t>(server_.queue_capacity());
          info.ewma_service_us = server_.ewma_service_us();
          wire::encode_health_response(info, header.seq, out);
          wire::write_frame(conn.fd, out);
          break;
        }
        case wire::MessageType::kDrainRequest: {
          drain();  // returns once every accepted request has resolved
          wire::encode_drain_response(header.seq, out);
          wire::write_frame(conn.fd, out);
          break;
        }
        default:
          // A response-type frame sent at a server is a protocol violation;
          // drop the connection rather than guess what the peer meant.
          DFR_CHECK_MSG(false, "shard: unexpected client frame type");
      }
    }
  } catch (const wire::WireIoError&) {
    // Peer vanished mid-frame; nothing to answer.
  } catch (const CheckError& e) {
    log_warn("shard: dropping connection: ", e.what());
  }
  ::shutdown(conn.fd, SHUT_RDWR);
  conn.done.store(true, std::memory_order_release);
}

}  // namespace dfr::serve
