#include "serve/shard.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dfr::serve {

ShardServer::ShardServer(ModelRegistry& registry,
                         const wire::Endpoint& endpoint, ServerConfig config)
    : registry_(&registry), server_(registry, config), endpoint_(endpoint) {
  listen_fd_ = wire::listen_endpoint(endpoint_);
  if (endpoint_.kind == wire::Endpoint::Kind::kTcp && endpoint_.port == 0) {
    endpoint_.port = wire::bound_port(listen_fd_);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::drain() {
  // Serialize the transition so concurrent drain requests (wire + stop())
  // both return only after the queue is actually empty.
  std::lock_guard<std::mutex> lock(drain_mutex_);
  draining_.store(true, std::memory_order_release);
  server_.shutdown();  // drain-then-join; idempotent
}

void ShardServer::stop() {
  if (stop_.exchange(true)) {
    drain();  // make repeated stop() as strong as the first
    return;
  }
  drain();
  // The accept loop polls with a short timeout and checks stop_, so it
  // exits without us racing a close() against its poll().
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (endpoint_.kind == wire::Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.host_or_path.c_str());
    }
  }
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (auto& conn : connections_) {
    // Unblocks a connection thread parked in recv(); buffered responses
    // (e.g. the drain ack) are still delivered before the FIN.
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  connections_.clear();
}

void ShardServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout, EINTR, or transient error: re-check
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve_connection(*raw); });
    connections_.push_back(std::move(conn));
  }
}

void ShardServer::reap_finished_locked() {
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) return false;
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
    return true;
  });
}

void ShardServer::serve_connection(Connection& conn) {
  std::vector<std::byte> in;
  std::vector<std::byte> out;
  try {
    while (wire::read_frame(conn.fd, in)) {
      const wire::FrameHeader header = wire::decode_header(in);
      switch (static_cast<wire::MessageType>(header.type)) {
        case wire::MessageType::kInferRequest: {
          const wire::WireRequest request = wire::decode_request(in);
          // Synchronous resolve: the decoded request owns the series, and
          // the future is collected before the next frame is read, so the
          // zero-copy submit contract holds trivially.
          const InferFuture future =
              server_.submit(request.model_id, request.series, request.options);
          const InferResult& result = future.get();
          wire::WireResponse response;
          response.seq = request.seq;
          response.status = wire::to_wire_status(result.status);
          response.label = result.label;
          response.latency_us = result.latency_us;
          response.logits = result.logits;
          wire::encode_response(response, out);
          wire::write_frame(conn.fd, out);
          break;
        }
        case wire::MessageType::kHealthRequest: {
          wire::HealthInfo info;
          info.accepting = server_.accepting();
          info.draining = draining();
          info.models = static_cast<std::uint32_t>(registry_->size());
          // The v2 load fields: instantaneous queue depth + service-time
          // EWMA feed the router's load-aware replica choice.
          info.queue_depth =
              static_cast<std::uint32_t>(server_.queue_depth());
          info.queue_capacity =
              static_cast<std::uint32_t>(server_.queue_capacity());
          info.ewma_service_us = server_.ewma_service_us();
          wire::encode_health_response(info, header.seq, out);
          wire::write_frame(conn.fd, out);
          break;
        }
        case wire::MessageType::kDrainRequest: {
          drain();  // returns once every accepted request has resolved
          wire::encode_drain_response(header.seq, out);
          wire::write_frame(conn.fd, out);
          break;
        }
        default:
          // A response-type frame sent at a server is a protocol violation;
          // drop the connection rather than guess what the peer meant.
          DFR_CHECK_MSG(false, "shard: unexpected client frame type");
      }
    }
  } catch (const wire::WireIoError&) {
    // Peer vanished mid-frame; nothing to answer.
  } catch (const CheckError& e) {
    log_warn("shard: dropping connection: ", e.what());
  }
  ::shutdown(conn.fd, SHUT_RDWR);
  conn.done.store(true, std::memory_order_release);
}

}  // namespace dfr::serve
