// dfr_shard: one serving shard as a process — ShardServer (serve/shard.hpp)
// behind a CLI. Three modes:
//
//   serve (default)  bind --endpoint, register models, serve until SIGTERM /
//                    SIGINT or a wire kDrainRequest, then drain and exit 0.
//                    Models come from --models "id=path.dfrm,..." (loaded
//                    zero-copy through an ArtifactStore) or --synth-models N
//                    (deterministic in-process fleet m0..m{N-1} via
//                    serve/synth.hpp — no files needed; CI uses this).
//   --probe EP       readiness probe: health-request EP, exit 0 when the
//                    shard is accepting with >= 1 model, 1 otherwise. The CI
//                    distributed-smoke job polls this before sending load.
//   --drain EP       graceful drain: send kDrainRequest, wait for the ack
//                    (sent only after the queue is empty), exit 0.
//
// Example 2-shard tier (what .github/workflows/ci.yml runs):
//   dfr_shard --endpoint unix:/tmp/s0.sock --synth-models 2 --workers 1 &
//   dfr_shard --endpoint unix:/tmp/s1.sock --synth-models 2 --workers 1 &
//   dfr_shard --probe unix:/tmp/s0.sock && dfr_shard --probe unix:/tmp/s1.sock
//   bench_loadgen --mode socket --shards unix:/tmp/s0.sock,unix:/tmp/s1.sock
//   dfr_shard --drain unix:/tmp/s0.sock

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <exception>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/artifact_store.hpp"
#include "serve/registry.hpp"
#include "serve/shard.hpp"
#include "serve/synth.hpp"
#include "serve/wire.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

using namespace dfr;

std::atomic<bool> g_shutdown_requested{false};

void handle_signal(int) { g_shutdown_requested.store(true); }

/// Split "a,b,c" into non-empty trimmed-as-is pieces.
std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// One round-trip of `frame` on a fresh connection; returns the reply.
std::vector<std::byte> round_trip(const serve::wire::Endpoint& endpoint,
                                  const std::vector<std::byte>& frame) {
  const int fd = serve::wire::connect_endpoint(endpoint);
  std::vector<std::byte> reply;
  try {
    serve::wire::write_frame(fd, frame);
    DFR_CHECK_MSG(serve::wire::read_frame(fd, reply),
                  "shard closed the connection without replying");
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return reply;
}

int probe(const std::string& spec) {
  const serve::wire::Endpoint endpoint = serve::wire::parse_endpoint(spec);
  std::vector<std::byte> frame;
  serve::wire::encode_health_request(/*seq=*/1, frame);
  const serve::wire::HealthInfo info =
      serve::wire::decode_health_response(round_trip(endpoint, frame));
  const bool ready = info.accepting && !info.draining && info.models > 0;
  // The load fields come from the populated v2 health body, so the CI drain
  // check can assert on real values (queue_depth <= queue_capacity, ...).
  std::cout << "shard " << spec << ": accepting=" << info.accepting
            << " draining=" << info.draining << " models=" << info.models
            << " queue_depth=" << info.queue_depth
            << " queue_capacity=" << info.queue_capacity
            << " ewma_service_us=" << info.ewma_service_us
            << (ready ? " READY" : " NOT-READY") << "\n";
  return ready ? 0 : 1;
}

int drain(const std::string& spec) {
  const serve::wire::Endpoint endpoint = serve::wire::parse_endpoint(spec);
  std::vector<std::byte> frame;
  serve::wire::encode_drain_request(/*seq=*/1, frame);
  const std::vector<std::byte> reply = round_trip(endpoint, frame);
  const serve::wire::FrameHeader header = serve::wire::decode_header(reply);
  DFR_CHECK_MSG(header.type == static_cast<std::uint16_t>(
                                   serve::wire::MessageType::kDrainResponse),
                "shard answered the drain request with the wrong frame type");
  std::cout << "shard " << spec << ": drained\n";
  return 0;
}

int run(int argc, char** argv) {
  CliParser cli("dfr_shard",
                "One serving shard: InferenceServer behind the wire protocol");
  cli.add_option("endpoint", "listen address (unix:/path or tcp:host:port)",
                 "unix:/tmp/dfr_shard.sock");
  cli.add_option("workers", "serving threads", "1");
  cli.add_option("queue-capacity", "bounded request-queue capacity", "256");
  cli.add_option("max-batch", "micro-batch lanes (1 = off)", "1");
  cli.add_option("batch-window-us", "micro-batch coalescing window", "0");
  cli.add_option("models", "comma list of id=path.dfrm to serve", "");
  cli.add_option("synth-models",
                 "serve N deterministic synthetic models m0..m{N-1}", "0");
  cli.add_option("channels", "synthetic model series channels", "2");
  cli.add_option("classes", "synthetic model class count", "4");
  cli.add_option("nodes", "synthetic model virtual nodes (Nx)", "30");
  cli.add_option("seed", "synthetic model base seed", "42");
  cli.add_option("fault",
                 "inject faults into inference traffic: none | stall:p | "
                 "delay:ms:p | garbage:p | close-mid-frame:p | drop-accept:p "
                 "(deterministic; health/drain frames always answer)",
                 "none");
  cli.add_option("fault-seed", "fault-decision seed", "0");
  cli.add_option("probe", "readiness-probe an endpoint and exit", "");
  cli.add_option("drain", "drain an endpoint gracefully and exit", "");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  if (!cli.get("probe").empty()) return probe(cli.get("probe"));
  if (!cli.get("drain").empty()) return drain(cli.get("drain"));

  serve::ModelRegistry registry;
  serve::ArtifactStore store(registry);

  const std::string models = cli.get("models");
  for (const std::string& entry : split_csv(models)) {
    const std::size_t eq = entry.find('=');
    DFR_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 < entry.size(),
                  "--models entries must be id=path.dfrm");
    store.add(entry.substr(0, eq), entry.substr(eq + 1));
    (void)store.get(entry.substr(0, eq));  // fault in + register now
  }

  const std::uint64_t synth = cli.get_u64("synth-models");
  serve::SynthModelSpec spec;
  spec.channels = cli.get_u64("channels");
  spec.num_classes = static_cast<int>(cli.get_i64("classes"));
  spec.nodes = cli.get_u64("nodes");
  for (std::uint64_t i = 0; i < synth; ++i) {
    spec.seed = cli.get_u64("seed") + i;
    registry.register_model(
        serve::make_synth_artifact("m" + std::to_string(i), spec));
  }
  DFR_CHECK_MSG(registry.size() > 0,
                "no models to serve: pass --models or --synth-models");

  serve::ServerConfig config;
  config.workers = cli.get_u64("workers");
  config.queue_capacity = cli.get_u64("queue-capacity");
  config.max_batch = cli.get_u64("max-batch");
  config.batch_window_us = cli.get_u64("batch-window-us");

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  const serve::wire::Endpoint endpoint =
      serve::wire::parse_endpoint(cli.get("endpoint"));
  serve::ShardServer shard(registry, endpoint, config);
  const serve::FaultSpec fault = serve::parse_fault_spec(cli.get("fault"));
  if (fault.kind != serve::FaultSpec::Kind::kNone) {
    shard.set_fault(fault, cli.get_u64("fault-seed"));
    log_warn("dfr_shard FAULT INJECTION armed: ",
             serve::fault_kind_name(fault.kind), " p=", fault.probability);
  }
  log_info("dfr_shard serving ", registry.size(), " model(s) on ",
           shard.endpoint().to_string(), " with ", config.workers,
           " worker(s)");

  while (!g_shutdown_requested.load() && !shard.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  log_info("dfr_shard draining (",
           g_shutdown_requested.load() ? "signal" : "wire drain", ")");
  shard.stop();
  if (fault.kind != serve::FaultSpec::Kind::kNone) {
    std::cout << "dfr_shard_faults_injected{kind=\""
              << serve::fault_kind_name(fault.kind) << "\"} "
              << shard.faults_injected() << "\n";
  }
  shard.server().export_stats(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "dfr_shard: " << e.what() << "\n";
    return 1;
  }
}
