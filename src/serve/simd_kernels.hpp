#pragma once
// SIMD kernels for the reservoir-step datapath, with runtime CPU dispatch.
//
// The per-step serving cost splits into three stages. Two of them are
// data-parallel across the Nx virtual nodes and vectorize:
//
//   * the masked-input preadd and nonlinearity  v_n = A * f~( j(k)_n + x(k-1)_n )
//   * the DPRR accumulator row updates          r[i*Nx+j] += x(k)_i * x(k-1)_j
//     (Nx^2 multiply-adds per time step — the dominant serving cost)
//
// The third stage, the B-chain x(k)_n = v_n + B * x(k)_{n-1}, serializes on
// its own output and stays a scalar pass (SimdFloatDatapath::step runs it
// after the vectorized preadd/nonlinearity).
//
// Backends are selected at RUNTIME, not by compile flags: the ISA-specific
// translation units (simd_kernels_avx2.cpp, simd_kernels_avx512.cpp,
// simd_kernels_neon.cpp) are built with per-file arch flags and register
// themselves; dispatch picks the best kernel set the running CPU supports.
// The `DFR_SIMD` environment variable (`scalar`, `avx2`, `avx512`, or
// `neon`, read once at first use) or force_backend() (tests) override the
// choice; forcing an unavailable backend throws CheckError.
//
// Equivalence contract vs the scalar FloatDatapath pipeline:
//   * The mask stage is shared code and the preadd stage performs the same
//     IEEE-754 additions lane-wise: both are bit-exact on every backend
//     (test_simd.cpp checks the preadd/nonlinearity stage with an
//     exact-match assertion).
//   * The step stage as a whole (preadd, nonlinearity, B-chain) performs the
//     scalar pipeline's operations in the same order; ISA translation units
//     are compiled with -ffp-contract=off, so no FMA contraction can change
//     rounding and the stage is bit-exact on x86-64. (On aarch64 the
//     compiler may contract the *scalar* reference itself, so only the ULP
//     bound below is guaranteed.)
//   * The DPRR row update deliberately uses explicit FMA where available:
//     each accumulate rounds once where the scalar path rounds twice, so a
//     feature accumulated over T steps may drift by O(T) rounding units of
//     the accumulated magnitudes. The documented bound: every finalized
//     feature agrees with the scalar pipeline within
//     simd_feature_ulp_bound(T) ulps of the feature vector's
//     largest-magnitude entry (ulps of max|r|, not of the individual
//     feature — cross products can cancel arbitrarily close to zero while
//     the accumulation error scales with the summands). Asserted by
//     test_simd.cpp across every nonlinearity and odd Nx.
//
// Quantized kernel family (SimdQuantizedDatapath) — EXACT contract:
//   Unlike the float family, every quantized kernel is bit-identical to the
//   scalar QuantizedDatapath on every backend. Fixed-point rounding makes
//   that achievable: the vector round-to-format performs the same IEEE-754
//   operations as FixedPointFormat::quantize lane-wise (scaling by a power
//   of two is exact whether done by multiply or divide, vector
//   round-to-nearest matches std::nearbyint under the current rounding
//   mode, and saturation compares reproduce the scalar clamp), and the
//   quantized DPRR accumulate deliberately does NOT use FMA — it rounds
//   twice per accumulate exactly like DprrAccumulator::add, so no ULP
//   drift exists to bound. test_simd_quant.cpp asserts EXPECT_EQ-strict
//   equivalence across formats, nonlinearities, sizes, and backends. (On
//   aarch64 the scalar reference TU itself may FMA-contract the B-chain;
//   x86-64 baseline code cannot, so the strict contract is asserted there.)

#include <cstddef>
#include <string>

#include "dfr/nonlinearity.hpp"
#include "fixedpoint/fixed.hpp"

namespace dfr::simd {

enum class Backend { kScalar, kAvx2, kNeon, kAvx512 };

/// "scalar" / "avx2" / "neon" / "avx512".
[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// Inverse of backend_name. Throws CheckError on unknown names.
[[nodiscard]] Backend parse_backend(const std::string& name);

/// Non-throwing parse: true and sets `out` on a recognized name.
[[nodiscard]] bool try_parse_backend(const std::string& name,
                                     Backend& out) noexcept;

/// v[n] = a * f~( j[n] + x_prev[n] ) for n in [0, nx). `out` must not alias
/// the inputs. The B-chain term is NOT applied here (it serializes; see
/// SimdFloatDatapath::step).
using PreaddNonlinFn = void (*)(const Nonlinearity& f, double a,
                                const double* j, const double* x_prev,
                                double* out, std::size_t nx);

/// Streaming DPRR accumulate: r[i*nx + j] += x_k[i] * x_km1[j] for all i, j,
/// and r[nx*nx + i] += x_k[i]. `r` has dprr_dim(nx) = nx*(nx+1) entries.
using DprrAddFn = void (*)(double* r, const double* x_k, const double* x_km1,
                           std::size_t nx);

/// In-place vector round-to-format: v[i] = fmt.quantize(v[i] * scale) for i
/// in [0, n). Bit-identical to calling FixedPointFormat::quantize per
/// element (round-to-nearest under the current rounding mode, saturation to
/// the two's-complement range, NaN -> 0). Serves both quantized stages that
/// are a pure elementwise scale+round: the masked-input quantization
/// (scale = 1/state_scale) and the feature finalization
/// (scale = dprr_time_scale(T)/feature_scale).
using ScaleQuantizeFn = void (*)(const FixedPointFormat& fmt, double scale,
                                 double* values, std::size_t n);

/// Quantized masked-input preadd + nonlinearity:
/// out[n] = a * f~( fmt.quantize(j[n] + x_prev[n]) ). The quantized B-chain
/// (with its per-node round-to-format) serializes and stays a scalar pass —
/// see SimdQuantizedDatapath::step.
using QuantPreaddNonlinFn = void (*)(const Nonlinearity& f, double a,
                                     const FixedPointFormat& fmt,
                                     const double* j, const double* x_prev,
                                     double* out, std::size_t nx);

// ---- batched (SoA, one lane per concurrent series) kernel family -----------
//
// The single-series kernels above vectorize WITHIN one series, so the B-chain
// serializes and Nx < vector-width reservoirs leave lanes empty. The batched
// family transposes up to kBatchedMaxLanes concurrent series into
// structure-of-arrays form — state buffers are indexed [node*lanes + lane],
// DPRR accumulators [(i*nx + j)*lanes + lane] — so every vector operation
// spans INDEPENDENT series: the per-node B-chain dependence crosses rows,
// never lanes, and lanes stay full at any Nx.
//
// Per-lane equivalence contract (x86-64; the aarch64 caveat above applies):
//   * batched_bchain performs one multiply and one add per node per lane in
//     node order, exactly like the scalar B-chain — never FMA — so batched
//     float states are bit-identical per lane to the single-series path on
//     every backend.
//   * batched_dprr_add uses explicit FMA per accumulate, exactly like the
//     single-series float dprr_add; batched float features therefore match
//     the single-series SIMD engine bit-identically per lane and the scalar
//     FloatDatapath within simd_feature_ulp_bound (same contract as above).
//   * batched_quant_bchain and batched_dprr_add_exact never use FMA and
//     round exactly like the scalar fixed-point pipeline: batched quantized
//     lanes are BIT-IDENTICAL to the scalar QuantizedDatapath on every
//     backend (asserted EXPECT_EQ-strict by test_batched.cpp).
// The elementwise stages (preadd_nonlin, quant_preadd_nonlin,
// scale_quantize) are reused unchanged over nx*lanes-element SoA blocks —
// they are pure per-element maps, so the SoA layout cannot change rounding.

/// Hard cap on concurrent lanes a batched engine transposes into SoA form.
/// ServerConfig::max_batch is validated against it at server construction.
inline constexpr std::size_t kBatchedMaxLanes = 16;

/// Batched SoA B-chain over `lanes` independent series. On entry
/// x[n*lanes + l] holds the preadd/nonlinearity output v_n for lane l and
/// head[l] holds lane l's previous-step closing state x(k-1)_{Nx}; on exit
/// x[n*lanes + l] = x(k)_n for lane l via x_n = v_n + b * x_{n-1} (one
/// multiply, one add per node — never FMA, so each lane rounds exactly like
/// the scalar B-chain). `head` must not alias `x`.
using BatchedBChainFn = void (*)(double b, const double* head, double* x,
                                 std::size_t nx, std::size_t lanes);

/// Quantized twin of BatchedBChainFn: x_n = fmt.quantize(v_n + b * x_{n-1})
/// per lane, bit-identical to the scalar quantized B-chain.
using BatchedQuantBChainFn = void (*)(double b, const FixedPointFormat& fmt,
                                      const double* head, double* x,
                                      std::size_t nx, std::size_t lanes);

/// Batched SoA DPRR accumulate: for every lane l,
/// r[(i*nx + j)*lanes + l] += x_k[i*lanes + l] * x_km1[j*lanes + l] and
/// r[(nx*nx + i)*lanes + l] += x_k[i*lanes + l]. `r` holds
/// dprr_dim(nx) * lanes entries. The float-family kernel uses explicit FMA
/// (single rounding per accumulate); the exact-family twin rounds twice
/// like DprrAccumulator::add.
using BatchedDprrAddFn = void (*)(double* r, const double* x_k,
                                  const double* x_km1, std::size_t nx,
                                  std::size_t lanes);

/// Batched SoA input mask: for every lane l,
/// j[i*lanes + l] = sum_v weights[i*channels + v] * u[v*lanes + l],
/// accumulated from 0.0 in ascending v with separate multiply and add
/// (never FMA). That is exactly the scalar Mask::apply_into -> matvec_into
/// -> dot() evaluation order per lane, so every lane is bit-identical to
/// the unbatched mask stage regardless of backend.
using BatchedMaskFn = void (*)(const double* weights, std::size_t nx,
                               std::size_t channels, const double* u,
                               double* j, std::size_t lanes);

/// One backend's kernel set. Pointers are non-null and valid for the process
/// lifetime. `dprr_add` is the float-family accumulate (explicit FMA, single
/// rounding, ULP-bounded); `dprr_add_exact` is the quantized-family twin
/// that rounds twice per accumulate exactly like DprrAccumulator::add and is
/// therefore bit-identical to it. The batched_* members follow the same
/// float/exact split over the SoA layout documented above.
struct Kernels {
  Backend backend;
  PreaddNonlinFn preadd_nonlin;
  DprrAddFn dprr_add;
  ScaleQuantizeFn scale_quantize;
  QuantPreaddNonlinFn quant_preadd_nonlin;
  DprrAddFn dprr_add_exact;
  BatchedBChainFn batched_bchain;
  BatchedQuantBChainFn batched_quant_bchain;
  BatchedDprrAddFn batched_dprr_add;
  BatchedDprrAddFn batched_dprr_add_exact;
  BatchedMaskFn batched_mask;
};

/// True when `backend` can run on this CPU *and* its kernels were compiled
/// into this binary (the ISA translation units compile to stubs on foreign
/// architectures or when DFR_SIMD_KERNELS=OFF). kScalar is always available.
[[nodiscard]] bool backend_available(Backend backend) noexcept;

/// Highest-throughput available backend on this CPU.
[[nodiscard]] Backend best_backend() noexcept;

/// The backend serving kAuto/kSimd engines: best_backend() unless overridden
/// by the DFR_SIMD environment variable (read once at first use) or
/// force_backend(). A DFR_SIMD value that is unrecognized (e.g. `avx999`)
/// or unavailable on this host/build (e.g. `avx512` on a CPU without it)
/// never degrades silently: one warning naming the value and the backend
/// actually selected is logged (util/log.hpp) and dispatch falls back to
/// best_backend().
[[nodiscard]] Backend active_backend();

/// Override the active backend (testing / benchmarking). Throws CheckError
/// when `backend` is unavailable. Not synchronized against concurrent engine
/// construction — call from a single thread before fan-out.
void force_backend(Backend backend);

/// Kernel set for an explicit backend. Throws CheckError when unavailable.
[[nodiscard]] const Kernels& kernels_for(Backend backend);

/// Kernel set for active_backend().
[[nodiscard]] const Kernels& active_kernels();

/// Documented SIMD-vs-scalar equivalence bound for finalized DPRR features
/// after `t_len` accumulation steps: |r_simd[i] - r_scalar[i]| <=
/// simd_feature_ulp_bound(t_len) * ulp(max_i |r_scalar[i]|) (see the
/// equivalence contract above). The constant slack absorbs sub-ulp state
/// divergence on platforms where the scalar reference itself is
/// FMA-contracted.
[[nodiscard]] constexpr std::size_t simd_feature_ulp_bound(
    std::size_t t_len) noexcept {
  return 64 + 8 * t_len;
}

namespace detail {
/// Registration hooks defined by the ISA translation units; each returns
/// nullptr when its TU was compiled without the matching arch flags.
[[nodiscard]] const Kernels* avx2_kernels() noexcept;
[[nodiscard]] const Kernels* neon_kernels() noexcept;
[[nodiscard]] const Kernels* avx512_kernels() noexcept;

/// Pure resolution of a DFR_SIMD override value: the requested backend when
/// it is recognized AND available, best_backend() otherwise. When falling
/// back, `warning` (if non-null) receives a one-line message naming the
/// rejected value and the backend actually selected; it is left empty when
/// the request is honored. Exposed so tests can exercise the fallback
/// without re-running process initialization (the env variable is read once).
[[nodiscard]] Backend resolve_env_backend(const char* value,
                                          std::string* warning);
}  // namespace detail

}  // namespace dfr::simd
