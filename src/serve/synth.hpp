#pragma once
// Deterministic synthetic serving models — the shared fixture for every part
// of the distributed tier that must agree on model weights WITHOUT shipping
// .dfrm files around: the shard binary's --synth-models mode, bench_loadgen,
// the distributed tests, and examples/distributed_serving.cpp all build the
// same artifacts from the same (name, spec) inputs, which is what lets a CI
// job launch two fresh shard processes and a load generator that agree on
// the fleet, and lets the bit-identity test compare a routed response
// against a local engine's logits.
//
// Determinism contract: same spec + same name/seed => bit-identical weights
// (and a bit-identical calibrated quantized twin) in every process on the
// same platform. Serving cost depends only on the shapes (T, V, Nx, Ny),
// never on weight values, so random weights measure exactly what trained
// weights would (same reasoning as bench_serving's make_serving_model).

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/dataset.hpp"
#include "dfr/model_io.hpp"
#include "linalg/matrix.hpp"

namespace dfr::serve {

/// Shape + seed of one synthetic serving model.
struct SynthModelSpec {
  std::size_t channels = 2;   // series channels (V)
  int num_classes = 4;        // readout rows (Ny)
  std::size_t nodes = 30;     // virtual nodes (Nx, the paper's shape)
  std::uint64_t seed = 42;    // weight seed; vary per model id
  /// Attach a calibrated fixed-point twin so quantized traffic routes.
  bool quantized = true;
};

/// Deployment-shaped artifact with deterministic random weights (binary
/// mask, uniform readout) under `name`. With spec.quantized, the artifact
/// carries a QuantizedDfr twin calibrated on make_synth_dataset(spec, ...),
/// so QuantizedEngineKind requests resolve.
[[nodiscard]] ModelArtifactPtr make_synth_artifact(std::string name,
                                                   const SynthModelSpec& spec);

/// One deterministic T x V series (uniform in [-1, 1]) for request traffic.
[[nodiscard]] Matrix make_synth_series(std::size_t steps, std::size_t channels,
                                       std::uint64_t seed);

/// Labeled dataset of such series (labels round-robin the classes); used as
/// the quantization-calibration corpus and as loadgen/test traffic.
[[nodiscard]] Dataset make_synth_dataset(const SynthModelSpec& spec,
                                         std::size_t samples,
                                         std::size_t steps,
                                         std::uint64_t seed);

}  // namespace dfr::serve
