#pragma once
// Deterministic fault injection for the sharded serving tier — the harness
// that lets tests and the CI chaos-smoke job CREATE the dirty failures the
// router's deadline/retry/breaker machinery exists to survive: a shard that
// accepts a request and never replies (stall), replies late (delay), replies
// with garbage bytes behind a valid frame header, closes the connection with
// a response frame half-written, or accepts connections only to drop them.
//
// The injector is owned by ShardServer (serve/shard.hpp): the dfr_shard
// binary arms it from `--fault stall:p|delay:ms:p|garbage:p|
// close-mid-frame:p|drop-accept:p`, and tests arm it in-process through
// ShardServer::set_fault — including rewriting the spec mid-traffic, which
// is how scripted schedules (fail N times, then heal) drive the breaker
// through open -> half-open -> closed deterministically.
//
// Determinism: every decision hashes (seed, decision counter) through the
// repo's counter-based hash (util/rng.hpp hash_combine), so a given seed
// yields the same fault sequence on every run and probability-1.0 specs
// fire on every decision regardless of seed. Faults apply ONLY to inference
// traffic (and drop-accept to the accept loop): health probes always answer,
// so a wedged shard still looks alive to the router's poller — exactly the
// flapping-fleet shape the breaker's half-open probes must cope with.

#include <cstdint>
#include <string>
#include <string_view>

#include <atomic>
#include <mutex>

namespace dfr::serve {

/// One armed fault. `limit` bounds how many times it fires before the
/// injector goes quiet (kNone behavior) — the deterministic "fail exactly
/// once, then heal" shape the retry-budget tests script; the CLI leaves it
/// unlimited.
struct FaultSpec {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kStall,          // accept the request, never reply
    kDelay,          // reply after delay_ms
    kGarbage,        // reply with a valid header over a garbage body
    kCloseMidFrame,  // write half the response frame, then close
    kDropAccept,     // accept the connection, then close it immediately
  };

  Kind kind = Kind::kNone;
  double probability = 0.0;  // per-decision fire chance in [0, 1]
  std::uint64_t delay_ms = 0;  // kDelay only
  std::uint64_t limit = ~std::uint64_t{0};  // max fires before going quiet
};

[[nodiscard]] const char* fault_kind_name(FaultSpec::Kind kind) noexcept;

/// Parse "none" | "stall:p" | "delay:ms:p" | "garbage:p" |
/// "close-mid-frame:p" | "drop-accept:p" (p in [0,1]); throws CheckError on
/// anything else.
[[nodiscard]] FaultSpec parse_fault_spec(std::string_view text);

/// Thread-safe deterministic fault decider. Each draw consumes one position
/// of the (seed, counter) hash stream whether or not it fires, so the fire
/// pattern of a given seed is independent of request interleaving count-wise
/// (concurrent connections race for counter positions, but the SEQUENCE of
/// verdicts is fixed — and p = 1.0, the testing workhorse, is
/// interleaving-proof).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultSpec spec, std::uint64_t seed = 0) {
    arm(spec, seed);
  }

  /// Swap the armed spec (and reset the fire budget); safe mid-traffic.
  void arm(FaultSpec spec, std::uint64_t seed = 0);
  [[nodiscard]] FaultSpec spec() const;

  /// Decide the fault (if any) for the next inference response.
  /// kDropAccept specs never fire here — they belong to the accept loop.
  [[nodiscard]] FaultSpec draw_response_fault();

  /// Decide whether the accept loop should drop the next connection
  /// (kDropAccept specs only).
  [[nodiscard]] bool draw_accept_drop();

  /// Faults actually fired since arm().
  [[nodiscard]] std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] bool fire_locked();

  mutable std::mutex mutex_;
  FaultSpec spec_;            // guarded by mutex_
  std::uint64_t seed_ = 0;    // guarded by mutex_
  std::uint64_t seq_ = 0;     // decision counter, guarded by mutex_
  std::uint64_t fired_ = 0;   // fires since arm(), guarded by mutex_
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace dfr::serve
