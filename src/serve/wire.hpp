#pragma once
// Wire protocol for the sharded serving tier: compact length-prefixed binary
// frames over Unix-domain or TCP sockets, connecting the router
// (serve/router.hpp) to shard workers (serve/shard.hpp, the dfr_shard
// binary).
//
// Framing
// -------
// Every message is one frame: a fixed 24-byte header (FrameHeader below —
// magic, protocol version, message type, client-assigned correlation seq,
// body byte count) followed by `body_bytes` of message-specific payload.
// All integers are little-endian; doubles cross the wire as their host
// IEEE-754 bit pattern (memcpy), so a series round-trips BIT-identically —
// including NaN payloads, signed zeros, infinities, and denormals — and a
// request served through a socket produces the same logits bits as the same
// request served in-process.
//
// Message bodies (after the header):
//   kInferRequest   u8 engine_family (0 float / 1 quantized)
//                   u8 engine_kind   (0 auto / 1 scalar / 2 simd)
//                   u16 reserved (zero)
//                   i32 priority | u64 deadline_us        (RequestOptions)
//                   u32 model_id_len | model_id bytes
//                   u64 rows | u64 cols | rows*cols f64   (the series)
//   kInferResponse  i32 status (WireStatus) | i32 label | f64 latency_us
//                   u32 logits_len | logits_len f64
//   kHealthRequest  (empty)
//   kHealthResponse u8 accepting | u8 draining | u16 queue_depth | u32 models
//                   u32 queue_capacity | f64 ewma_service_us   (v2 extension)
//   kDrainRequest   (empty)
//   kDrainResponse  (empty; sent AFTER the shard finished draining)
//
// Versioning: v2 is a body-compatible minor extension of v1 — it reuses the
// u16 the v1 health body reserved (now the shard queue depth) and APPENDS
// the queue-capacity/EWMA fields; no other message changed. Decoders accept
// any version in [kWireVersionMin, kWireVersion] and discriminate the health
// body by its length (a v1 8-byte body decodes with zeroed load fields), so
// a v2 router drives a v1 shard and vice versa.
//
// Robustness
// ----------
// Decoding never trusts a length field: every read is bounds-checked against
// the bytes actually present, products like rows*cols are bounded in
// division form before any multiplication (the same overflow-safe style as
// the .dfrm v2 reader in serve/artifact_store.cpp), a declared body larger
// than kMaxFrameBytes is rejected before a single payload byte is read or
// allocated, and a frame whose body does not END exactly where its last
// field does (trailing garbage) is rejected too. Malformed frames throw
// typed CheckError; transport failures (peer died mid-frame, connection
// refused/reset) throw WireIoError — the distinction is what lets the
// router retry a replica on an I/O failure while never retrying a request
// the shard actually rejected.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "serve/server.hpp"

namespace dfr::serve::wire {

inline constexpr char kMagic[4] = {'D', 'F', 'R', 'W'};
/// Current protocol version (written into every encoded frame).
inline constexpr std::uint16_t kWireVersion = 2;
/// Oldest version still decoded (v1 health bodies lack the load fields).
inline constexpr std::uint16_t kWireVersionMin = 1;
/// Hard cap on one frame's body; a declared length beyond it is rejected
/// before any allocation (64 MiB comfortably fits every real series).
inline constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;

enum class MessageType : std::uint16_t {
  kInferRequest = 1,
  kInferResponse = 2,
  kHealthRequest = 3,
  kHealthResponse = 4,
  kDrainRequest = 5,
  kDrainResponse = 6,
};

/// Fixed frame header. Explicit layout pinned by the static_asserts — the
/// struct bytes ARE the wire bytes (little-endian hosts only, like .dfrm).
struct FrameHeader {
  char magic[4];            // "DFRW"
  std::uint16_t version;    // kWireVersion
  std::uint16_t type;       // MessageType
  std::uint64_t seq;        // client-assigned; echoed in the response
  std::uint64_t body_bytes; // payload bytes following this header
};

static_assert(sizeof(FrameHeader) == 24,
              "FrameHeader layout is part of the wire format");
static_assert(alignof(FrameHeader) == 8,
              "FrameHeader must be plain 8-byte-aligned POD");

/// Typed response status: values 0..6 mirror RequestStatus one-to-one (the
/// shard maps its server's status straight through). Values from
/// kUnavailable up are ROUTER-generated and never encoded by a shard;
/// kTimeout and kBreakerOpen additionally never cross the wire at all
/// (decode_response rejects them — they exist so callers can tell "the
/// deadline budget ran out" and "every breaker was open, nothing was even
/// dialed" apart from "every replica was dialed and failed").
enum class WireStatus : std::int32_t {
  kOk = 0,
  kQueueFull,
  kUnknownModel,
  kInvalidArgument,
  kInternalError,
  kShutdown,
  kDeadlineExceeded,
  kUnavailable,   // router: every replica attempt failed
  kTimeout,       // router: per-request deadline budget exhausted
  kBreakerOpen,   // router: all replicas' circuit breakers open — no dial
};

static_assert(static_cast<int>(WireStatus::kDeadlineExceeded) ==
                  static_cast<int>(RequestStatus::kDeadlineExceeded),
              "WireStatus must mirror RequestStatus");

[[nodiscard]] const char* wire_status_name(WireStatus status) noexcept;

[[nodiscard]] constexpr WireStatus to_wire_status(RequestStatus s) noexcept {
  return static_cast<WireStatus>(static_cast<std::int32_t>(s));
}

/// One inference request as it crosses the wire. `series` is owned on the
/// decode side (the shard needs storage that outlives the frame buffer);
/// encoding reads the caller's matrix without copying it first.
struct WireRequest {
  std::uint64_t seq = 0;
  std::string model_id;
  RequestOptions options;
  Matrix series;
};

struct WireResponse {
  std::uint64_t seq = 0;
  WireStatus status = WireStatus::kOk;
  std::int32_t label = -1;
  double latency_us = 0.0;  // shard-side submit -> completion
  Vector logits;
};

/// Shard health snapshot (kHealthResponse body). The load fields (queue
/// depth, capacity, EWMA service time) are the v2 extension the router's
/// load-aware replica choice feeds on; a v1 shard reports them as zero.
struct HealthInfo {
  bool accepting = false;  // admitting new inference requests
  bool draining = false;   // drain begun (or completed)
  std::uint32_t models = 0;  // registered model count (readiness signal)
  /// Requests pending/executing/unharvested in the shard's bounded queue at
  /// probe time (the instantaneous load signal; saturates at 65535 on the
  /// wire).
  std::uint32_t queue_depth = 0;
  std::uint32_t queue_capacity = 0;  // the shard's bounded-queue size
  /// EWMA of the shard's recent per-request service times, µs (0 until the
  /// first completion trains it).
  double ewma_service_us = 0.0;
};

// ---- encoding (frame = header + body, appended into a reusable buffer) ----

void encode_request(const WireRequest& request, const Matrix& series,
                    std::vector<std::byte>& frame);
inline void encode_request(const WireRequest& request,
                           std::vector<std::byte>& frame) {
  encode_request(request, request.series, frame);
}
void encode_response(const WireResponse& response,
                     std::vector<std::byte>& frame);
void encode_health_request(std::uint64_t seq, std::vector<std::byte>& frame);
void encode_health_response(const HealthInfo& info, std::uint64_t seq,
                            std::vector<std::byte>& frame);
void encode_drain_request(std::uint64_t seq, std::vector<std::byte>& frame);
void encode_drain_response(std::uint64_t seq, std::vector<std::byte>& frame);

// ---- decoding (typed CheckError on any malformed input) --------------------

/// Validate and return the header of a complete frame: magic, version, a
/// known type, body cap, and body_bytes == frame.size() - sizeof(header).
[[nodiscard]] FrameHeader decode_header(std::span<const std::byte> frame);

[[nodiscard]] WireRequest decode_request(std::span<const std::byte> frame);
[[nodiscard]] WireResponse decode_response(std::span<const std::byte> frame);
[[nodiscard]] HealthInfo decode_health_response(
    std::span<const std::byte> frame);

// ---- transport -------------------------------------------------------------

/// Absolute completion budget for one transport operation. All deadline IO
/// below is poll-gated: every recv/send/connect waits readiness only up to
/// the deadline and throws a typed WireIoError{kTimeout} on expiry, so a
/// peer that accepts and then stalls mid-frame can never park a caller
/// forever. Default-constructed = no deadline (block indefinitely).
struct Deadline {
  std::chrono::steady_clock::time_point at =
      std::chrono::steady_clock::time_point::max();

  [[nodiscard]] static Deadline never() noexcept { return {}; }
  [[nodiscard]] static Deadline after_us(std::uint64_t us) noexcept {
    return Deadline{std::chrono::steady_clock::now() +
                    std::chrono::microseconds(us)};
  }

  [[nodiscard]] bool unlimited() const noexcept {
    return at == std::chrono::steady_clock::time_point::max();
  }
  [[nodiscard]] bool expired() const noexcept {
    return !unlimited() && std::chrono::steady_clock::now() >= at;
  }
  /// Budget left, µs (0 when expired; huge when unlimited).
  [[nodiscard]] std::uint64_t remaining_us() const noexcept {
    if (unlimited()) return ~std::uint64_t{0};
    const auto left = at - std::chrono::steady_clock::now();
    if (left <= std::chrono::steady_clock::duration::zero()) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(left).count());
  }
  /// poll() timeout for the remaining budget: -1 when unlimited, otherwise
  /// clamped to [1, INT_MAX] ms — rounding UP so a sub-millisecond budget
  /// still polls once instead of spinning at timeout 0.
  [[nodiscard]] int poll_timeout_ms() const noexcept;
};

/// Transport-layer failure: connect refused, peer reset, EOF mid-frame, or
/// a deadline expiring mid-operation. Distinct from CheckError (malformed
/// data) so callers can retry replicas on I/O failures without ever
/// retrying a request a shard rejected. The Kind tells a wedged peer
/// (kTimeout — the shard is up but silent) apart from a vanished one
/// (kEof/kReset) for error-taxonomy accounting; the retry decision treats
/// them identically (nothing authoritative came back).
class WireIoError : public std::runtime_error {
 public:
  enum class Kind {
    kOther,    // connect/resolve failure, unclassified errno
    kEof,      // peer closed mid-frame
    kReset,    // ECONNRESET / EPIPE: peer died with the frame in flight
    kTimeout,  // deadline expired before the operation completed
  };

  explicit WireIoError(const std::string& what, Kind kind = Kind::kOther)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// A shard address: "unix:/path/to.sock" or "tcp:host:port".
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string host_or_path;  // socket path (unix) or host (tcp)
  std::uint16_t port = 0;    // tcp only; 0 lets the kernel pick (listen)
  [[nodiscard]] std::string to_string() const;
};

/// Parse "unix:/path" / "tcp:host:port"; throws CheckError on anything else.
[[nodiscard]] Endpoint parse_endpoint(std::string_view spec);

/// Bind + listen. Unix endpoints unlink a stale socket file first. Returns
/// the listening fd; throws CheckError on failure.
[[nodiscard]] int listen_endpoint(const Endpoint& endpoint, int backlog = 64);

/// The port a tcp listening fd actually bound (resolves port 0).
[[nodiscard]] std::uint16_t bound_port(int listen_fd);

/// Connect to a shard, completing within `deadline` (nonblocking connect +
/// poll + SO_ERROR; the fd is returned in blocking mode). Throws
/// WireIoError on failure (a dead shard is a retryable transport
/// condition, not a protocol error) — WireIoError{kTimeout} when the
/// deadline expires first.
[[nodiscard]] int connect_endpoint(const Endpoint& endpoint,
                                   Deadline deadline);
[[nodiscard]] inline int connect_endpoint(const Endpoint& endpoint) {
  return connect_endpoint(endpoint, Deadline::never());
}

/// Write one complete frame within `deadline`, handling partial writes and
/// EINTR (every send is poll-gated MSG_DONTWAIT, so the fd's blocking mode
/// is irrelevant). Throws WireIoError when the peer is gone (SIGPIPE
/// suppressed via MSG_NOSIGNAL) or WireIoError{kTimeout} on expiry.
void write_frame(int fd, std::span<const std::byte> frame, Deadline deadline);
inline void write_frame(int fd, std::span<const std::byte> frame) {
  write_frame(fd, frame, Deadline::never());
}

/// Read one complete frame into `frame` within `deadline` (header validated
/// before the body is sized or read, so a hostile length never
/// over-allocates and the body is never over-read). Returns false on clean
/// EOF at a frame boundary; throws WireIoError on EOF/error mid-frame,
/// WireIoError{kTimeout} when the peer stalls at ANY byte offset past the
/// deadline, and CheckError on a malformed header.
[[nodiscard]] bool read_frame(int fd, std::vector<std::byte>& frame,
                              Deadline deadline);
[[nodiscard]] inline bool read_frame(int fd, std::vector<std::byte>& frame) {
  return read_frame(fd, frame, Deadline::never());
}

}  // namespace dfr::serve::wire
