#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace dfr {
namespace {

/// Shared-ownership constructors must fail with the subsystem's typed error
/// on a null handle (e.g. registry.get() of an evicted id passed straight
/// through), not dereference it.
ModelArtifactPtr checked_artifact(ModelArtifactPtr model) {
  DFR_CHECK_MSG(model != nullptr, "null model artifact");
  return model;
}

const QuantizedDfr& checked_deref(
    const std::shared_ptr<const QuantizedDfr>& model) {
  DFR_CHECK_MSG(model != nullptr, "null quantized model");
  return *model;
}

}  // namespace

// ---- FloatDatapath ---------------------------------------------------------

FloatDatapath::FloatDatapath(const Mask& mask, const DfrParams& params,
                             Nonlinearity f)
    : mask_(&mask), params_(params), reservoir_(mask.nodes(), f) {}

FloatDatapath::FloatDatapath(ModelArtifactPtr model)
    : artifact_(checked_artifact(std::move(model))),
      mask_(&artifact_->mask),
      params_(artifact_->params),
      reservoir_(artifact_->mask.nodes(), artifact_->nonlinearity),
      readout_(&artifact_->readout) {}

FloatDatapath::FloatDatapath(const LoadedModel& model)
    : FloatDatapath(model.artifact()) {}

void FloatDatapath::mask_into(std::span<const double> input,
                              std::span<double> j) const {
  mask_->apply_into(input, j);
}

void FloatDatapath::step(std::span<const double> j,
                         std::span<const double> x_prev,
                         std::span<double> x_out) const {
  reservoir_.step(params_, j, x_prev, x_out);
}

void FloatDatapath::finalize(Vector& r, std::size_t t_len) const {
  scale(r, dprr_time_scale(t_len));  // time-averaged DPRR (see dprr.hpp)
}

// ---- QuantizedDatapath -----------------------------------------------------

QuantizedDatapath::QuantizedDatapath(const QuantizedDfr& model)
    : mask_(&model.model().mask),
      params_(model.model().params),
      f_(model.model().nonlinearity),
      state_format_(model.config().state_format),
      feature_format_(model.config().feature_format),
      state_scale_(model.scales().state),
      feature_scale_(model.scales().feature),
      readout_(&model.quantized_readout()) {}

QuantizedDatapath::QuantizedDatapath(std::shared_ptr<const QuantizedDfr> model)
    : QuantizedDatapath(checked_deref(model)) {
  owner_ = std::move(model);
}

void QuantizedDatapath::mask_into(std::span<const double> input,
                                  std::span<double> j) const {
  mask_->apply_into(input, j);
  const double inv_state = 1.0 / state_scale_;
  for (double& v : j) v = state_format_.quantize(v * inv_state);
}

void QuantizedDatapath::step(std::span<const double> j,
                             std::span<const double> x_prev,
                             std::span<double> x_out) const {
  const std::size_t nx = x_prev.size();
  double prev_node = x_prev[nx - 1];  // x(k)_0 = x(k-1)_{Nx}
  for (std::size_t n = 0; n < nx; ++n) {
    const double s = state_format_.quantize(j[n] + x_prev[n]);
    const double value = params_.a * f_.value(s) + params_.b * prev_node;
    prev_node = state_format_.quantize(value);
    x_out[n] = prev_node;
  }
}

void QuantizedDatapath::finalize(Vector& r, std::size_t t_len) const {
  // Time-average (matches the trained readout) plus residual prescale.
  scale(r, dprr_time_scale(t_len) / feature_scale_);
  feature_format_.quantize(r);
}

// ---- SimdFloatDatapath -----------------------------------------------------

SimdFloatDatapath::SimdFloatDatapath(const Mask& mask, const DfrParams& params,
                                     Nonlinearity f, simd::Backend backend)
    : mask_(&mask), params_(params), f_(f),
      kernels_(&simd::kernels_for(backend)) {
  DFR_CHECK_MSG(mask.nodes() > 0, "reservoir needs at least one virtual node");
}

SimdFloatDatapath::SimdFloatDatapath(ModelArtifactPtr model)
    : SimdFloatDatapath(std::move(model), simd::active_backend()) {}

SimdFloatDatapath::SimdFloatDatapath(ModelArtifactPtr model,
                                     simd::Backend backend)
    : artifact_(checked_artifact(std::move(model))),
      mask_(&artifact_->mask),
      params_(artifact_->params),
      f_(artifact_->nonlinearity),
      kernels_(&simd::kernels_for(backend)),
      readout_(&artifact_->readout) {
  DFR_CHECK_MSG(artifact_->mask.nodes() > 0,
                "reservoir needs at least one virtual node");
}

SimdFloatDatapath::SimdFloatDatapath(const LoadedModel& model)
    : SimdFloatDatapath(model.artifact(), simd::active_backend()) {}

SimdFloatDatapath::SimdFloatDatapath(const LoadedModel& model,
                                     simd::Backend backend)
    : SimdFloatDatapath(model.artifact(), backend) {}

void SimdFloatDatapath::mask_into(std::span<const double> input,
                                  std::span<double> j) const {
  mask_->apply_into(input, j);
}

void SimdFloatDatapath::step(std::span<const double> j,
                             std::span<const double> x_prev,
                             std::span<double> x_out) const {
  const std::size_t nx = x_prev.size();
  DFR_DCHECK(j.size() == nx && x_out.size() == nx);
  DFR_DCHECK(x_out.data() != x_prev.data() && x_out.data() != j.data());
  // Vectorized stage: x_out[n] = A * f~(j[n] + x_prev[n]).
  kernels_->preadd_nonlin(f_, params_.a, j.data(), x_prev.data(), x_out.data(),
                          nx);
  // Serialized B-chain, head continued from x(k-1)_{Nx}. Same operation
  // order as ModularReservoir::step (one multiply, one add per node), so the
  // step stage rounds identically to the scalar pipeline.
  double prev_node = x_prev[nx - 1];
  for (std::size_t n = 0; n < nx; ++n) {
    prev_node = x_out[n] + params_.b * prev_node;
    x_out[n] = prev_node;
  }
}

void SimdFloatDatapath::dprr_add(DprrAccumulator& acc,
                                 std::span<const double> x_k,
                                 std::span<const double> x_km1) const {
  DFR_DCHECK(x_k.size() == acc.nx() && x_km1.size() == acc.nx());
  kernels_->dprr_add(acc.raw().data(), x_k.data(), x_km1.data(), acc.nx());
  acc.count_step();
}

void SimdFloatDatapath::finalize(Vector& r, std::size_t t_len) const {
  scale(r, dprr_time_scale(t_len));  // time-averaged DPRR (see dprr.hpp)
}

// ---- SimdQuantizedDatapath -------------------------------------------------

SimdQuantizedDatapath::SimdQuantizedDatapath(const QuantizedDfr& model)
    : SimdQuantizedDatapath(model, simd::active_backend()) {}

SimdQuantizedDatapath::SimdQuantizedDatapath(const QuantizedDfr& model,
                                             simd::Backend backend)
    : mask_(&model.model().mask),
      params_(model.model().params),
      f_(model.model().nonlinearity),
      state_format_(model.config().state_format),
      feature_format_(model.config().feature_format),
      state_scale_(model.scales().state),
      feature_scale_(model.scales().feature),
      kernels_(&simd::kernels_for(backend)),
      readout_(&model.quantized_readout()) {
  DFR_CHECK_MSG(mask_->nodes() > 0, "reservoir needs at least one virtual node");
}

SimdQuantizedDatapath::SimdQuantizedDatapath(
    std::shared_ptr<const QuantizedDfr> model)
    : SimdQuantizedDatapath(std::move(model), simd::active_backend()) {}

SimdQuantizedDatapath::SimdQuantizedDatapath(
    std::shared_ptr<const QuantizedDfr> model, simd::Backend backend)
    : SimdQuantizedDatapath(checked_deref(model), backend) {
  owner_ = std::move(model);
}

void SimdQuantizedDatapath::mask_into(std::span<const double> input,
                                      std::span<double> j) const {
  mask_->apply_into(input, j);
  // Same ops as the scalar path: v = Q_state(v * (1/state_scale)), fused
  // into one vectorized pass (scale_quantize is elementwise, so the pass
  // fusion cannot change per-element rounding).
  kernels_->scale_quantize(state_format_, 1.0 / state_scale_, j.data(),
                           j.size());
}

void SimdQuantizedDatapath::step(std::span<const double> j,
                                 std::span<const double> x_prev,
                                 std::span<double> x_out) const {
  const std::size_t nx = x_prev.size();
  DFR_DCHECK(j.size() == nx && x_out.size() == nx);
  DFR_DCHECK(x_out.data() != x_prev.data() && x_out.data() != j.data());
  // Vectorized stage: x_out[n] = A * f~( Q_state(j[n] + x_prev[n]) ).
  kernels_->quant_preadd_nonlin(f_, params_.a, state_format_, j.data(),
                                x_prev.data(), x_out.data(), nx);
  // Serialized quantized B-chain, head continued from x(k-1)_{Nx}. Same
  // operation order as QuantizedDatapath::step (one multiply, one add, one
  // round-to-format per node), so the stage rounds identically to the
  // scalar fixed-point pipeline.
  double prev_node = x_prev[nx - 1];
  for (std::size_t n = 0; n < nx; ++n) {
    const double value = x_out[n] + params_.b * prev_node;
    prev_node = state_format_.quantize(value);
    x_out[n] = prev_node;
  }
}

void SimdQuantizedDatapath::dprr_add(DprrAccumulator& acc,
                                     std::span<const double> x_k,
                                     std::span<const double> x_km1) const {
  DFR_DCHECK(x_k.size() == acc.nx() && x_km1.size() == acc.nx());
  // The exact kernel: two roundings per accumulate like DprrAccumulator::add
  // (never FMA), so quantized features carry no ULP drift to bound.
  kernels_->dprr_add_exact(acc.raw().data(), x_k.data(), x_km1.data(),
                           acc.nx());
  acc.count_step();
}

void SimdQuantizedDatapath::finalize(Vector& r, std::size_t t_len) const {
  // Time-average plus residual prescale plus feature quantization — the
  // same per-element ops as QuantizedDatapath::finalize, one fused pass.
  kernels_->scale_quantize(feature_format_,
                           dprr_time_scale(t_len) / feature_scale_, r.data(),
                           r.size());
}

// ---- BasicEngine -----------------------------------------------------------

template <InferenceDatapath P>
BasicEngine<P>::BasicEngine(P datapath)
    : datapath_(std::move(datapath)),
      j_(datapath_.nodes(), 0.0),
      x_prev_(datapath_.nodes(), 0.0),
      x_cur_(datapath_.nodes(), 0.0),
      r_(dprr_dim(datapath_.nodes()), 0.0),
      logits_(datapath_.readout()
                  ? static_cast<std::size_t>(datapath_.readout()->num_classes())
                  : 0,
              0.0),
      dprr_(datapath_.nodes()) {}

template <InferenceDatapath P>
std::span<const double> BasicEngine<P>::features(const Matrix& series) {
  DFR_CHECK_MSG(series.cols() == datapath_.channels(),
                "series channel count != mask width");
  DFR_CHECK_MSG(series.rows() >= 1, "series needs at least one time step");
  std::fill(x_prev_.begin(), x_prev_.end(), 0.0);  // x(0) = 0
  dprr_.reset();
  for (std::size_t k = 0; k < series.rows(); ++k) {
    datapath_.mask_into(series.row(k), j_);
    datapath_.step(j_, x_prev_, x_cur_);
    if constexpr (requires { datapath_.dprr_add(dprr_, x_cur_, x_prev_); }) {
      datapath_.dprr_add(dprr_, x_cur_, x_prev_);  // policy-owned (SIMD) path
    } else {
      dprr_.add(x_cur_, x_prev_);
    }
    std::swap(x_prev_, x_cur_);  // pointer swap: no allocation
  }
  std::copy(dprr_.features().begin(), dprr_.features().end(), r_.begin());
  datapath_.finalize(r_, series.rows());
  return r_;
}

template <InferenceDatapath P>
std::span<const double> BasicEngine<P>::infer(const Matrix& series) {
  const OutputLayer* out = datapath_.readout();
  DFR_CHECK_MSG(out != nullptr, "features-only datapath has no readout");
  features(series);
  out->logits_into(r_, logits_);
  return logits_;
}

template <InferenceDatapath P>
int BasicEngine<P>::classify(const Matrix& series) {
  infer(series);
  return static_cast<int>(
      std::max_element(logits_.begin(), logits_.end()) - logits_.begin());
}

template <InferenceDatapath P>
Vector BasicEngine<P>::probabilities(const Matrix& series) {
  return softmax(infer(series));
}

template class BasicEngine<FloatDatapath>;
template class BasicEngine<QuantizedDatapath>;
template class BasicEngine<SimdFloatDatapath>;
template class BasicEngine<SimdQuantizedDatapath>;

// ---- batch serving ---------------------------------------------------------

InferenceEngine make_engine(const LoadedModel& model) {
  return InferenceEngine(FloatDatapath(model));
}

InferenceEngine make_engine(ModelArtifactPtr model) {
  return InferenceEngine(FloatDatapath(std::move(model)));
}

QuantizedInferenceEngine make_engine(const QuantizedDfr& model) {
  return QuantizedInferenceEngine(QuantizedDatapath(model));
}

QuantizedInferenceEngine make_engine(std::shared_ptr<const QuantizedDfr> model) {
  return QuantizedInferenceEngine(QuantizedDatapath(std::move(model)));
}

SimdInferenceEngine make_simd_engine(const LoadedModel& model) {
  return SimdInferenceEngine(SimdFloatDatapath(model));
}

SimdInferenceEngine make_simd_engine(const LoadedModel& model,
                                     simd::Backend backend) {
  return SimdInferenceEngine(SimdFloatDatapath(model, backend));
}

SimdInferenceEngine make_simd_engine(ModelArtifactPtr model) {
  return SimdInferenceEngine(SimdFloatDatapath(std::move(model)));
}

SimdInferenceEngine make_simd_engine(ModelArtifactPtr model,
                                     simd::Backend backend) {
  return SimdInferenceEngine(SimdFloatDatapath(std::move(model), backend));
}

SimdQuantizedInferenceEngine make_simd_engine(const QuantizedDfr& model) {
  return SimdQuantizedInferenceEngine(SimdQuantizedDatapath(model));
}

SimdQuantizedInferenceEngine make_simd_engine(const QuantizedDfr& model,
                                              simd::Backend backend) {
  return SimdQuantizedInferenceEngine(SimdQuantizedDatapath(model, backend));
}

SimdQuantizedInferenceEngine make_simd_engine(
    std::shared_ptr<const QuantizedDfr> model) {
  return SimdQuantizedInferenceEngine(SimdQuantizedDatapath(std::move(model)));
}

SimdQuantizedInferenceEngine make_simd_engine(
    std::shared_ptr<const QuantizedDfr> model, simd::Backend backend) {
  return SimdQuantizedInferenceEngine(
      SimdQuantizedDatapath(std::move(model), backend));
}

namespace {

template <typename MakeEngine, typename SeriesAt>
std::vector<int> classify_batch_impl(std::size_t n, unsigned threads,
                                     const MakeEngine& make_engine_fn,
                                     const SeriesAt& series_at) {
  std::vector<int> out(n);
  for_each_with_engine(n, threads, make_engine_fn,
                       [&](auto& engine, std::size_t i) {
                         out[i] = engine.classify(series_at(i));
                       });
  return out;
}

}  // namespace

std::vector<int> classify_batch(const ModelArtifactPtr& model,
                                std::span<const Matrix> series,
                                unsigned threads, FloatEngineKind engine) {
  if (engine == FloatEngineKind::kScalar) {
    return classify_batch_impl(
        series.size(), threads, [&] { return make_engine(model); },
        [&](std::size_t i) -> const Matrix& { return series[i]; });
  }
  // kAuto / kSimd: resolve the dispatched backend once, outside the workers.
  const simd::Backend backend = simd::active_backend();
  return classify_batch_impl(
      series.size(), threads, [&] { return make_simd_engine(model, backend); },
      [&](std::size_t i) -> const Matrix& { return series[i]; });
}

std::vector<int> classify_batch(const LoadedModel& model,
                                std::span<const Matrix> series,
                                unsigned threads, FloatEngineKind engine) {
  // Snapshot once; every worker engine shares the one immutable artifact.
  return classify_batch(model.artifact(), series, threads, engine);
}

std::vector<int> classify_batch(const QuantizedDfr& model,
                                std::span<const Matrix> series,
                                unsigned threads, QuantizedEngineKind engine) {
  if (engine == QuantizedEngineKind::kScalar) {
    return classify_batch_impl(
        series.size(), threads, [&] { return make_engine(model); },
        [&](std::size_t i) -> const Matrix& { return series[i]; });
  }
  // kAuto / kSimd: resolve the dispatched backend once, outside the workers.
  const simd::Backend backend = simd::active_backend();
  return classify_batch_impl(
      series.size(), threads, [&] { return make_simd_engine(model, backend); },
      [&](std::size_t i) -> const Matrix& { return series[i]; });
}

std::vector<int> classify_batch(const ModelArtifactPtr& model,
                                const Dataset& data, unsigned threads,
                                FloatEngineKind engine) {
  if (engine == FloatEngineKind::kScalar) {
    return classify_batch_impl(
        data.size(), threads, [&] { return make_engine(model); },
        [&](std::size_t i) -> const Matrix& { return data[i].series; });
  }
  const simd::Backend backend = simd::active_backend();
  return classify_batch_impl(
      data.size(), threads, [&] { return make_simd_engine(model, backend); },
      [&](std::size_t i) -> const Matrix& { return data[i].series; });
}

std::vector<int> classify_batch(const LoadedModel& model, const Dataset& data,
                                unsigned threads, FloatEngineKind engine) {
  return classify_batch(model.artifact(), data, threads, engine);
}

std::vector<int> classify_batch(const QuantizedDfr& model, const Dataset& data,
                                unsigned threads, QuantizedEngineKind engine) {
  if (engine == QuantizedEngineKind::kScalar) {
    return classify_batch_impl(
        data.size(), threads, [&] { return make_engine(model); },
        [&](std::size_t i) -> const Matrix& { return data[i].series; });
  }
  const simd::Backend backend = simd::active_backend();
  return classify_batch_impl(
      data.size(), threads, [&] { return make_simd_engine(model, backend); },
      [&](std::size_t i) -> const Matrix& { return data[i].series; });
}

}  // namespace dfr
