#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace dfr {
namespace {

/// Shared-ownership constructors must fail with the subsystem's typed error
/// on a null handle (e.g. registry.get() of an evicted id passed straight
/// through), not dereference it.
ModelArtifactPtr checked_artifact(ModelArtifactPtr model) {
  DFR_CHECK_MSG(model != nullptr, "null model artifact");
  return model;
}

const QuantizedDfr& checked_deref(
    const std::shared_ptr<const QuantizedDfr>& model) {
  DFR_CHECK_MSG(model != nullptr, "null quantized model");
  return *model;
}

}  // namespace

// ---- FloatDatapath ---------------------------------------------------------

FloatDatapath::FloatDatapath(const Mask& mask, const DfrParams& params,
                             Nonlinearity f)
    : mask_(&mask), params_(params), reservoir_(mask.nodes(), f) {}

FloatDatapath::FloatDatapath(ModelArtifactPtr model)
    : artifact_(checked_artifact(std::move(model))),
      mask_(&artifact_->mask),
      params_(artifact_->params),
      reservoir_(artifact_->mask.nodes(), artifact_->nonlinearity),
      readout_(&artifact_->readout) {}

FloatDatapath::FloatDatapath(const LoadedModel& model)
    : FloatDatapath(model.artifact()) {}

void FloatDatapath::mask_into(std::span<const double> input,
                              std::span<double> j) const {
  mask_->apply_into(input, j);
}

void FloatDatapath::step(std::span<const double> j,
                         std::span<const double> x_prev,
                         std::span<double> x_out) const {
  reservoir_.step(params_, j, x_prev, x_out);
}

void FloatDatapath::finalize(Vector& r, std::size_t t_len) const {
  scale(r, dprr_time_scale(t_len));  // time-averaged DPRR (see dprr.hpp)
}

// ---- QuantizedDatapath -----------------------------------------------------

QuantizedDatapath::QuantizedDatapath(const QuantizedDfr& model)
    : mask_(&model.model().mask),
      params_(model.model().params),
      f_(model.model().nonlinearity),
      state_format_(model.config().state_format),
      feature_format_(model.config().feature_format),
      state_scale_(model.scales().state),
      feature_scale_(model.scales().feature),
      readout_(&model.quantized_readout()) {}

QuantizedDatapath::QuantizedDatapath(std::shared_ptr<const QuantizedDfr> model)
    : QuantizedDatapath(checked_deref(model)) {
  owner_ = std::move(model);
}

void QuantizedDatapath::mask_into(std::span<const double> input,
                                  std::span<double> j) const {
  mask_->apply_into(input, j);
  const double inv_state = 1.0 / state_scale_;
  for (double& v : j) v = state_format_.quantize(v * inv_state);
}

void QuantizedDatapath::step(std::span<const double> j,
                             std::span<const double> x_prev,
                             std::span<double> x_out) const {
  const std::size_t nx = x_prev.size();
  double prev_node = x_prev[nx - 1];  // x(k)_0 = x(k-1)_{Nx}
  for (std::size_t n = 0; n < nx; ++n) {
    const double s = state_format_.quantize(j[n] + x_prev[n]);
    const double value = params_.a * f_.value(s) + params_.b * prev_node;
    prev_node = state_format_.quantize(value);
    x_out[n] = prev_node;
  }
}

void QuantizedDatapath::finalize(Vector& r, std::size_t t_len) const {
  // Time-average (matches the trained readout) plus residual prescale.
  scale(r, dprr_time_scale(t_len) / feature_scale_);
  feature_format_.quantize(r);
}

// ---- SimdFloatDatapath -----------------------------------------------------

SimdFloatDatapath::SimdFloatDatapath(const Mask& mask, const DfrParams& params,
                                     Nonlinearity f, simd::Backend backend)
    : mask_(&mask), params_(params), f_(f),
      kernels_(&simd::kernels_for(backend)) {
  DFR_CHECK_MSG(mask.nodes() > 0, "reservoir needs at least one virtual node");
}

SimdFloatDatapath::SimdFloatDatapath(ModelArtifactPtr model)
    : SimdFloatDatapath(std::move(model), simd::active_backend()) {}

SimdFloatDatapath::SimdFloatDatapath(ModelArtifactPtr model,
                                     simd::Backend backend)
    : artifact_(checked_artifact(std::move(model))),
      mask_(&artifact_->mask),
      params_(artifact_->params),
      f_(artifact_->nonlinearity),
      kernels_(&simd::kernels_for(backend)),
      readout_(&artifact_->readout) {
  DFR_CHECK_MSG(artifact_->mask.nodes() > 0,
                "reservoir needs at least one virtual node");
}

SimdFloatDatapath::SimdFloatDatapath(const LoadedModel& model)
    : SimdFloatDatapath(model.artifact(), simd::active_backend()) {}

SimdFloatDatapath::SimdFloatDatapath(const LoadedModel& model,
                                     simd::Backend backend)
    : SimdFloatDatapath(model.artifact(), backend) {}

void SimdFloatDatapath::mask_into(std::span<const double> input,
                                  std::span<double> j) const {
  mask_->apply_into(input, j);
}

void SimdFloatDatapath::step(std::span<const double> j,
                             std::span<const double> x_prev,
                             std::span<double> x_out) const {
  const std::size_t nx = x_prev.size();
  DFR_DCHECK(j.size() == nx && x_out.size() == nx);
  DFR_DCHECK(x_out.data() != x_prev.data() && x_out.data() != j.data());
  // Vectorized stage: x_out[n] = A * f~(j[n] + x_prev[n]).
  kernels_->preadd_nonlin(f_, params_.a, j.data(), x_prev.data(), x_out.data(),
                          nx);
  // Serialized B-chain, head continued from x(k-1)_{Nx}. Same operation
  // order as ModularReservoir::step (one multiply, one add per node), so the
  // step stage rounds identically to the scalar pipeline.
  double prev_node = x_prev[nx - 1];
  for (std::size_t n = 0; n < nx; ++n) {
    prev_node = x_out[n] + params_.b * prev_node;
    x_out[n] = prev_node;
  }
}

void SimdFloatDatapath::dprr_add(DprrAccumulator& acc,
                                 std::span<const double> x_k,
                                 std::span<const double> x_km1) const {
  DFR_DCHECK(x_k.size() == acc.nx() && x_km1.size() == acc.nx());
  kernels_->dprr_add(acc.raw().data(), x_k.data(), x_km1.data(), acc.nx());
  acc.count_step();
}

void SimdFloatDatapath::finalize(Vector& r, std::size_t t_len) const {
  scale(r, dprr_time_scale(t_len));  // time-averaged DPRR (see dprr.hpp)
}

// ---- SimdQuantizedDatapath -------------------------------------------------

SimdQuantizedDatapath::SimdQuantizedDatapath(const QuantizedDfr& model)
    : SimdQuantizedDatapath(model, simd::active_backend()) {}

SimdQuantizedDatapath::SimdQuantizedDatapath(const QuantizedDfr& model,
                                             simd::Backend backend)
    : mask_(&model.model().mask),
      params_(model.model().params),
      f_(model.model().nonlinearity),
      state_format_(model.config().state_format),
      feature_format_(model.config().feature_format),
      state_scale_(model.scales().state),
      feature_scale_(model.scales().feature),
      kernels_(&simd::kernels_for(backend)),
      readout_(&model.quantized_readout()) {
  DFR_CHECK_MSG(mask_->nodes() > 0, "reservoir needs at least one virtual node");
}

SimdQuantizedDatapath::SimdQuantizedDatapath(
    std::shared_ptr<const QuantizedDfr> model)
    : SimdQuantizedDatapath(std::move(model), simd::active_backend()) {}

SimdQuantizedDatapath::SimdQuantizedDatapath(
    std::shared_ptr<const QuantizedDfr> model, simd::Backend backend)
    : SimdQuantizedDatapath(checked_deref(model), backend) {
  owner_ = std::move(model);
}

void SimdQuantizedDatapath::mask_into(std::span<const double> input,
                                      std::span<double> j) const {
  mask_->apply_into(input, j);
  // Same ops as the scalar path: v = Q_state(v * (1/state_scale)), fused
  // into one vectorized pass (scale_quantize is elementwise, so the pass
  // fusion cannot change per-element rounding).
  kernels_->scale_quantize(state_format_, 1.0 / state_scale_, j.data(),
                           j.size());
}

void SimdQuantizedDatapath::step(std::span<const double> j,
                                 std::span<const double> x_prev,
                                 std::span<double> x_out) const {
  const std::size_t nx = x_prev.size();
  DFR_DCHECK(j.size() == nx && x_out.size() == nx);
  DFR_DCHECK(x_out.data() != x_prev.data() && x_out.data() != j.data());
  // Vectorized stage: x_out[n] = A * f~( Q_state(j[n] + x_prev[n]) ).
  kernels_->quant_preadd_nonlin(f_, params_.a, state_format_, j.data(),
                                x_prev.data(), x_out.data(), nx);
  // Serialized quantized B-chain, head continued from x(k-1)_{Nx}. Same
  // operation order as QuantizedDatapath::step (one multiply, one add, one
  // round-to-format per node), so the stage rounds identically to the
  // scalar fixed-point pipeline.
  double prev_node = x_prev[nx - 1];
  for (std::size_t n = 0; n < nx; ++n) {
    const double value = x_out[n] + params_.b * prev_node;
    prev_node = state_format_.quantize(value);
    x_out[n] = prev_node;
  }
}

void SimdQuantizedDatapath::dprr_add(DprrAccumulator& acc,
                                     std::span<const double> x_k,
                                     std::span<const double> x_km1) const {
  DFR_DCHECK(x_k.size() == acc.nx() && x_km1.size() == acc.nx());
  // The exact kernel: two roundings per accumulate like DprrAccumulator::add
  // (never FMA), so quantized features carry no ULP drift to bound.
  kernels_->dprr_add_exact(acc.raw().data(), x_k.data(), x_km1.data(),
                           acc.nx());
  acc.count_step();
}

void SimdQuantizedDatapath::finalize(Vector& r, std::size_t t_len) const {
  // Time-average plus residual prescale plus feature quantization — the
  // same per-element ops as QuantizedDatapath::finalize, one fused pass.
  kernels_->scale_quantize(feature_format_,
                           dprr_time_scale(t_len) / feature_scale_, r.data(),
                           r.size());
}

// ---- BatchedFloatDatapath --------------------------------------------------

BatchedFloatDatapath::BatchedFloatDatapath(ModelArtifactPtr model)
    : BatchedFloatDatapath(std::move(model), simd::active_backend()) {}

BatchedFloatDatapath::BatchedFloatDatapath(ModelArtifactPtr model,
                                           simd::Backend backend)
    : artifact_(checked_artifact(std::move(model))),
      mask_(&artifact_->mask),
      params_(artifact_->params),
      f_(artifact_->nonlinearity),
      kernels_(&simd::kernels_for(backend)),
      readout_(&artifact_->readout) {
  DFR_CHECK_MSG(artifact_->mask.nodes() > 0,
                "reservoir needs at least one virtual node");
}

void BatchedFloatDatapath::mask_soa(const double* u, double* j,
                                    std::size_t lanes) const {
  kernels_->batched_mask(mask_->weights().data(), mask_->nodes(),
                         mask_->channels(), u, j, lanes);
}

void BatchedFloatDatapath::quantize_masked(double*, std::size_t) const {}

void BatchedFloatDatapath::preadd(const double* j, const double* x_prev,
                                  double* x_out, std::size_t count) const {
  // Pure per-element map, so running it over the whole SoA block performs
  // exactly the per-lane operations of the single-series preadd stage.
  kernels_->preadd_nonlin(f_, params_.a, j, x_prev, x_out, count);
}

void BatchedFloatDatapath::bchain(const double* head, double* x, std::size_t nx,
                                  std::size_t lanes) const {
  kernels_->batched_bchain(params_.b, head, x, nx, lanes);
}

void BatchedFloatDatapath::dprr_add(double* r, const double* x_k,
                                    const double* x_km1, std::size_t nx,
                                    std::size_t lanes) const {
  kernels_->batched_dprr_add(r, x_k, x_km1, nx, lanes);
}

void BatchedFloatDatapath::finalize(double* r, std::size_t count,
                                    std::size_t t_len) const {
  scale(std::span<double>(r, count), dprr_time_scale(t_len));
}

// ---- BatchedQuantizedDatapath ----------------------------------------------

BatchedQuantizedDatapath::BatchedQuantizedDatapath(
    std::shared_ptr<const QuantizedDfr> model)
    : BatchedQuantizedDatapath(std::move(model), simd::active_backend()) {}

BatchedQuantizedDatapath::BatchedQuantizedDatapath(
    std::shared_ptr<const QuantizedDfr> model, simd::Backend backend)
    : owner_((checked_deref(model), std::move(model))),
      mask_(&owner_->model().mask),
      params_(owner_->model().params),
      f_(owner_->model().nonlinearity),
      state_format_(owner_->config().state_format),
      feature_format_(owner_->config().feature_format),
      state_scale_(owner_->scales().state),
      feature_scale_(owner_->scales().feature),
      kernels_(&simd::kernels_for(backend)),
      readout_(&owner_->quantized_readout()) {
  DFR_CHECK_MSG(mask_->nodes() > 0, "reservoir needs at least one virtual node");
}

void BatchedQuantizedDatapath::mask_soa(const double* u, double* j,
                                        std::size_t lanes) const {
  kernels_->batched_mask(mask_->weights().data(), mask_->nodes(),
                         mask_->channels(), u, j, lanes);
}

void BatchedQuantizedDatapath::quantize_masked(double* j,
                                               std::size_t count) const {
  // Same ops as the scalar path per element: v = Q_state(v * (1/state_scale)).
  kernels_->scale_quantize(state_format_, 1.0 / state_scale_, j, count);
}

void BatchedQuantizedDatapath::preadd(const double* j, const double* x_prev,
                                      double* x_out, std::size_t count) const {
  kernels_->quant_preadd_nonlin(f_, params_.a, state_format_, j, x_prev, x_out,
                                count);
}

void BatchedQuantizedDatapath::bchain(const double* head, double* x,
                                      std::size_t nx, std::size_t lanes) const {
  kernels_->batched_quant_bchain(params_.b, state_format_, head, x, nx, lanes);
}

void BatchedQuantizedDatapath::dprr_add(double* r, const double* x_k,
                                        const double* x_km1, std::size_t nx,
                                        std::size_t lanes) const {
  kernels_->batched_dprr_add_exact(r, x_k, x_km1, nx, lanes);
}

void BatchedQuantizedDatapath::finalize(double* r, std::size_t count,
                                        std::size_t t_len) const {
  kernels_->scale_quantize(feature_format_,
                           dprr_time_scale(t_len) / feature_scale_, r, count);
}

// ---- BatchedEngine ---------------------------------------------------------

template <typename P>
BatchedEngine<P>::BatchedEngine(P datapath, std::size_t max_lanes)
    : datapath_(std::move(datapath)),
      max_lanes_(max_lanes),
      u_soa_(datapath_.channels() * max_lanes, 0.0),
      j_(datapath_.nodes() * max_lanes, 0.0),
      x_prev_(datapath_.nodes() * max_lanes, 0.0),
      x_cur_(datapath_.nodes() * max_lanes, 0.0),
      r_(dprr_dim(datapath_.nodes()) * max_lanes, 0.0),
      feat_(dprr_dim(datapath_.nodes()), 0.0),
      logits_(
          (datapath_.readout()
               ? static_cast<std::size_t>(datapath_.readout()->num_classes())
               : 0) *
              max_lanes,
          0.0),
      labels_(max_lanes, -1) {
  DFR_CHECK_MSG(max_lanes_ >= 1, "batched engine needs at least one lane");
  DFR_CHECK_MSG(max_lanes_ <= simd::kBatchedMaxLanes,
                "batched engine lane count exceeds kBatchedMaxLanes");
}

template <typename P>
void BatchedEngine<P>::infer(std::span<const Matrix* const> series) {
  const std::size_t n = series.size();
  DFR_CHECK_MSG(n >= 1, "batched infer needs at least one lane");
  DFR_CHECK_MSG(n <= max_lanes_,
                "batch size exceeds the engine's lane count");
  for (const Matrix* s : series) {
    DFR_CHECK_MSG(s != nullptr, "null series in batch");
    DFR_CHECK_MSG(s->rows() == series[0]->rows() &&
                      s->cols() == series[0]->cols(),
                  "batched lanes must share one series shape");
  }
  DFR_CHECK_MSG(series[0]->cols() == datapath_.channels(),
                "series channel count != mask width");
  DFR_CHECK_MSG(series[0]->rows() >= 1, "series needs at least one time step");
  const OutputLayer* out = datapath_.readout();
  DFR_CHECK_MSG(out != nullptr, "batched datapath has no readout");

  const std::size_t nx = datapath_.nodes();
  const std::size_t t_len = series[0]->rows();
  const std::size_t count = nx * n;  // SoA stride = actual batch size
  const std::size_t feat_count = dprr_dim(nx) * n;
  batch_size_ = n;
  std::fill(x_prev_.begin(), x_prev_.begin() + count, 0.0);  // x(0) = 0
  std::fill(r_.begin(), r_.begin() + feat_count, 0.0);

  const std::size_t channels = datapath_.channels();
  for (std::size_t k = 0; k < t_len; ++k) {
    // Gather this time step's raw inputs into SoA (channels*n cheap copies),
    // then mask all lanes at once: j_[i*n + l] = (M u_l(k))_i. The batched
    // mask kernel preserves the scalar dot() order per lane, so this stage
    // stays bit-identical to per-lane Mask::apply_into.
    for (std::size_t l = 0; l < n; ++l) {
      const auto row = series[l]->row(k);
      for (std::size_t v = 0; v < channels; ++v) u_soa_[v * n + l] = row[v];
    }
    datapath_.mask_soa(u_soa_.data(), j_.data(), n);
    datapath_.quantize_masked(j_.data(), count);
    datapath_.preadd(j_.data(), x_prev_.data(), x_cur_.data(), count);
    datapath_.bchain(x_prev_.data() + (nx - 1) * n, x_cur_.data(), nx, n);
    datapath_.dprr_add(r_.data(), x_cur_.data(), x_prev_.data(), nx, n);
    std::swap(x_prev_, x_cur_);  // pointer swap: no allocation
  }
  datapath_.finalize(r_.data(), feat_count, t_len);

  const std::size_t ny = static_cast<std::size_t>(out->num_classes());
  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t f = 0; f < feat_.size(); ++f) feat_[f] = r_[f * n + l];
    const std::span<double> lane(logits_.data() + l * ny, ny);
    out->logits_into(feat_, lane);
    labels_[l] = static_cast<int>(
        std::max_element(lane.begin(), lane.end()) - lane.begin());
  }
}

template <typename P>
std::span<const double> BatchedEngine<P>::lane_logits(std::size_t lane) const {
  DFR_CHECK_MSG(lane < batch_size_, "lane index beyond the last batch size");
  const std::size_t ny = logits_.size() / max_lanes_;
  return std::span<const double>(logits_.data() + lane * ny, ny);
}

template <typename P>
int BatchedEngine<P>::lane_label(std::size_t lane) const {
  DFR_CHECK_MSG(lane < batch_size_, "lane index beyond the last batch size");
  return labels_[lane];
}

template <typename P>
std::span<const double> BatchedEngine<P>::lane_features(std::size_t lane) {
  DFR_CHECK_MSG(lane < batch_size_, "lane index beyond the last batch size");
  for (std::size_t f = 0; f < feat_.size(); ++f) {
    feat_[f] = r_[f * batch_size_ + lane];
  }
  return feat_;
}

template class BatchedEngine<BatchedFloatDatapath>;
template class BatchedEngine<BatchedQuantizedDatapath>;

BatchedInferenceEngine make_batched_engine(ModelArtifactPtr model,
                                           std::size_t max_lanes) {
  return BatchedInferenceEngine(BatchedFloatDatapath(std::move(model)),
                                max_lanes);
}

BatchedInferenceEngine make_batched_engine(ModelArtifactPtr model,
                                           std::size_t max_lanes,
                                           simd::Backend backend) {
  return BatchedInferenceEngine(BatchedFloatDatapath(std::move(model), backend),
                                max_lanes);
}

BatchedQuantizedInferenceEngine make_batched_engine(
    std::shared_ptr<const QuantizedDfr> model, std::size_t max_lanes) {
  return BatchedQuantizedInferenceEngine(
      BatchedQuantizedDatapath(std::move(model)), max_lanes);
}

BatchedQuantizedInferenceEngine make_batched_engine(
    std::shared_ptr<const QuantizedDfr> model, std::size_t max_lanes,
    simd::Backend backend) {
  return BatchedQuantizedInferenceEngine(
      BatchedQuantizedDatapath(std::move(model), backend), max_lanes);
}

// ---- BasicEngine -----------------------------------------------------------

template <InferenceDatapath P>
BasicEngine<P>::BasicEngine(P datapath)
    : datapath_(std::move(datapath)),
      j_(datapath_.nodes(), 0.0),
      x_prev_(datapath_.nodes(), 0.0),
      x_cur_(datapath_.nodes(), 0.0),
      r_(dprr_dim(datapath_.nodes()), 0.0),
      logits_(datapath_.readout()
                  ? static_cast<std::size_t>(datapath_.readout()->num_classes())
                  : 0,
              0.0),
      dprr_(datapath_.nodes()) {}

template <InferenceDatapath P>
std::span<const double> BasicEngine<P>::features(const Matrix& series) {
  DFR_CHECK_MSG(series.cols() == datapath_.channels(),
                "series channel count != mask width");
  DFR_CHECK_MSG(series.rows() >= 1, "series needs at least one time step");
  std::fill(x_prev_.begin(), x_prev_.end(), 0.0);  // x(0) = 0
  dprr_.reset();
  for (std::size_t k = 0; k < series.rows(); ++k) {
    datapath_.mask_into(series.row(k), j_);
    datapath_.step(j_, x_prev_, x_cur_);
    if constexpr (requires { datapath_.dprr_add(dprr_, x_cur_, x_prev_); }) {
      datapath_.dprr_add(dprr_, x_cur_, x_prev_);  // policy-owned (SIMD) path
    } else {
      dprr_.add(x_cur_, x_prev_);
    }
    std::swap(x_prev_, x_cur_);  // pointer swap: no allocation
  }
  std::copy(dprr_.features().begin(), dprr_.features().end(), r_.begin());
  datapath_.finalize(r_, series.rows());
  return r_;
}

template <InferenceDatapath P>
std::span<const double> BasicEngine<P>::infer(const Matrix& series) {
  const OutputLayer* out = datapath_.readout();
  DFR_CHECK_MSG(out != nullptr, "features-only datapath has no readout");
  features(series);
  out->logits_into(r_, logits_);
  return logits_;
}

template <InferenceDatapath P>
int BasicEngine<P>::classify(const Matrix& series) {
  infer(series);
  return static_cast<int>(
      std::max_element(logits_.begin(), logits_.end()) - logits_.begin());
}

template <InferenceDatapath P>
Vector BasicEngine<P>::probabilities(const Matrix& series) {
  return softmax(infer(series));
}

template class BasicEngine<FloatDatapath>;
template class BasicEngine<QuantizedDatapath>;
template class BasicEngine<SimdFloatDatapath>;
template class BasicEngine<SimdQuantizedDatapath>;

// ---- batch serving ---------------------------------------------------------

InferenceEngine make_engine(const LoadedModel& model) {
  return InferenceEngine(FloatDatapath(model));
}

InferenceEngine make_engine(ModelArtifactPtr model) {
  return InferenceEngine(FloatDatapath(std::move(model)));
}

QuantizedInferenceEngine make_engine(const QuantizedDfr& model) {
  return QuantizedInferenceEngine(QuantizedDatapath(model));
}

QuantizedInferenceEngine make_engine(std::shared_ptr<const QuantizedDfr> model) {
  return QuantizedInferenceEngine(QuantizedDatapath(std::move(model)));
}

SimdInferenceEngine make_simd_engine(const LoadedModel& model) {
  return SimdInferenceEngine(SimdFloatDatapath(model));
}

SimdInferenceEngine make_simd_engine(const LoadedModel& model,
                                     simd::Backend backend) {
  return SimdInferenceEngine(SimdFloatDatapath(model, backend));
}

SimdInferenceEngine make_simd_engine(ModelArtifactPtr model) {
  return SimdInferenceEngine(SimdFloatDatapath(std::move(model)));
}

SimdInferenceEngine make_simd_engine(ModelArtifactPtr model,
                                     simd::Backend backend) {
  return SimdInferenceEngine(SimdFloatDatapath(std::move(model), backend));
}

SimdQuantizedInferenceEngine make_simd_engine(const QuantizedDfr& model) {
  return SimdQuantizedInferenceEngine(SimdQuantizedDatapath(model));
}

SimdQuantizedInferenceEngine make_simd_engine(const QuantizedDfr& model,
                                              simd::Backend backend) {
  return SimdQuantizedInferenceEngine(SimdQuantizedDatapath(model, backend));
}

SimdQuantizedInferenceEngine make_simd_engine(
    std::shared_ptr<const QuantizedDfr> model) {
  return SimdQuantizedInferenceEngine(SimdQuantizedDatapath(std::move(model)));
}

SimdQuantizedInferenceEngine make_simd_engine(
    std::shared_ptr<const QuantizedDfr> model, simd::Backend backend) {
  return SimdQuantizedInferenceEngine(
      SimdQuantizedDatapath(std::move(model), backend));
}

namespace {

template <typename MakeEngine, typename SeriesAt>
std::vector<int> classify_batch_impl(std::size_t n, unsigned threads,
                                     const MakeEngine& make_engine_fn,
                                     const SeriesAt& series_at) {
  std::vector<int> out(n);
  for_each_with_engine(n, threads, make_engine_fn,
                       [&](auto& engine, std::size_t i) {
                         out[i] = engine.classify(series_at(i));
                       });
  return out;
}

}  // namespace

std::vector<int> classify_batch(const ModelArtifactPtr& model,
                                std::span<const Matrix> series,
                                unsigned threads, FloatEngineKind engine) {
  if (engine == FloatEngineKind::kScalar) {
    return classify_batch_impl(
        series.size(), threads, [&] { return make_engine(model); },
        [&](std::size_t i) -> const Matrix& { return series[i]; });
  }
  // kAuto / kSimd: resolve the dispatched backend once, outside the workers.
  const simd::Backend backend = simd::active_backend();
  return classify_batch_impl(
      series.size(), threads, [&] { return make_simd_engine(model, backend); },
      [&](std::size_t i) -> const Matrix& { return series[i]; });
}

std::vector<int> classify_batch(const LoadedModel& model,
                                std::span<const Matrix> series,
                                unsigned threads, FloatEngineKind engine) {
  // Snapshot once; every worker engine shares the one immutable artifact.
  return classify_batch(model.artifact(), series, threads, engine);
}

std::vector<int> classify_batch(const QuantizedDfr& model,
                                std::span<const Matrix> series,
                                unsigned threads, QuantizedEngineKind engine) {
  if (engine == QuantizedEngineKind::kScalar) {
    return classify_batch_impl(
        series.size(), threads, [&] { return make_engine(model); },
        [&](std::size_t i) -> const Matrix& { return series[i]; });
  }
  // kAuto / kSimd: resolve the dispatched backend once, outside the workers.
  const simd::Backend backend = simd::active_backend();
  return classify_batch_impl(
      series.size(), threads, [&] { return make_simd_engine(model, backend); },
      [&](std::size_t i) -> const Matrix& { return series[i]; });
}

std::vector<int> classify_batch(const ModelArtifactPtr& model,
                                const Dataset& data, unsigned threads,
                                FloatEngineKind engine) {
  if (engine == FloatEngineKind::kScalar) {
    return classify_batch_impl(
        data.size(), threads, [&] { return make_engine(model); },
        [&](std::size_t i) -> const Matrix& { return data[i].series; });
  }
  const simd::Backend backend = simd::active_backend();
  return classify_batch_impl(
      data.size(), threads, [&] { return make_simd_engine(model, backend); },
      [&](std::size_t i) -> const Matrix& { return data[i].series; });
}

std::vector<int> classify_batch(const LoadedModel& model, const Dataset& data,
                                unsigned threads, FloatEngineKind engine) {
  return classify_batch(model.artifact(), data, threads, engine);
}

std::vector<int> classify_batch(const QuantizedDfr& model, const Dataset& data,
                                unsigned threads, QuantizedEngineKind engine) {
  if (engine == QuantizedEngineKind::kScalar) {
    return classify_batch_impl(
        data.size(), threads, [&] { return make_engine(model); },
        [&](std::size_t i) -> const Matrix& { return data[i].series; });
  }
  const simd::Backend backend = simd::active_backend();
  return classify_batch_impl(
      data.size(), threads, [&] { return make_simd_engine(model, backend); },
      [&](std::size_t i) -> const Matrix& { return data[i].series; });
}

}  // namespace dfr
