#pragma once
// Unified streaming inference engine — the single implementation behind every
// deployed datapath (float and fixed-point).
//
// The paper's O(Nx) streaming-inference claim rests on the DPRR accumulator
// form: classification needs only the current and previous reservoir state,
// never the full (T+1) x Nx trajectory. BasicEngine realizes exactly that
// pipeline —
//
//     j(k) = M u(k)  ->  x(k) = step(j(k), x(k-1))  ->  dprr += x(k) x(k-1)^T
//     ->  r = finalize(dprr)  ->  logits = W r + b  ->  argmax
//
// — over per-engine scratch buffers (two Nx state rows ping-ponged through
// the reservoir step, a reused DprrAccumulator, a logits buffer), so classify
// performs ZERO heap allocations in steady state (test_serve.cpp instruments
// operator new to enforce this).
//
// What varies between deployments is captured by a Datapath policy:
// FloatDatapath executes the exact double-precision arithmetic of the
// trained model; QuantizedDatapath executes the calibrated fixed-point
// arithmetic of quantized_dfr.hpp — both bit-identical to the per-series
// paths they replaced. SimdFloatDatapath runs the same float pipeline
// through runtime-dispatched vector kernels (serve/simd_kernels.hpp): the
// preadd/nonlinearity and the Nx²-per-step DPRR row updates vectorize, the
// serialized B-chain stays a scalar pass, and results match FloatDatapath
// within the documented ULP contract. SimdQuantizedDatapath does the same
// for the fixed-point pipeline — vectorized round-to-format on the masked
// input, quantized preadd + nonlinearity, exact (no-FMA) DPRR row updates,
// and fused scale+quantize feature finalization — with a STRICTER contract:
// bit-identical to QuantizedDatapath on every backend (fixed-point rounding
// is exact; see the quantized contract in simd_kernels.hpp). A policy may
// optionally provide dprr_add(acc, x_k, x_km1) to own the accumulation
// step; the engine falls back to DprrAccumulator::add otherwise.
//
// Ownership: the full-inference datapaths hold a reference-counted
// ModelArtifactPtr (see model_io.hpp), so an engine keeps its model alive
// for as long as the engine exists — the multi-model registry can hot-swap
// or evict an artifact while engines built on the old one keep serving it
// safely. Constructing from a LoadedModel snapshots it into a fresh
// artifact. Only the features-only constructors (batch feature extraction,
// where the trainer owns the weights) still borrow.
//
// Threading: one engine serves one stream; engines share the immutable model
// and are cheap to create, so batch serving makes one engine per worker.
// classify_batch does precisely that on top of util/parallel.hpp, with
// deterministic output ordering for any thread count.

#include <concepts>
#include <memory>
#include <span>
#include <vector>

#include "dfr/dprr.hpp"
#include "dfr/model_io.hpp"
#include "dfr/reservoir.hpp"
#include "fixedpoint/quantized_dfr.hpp"
#include "serve/simd_kernels.hpp"
#include "util/parallel.hpp"

namespace dfr {

/// What a datapath must provide for the shared streaming pipeline: the model
/// shape, the masked-input transform, one reservoir time step, the feature
/// finalization (time averaging plus any datapath-specific scaling /
/// quantization), and an optional readout (null = features-only).
template <typename P>
concept InferenceDatapath =
    requires(const P& p, std::span<const double> in, std::span<double> out,
             Vector& r, std::size_t t_len) {
      { p.nodes() } -> std::convertible_to<std::size_t>;
      { p.channels() } -> std::convertible_to<std::size_t>;
      { p.mask_into(in, out) };
      { p.step(in, in, out) };
      { p.finalize(r, t_len) };
      { p.readout() } -> std::convertible_to<const OutputLayer*>;
    };

/// Double-precision datapath over a trained model. The artifact constructors
/// share ownership of the model (safe for any lifetime); the features-only
/// constructor borrows, and the mask must outlive the datapath.
class FloatDatapath {
 public:
  /// Features-only pipeline (no readout): batch feature extraction. Borrows
  /// `mask`.
  FloatDatapath(const Mask& mask, const DfrParams& params, Nonlinearity f);

  /// Full inference pipeline sharing ownership of `model`.
  explicit FloatDatapath(ModelArtifactPtr model);

  /// Full inference pipeline over a loaded model (snapshots it into an
  /// owned artifact; the LoadedModel itself need not outlive the datapath).
  explicit FloatDatapath(const LoadedModel& model);

  [[nodiscard]] std::size_t nodes() const noexcept { return reservoir_.nodes(); }
  [[nodiscard]] std::size_t channels() const noexcept { return mask_->channels(); }
  void mask_into(std::span<const double> input, std::span<double> j) const;
  void step(std::span<const double> j, std::span<const double> x_prev,
            std::span<double> x_out) const;
  void finalize(Vector& r, std::size_t t_len) const;
  [[nodiscard]] const OutputLayer* readout() const noexcept { return readout_; }
  /// The owned artifact (null for the borrowing features-only pipeline).
  [[nodiscard]] const ModelArtifactPtr& artifact() const noexcept {
    return artifact_;
  }

 private:
  ModelArtifactPtr artifact_;  // keepalive; null when borrowing
  const Mask* mask_;
  DfrParams params_;
  ModularReservoir reservoir_;
  const OutputLayer* readout_ = nullptr;
};

/// Calibrated fixed-point datapath: masked inputs and states quantized to the
/// state format at every step, features prescaled and quantized to the
/// feature format, readout already quantized by QuantizedDfr. The shared_ptr
/// constructor shares ownership; the reference constructor borrows and the
/// QuantizedDfr must outlive the datapath.
class QuantizedDatapath {
 public:
  explicit QuantizedDatapath(const QuantizedDfr& model);

  /// Shares ownership of `model` (the quantized analogue of ModelArtifact).
  explicit QuantizedDatapath(std::shared_ptr<const QuantizedDfr> model);

  [[nodiscard]] std::size_t nodes() const noexcept { return mask_->nodes(); }
  [[nodiscard]] std::size_t channels() const noexcept { return mask_->channels(); }
  void mask_into(std::span<const double> input, std::span<double> j) const;
  void step(std::span<const double> j, std::span<const double> x_prev,
            std::span<double> x_out) const;
  void finalize(Vector& r, std::size_t t_len) const;
  [[nodiscard]] const OutputLayer* readout() const noexcept { return readout_; }

 private:
  std::shared_ptr<const QuantizedDfr> owner_;  // keepalive; null when borrowing
  const Mask* mask_;
  DfrParams params_;
  Nonlinearity f_;
  FixedPointFormat state_format_;
  FixedPointFormat feature_format_;
  double state_scale_ = 1.0;    // states divided by this (power of two)
  double feature_scale_ = 1.0;  // residual feature prescaler (power of two)
  const OutputLayer* readout_;
};

/// Float datapath over runtime-dispatched SIMD kernels. Executes the same
/// pipeline as FloatDatapath with the vectorizable stages (masked-input
/// preadd, nonlinearity, DPRR row updates) routed through
/// serve/simd_kernels.hpp and the serialized B-chain as a scalar pass.
/// Equivalence to FloatDatapath is governed by the ULP contract documented
/// in simd_kernels.hpp (bit-exact mask/preadd stages, simd_feature_ulp_bound
/// on finalized features). The artifact constructors share ownership of the
/// model; the features-only constructor borrows the mask.
class SimdFloatDatapath {
 public:
  /// Features-only pipeline on an explicit backend (kernels_for semantics:
  /// throws CheckError when unavailable). Borrows `mask`.
  SimdFloatDatapath(const Mask& mask, const DfrParams& params, Nonlinearity f,
                    simd::Backend backend);

  /// Full inference pipeline sharing ownership of `model`, on the active
  /// backend (simd::active_backend(), i.e. best available unless DFR_SIMD /
  /// force_backend overrode it).
  explicit SimdFloatDatapath(ModelArtifactPtr model);

  /// Full inference pipeline sharing ownership of `model`, on an explicit
  /// backend.
  SimdFloatDatapath(ModelArtifactPtr model, simd::Backend backend);

  /// Full inference pipeline on the active backend (snapshots `model` into
  /// an owned artifact).
  explicit SimdFloatDatapath(const LoadedModel& model);

  /// Full inference pipeline on an explicit backend (snapshots `model`).
  SimdFloatDatapath(const LoadedModel& model, simd::Backend backend);

  [[nodiscard]] std::size_t nodes() const noexcept { return mask_->nodes(); }
  [[nodiscard]] std::size_t channels() const noexcept { return mask_->channels(); }
  [[nodiscard]] simd::Backend backend() const noexcept { return kernels_->backend; }
  void mask_into(std::span<const double> input, std::span<double> j) const;
  void step(std::span<const double> j, std::span<const double> x_prev,
            std::span<double> x_out) const;
  /// Vectorized DPRR accumulation hook picked up by BasicEngine::features.
  void dprr_add(DprrAccumulator& acc, std::span<const double> x_k,
                std::span<const double> x_km1) const;
  void finalize(Vector& r, std::size_t t_len) const;
  [[nodiscard]] const OutputLayer* readout() const noexcept { return readout_; }
  /// The owned artifact (null for the borrowing features-only pipeline).
  [[nodiscard]] const ModelArtifactPtr& artifact() const noexcept {
    return artifact_;
  }

 private:
  ModelArtifactPtr artifact_;  // keepalive; null when borrowing
  const Mask* mask_;
  DfrParams params_;
  Nonlinearity f_;
  const simd::Kernels* kernels_;
  const OutputLayer* readout_ = nullptr;
};

/// Calibrated fixed-point datapath over runtime-dispatched SIMD kernels.
/// Executes the same pipeline as QuantizedDatapath with the vectorizable
/// stages (masked-input round-to-format, quantized preadd + nonlinearity,
/// DPRR row updates, feature scale+quantize) routed through
/// serve/simd_kernels.hpp; the quantized B-chain (which serializes through
/// the per-node round-to-format) stays a scalar pass. Unlike the float ULP
/// contract, every stage is BIT-IDENTICAL to the scalar QuantizedDatapath
/// on every backend (see the quantized contract in simd_kernels.hpp;
/// asserted EXPECT_EQ-strict by test_simd_quant.cpp). The shared_ptr
/// constructors share ownership; the reference constructors borrow and the
/// QuantizedDfr must outlive the datapath.
class SimdQuantizedDatapath {
 public:
  /// Borrows `model`, on the active backend (simd::active_backend()).
  explicit SimdQuantizedDatapath(const QuantizedDfr& model);

  /// Borrows `model`, on an explicit backend (kernels_for semantics: throws
  /// CheckError when unavailable).
  SimdQuantizedDatapath(const QuantizedDfr& model, simd::Backend backend);

  /// Shares ownership of `model`, on the active backend.
  explicit SimdQuantizedDatapath(std::shared_ptr<const QuantizedDfr> model);

  /// Shares ownership of `model`, on an explicit backend.
  SimdQuantizedDatapath(std::shared_ptr<const QuantizedDfr> model,
                        simd::Backend backend);

  [[nodiscard]] std::size_t nodes() const noexcept { return mask_->nodes(); }
  [[nodiscard]] std::size_t channels() const noexcept { return mask_->channels(); }
  [[nodiscard]] simd::Backend backend() const noexcept { return kernels_->backend; }
  void mask_into(std::span<const double> input, std::span<double> j) const;
  void step(std::span<const double> j, std::span<const double> x_prev,
            std::span<double> x_out) const;
  /// Exact (no-FMA) vectorized DPRR accumulation hook picked up by
  /// BasicEngine::features.
  void dprr_add(DprrAccumulator& acc, std::span<const double> x_k,
                std::span<const double> x_km1) const;
  void finalize(Vector& r, std::size_t t_len) const;
  [[nodiscard]] const OutputLayer* readout() const noexcept { return readout_; }

 private:
  std::shared_ptr<const QuantizedDfr> owner_;  // keepalive; null when borrowing
  const Mask* mask_;
  DfrParams params_;
  Nonlinearity f_;
  FixedPointFormat state_format_;
  FixedPointFormat feature_format_;
  double state_scale_ = 1.0;    // states divided by this (power of two)
  double feature_scale_ = 1.0;  // residual feature prescaler (power of two)
  const simd::Kernels* kernels_;
  const OutputLayer* readout_;
};

/// Batched (SoA) float datapath: the stage set BatchedEngine drives over up
/// to simd::kBatchedMaxLanes concurrent series transposed into
/// structure-of-arrays form (state buffers indexed [node*lanes + lane]).
/// Every vector operation spans independent lanes, so the B-chain that
/// serializes the single-series SIMD path vectorizes ACROSS requests and
/// lanes stay full at any Nx. Per-lane equivalence: bit-identical states to
/// FloatDatapath on x86-64 (the batched B-chain never uses FMA), finalized
/// features within simd_feature_ulp_bound of the scalar pipeline — the same
/// contract as SimdFloatDatapath, and bit-identical per lane to the
/// single-series SIMD engine (both FMA once per DPRR accumulate). Shares
/// ownership of the artifact.
class BatchedFloatDatapath {
 public:
  /// Active backend (simd::active_backend()).
  explicit BatchedFloatDatapath(ModelArtifactPtr model);

  /// Explicit backend (kernels_for semantics: throws when unavailable).
  BatchedFloatDatapath(ModelArtifactPtr model, simd::Backend backend);

  [[nodiscard]] std::size_t nodes() const noexcept { return mask_->nodes(); }
  [[nodiscard]] std::size_t channels() const noexcept { return mask_->channels(); }
  [[nodiscard]] simd::Backend backend() const noexcept { return kernels_->backend; }
  /// Batched input mask over one time step's SoA input block
  /// (`u[v*lanes + l]` = lane l's channel v): j[i*lanes + l] accumulates
  /// in the scalar dot() order per lane, so the stage is bit-identical to
  /// the unbatched mask on every backend.
  void mask_soa(const double* u, double* j, std::size_t lanes) const;
  /// Post-mask masked-input transform over the whole SoA block
  /// (`count` = nx*lanes). No-op for the float family.
  void quantize_masked(double* j, std::size_t count) const;
  /// Elementwise preadd + nonlinearity over the whole SoA block.
  void preadd(const double* j, const double* x_prev, double* x_out,
              std::size_t count) const;
  /// Cross-lane-vectorized B-chain (see BatchedBChainFn).
  void bchain(const double* head, double* x, std::size_t nx,
              std::size_t lanes) const;
  /// Batched DPRR accumulate into the SoA feature block.
  void dprr_add(double* r, const double* x_k, const double* x_km1,
                std::size_t nx, std::size_t lanes) const;
  /// Feature finalization over the whole SoA block (`count` =
  /// dprr_dim(nx)*lanes).
  void finalize(double* r, std::size_t count, std::size_t t_len) const;
  [[nodiscard]] const OutputLayer* readout() const noexcept { return readout_; }
  [[nodiscard]] const ModelArtifactPtr& artifact() const noexcept {
    return artifact_;
  }

 private:
  ModelArtifactPtr artifact_;  // keepalive
  const Mask* mask_;
  DfrParams params_;
  Nonlinearity f_;
  const simd::Kernels* kernels_;
  const OutputLayer* readout_ = nullptr;
};

/// Batched (SoA) fixed-point datapath: the quantized twin of
/// BatchedFloatDatapath with the STRICT contract — every stage rounds
/// exactly like the scalar QuantizedDatapath per lane (no FMA anywhere), so
/// batched quantized lanes are BIT-IDENTICAL to the scalar pipeline on every
/// backend (asserted EXPECT_EQ-strict by test_batched.cpp). Shares ownership
/// of the calibrated model.
class BatchedQuantizedDatapath {
 public:
  /// Active backend (simd::active_backend()).
  explicit BatchedQuantizedDatapath(std::shared_ptr<const QuantizedDfr> model);

  /// Explicit backend (kernels_for semantics: throws when unavailable).
  BatchedQuantizedDatapath(std::shared_ptr<const QuantizedDfr> model,
                           simd::Backend backend);

  [[nodiscard]] std::size_t nodes() const noexcept { return mask_->nodes(); }
  [[nodiscard]] std::size_t channels() const noexcept { return mask_->channels(); }
  [[nodiscard]] simd::Backend backend() const noexcept { return kernels_->backend; }
  void mask_soa(const double* u, double* j, std::size_t lanes) const;
  /// Vectorized round-to-state-format over the whole SoA block.
  void quantize_masked(double* j, std::size_t count) const;
  void preadd(const double* j, const double* x_prev, double* x_out,
              std::size_t count) const;
  void bchain(const double* head, double* x, std::size_t nx,
              std::size_t lanes) const;
  void dprr_add(double* r, const double* x_k, const double* x_km1,
                std::size_t nx, std::size_t lanes) const;
  void finalize(double* r, std::size_t count, std::size_t t_len) const;
  [[nodiscard]] const OutputLayer* readout() const noexcept { return readout_; }

 private:
  std::shared_ptr<const QuantizedDfr> owner_;  // keepalive
  const Mask* mask_;
  DfrParams params_;
  Nonlinearity f_;
  FixedPointFormat state_format_;
  FixedPointFormat feature_format_;
  double state_scale_ = 1.0;    // states divided by this (power of two)
  double feature_scale_ = 1.0;  // residual feature prescaler (power of two)
  const simd::Kernels* kernels_;
  const OutputLayer* readout_;
};

/// Cross-request batched engine: runs one series per lane through the SoA
/// pipeline, up to `max_lanes` lanes per call. All scratch (SoA state
/// blocks, the DPRR block, per-lane logits) is preallocated for `max_lanes`
/// at construction, so infer() performs zero heap allocations in steady
/// state regardless of the batch size actually submitted. Lanes are
/// independent: lane l's results depend only on series[l] (asserted by
/// test_batched.cpp against varying batchmates). One engine per worker; not
/// thread-safe.
template <typename P>
class BatchedEngine {
 public:
  /// `max_lanes` in [1, simd::kBatchedMaxLanes].
  BatchedEngine(P datapath, std::size_t max_lanes);

  /// Run series[l] through lane l. All pointers must be non-null and every
  /// series must share one (rows, cols) shape with cols == channels()
  /// (the server's micro-batcher only coalesces same-shape requests).
  /// Throws CheckError otherwise. Results are read per lane via
  /// lane_logits/lane_label and stay valid until the next infer() call.
  void infer(std::span<const Matrix* const> series);

  /// Lane l's logits from the last infer() (lane < that call's batch size).
  [[nodiscard]] std::span<const double> lane_logits(std::size_t lane) const;

  /// Lane l's argmax label from the last infer().
  [[nodiscard]] int lane_label(std::size_t lane) const;

  /// Lane l's finalized feature vector, gathered from the SoA block into a
  /// shared scratch row: the span is invalidated by the next lane_features
  /// or infer call. Exposed for equivalence tests.
  [[nodiscard]] std::span<const double> lane_features(std::size_t lane);

  [[nodiscard]] std::size_t max_lanes() const noexcept { return max_lanes_; }
  [[nodiscard]] const P& datapath() const noexcept { return datapath_; }

 private:
  P datapath_;
  std::size_t max_lanes_;
  std::size_t batch_size_ = 0;  // lanes used by the last infer()
  Vector u_soa_;       // SoA raw-input block, size channels*max_lanes
  Vector j_;           // SoA masked-input block, size Nx*max_lanes
  Vector x_prev_;      // SoA x(k-1) block, ping-ponged with x_cur_
  Vector x_cur_;       // SoA x(k) block
  Vector r_;           // SoA DPRR block, size dprr_dim(Nx)*max_lanes
  Vector feat_;        // per-lane gather row, size dprr_dim(Nx)
  Vector logits_;      // per-lane logits, size Ny*max_lanes
  std::vector<int> labels_;  // per-lane argmax, size max_lanes
};

using BatchedInferenceEngine = BatchedEngine<BatchedFloatDatapath>;
using BatchedQuantizedInferenceEngine = BatchedEngine<BatchedQuantizedDatapath>;

extern template class BatchedEngine<BatchedFloatDatapath>;
extern template class BatchedEngine<BatchedQuantizedDatapath>;

/// Batched float engine sharing ownership of an immutable artifact, on the
/// active backend (or an explicit one).
[[nodiscard]] BatchedInferenceEngine make_batched_engine(ModelArtifactPtr model,
                                                         std::size_t max_lanes);
[[nodiscard]] BatchedInferenceEngine make_batched_engine(ModelArtifactPtr model,
                                                         std::size_t max_lanes,
                                                         simd::Backend backend);

/// Batched quantized engine sharing ownership of a calibrated model.
/// Bit-identical per-lane results to the scalar QuantizedDatapath.
[[nodiscard]] BatchedQuantizedInferenceEngine make_batched_engine(
    std::shared_ptr<const QuantizedDfr> model, std::size_t max_lanes);
[[nodiscard]] BatchedQuantizedInferenceEngine make_batched_engine(
    std::shared_ptr<const QuantizedDfr> model, std::size_t max_lanes,
    simd::Backend backend);

/// The streaming engine: owns all scratch, classifies with zero steady-state
/// heap allocations. One engine per stream/worker; not thread-safe.
template <InferenceDatapath P>
class BasicEngine {
 public:
  explicit BasicEngine(P datapath);

  /// Finalized feature vector (DPRR, time-averaged, datapath-scaled) for one
  /// series (T x V). The span aliases engine scratch: valid until the next
  /// call on this engine.
  std::span<const double> features(const Matrix& series);

  /// Logits for one series. Span aliases engine scratch.
  std::span<const double> infer(const Matrix& series);

  /// Argmax class for one series. Zero heap allocations.
  int classify(const Matrix& series);

  /// Softmax class probabilities (allocates the returned vector).
  Vector probabilities(const Matrix& series);

  [[nodiscard]] const P& datapath() const noexcept { return datapath_; }

 private:
  P datapath_;
  Vector j_;       // masked input row, size Nx
  Vector x_prev_;  // x(k-1), ping-ponged with x_cur_
  Vector x_cur_;   // x(k)
  Vector r_;       // finalized features, size Nx*(Nx+1)
  Vector logits_;  // size Ny (empty for features-only datapaths)
  DprrAccumulator dprr_;
};

using InferenceEngine = BasicEngine<FloatDatapath>;
using QuantizedInferenceEngine = BasicEngine<QuantizedDatapath>;
using SimdInferenceEngine = BasicEngine<SimdFloatDatapath>;
using SimdQuantizedInferenceEngine = BasicEngine<SimdQuantizedDatapath>;

extern template class BasicEngine<FloatDatapath>;
extern template class BasicEngine<QuantizedDatapath>;
extern template class BasicEngine<SimdFloatDatapath>;
extern template class BasicEngine<SimdQuantizedDatapath>;

/// Engine over a loaded float model (snapshots the model into an owned
/// artifact — safe for any model lifetime).
[[nodiscard]] InferenceEngine make_engine(const LoadedModel& model);

/// Engine sharing ownership of an immutable artifact.
[[nodiscard]] InferenceEngine make_engine(ModelArtifactPtr model);

/// Engine over a calibrated quantized model (model must outlive the engine).
[[nodiscard]] QuantizedInferenceEngine make_engine(const QuantizedDfr& model);

/// Engine sharing ownership of a calibrated quantized model.
[[nodiscard]] QuantizedInferenceEngine make_engine(
    std::shared_ptr<const QuantizedDfr> model);

/// SIMD engine over a loaded float model, on the active backend (snapshots
/// the model into an owned artifact).
[[nodiscard]] SimdInferenceEngine make_simd_engine(const LoadedModel& model);

/// SIMD engine on an explicit backend (throws CheckError when unavailable).
[[nodiscard]] SimdInferenceEngine make_simd_engine(const LoadedModel& model,
                                                   simd::Backend backend);

/// SIMD engines sharing ownership of an immutable artifact.
[[nodiscard]] SimdInferenceEngine make_simd_engine(ModelArtifactPtr model);
[[nodiscard]] SimdInferenceEngine make_simd_engine(ModelArtifactPtr model,
                                                   simd::Backend backend);

/// SIMD quantized engine over a calibrated model, on the active backend
/// (model must outlive the engine). Bit-identical results to
/// make_engine(model) — the quantized SIMD contract.
[[nodiscard]] SimdQuantizedInferenceEngine make_simd_engine(
    const QuantizedDfr& model);

/// SIMD quantized engine on an explicit backend (throws CheckError when
/// unavailable).
[[nodiscard]] SimdQuantizedInferenceEngine make_simd_engine(
    const QuantizedDfr& model, simd::Backend backend);

/// SIMD quantized engines sharing ownership of a calibrated model.
[[nodiscard]] SimdQuantizedInferenceEngine make_simd_engine(
    std::shared_ptr<const QuantizedDfr> model);
[[nodiscard]] SimdQuantizedInferenceEngine make_simd_engine(
    std::shared_ptr<const QuantizedDfr> model, simd::Backend backend);

/// Chunked per-worker-engine fan-out shared by classify_batch and the batch
/// feature extractor: runs body(engine, i) once for every i in [0, n), with
/// one engine constructed per contiguous chunk so scratch is reused across a
/// chunk's series. Because each body invocation depends only on index i (the
/// engine's scratch carries no state across calls), results are bit-identical
/// for any `threads` value (0 = all cores, 1 = serial — the
/// util/parallel.hpp convention).
template <typename MakeEngine, typename Body>
void for_each_with_engine(std::size_t n, unsigned threads,
                          const MakeEngine& make_engine_fn, const Body& body) {
  if (n == 0) return;
  const std::size_t slots = threads == 0 ? hardware_threads() : threads;
  const std::size_t chunks = std::min(n, slots * 4);  // mild oversubscription
  parallel_for(
      chunks,
      [&](std::size_t c) {
        auto engine = make_engine_fn();
        const std::size_t lo = c * n / chunks;
        const std::size_t hi = (c + 1) * n / chunks;
        for (std::size_t i = lo; i < hi; ++i) body(engine, i);
      },
      {.threads = threads});
}

/// Classify a batch of series. Workers each own one engine and a contiguous
/// chunk; out[i] depends only on series[i], so the result is bit-identical
/// and identically ordered for any `threads` value (0 = all cores,
/// 1 = serial — the util/parallel.hpp convention). `engine` selects the
/// float datapath (default: best available, see FloatEngineKind). The
/// artifact overload shares one immutable model across all worker engines;
/// the LoadedModel overloads snapshot the model once per call.
std::vector<int> classify_batch(const ModelArtifactPtr& model,
                                std::span<const Matrix> series,
                                unsigned threads = 0,
                                FloatEngineKind engine = FloatEngineKind::kAuto);
std::vector<int> classify_batch(const LoadedModel& model,
                                std::span<const Matrix> series,
                                unsigned threads = 0,
                                FloatEngineKind engine = FloatEngineKind::kAuto);
std::vector<int> classify_batch(const QuantizedDfr& model,
                                std::span<const Matrix> series,
                                unsigned threads = 0,
                                QuantizedEngineKind engine =
                                    QuantizedEngineKind::kAuto);

/// Dataset convenience overloads (classify every sample's series).
std::vector<int> classify_batch(const ModelArtifactPtr& model,
                                const Dataset& data, unsigned threads = 0,
                                FloatEngineKind engine = FloatEngineKind::kAuto);
std::vector<int> classify_batch(const LoadedModel& model, const Dataset& data,
                                unsigned threads = 0,
                                FloatEngineKind engine = FloatEngineKind::kAuto);
std::vector<int> classify_batch(const QuantizedDfr& model, const Dataset& data,
                                unsigned threads = 0,
                                QuantizedEngineKind engine =
                                    QuantizedEngineKind::kAuto);

}  // namespace dfr
