#pragma once
// Router: the client-side front door of the sharded serving tier. Maps each
// model id onto an ordered replica group of shards via a consistent-hash
// ring, keeps a small connection pool per shard, and retries across
// replicas on exactly the failures where a retry is sound.
//
// Placement: every live shard contributes `vnodes` virtual points to a
// 64-bit FNV-1a hash ring; a model id hashes to a point and its replica
// group is the next `replicas` DISTINCT shards clockwise. Consistent
// hashing is what makes drain cheap: removing one shard remaps only the
// ids that hashed to it (its keys slide to their next-clockwise survivor)
// instead of reshuffling the whole fleet, and re-adding it restores the
// original placement. Placement is deterministic — every router instance
// with the same shard set computes the same groups, so routers need no
// coordination.
//
// Load-aware replica choice (RouterConfig::load_aware, default on): the
// shard health body (wire v2) carries per-shard queue depth, queue capacity,
// and a service-time EWMA; a background poller caches a sample per shard
// (RouterConfig::health_poll_ms), and infer() picks between the FIRST TWO
// replicas of a key's group by power-of-two-choices — the candidate with the
// lower (queue_depth + router-local in-flight) x EWMA score gets the
// request. Samples older than health_staleness_us are distrusted and the
// router falls back to strict placement order, so a dead poller degrades to
// exactly the pre-load-aware behavior instead of routing on fiction. Only
// the first attempt is reordered: the retry walk still visits every replica,
// so the retry taxonomy below and the drain/re-add placement invariants are
// unchanged.
//
// Retry policy (typed, deliberately narrow): a replica is skipped and the
// next one tried only on
//   * WireIoError — connect refused / peer reset / died mid-frame /
//     attempt deadline expired: the request may never have reached a
//     server, and inference is side-effect-free, so re-sending is safe; and
//   * a kShutdown response — the shard is draining; the request was
//     REJECTED, not executed, and another replica can serve it.
// Every other response (kOk, kQueueFull, kUnknownModel, kInvalidArgument,
// kDeadlineExceeded, ...) is returned as-is: those are authoritative
// answers, and retrying them would turn backpressure into a retry storm.
// When every replica fails, infer() returns kUnavailable (typed, never an
// exception) so callers and the load generator can count it.
//
// Retry discipline (PR 10): attempts cycle the replica group until the
// per-request retry budget (RouterConfig::retry_budget) is spent, with
// exponential backoff between transport-failure retries — deterministically
// jittered through the repo Rng hash so two routers with the same seed
// replay the same delays (kShutdown rejections move on immediately: a
// draining shard answered fast and authoritatively). Every attempt's IO is
// bounded by a wire::Deadline: a request carrying
// RequestOptions::deadline_us spends ONE budget across the whole walk (the
// remaining budget decrements across retries; exhaustion returns the
// router-local kTimeout), deadline-free traffic gets
// RouterConfig::default_attempt_deadline_us per attempt — either way a
// wedged shard that accepts and never replies can no longer park a router
// thread forever.
//
// Circuit breaker (per shard, RouterConfig::breaker_threshold): that many
// CONSECUTIVE transport failures open the breaker — subsequent attempts
// skip the shard without dialing it (counted breaker_fastfails; when every
// replica is open the request fast-fails with the router-local
// kBreakerOpen instead of a connect storm). The background health poller
// doubles as the probe driver: a successful health probe (or an injected
// note_health) moves an open breaker to half-open, which admits the next
// request as a trial — success closes the breaker, failure re-opens it
// (counted as a fresh trip). Disabled breakers (threshold 0) reproduce the
// pre-PR-10 dial-every-time behavior.
//
// Drain/re-add: drain_shard() removes the shard from the ring FIRST (new
// placements skip it), then sends the wire drain request and waits for the
// ack the shard only sends once its queue is empty — in-flight requests
// finish, and traffic mid-drain falls through the retry policy to the
// remaining replicas. add_shard() on a known name re-inserts the same ring
// points, restoring the original placement.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace dfr::serve {

struct RouterConfig {
  /// Replica-group size: a model is placed on min(replicas, live shards)
  /// distinct shards; the first is primary, the rest are failover targets.
  std::size_t replicas = 1;
  /// Virtual ring points per shard. More points = smoother balance;
  /// 64 keeps the max/mean key-share ratio low for single-digit fleets.
  std::size_t vnodes = 64;
  /// Pooled idle connections kept per shard (excess closes on release).
  std::size_t pool_capacity = 8;
  /// Pick between the first two replicas by power-of-two-choices on cached
  /// health (queue depth + in-flight, EWMA). Off = strict placement order.
  bool load_aware = true;
  /// Health samples older than this fall back to placement order; bounds
  /// how long the router can act on a stale picture of a shard's queue.
  std::uint64_t health_staleness_us = 500'000;
  /// Background health-poll period. 0 disables the poller entirely —
  /// samples then arrive only via note_health() (how the tests drive p2c
  /// deterministically).
  std::uint64_t health_poll_ms = 50;
  /// Per-attempt wire IO budget (connect + send + recv) for requests that
  /// carry no RequestOptions::deadline_us of their own; also bounds health
  /// probes, so a wedged shard cannot park the poller. 0 = unlimited
  /// (pre-PR-10 blocking IO).
  std::uint64_t default_attempt_deadline_us = 2'000'000;
  /// Retries allowed per request AFTER the first attempt. Attempts cycle
  /// the replica group, so with one replica the budget means "re-dial the
  /// same shard up to N more times".
  std::size_t retry_budget = 3;
  /// Backoff before the k-th retry: min(backoff_max_us,
  /// backoff_base_us << (k-1)), deterministically jittered into
  /// [delay/2, delay). 0 disables backoff (tests retry instantly).
  std::uint64_t backoff_base_us = 1'000;
  std::uint64_t backoff_max_us = 50'000;
  /// Consecutive transport failures that open a shard's circuit breaker.
  /// 0 disables circuit breaking.
  std::uint32_t breaker_threshold = 5;
  /// Seed for the router's deterministic randomness: backoff jitter and
  /// the p2c pair sample both hash (seed, draw-counter).
  std::uint64_t seed = 0;
};

/// Per-shard router-side counters (see Router::counters).
struct ShardCounters {
  std::uint64_t requests = 0;     // infer attempts sent to this shard
  std::uint64_t ok = 0;           // kOk responses
  std::uint64_t rejected = 0;     // typed non-ok responses returned to callers
  std::uint64_t retried = 0;      // attempts skipped to the next replica
  std::uint64_t io_failures = 0;  // WireIoError on this shard's connections
  // Replica-choice counters (load-aware routing). p2c_primary/alternate
  // count on the shard that RECEIVED the first attempt; p2c_stale counts on
  // the nominal primary when stale samples forced placement order.
  std::uint64_t p2c_primary = 0;    // p2c ran, placement primary won
  std::uint64_t p2c_alternate = 0;  // p2c diverted the request here
  std::uint64_t p2c_stale = 0;      // stale/absent sample: placement fallback
  std::uint64_t p2c_considered = 0;  // times this shard was in the sampled pair
  std::uint64_t health_probes = 0;    // poller round trips answered
  std::uint64_t health_failures = 0;  // poller round trips that failed
  std::uint64_t timeouts = 0;       // io_failures whose cause was kTimeout
  std::uint64_t breaker_trips = 0;  // closed/half-open -> open transitions
  std::uint64_t breaker_fastfails = 0;  // attempts skipped while open
};

/// Circuit-breaker state of one shard, as exported on the stats page
/// (dfr_router_breaker_state gauge uses the enum's numeric values).
enum class BreakerState : std::uint8_t {
  kClosed = 0,    // normal: requests dial the shard
  kOpen = 1,      // tripped: requests fast-fail without dialing
  kHalfOpen = 2,  // probe succeeded: the next request is a trial
};

class Router {
 public:
  explicit Router(RouterConfig config = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Add (or re-add after drain) a shard under a stable `name`; the name —
  /// not the endpoint — seeds the ring points, so a shard that moves
  /// address keeps its placement. No connection is made until traffic.
  void add_shard(std::string name, const wire::Endpoint& endpoint);

  /// Remove `name` from the ring and close its pooled connections. Unknown
  /// names are a no-op. Does NOT drain the shard (see drain_shard).
  void remove_shard(std::string_view name);

  /// remove_shard + wire drain: take the shard out of placement, then send
  /// kDrainRequest and wait for the ack the shard sends once every accepted
  /// request has resolved. Throws WireIoError when the shard is already
  /// unreachable (its ring points are removed regardless).
  void drain_shard(std::string_view name);

  /// The ordered replica group for `model_id`: up to `replicas` distinct
  /// live shard names, primary first. Empty when no shards are live.
  [[nodiscard]] std::vector<std::string> placement(
      std::string_view model_id) const;

  /// Route one request: try each replica in placement order per the retry
  /// policy above. Returns the first authoritative response, or a
  /// kUnavailable response when none was reachable. Thread-safe.
  [[nodiscard]] wire::WireResponse infer(std::string_view model_id,
                                         const Matrix& series,
                                         RequestOptions options = {});

  /// Health-probe one shard by name. Throws WireIoError when unreachable
  /// and CheckError for unknown names.
  [[nodiscard]] wire::HealthInfo health(std::string_view name);

  /// Record a health sample for `name` as-of now. The background poller
  /// feeds samples through this; it is public so tests (and external health
  /// feeds) can inject load observations deterministically. Unknown names
  /// are a no-op.
  void note_health(std::string_view name, const wire::HealthInfo& info);

  /// Text stats page in the same `name{labels} value` format as
  /// InferenceServer::export_stats / ArtifactStore::export_stats:
  /// per-shard request/retry counters, replica-choice counters, and the
  /// last cached health gauges.
  void export_stats(std::ostream& os) const;

  [[nodiscard]] std::vector<std::string> shard_names() const;
  [[nodiscard]] ShardCounters counters(std::string_view name) const;

  /// Current breaker state of `name` (kClosed for unknown names, and always
  /// kClosed while breaker_threshold == 0).
  [[nodiscard]] BreakerState breaker_state(std::string_view name) const;

 private:
  struct Shard;
  struct RingPoint {
    std::uint64_t hash;
    Shard* shard;
  };

  /// Shared_ptr'd so infer() can use a shard lock-free after snapshotting
  /// it while remove_shard rebuilds the ring concurrently.
  [[nodiscard]] std::vector<std::shared_ptr<Shard>> replicas_for(
      std::string_view model_id) const;
  void rebuild_ring_locked();
  [[nodiscard]] std::shared_ptr<Shard> find_shard(std::string_view name) const;

  /// One request/response round trip on a pooled connection, every blocking
  /// IO bounded by `deadline`. Returns false (after recording the failure
  /// and advancing the breaker) when this replica should be skipped.
  [[nodiscard]] bool try_shard(Shard& shard, std::span<const std::byte> frame,
                               std::uint64_t seq, wire::WireResponse& response,
                               wire::Deadline deadline);

  /// Power-of-two-choices over a seeded-random pair of `group` entries (the
  /// retry order past slot 0 is untouched): the lower
  /// (queue_depth + in-flight) x EWMA score moves to the front, placement
  /// order survives ties, stale samples fall back to placement order.
  void order_replicas(std::vector<std::shared_ptr<Shard>>& group) const;

  /// Breaker admission: true when `shard` may be dialed (closed, half-open
  /// trial, or breakers disabled); false counts a fast-fail.
  [[nodiscard]] bool breaker_allows(Shard& shard) const;

  /// Sleep the jittered exponential backoff before retry number `retry`
  /// (1-based), capped by what's left of `overall`. Returns false when the
  /// overall budget is exhausted (the caller answers kTimeout).
  [[nodiscard]] bool backoff_before_retry(std::size_t retry,
                                          wire::Deadline overall);

  /// The wire deadline for one attempt: the request's own overall budget
  /// when it has one, else a fresh default_attempt_deadline_us window.
  [[nodiscard]] wire::Deadline attempt_deadline(bool has_overall,
                                                wire::Deadline overall) const;

  /// One poller pass: health-probe every live shard on a fresh connection,
  /// cache the sample, swallow (but count) failures. A successful probe
  /// moves an open breaker to half-open; a failed one re-opens a half-open
  /// breaker.
  void poll_health_once();

  RouterConfig config_;
  mutable std::mutex mutex_;  // guards shards_ + ring_
  std::vector<std::shared_ptr<Shard>> shards_;
  std::vector<RingPoint> ring_;  // sorted by hash
  std::atomic<std::uint64_t> next_seq_{1};
  /// Draw counter behind every seeded-random decision (p2c pair, backoff
  /// jitter): hash_combine(config_.seed, rng_seq_++) is the stream.
  mutable std::atomic<std::uint64_t> rng_seq_{0};

  // Health poller (started in the ctor when health_poll_ms > 0).
  std::thread poll_thread_;
  std::mutex poll_mutex_;
  std::condition_variable poll_cv_;
  bool poll_stop_ = false;
};

/// 64-bit FNV-1a — the byte hash under the ring (an avalanche finalizer is
/// applied on top before any ring use, since raw FNV leaves common-prefix
/// names clustered). Exposed for the placement tests' known vectors.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// The deterministic power-of-two-choices pair for draw number `seq` over a
/// group of `n >= 2` replicas: two DISTINCT indices in [0, n), returned
/// (low, high). Hardcoding the pair to {0, 1} (the pre-PR-10 behavior)
/// starves replicas 2.. of first attempts in wide groups; sampling the pair
/// through the seeded hash keeps replica choice deterministic per (seed,
/// seq) while every pair gets compared eventually — the property the
/// placement tests pin. Exposed for those tests.
[[nodiscard]] std::pair<std::size_t, std::size_t> p2c_pair(
    std::uint64_t seed, std::uint64_t seq, std::size_t n) noexcept;

}  // namespace dfr::serve
