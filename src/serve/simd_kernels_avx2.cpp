// AVX2+FMA kernel set. This translation unit is compiled with per-file arch
// flags (-mavx2 -mfma -ffp-contract=off; see the root CMakeLists) on x86-64
// builds and compiles to a nullptr stub everywhere else — runtime dispatch in
// simd_kernels.cpp decides whether it ever executes.
//
// -ffp-contract=off matters: the preadd/nonlinearity stage must round exactly
// like the scalar baseline, so only the *explicit* _mm256_fmadd_pd in the
// DPRR update (where single rounding is the point, covered by the documented
// ULP bound) may fuse.
#include "serve/simd_kernels.hpp"

#if defined(DFR_SIMD_KERNELS_ISA) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace dfr::simd {
namespace {

constexpr std::size_t kWidth = 4;  // doubles per __m256d

inline __m256d abs_pd(__m256d v) noexcept {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

// v[n] = a * f~(j[n] + x_prev[n]). The polynomial / rational nonlinearities
// vectorize with the scalar evaluation order preserved; the libm-backed ones
// (tanh, sine, Mackey–Glass with its pow) keep per-lane scalar calls on top
// of the vectorized preadd semantics (j[n] + x_prev[n] is a plain IEEE add
// either way, so the preadd stage stays bit-exact).
void preadd_nonlin_avx2(const Nonlinearity& f, double a, const double* j,
                        const double* x_prev, double* out, std::size_t nx) {
  const __m256d va = _mm256_set1_pd(a);
  const std::size_t main = nx - nx % kWidth;
  switch (f.kind()) {
    case NonlinearityKind::kIdentity: {
      for (std::size_t n = 0; n < main; n += kWidth) {
        const __m256d s =
            _mm256_add_pd(_mm256_loadu_pd(j + n), _mm256_loadu_pd(x_prev + n));
        _mm256_storeu_pd(out + n, _mm256_mul_pd(va, s));
      }
      break;
    }
    case NonlinearityKind::kCubic: {
      // s - s*s*s/3, evaluated as ((s*s)*s)/3 like the scalar expression.
      const __m256d third = _mm256_set1_pd(3.0);
      for (std::size_t n = 0; n < main; n += kWidth) {
        const __m256d s =
            _mm256_add_pd(_mm256_loadu_pd(j + n), _mm256_loadu_pd(x_prev + n));
        const __m256d cubed = _mm256_mul_pd(_mm256_mul_pd(s, s), s);
        const __m256d value = _mm256_sub_pd(s, _mm256_div_pd(cubed, third));
        _mm256_storeu_pd(out + n, _mm256_mul_pd(va, value));
      }
      break;
    }
    case NonlinearityKind::kSaturating: {
      const __m256d one = _mm256_set1_pd(1.0);
      for (std::size_t n = 0; n < main; n += kWidth) {
        const __m256d s =
            _mm256_add_pd(_mm256_loadu_pd(j + n), _mm256_loadu_pd(x_prev + n));
        const __m256d value =
            _mm256_div_pd(s, _mm256_add_pd(one, abs_pd(s)));
        _mm256_storeu_pd(out + n, _mm256_mul_pd(va, value));
      }
      break;
    }
    case NonlinearityKind::kMackeyGlass:
    case NonlinearityKind::kTanh:
    case NonlinearityKind::kSine: {
      // libm-backed: fully scalar (the preadd is the same IEEE add either
      // way, so the stage contract is unaffected).
      for (std::size_t n = 0; n < nx; ++n) {
        out[n] = a * f.value(j[n] + x_prev[n]);
      }
      return;
    }
  }
  for (std::size_t n = main; n < nx; ++n) {
    out[n] = a * f.value(j[n] + x_prev[n]);
  }
}

// r[i*nx + jj] += x_k[i] * x_km1[jj] with explicit FMA (single rounding per
// accumulate — the documented ULP-bound divergence from scalar), plus the
// r[nx^2 + i] += x_k[i] node-sum column.
void dprr_add_avx2(double* r, const double* x_k, const double* x_km1,
                   std::size_t nx) {
  const std::size_t main = nx - nx % kWidth;
  double* sums = r + nx * nx;
  for (std::size_t i = 0; i < nx; ++i) {
    const double xi = x_k[i];
    const __m256d vxi = _mm256_set1_pd(xi);
    double* row = r + i * nx;
    for (std::size_t jj = 0; jj < main; jj += kWidth) {
      const __m256d acc = _mm256_fmadd_pd(vxi, _mm256_loadu_pd(x_km1 + jj),
                                          _mm256_loadu_pd(row + jj));
      _mm256_storeu_pd(row + jj, acc);
    }
    for (std::size_t jj = main; jj < nx; ++jj) {
      row[jj] = std::fma(xi, x_km1[jj], row[jj]);
    }
    sums[i] += xi;
  }
}

constexpr Kernels kAvx2Kernels{Backend::kAvx2, &preadd_nonlin_avx2,
                               &dprr_add_avx2};

}  // namespace

namespace detail {
const Kernels* avx2_kernels() noexcept { return &kAvx2Kernels; }
}  // namespace detail

}  // namespace dfr::simd

#else  // TU built without AVX2+FMA arch flags: register nothing.

namespace dfr::simd::detail {
const Kernels* avx2_kernels() noexcept { return nullptr; }
}  // namespace dfr::simd::detail

#endif
