#include "serve/simd_kernels.hpp"

#include <cstdlib>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dfr::simd {

// ---- portable scalar kernels ----------------------------------------------
// These perform exactly the operations of the fused scalar pipeline
// (ModularReservoir::step / DprrAccumulator::add) in the same order, so the
// scalar backend is the bit-exact baseline every ISA backend is tested
// against.

namespace {

void preadd_nonlin_scalar(const Nonlinearity& f, double a, const double* j,
                          const double* x_prev, double* out, std::size_t nx) {
  for (std::size_t n = 0; n < nx; ++n) {
    out[n] = a * f.value(j[n] + x_prev[n]);
  }
}

void dprr_add_scalar(double* r, const double* x_k, const double* x_km1,
                     std::size_t nx) {
  for (std::size_t i = 0; i < nx; ++i) {
    const double xi = x_k[i];
    double* row = r + i * nx;
    for (std::size_t j = 0; j < nx; ++j) row[j] += xi * x_km1[j];
    r[nx * nx + i] += xi;
  }
}

void scale_quantize_scalar(const FixedPointFormat& fmt, double scale,
                           double* values, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) values[i] = fmt.quantize(values[i] * scale);
}

void quant_preadd_nonlin_scalar(const Nonlinearity& f, double a,
                                const FixedPointFormat& fmt, const double* j,
                                const double* x_prev, double* out,
                                std::size_t nx) {
  for (std::size_t n = 0; n < nx; ++n) {
    out[n] = a * f.value(fmt.quantize(j[n] + x_prev[n]));
  }
}

// Batched SoA B-chain (see simd_kernels.hpp): row n of the state block is
// finished before row n+1 reads it, so `prev` can simply trail one row — no
// temporary per-lane carry needed. One multiply + one add per node per lane
// in node order, exactly the scalar B-chain's rounding (this TU builds
// without FMA-capable arch flags, so no contraction is possible).
void batched_bchain_scalar(double b, const double* head, double* x,
                           std::size_t nx, std::size_t lanes) {
  const double* prev = head;
  for (std::size_t n = 0; n < nx; ++n) {
    double* row = x + n * lanes;
    for (std::size_t l = 0; l < lanes; ++l) row[l] = row[l] + b * prev[l];
    prev = row;
  }
}

void batched_quant_bchain_scalar(double b, const FixedPointFormat& fmt,
                                 const double* head, double* x, std::size_t nx,
                                 std::size_t lanes) {
  const double* prev = head;
  for (std::size_t n = 0; n < nx; ++n) {
    double* row = x + n * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      row[l] = fmt.quantize(row[l] + b * prev[l]);
    }
    prev = row;
  }
}

// Batched SoA DPRR accumulate; like dprr_add_scalar this rounds twice per
// accumulate, so it doubles as the exact quantized-family kernel.
void batched_dprr_add_scalar(double* r, const double* x_k, const double* x_km1,
                             std::size_t nx, std::size_t lanes) {
  double* sums = r + nx * nx * lanes;
  for (std::size_t i = 0; i < nx; ++i) {
    const double* xi = x_k + i * lanes;
    for (std::size_t j = 0; j < nx; ++j) {
      double* row = r + (i * nx + j) * lanes;
      const double* xj = x_km1 + j * lanes;
      for (std::size_t l = 0; l < lanes; ++l) row[l] += xi[l] * xj[l];
    }
    double* sum_row = sums + i * lanes;
    for (std::size_t l = 0; l < lanes; ++l) sum_row[l] += xi[l];
  }
}

void batched_mask_scalar(const double* weights, std::size_t nx,
                         std::size_t channels, const double* u, double* j,
                         std::size_t lanes) {
  for (std::size_t i = 0; i < nx; ++i) {
    const double* wi = weights + i * channels;
    double* row = j + i * lanes;
    for (std::size_t l = 0; l < lanes; ++l) row[l] = 0.0;
    for (std::size_t v = 0; v < channels; ++v) {
      const double w = wi[v];
      const double* uv = u + v * lanes;
      for (std::size_t l = 0; l < lanes; ++l) row[l] += w * uv[l];
    }
  }
}

// The scalar float accumulates already round twice per accumulate (plain
// mul + add, exactly DprrAccumulator::add), so they double as the exact
// quantized-family kernels.
constexpr Kernels kScalarKernels{Backend::kScalar,
                                 &preadd_nonlin_scalar,
                                 &dprr_add_scalar,
                                 &scale_quantize_scalar,
                                 &quant_preadd_nonlin_scalar,
                                 &dprr_add_scalar,
                                 &batched_bchain_scalar,
                                 &batched_quant_bchain_scalar,
                                 &batched_dprr_add_scalar,
                                 &batched_dprr_add_scalar,
                                 &batched_mask_scalar};

bool cpu_supports_avx2_fma() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_supports_avx512() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw");
#else
  return false;
#endif
}

}  // namespace

// ---- dispatch --------------------------------------------------------------

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
    case Backend::kAvx512: return "avx512";
  }
  return "?";
}

bool try_parse_backend(const std::string& name, Backend& out) noexcept {
  if (name == "scalar") {
    out = Backend::kScalar;
  } else if (name == "avx2") {
    out = Backend::kAvx2;
  } else if (name == "neon") {
    out = Backend::kNeon;
  } else if (name == "avx512") {
    out = Backend::kAvx512;
  } else {
    return false;
  }
  return true;
}

Backend parse_backend(const std::string& name) {
  Backend backend = Backend::kScalar;
  DFR_CHECK_MSG(try_parse_backend(name, backend),
                "unknown SIMD backend: \"" + name +
                    "\" (expected scalar|avx2|avx512|neon)");
  return backend;
}

bool backend_available(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return detail::avx2_kernels() != nullptr && cpu_supports_avx2_fma();
    case Backend::kNeon:
      // The NEON TU only compiles its kernels on aarch64, where Advanced
      // SIMD is architecturally mandatory — presence implies support.
      return detail::neon_kernels() != nullptr;
    case Backend::kAvx512:
      return detail::avx512_kernels() != nullptr && cpu_supports_avx512();
  }
  return false;
}

Backend best_backend() noexcept {
  if (backend_available(Backend::kAvx512)) return Backend::kAvx512;
  if (backend_available(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_available(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

namespace detail {

Backend resolve_env_backend(const char* value, std::string* warning) {
  if (warning) warning->clear();
  Backend requested = Backend::kScalar;
  if (!try_parse_backend(value, requested)) {
    if (warning) {
      *warning = std::string("DFR_SIMD=") + value +
                 " is not a recognized backend (expected "
                 "scalar|avx2|avx512|neon); dispatching to " +
                 backend_name(best_backend());
    }
    return best_backend();
  }
  if (!backend_available(requested)) {
    if (warning) {
      *warning = std::string("DFR_SIMD=") + value +
                 " requests a backend unavailable on this host/build; "
                 "dispatching to " +
                 backend_name(best_backend());
    }
    return best_backend();
  }
  return requested;
}

}  // namespace detail

namespace {

Backend initial_backend() {
  if (const char* env = std::getenv("DFR_SIMD")) {
    // A bad override must not degrade silently (nor take the process down):
    // warn once, naming the value and the backend actually selected.
    std::string warning;
    const Backend backend = detail::resolve_env_backend(env, &warning);
    if (!warning.empty()) log_warn(warning);
    return backend;
  }
  return best_backend();
}

Backend& active_slot() {
  static Backend backend = initial_backend();  // env read once, thread-safe
  return backend;
}

}  // namespace

Backend active_backend() { return active_slot(); }

void force_backend(Backend backend) {
  DFR_CHECK_MSG(backend_available(backend),
                std::string("cannot force unavailable SIMD backend ") +
                    backend_name(backend));
  active_slot() = backend;
}

const Kernels& kernels_for(Backend backend) {
  DFR_CHECK_MSG(backend_available(backend),
                std::string("SIMD backend unavailable on this host/build: ") +
                    backend_name(backend));
  switch (backend) {
    case Backend::kScalar: return kScalarKernels;
    case Backend::kAvx2: return *detail::avx2_kernels();
    case Backend::kNeon: return *detail::neon_kernels();
    case Backend::kAvx512: return *detail::avx512_kernels();
  }
  return kScalarKernels;
}

const Kernels& active_kernels() { return kernels_for(active_backend()); }

}  // namespace dfr::simd
