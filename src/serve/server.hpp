#pragma once
// InferenceServer: the request-queue front end over the multi-model engine
// pool — the serving shape the paper's O(Nx) streaming claim is for.
//
//   clients --submit(model_id, series)--> bounded MPMC queue
//       --> worker threads (util/parallel.hpp pool, one engine-pool slot
//           each) --> per-model routing through ModelRegistry + EnginePool
//       --> InferFuture resolves with logits/label/latency
//
// Design points:
//
//  * Bounded queue with reject-on-full backpressure. submit() never blocks:
//    when `queue_capacity` requests are pending, executing, or holding
//    uncollected results, it returns an already-resolved future with
//    RequestStatus::kQueueFull (a typed error, not an exception — overload
//    is an expected state, and in steady state the rejection path does not
//    allocate; a registered model's first-ever rejection creates its stats
//    entry once).
//
//  * Zero heap allocations per request in steady state. Request slots (the
//    id string, the series pointer, and the result's logits storage) are
//    preallocated at construction and recycled through a free list; the
//    worker-side engines come from the EnginePool cache; InferFuture is a
//    plain slot handle. This is why submit() returns InferFuture rather
//    than std::future — std::promise heap-allocates its shared state on
//    every request. test_server.cpp instruments operator new to pin this.
//
//  * Hot-swap safe. Workers resolve the model id against the registry per
//    request; an artifact re-registered mid-traffic serves new requests
//    while in-flight ones finish on the artifact they were routed to
//    (shared ownership, see model_io.hpp). Requests never cross-route.
//
//  * Opportunistic micro-batching (ServerConfig::max_batch > 1). A worker
//    that dequeues a request claims already-queued requests for the same
//    (model id, engine variant, series shape), waits up to
//    ServerConfig::batch_window_us for more matching arrivals, and runs the
//    coalesced set as ONE cross-request SoA inference (BatchedEngine: one
//    request per vector lane, so the serialized B-chain vectorizes across
//    requests). Each lane's result routes back to its own InferFuture;
//    singleton traffic falls back to the per-request path. The batch is
//    routed ONCE at dequeue time — all lanes serve the artifact the head
//    resolved, which is what makes hot-swap semantics identical to the
//    unbatched path.
//
//  * SLO-aware admission (RequestOptions::deadline_us / priority). Workers
//    dequeue highest-priority-first and shed requests whose deadline already
//    passed with a typed kDeadlineExceeded BEFORE spending engine time —
//    under overload the queue drops late work instead of serving the whole
//    backlog late. The micro-batcher coalesces matching requests in
//    priority order. Shed requests count in a per-model `shed` stat.
//
//  * Clean shutdown. shutdown() stops admission (kShutdown rejections),
//    drains every queued request, joins the workers, and is idempotent;
//    the destructor calls it.
//
//  * Per-model counters (completed/errors/rejected/shed) plus a
//    recent-latency window summarized through stats::summarize
//    (linalg/stats.hpp), exportable as a scrapeable text page
//    (export_stats), with a dropped_stats counter surfacing ids the
//    max_tracked_models cap forced the server to stop counting.
//
// Threading: submit()/stats() are safe from any number of client threads.
// The worker loops run on a private util/parallel.hpp ThreadPool (the
// process-global pool stays free for classify_batch and training sweeps);
// each worker owns one EnginePool slot, which keeps engine scratch
// unshared without locking around inference.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "linalg/stats.hpp"
#include "serve/registry.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace dfr::serve {

enum class RequestStatus : int {
  kOk = 0,
  kQueueFull,      // backpressure: queue_capacity requests already admitted
  kUnknownModel,   // model_id not registered (at processing time)
  kInvalidArgument,  // series rejected by the engine (shape mismatch, ...)
  kInternalError,  // unexpected server-side failure (logged; not the client)
  kShutdown,       // submitted after shutdown() began
  kDeadlineExceeded,  // shed: RequestOptions::deadline_us passed before a
                      // worker picked the request up (never executed)
};

[[nodiscard]] const char* request_status_name(RequestStatus status) noexcept;

/// One request's outcome. For accepted requests the storage lives in the
/// server's slot and is valid until the owning InferFuture is destroyed.
struct InferResult {
  RequestStatus status = RequestStatus::kOk;
  int label = -1;      // argmax of logits; -1 on error
  Vector logits;       // empty on error
  double latency_us = 0.0;  // submit -> completion (queue wait + inference)
};

struct ServerConfig {
  /// Serving threads; each owns one engine-pool slot. 0 = hardware_threads().
  std::size_t workers = 1;
  /// Bound on requests that are pending, executing, or holding uncollected
  /// results at once; submissions beyond it are rejected with kQueueFull.
  std::size_t queue_capacity = 256;
  /// Per-model recent-latency samples kept for stats().
  std::size_t latency_window = 512;
  /// Bound on distinct model ids tracked by stats(). Only ids that resolve
  /// in the registry ever claim a tracking slot (bogus client-supplied ids
  /// cannot starve real models of stats); the cap bounds memory across
  /// registered-model churn. Traffic beyond the cap is served normally but
  /// not counted per-model.
  std::size_t max_tracked_models = 64;
  /// Opportunistic micro-batching: a worker that dequeues a request
  /// coalesces up to `max_batch` already-queued requests for the same
  /// (model id, engine variant, series shape) into one cross-request SoA
  /// inference (serve/engine.hpp BatchedEngine), routing each lane's result
  /// to its own InferFuture. 1 (the default) disables batching — every
  /// request takes the single-series path. Validated at construction:
  /// must be in [1, simd::kBatchedMaxLanes], and `batch_window_us` must be
  /// positive when batching is enabled (typed CheckError, not a clamp).
  std::size_t max_batch = 1;
  /// How long a worker holding a non-full batch waits for more matching
  /// arrivals before launching, in microseconds, measured from the moment
  /// the batch head is dequeued. Singleton traffic therefore pays up to one
  /// window of extra latency when batching is enabled; a full batch, a
  /// non-matching queue, or shutdown launches immediately. Ignored (and
  /// allowed to stay 0) when max_batch == 1.
  std::size_t batch_window_us = 0;
  /// Submit-side predictive shed: reject a deadline-carrying request with a
  /// typed kDeadlineExceeded at submit() when the backlog ahead of it —
  /// pending requests times the EWMA of recent service times, divided
  /// across workers — already exceeds its budget, instead of queueing work
  /// that is doomed to be shed later anyway. Conservative by construction:
  /// it never fires on a cold server (the EWMA trains on completions) or on
  /// an empty queue, and deadline-free requests are never predicted against.
  bool shed_on_submit = true;
};

/// Per-request options. `engine` picks the datapath family and
/// implementation: a FloatEngineKind routes to the artifact's float weights
/// (the default — kAuto is SIMD best-available), a QuantizedEngineKind
/// routes to its calibrated fixed-point twin (ModelArtifact::quantized,
/// attached via with_quantized; requests for an artifact without one
/// resolve to kInvalidArgument). Like the model id, the engine kind is
/// resolved per request at processing time, so a hot-swap that adds or
/// drops a quantized twin takes effect on the next request.
/// SLO knobs (`deadline_us`, `priority`) shape HOW the queue drains under
/// load: workers dequeue the highest-priority request first (FIFO within a
/// priority level; cancellations may perturb that tie-break), the
/// micro-batcher coalesces matching requests highest-priority-first, and a
/// request whose deadline has already passed when a worker picks it up is
/// shed with a typed kDeadlineExceeded before any engine time is spent on
/// it. Shedding is queue-position aware: a predictably-doomed request is
/// dropped typed at submit() (ServerConfig::shed_on_submit), one whose
/// budget expires while waiting is claimed and shed by the next worker's
/// queue sweep, and one that slips past both still sheds at dequeue — an
/// admitted request always resolves, either with a result or with the
/// typed shed status.
struct RequestOptions {
  std::variant<FloatEngineKind, QuantizedEngineKind> engine =
      FloatEngineKind::kAuto;
  /// Completion budget in microseconds, measured from submit(); 0 = none.
  /// When the budget is exhausted before a worker dequeues the request, it
  /// is shed with kDeadlineExceeded instead of executing late.
  std::uint64_t deadline_us = 0;
  /// Dequeue priority: higher runs first. Default 0 keeps pure FIFO.
  std::int32_t priority = 0;
};

/// Per-model serving counters; see InferenceServer::stats.
struct ModelServingStats {
  std::uint64_t completed = 0;  // requests finished with kOk
  std::uint64_t errors = 0;     // finished with kUnknownModel/kInvalidArgument
  std::uint64_t rejected = 0;   // kQueueFull/kShutdown rejections for this id
  std::uint64_t shed = 0;       // kDeadlineExceeded: dropped unexecuted
  Summary latency_us;           // summarize() over the recent-latency window
};

class InferenceServer;

/// Move-only handle to one submitted request. Destroying it releases the
/// request's slot back to the server. Abandoning a future before it is
/// ready is safe: a still-queued request is cancelled (the worker never
/// touches its series), and a request already executing blocks the
/// destructor for the remainder of that one inference — either way the
/// submitted series is never read after the future is gone. A future must
/// not outlive the server that issued it.
class InferFuture {
 public:
  InferFuture() = default;
  InferFuture(InferFuture&& other) noexcept;
  InferFuture& operator=(InferFuture&& other) noexcept;
  InferFuture(const InferFuture&) = delete;
  InferFuture& operator=(const InferFuture&) = delete;
  ~InferFuture();

  /// False only for a default-constructed or moved-from handle.
  [[nodiscard]] bool valid() const noexcept;

  /// True once the result is available (immediately so for rejections).
  [[nodiscard]] bool ready() const;

  /// Block until the result is available.
  void wait() const;

  /// wait() + the result. The reference stays valid until this future is
  /// destroyed or moved-from. Throws CheckError on an invalid handle.
  [[nodiscard]] const InferResult& get() const;

 private:
  friend class InferenceServer;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  InferFuture(InferenceServer* server, std::size_t slot) noexcept
      : server_(server), slot_(slot) {}
  explicit InferFuture(RequestStatus rejection) noexcept
      : rejection_(rejection) {}

  InferenceServer* server_ = nullptr;  // null for rejected / invalid handles
  std::size_t slot_ = kNoSlot;
  RequestStatus rejection_ = RequestStatus::kOk;  // != kOk marks a rejection
};

class InferenceServer {
 public:
  /// Starts `config.workers` serving threads immediately. The registry must
  /// outlive the server; models may be registered/swapped/evicted while the
  /// server runs.
  explicit InferenceServer(ModelRegistry& registry, ServerConfig config = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one series for `model_id`. Zero-copy admission: the caller
  /// must keep `series` alive and unmodified while the future is held (the
  /// future's destructor cancels or finishes the request, so destroying the
  /// future and then the series is always safe). Never blocks: returns an
  /// already-resolved kQueueFull / kShutdown future when the request cannot
  /// be admitted. The options' engine kind routes the request per request —
  /// see RequestOptions for the quantized path.
  [[nodiscard]] InferFuture submit(std::string_view model_id,
                                   const Matrix& series,
                                   RequestOptions options = {});

  /// Convenience overloads for a bare engine-kind argument.
  [[nodiscard]] InferFuture submit(std::string_view model_id,
                                   const Matrix& series,
                                   FloatEngineKind engine) {
    return submit(model_id, series, RequestOptions{.engine = engine});
  }
  [[nodiscard]] InferFuture submit(std::string_view model_id,
                                   const Matrix& series,
                                   QuantizedEngineKind engine) {
    return submit(model_id, series, RequestOptions{.engine = engine});
  }

  /// Synchronous batch path: routes by id, then fans out over the
  /// process-global pool exactly like the free classify_batch (bypasses the
  /// request queue and its capacity bound). Throws CheckError when
  /// `model_id` is not registered — or when a quantized engine kind is
  /// requested for an artifact without a quantized twin.
  [[nodiscard]] std::vector<int> classify_batch(std::string_view model_id,
                                                std::span<const Matrix> series,
                                                unsigned threads = 0,
                                                RequestOptions options = {});
  [[nodiscard]] std::vector<int> classify_batch(std::string_view model_id,
                                                std::span<const Matrix> series,
                                                unsigned threads,
                                                FloatEngineKind engine) {
    return classify_batch(model_id, series, threads,
                          RequestOptions{.engine = engine});
  }
  [[nodiscard]] std::vector<int> classify_batch(std::string_view model_id,
                                                std::span<const Matrix> series,
                                                unsigned threads,
                                                QuantizedEngineKind engine) {
    return classify_batch(model_id, series, threads,
                          RequestOptions{.engine = engine});
  }

  /// Stop admission, drain every queued request, join the workers.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// True until shutdown() begins.
  [[nodiscard]] bool accepting() const;

  /// Counters for one model id (zeroes when the id never saw traffic).
  [[nodiscard]] ModelServingStats stats(std::string_view model_id) const;

  /// (id, counters) for every id that saw traffic, sorted by id.
  [[nodiscard]] std::vector<std::pair<std::string, ModelServingStats>> stats()
      const;

  /// Stat recordings silently dropped because the max_tracked_models cap
  /// was exhausted when a new id needed a tracking slot. Nonzero means the
  /// per-model counters undercount; raise the cap or prune the fleet.
  [[nodiscard]] std::uint64_t dropped_stats() const;

  /// Append per-model serving metrics to `os` in the scrapeable text format
  /// (README "Stats export"): one `name{labels} value` line per metric —
  /// completed/errors/rejected/shed totals, latency quantiles, and the
  /// dropped-stats counter. Concatenate with ArtifactStore::export_stats
  /// for one scrape page covering traffic AND residency.
  void export_stats(std::ostream& os) const;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return config_.queue_capacity;
  }

  /// Requests currently pending in the bounded queue (admitted, not yet
  /// claimed by a worker) — the instantaneous load signal the shard's
  /// health response carries for the router's load-aware replica choice.
  [[nodiscard]] std::size_t queue_depth() const;

  /// EWMA of recent per-request engine service times, µs (the same estimate
  /// the submit-side predictive shed trains on); 0 until the first
  /// completion.
  [[nodiscard]] double ewma_service_us() const noexcept {
    return static_cast<double>(
               ewma_service_ns_.load(std::memory_order_relaxed)) *
           1e-3;
  }

 private:
  friend class InferFuture;
  struct Slot;
  struct StatsEntry;

  void worker_loop(std::size_t worker);
  void process(std::size_t worker, std::size_t slot_index);
  /// Under mutex_: claim queued requests matching the batch head (same
  /// model id, engine variant, and series shape) into `batch`, compacting
  /// the pending ring and freeing abandoned slots along the way.
  void claim_batchmates(std::vector<std::size_t>& batch);
  /// Under mutex_ (lock passed in): fill `batch` up to max_batch, waiting
  /// out the batch window for more matching arrivals.
  void collect_batch(std::unique_lock<std::mutex>& lock,
                     std::vector<std::size_t>& batch);
  /// Run one coalesced batch through the pooled batched engine, fanning the
  /// per-lane results (or a shared error) to every slot.
  void process_batch(std::size_t worker,
                     const std::vector<std::size_t>& batch);
  void release_slot(std::size_t slot_index);
  /// Resolve a dequeued-but-late request as kDeadlineExceeded without
  /// executing it (counted in the per-model `shed` stat). Caller must not
  /// hold mutex_.
  void shed_slot(std::size_t slot_index, bool registered);
  void record_outcome(std::string_view model_id, const InferResult& result,
                      bool id_is_registered);
  void record_rejection(std::string_view model_id);
  /// Count a submit-time predictive shed in the per-model `shed` stat.
  void record_submit_shed(std::string_view model_id);
  /// Under mutex_: would a request admitted now predictably miss
  /// `deadline_us` just waiting out the backlog ahead of it?
  [[nodiscard]] bool predicted_wait_exceeds(std::uint64_t deadline_us) const;
  /// Train the service-time EWMA behind predicted_wait_exceeds.
  void note_service_time(std::uint64_t ns);
  /// Find-or-create under stats_mutex_. Creates an entry only when
  /// `allow_create` (the id resolved in the registry) and the
  /// max_tracked_models cap is not exhausted; nullptr otherwise.
  StatsEntry* stats_entry_for(std::string_view model_id, bool allow_create);
  [[nodiscard]] bool slot_ready(std::size_t slot_index) const;
  void wait_slot(std::size_t slot_index) const;
  [[nodiscard]] const InferResult& slot_result(std::size_t slot_index) const;

  ModelRegistry* registry_;
  ServerConfig config_;
  std::size_t workers_ = 1;
  std::uint64_t eviction_token_ = 0;  // registry eviction subscription

  // Request slots + bounded pending ring + free list; see server.cpp.
  mutable std::mutex mutex_;
  mutable std::condition_variable work_cv_;   // wakes workers
  mutable std::condition_variable done_cv_;   // wakes future waiters
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::size_t> pending_;  // ring buffer of slot indices
  std::size_t pending_head_ = 0;
  std::size_t pending_count_ = 0;
  std::vector<std::size_t> free_;
  bool accepting_ = true;
  bool stop_workers_ = false;
  std::uint64_t submit_seq_ = 0;  // bumped per admission; batch-window wakeups
  /// EWMA of recent per-request engine service times (ns); trains the
  /// submit-side predictive shed. Atomic so workers update it lock-free.
  std::atomic<std::uint64_t> ewma_service_ns_{0};

  // Per-model counters, keyed by id.
  mutable std::mutex stats_mutex_;
  std::unordered_map<std::string, StatsEntry, StringHash, std::equal_to<>>
      stats_;
  std::uint64_t dropped_stats_ = 0;  // guarded by stats_mutex_

  EnginePool pool_;
  std::unique_ptr<ThreadPool> thread_pool_;  // private; not the global pool
  std::thread dispatcher_;  // runs for_each_index(workers, worker_loop)
};

}  // namespace dfr::serve
