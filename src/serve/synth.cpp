#include "serve/synth.hpp"

#include <memory>
#include <utility>

#include "dfr/dprr.hpp"
#include "fixedpoint/quantized_dfr.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dfr::serve {

Matrix make_synth_series(std::size_t steps, std::size_t channels,
                         std::uint64_t seed) {
  Rng rng(seed);
  Matrix series(steps, channels);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t v = 0; v < channels; ++v) {
      series(t, v) = rng.uniform(-1.0, 1.0);
    }
  }
  return series;
}

Dataset make_synth_dataset(const SynthModelSpec& spec, std::size_t samples,
                           std::size_t steps, std::uint64_t seed) {
  Dataset data("synth", spec.num_classes, steps, spec.channels);
  for (std::size_t i = 0; i < samples; ++i) {
    data.add(Sample{make_synth_series(steps, spec.channels, seed + i),
                    static_cast<int>(i % spec.num_classes)});
  }
  return data;
}

ModelArtifactPtr make_synth_artifact(std::string name,
                                     const SynthModelSpec& spec) {
  DFR_CHECK_MSG(spec.channels > 0 && spec.nodes > 0 && spec.num_classes > 1,
                "synth model spec: need channels > 0, nodes > 0, classes > 1");
  Rng rng(spec.seed);
  LoadedModel model;
  model.params = DfrParams{0.1, 0.05};
  model.mask = Mask(spec.nodes, spec.channels, MaskKind::kBinary, rng);
  Matrix w(static_cast<std::size_t>(spec.num_classes), dprr_dim(spec.nodes));
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) {
      w(i, j) = rng.uniform(-1.0, 1.0);
    }
  }
  Vector b(w.rows(), 0.0);
  for (double& v : b) v = rng.uniform(-0.1, 0.1);
  model.readout = OutputLayer(std::move(w), std::move(b));

  ModelArtifactPtr artifact = model.artifact(std::move(name));
  if (!spec.quantized) return artifact;

  // Calibration corpus derived from the same seed, so every process attaches
  // a bit-identical fixed-point twin.
  QuantizedDfr quantized(model, QuantizedInferenceConfig{});
  quantized.calibrate(
      make_synth_dataset(spec, /*samples=*/8, /*steps=*/32, spec.seed + 1000));
  return with_quantized(
      artifact, std::make_shared<const QuantizedDfr>(std::move(quantized)));
}

}  // namespace dfr::serve
