#pragma once
// Zero-copy model artifact store: mmap-backed .dfrm loading plus an LRU
// layer that bounds resident weight memory across a large model fleet.
//
// Loading
// -------
// `load_artifact_mmap` maps a .dfrm v2 file (dfr/dfrm_format.hpp) read-only
// and builds a `ModelArtifact` whose mask/readout matrices BORROW the mapped
// pages (`Matrix::borrow`) instead of copying them — the only per-load heap
// traffic is the artifact struct itself and the tiny Ny-entry bias vector.
// The mapping is refcounted through `ModelArtifact::backing`: engines,
// registry entries, and in-flight requests all hold `ModelArtifactPtr`
// references, so the file stays mapped exactly until the last user drops the
// artifact, then unmaps (MappedFile's destructor). Validation happens before
// any view is formed — bad magic, an unexpected version, a size mismatch,
// out-of-bounds or misaligned sections all throw typed `CheckError` and
// leave nothing mapped. Legacy v1 files (unaligned) transparently fall back
// to the copying loader behind the same call.
//
// Fleet LRU
// ---------
// `ArtifactStore` fronts a `ModelRegistry` for fleets larger than memory:
// ids are `add`ed with their .dfrm path, and `get` faults the artifact in on
// first use (registering it in the registry), touches LRU order on hits, and
// when `max_resident_bytes` would be exceeded evicts least-recently-used
// models via `ModelRegistry::evict`. Eviction flows through the registry's
// existing subscriptions, so the server's `EnginePool` reclaims cached
// engines on each worker's own thread (PR 5 deferred reclaim) and in-flight
// requests finish safely on the artifact references they already hold; the
// pages actually unmap when the last reference drains. A later `get` for an
// evicted id transparently faults it back in. The store never evicts from
// inside a registry eviction listener (that is forbidden by the
// subscription contract); it is itself the eviction driver.
//
// Predictive prefetch
// -------------------
// With `ArtifactStoreConfig::prefetch` on, the store learns a first-order
// successor model over the get() id stream (the id most recently observed to
// follow each id) and, after every get(), posts a background task that
// faults the predicted-next artifact in via prefetch(). Background loads
// count under `prefetches`, never `faults`, so the fault counter remains a
// clean request-path cold-start signal — the loadgen's cold_fault_frac and
// the warm-up test both key off that split. Prefetch is advisory
// throughout: wrong predictions waste one load (LRU reclaims it), failing
// loads are swallowed, and the request path never waits on the worker.
// madvise hints ride the same events: MADV_WILLNEED when a mapping faults
// or prefetches in, MADV_DONTNEED when the LRU evicts it.
//
// Threading: all ArtifactStore methods are thread-safe behind one mutex
// (workers fault concurrently; loads serialize — acceptable because the hit
// path is a find + LRU splice and never allocates). The prefetch worker
// takes the same mutex, so a background load can delay a concurrent get()
// by one artifact-load; acceptable for the same reason, and the alternative
// (loading outside the lock) would race eviction.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

#include "linalg/stats.hpp"
#include "serve/registry.hpp"
#include "util/parallel.hpp"

namespace dfr::serve {

/// Refcounted read-only mapping of one file. Unmaps in the destructor, i.e.
/// when the last shared_ptr (held via ModelArtifact::backing) drops.
class MappedFile {
 public:
  /// Map `path` read-only. Throws CheckError when the file cannot be
  /// opened, is empty, or mmap fails.
  static std::shared_ptr<const MappedFile> map(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] const std::byte* data() const noexcept {
    return static_cast<const std::byte*>(addr_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Page-cache hints. WILLNEED asks the kernel to read the whole mapping
  /// ahead (issued on fault-in and prefetch so first-touch page faults are
  /// not taken on the request path); DONTNEED drops the clean file-backed
  /// pages on evict (a later touch transparently re-faults from the file —
  /// safe even with in-flight readers, read-only MAP_PRIVATE pages are
  /// never dirty). Purely advisory; failures are ignored.
  void advise_willneed() const noexcept;
  void advise_dontneed() const noexcept;

 private:
  MappedFile(void* addr, std::size_t size) noexcept
      : addr_(addr), size_(size) {}

  void* addr_;
  std::size_t size_;
};

/// Load a .dfrm file as an artifact, zero-copy when possible: v2 files are
/// mmap'ed and borrowed (see file comment), v1 files fall back to the
/// copying loader (dfr::load_artifact). Throws typed CheckError on any
/// malformed input; on failure nothing stays mapped.
[[nodiscard]] ModelArtifactPtr load_artifact_mmap(const std::string& path,
                                                  std::string name = {});

/// How ArtifactStore materializes artifacts on a fault.
enum class LoadMode {
  kMmap,  // zero-copy for v2 files, copying for v1 (default)
  kCopy,  // always the copying loader (baseline / comparison)
};

struct ArtifactStoreConfig {
  /// Bound on summed resident artifact bytes (mapped file size for mmap
  /// artifacts, owned weight bytes for copied ones). Faulting a model in
  /// evicts least-recently-used models until the total fits. 0 = unbounded.
  /// A single artifact larger than the bound still loads (everything else
  /// is evicted first); serving it is better than refusing.
  std::size_t max_resident_bytes = 0;
  LoadMode mode = LoadMode::kMmap;
  /// Recent load-latency samples kept for the load_p50 stat.
  std::size_t load_window = 128;
  /// Learn a first-order successor model over get() ids and fault the
  /// predicted next artifact in from a background worker after each get(),
  /// so steady repeating access patterns stop taking cold faults on the
  /// request path. See the "Predictive prefetch" section of the file
  /// comment.
  bool prefetch = false;
};

/// Monotonic counters + gauges; see ArtifactStore::counters().
struct ArtifactStoreCounters {
  std::uint64_t hits = 0;        // get() served from the registry
  std::uint64_t faults = 0;      // get() that had to load (cold or re-fault)
  std::uint64_t evictions = 0;   // LRU evictions driven by this store
  std::uint64_t prefetches = 0;  // background fault-ins (never count as faults)
  std::size_t resident_bytes = 0;
  std::size_t resident_models = 0;
  std::size_t tracked_models = 0;  // add()ed ids, resident or not
};

/// LRU-bounded artifact cache over a ModelRegistry. See file comment.
class ArtifactStore {
 public:
  /// The registry must outlive the store. The store assumes it is the only
  /// eviction driver for the ids it tracks; externally evicted ids are
  /// healed (re-faulted) on their next get().
  explicit ArtifactStore(ModelRegistry& registry,
                         ArtifactStoreConfig config = {});

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Track `id` -> `path` without loading. Re-adding an id updates its path
  /// (the new path is used on the next fault; a resident artifact is not
  /// reloaded eagerly).
  void add(std::string id, std::string path);

  /// The artifact serving `id`: LRU-touches and returns the resident
  /// artifact, or faults it in (load + register + evict-to-cap). Returns
  /// nullptr for an untracked id. Throws CheckError when the fault-in load
  /// fails (corrupt/missing file) — the id stays tracked and non-resident.
  [[nodiscard]] ModelArtifactPtr get(std::string_view id);

  /// Stop tracking `id`, evicting it from the registry if resident.
  /// Returns false for an untracked id.
  bool erase(std::string_view id);

  /// Fault `id` in ahead of demand: load + register + LRU-front +
  /// evict-to-cap, counted under `prefetches` (NOT `faults` — the fault
  /// counter stays a request-path signal). Advisory: untracked or already
  /// resident ids are a no-op, and a failing load is swallowed (the broken
  /// artifact surfaces as a typed error on the real get() that needs it).
  /// Called by the background worker; public so callers with their own
  /// schedule (warm-up scripts, tests) can drive it directly.
  void prefetch(std::string_view id);

  /// The id the successor model predicts will be asked for after `id`
  /// (empty when nothing has been learned yet). Exposed for tests.
  [[nodiscard]] std::string predicted_successor(std::string_view id) const;

  /// Block until every queued background prefetch has finished. No-op when
  /// prefetch is disabled. Tests use this to assert on post-warm-up state
  /// deterministically.
  void wait_prefetch_idle();

  [[nodiscard]] std::size_t resident_bytes() const;
  [[nodiscard]] ArtifactStoreCounters counters() const;

  /// Summary of recent fault-in load latencies (µs); load_p50 = .p50.
  [[nodiscard]] Summary load_latency_us() const;

  /// Append this store's metrics to `os` in the scrapeable text format
  /// (README "Stats export"): one `name{labels} value` line per metric,
  /// resident bytes and per-model load p50 included.
  void export_stats(std::ostream& os) const;

 private:
  struct Entry {
    std::string path;
    bool resident = false;
    std::size_t bytes = 0;                    // resident footprint when loaded
    std::uint64_t loads = 0;                  // lifetime fault-ins
    double last_load_us = 0.0;
    std::list<std::string>::iterator lru_it;  // valid iff resident
  };

  /// Under mutex_: mark `entry` non-resident and fix accounting.
  void note_nonresident(Entry& entry);
  /// Under mutex_: evict LRU victims (never `keep`) until the cap holds.
  void evict_to_cap(const Entry* keep);
  /// Under mutex_: load entries_[id] (timed), register it, put it at the
  /// LRU front, apply madvise(WILLNEED), and evict to cap. The caller
  /// decides which counter the load lands in (faults_ vs prefetches_).
  ModelArtifactPtr fault_in_locked(const std::string& id, Entry& entry);

  ModelRegistry* registry_;
  ArtifactStoreConfig config_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry, StringHash, std::equal_to<>> entries_;
  std::list<std::string> lru_;  // front = most recent; resident ids only
  std::size_t resident_bytes_ = 0;
  std::size_t resident_models_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t prefetches_ = 0;
  Vector load_us_;              // ring of recent load latencies
  std::size_t load_next_ = 0;

  // First-order successor model: the id most recently observed to follow
  // each id in the get() stream (last-winner, no counts — cheap and right
  // for the cyclic fleet patterns the loadgen drives).
  std::unordered_map<std::string, std::string, StringHash, std::equal_to<>>
      successor_;
  std::string last_get_id_;

  // Declared LAST: its destructor drains queued prefetch tasks (which take
  // mutex_ and touch entries_) before any other member dies.
  std::unique_ptr<BackgroundQueue> prefetch_queue_;
};

}  // namespace dfr::serve
