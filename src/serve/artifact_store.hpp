#pragma once
// Zero-copy model artifact store: mmap-backed .dfrm loading plus an LRU
// layer that bounds resident weight memory across a large model fleet.
//
// Loading
// -------
// `load_artifact_mmap` maps a .dfrm v2 file (dfr/dfrm_format.hpp) read-only
// and builds a `ModelArtifact` whose mask/readout matrices BORROW the mapped
// pages (`Matrix::borrow`) instead of copying them — the only per-load heap
// traffic is the artifact struct itself and the tiny Ny-entry bias vector.
// The mapping is refcounted through `ModelArtifact::backing`: engines,
// registry entries, and in-flight requests all hold `ModelArtifactPtr`
// references, so the file stays mapped exactly until the last user drops the
// artifact, then unmaps (MappedFile's destructor). Validation happens before
// any view is formed — bad magic, an unexpected version, a size mismatch,
// out-of-bounds or misaligned sections all throw typed `CheckError` and
// leave nothing mapped. Legacy v1 files (unaligned) transparently fall back
// to the copying loader behind the same call.
//
// Fleet LRU
// ---------
// `ArtifactStore` fronts a `ModelRegistry` for fleets larger than memory:
// ids are `add`ed with their .dfrm path, and `get` faults the artifact in on
// first use (registering it in the registry), touches LRU order on hits, and
// when `max_resident_bytes` would be exceeded evicts least-recently-used
// models via `ModelRegistry::evict`. Eviction flows through the registry's
// existing subscriptions, so the server's `EnginePool` reclaims cached
// engines on each worker's own thread (PR 5 deferred reclaim) and in-flight
// requests finish safely on the artifact references they already hold; the
// pages actually unmap when the last reference drains. A later `get` for an
// evicted id transparently faults it back in. The store never evicts from
// inside a registry eviction listener (that is forbidden by the
// subscription contract); it is itself the eviction driver.
//
// Threading: all ArtifactStore methods are thread-safe behind one mutex
// (workers fault concurrently; loads serialize — acceptable because the hit
// path is a find + LRU splice and never allocates).

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

#include "linalg/stats.hpp"
#include "serve/registry.hpp"

namespace dfr::serve {

/// Refcounted read-only mapping of one file. Unmaps in the destructor, i.e.
/// when the last shared_ptr (held via ModelArtifact::backing) drops.
class MappedFile {
 public:
  /// Map `path` read-only. Throws CheckError when the file cannot be
  /// opened, is empty, or mmap fails.
  static std::shared_ptr<const MappedFile> map(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] const std::byte* data() const noexcept {
    return static_cast<const std::byte*>(addr_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  MappedFile(void* addr, std::size_t size) noexcept
      : addr_(addr), size_(size) {}

  void* addr_;
  std::size_t size_;
};

/// Load a .dfrm file as an artifact, zero-copy when possible: v2 files are
/// mmap'ed and borrowed (see file comment), v1 files fall back to the
/// copying loader (dfr::load_artifact). Throws typed CheckError on any
/// malformed input; on failure nothing stays mapped.
[[nodiscard]] ModelArtifactPtr load_artifact_mmap(const std::string& path,
                                                  std::string name = {});

/// How ArtifactStore materializes artifacts on a fault.
enum class LoadMode {
  kMmap,  // zero-copy for v2 files, copying for v1 (default)
  kCopy,  // always the copying loader (baseline / comparison)
};

struct ArtifactStoreConfig {
  /// Bound on summed resident artifact bytes (mapped file size for mmap
  /// artifacts, owned weight bytes for copied ones). Faulting a model in
  /// evicts least-recently-used models until the total fits. 0 = unbounded.
  /// A single artifact larger than the bound still loads (everything else
  /// is evicted first); serving it is better than refusing.
  std::size_t max_resident_bytes = 0;
  LoadMode mode = LoadMode::kMmap;
  /// Recent load-latency samples kept for the load_p50 stat.
  std::size_t load_window = 128;
};

/// Monotonic counters + gauges; see ArtifactStore::counters().
struct ArtifactStoreCounters {
  std::uint64_t hits = 0;        // get() served from the registry
  std::uint64_t faults = 0;      // get() that had to load (cold or re-fault)
  std::uint64_t evictions = 0;   // LRU evictions driven by this store
  std::size_t resident_bytes = 0;
  std::size_t resident_models = 0;
  std::size_t tracked_models = 0;  // add()ed ids, resident or not
};

/// LRU-bounded artifact cache over a ModelRegistry. See file comment.
class ArtifactStore {
 public:
  /// The registry must outlive the store. The store assumes it is the only
  /// eviction driver for the ids it tracks; externally evicted ids are
  /// healed (re-faulted) on their next get().
  explicit ArtifactStore(ModelRegistry& registry,
                         ArtifactStoreConfig config = {});

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Track `id` -> `path` without loading. Re-adding an id updates its path
  /// (the new path is used on the next fault; a resident artifact is not
  /// reloaded eagerly).
  void add(std::string id, std::string path);

  /// The artifact serving `id`: LRU-touches and returns the resident
  /// artifact, or faults it in (load + register + evict-to-cap). Returns
  /// nullptr for an untracked id. Throws CheckError when the fault-in load
  /// fails (corrupt/missing file) — the id stays tracked and non-resident.
  [[nodiscard]] ModelArtifactPtr get(std::string_view id);

  /// Stop tracking `id`, evicting it from the registry if resident.
  /// Returns false for an untracked id.
  bool erase(std::string_view id);

  [[nodiscard]] std::size_t resident_bytes() const;
  [[nodiscard]] ArtifactStoreCounters counters() const;

  /// Summary of recent fault-in load latencies (µs); load_p50 = .p50.
  [[nodiscard]] Summary load_latency_us() const;

  /// Append this store's metrics to `os` in the scrapeable text format
  /// (README "Stats export"): one `name{labels} value` line per metric,
  /// resident bytes and per-model load p50 included.
  void export_stats(std::ostream& os) const;

 private:
  struct Entry {
    std::string path;
    bool resident = false;
    std::size_t bytes = 0;                    // resident footprint when loaded
    std::uint64_t loads = 0;                  // lifetime fault-ins
    double last_load_us = 0.0;
    std::list<std::string>::iterator lru_it;  // valid iff resident
  };

  /// Under mutex_: mark `entry` non-resident and fix accounting.
  void note_nonresident(Entry& entry);
  /// Under mutex_: evict LRU victims (never `keep`) until the cap holds.
  void evict_to_cap(const Entry* keep);

  ModelRegistry* registry_;
  ArtifactStoreConfig config_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry, StringHash, std::equal_to<>> entries_;
  std::list<std::string> lru_;  // front = most recent; resident ids only
  std::size_t resident_bytes_ = 0;
  std::size_t resident_models_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t evictions_ = 0;
  Vector load_us_;              // ring of recent load latencies
  std::size_t load_next_ = 0;
};

}  // namespace dfr::serve
