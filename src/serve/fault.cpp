#include "serve/fault.hpp"

#include <charconv>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dfr::serve {
namespace {

[[nodiscard]] double parse_probability(std::string_view text,
                                       const char* what) {
  double p = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), p);
  DFR_CHECK_MSG(ec == std::errc{} && ptr == text.data() + text.size() &&
                    p >= 0.0 && p <= 1.0,
                what);
  return p;
}

[[nodiscard]] std::uint64_t parse_u64(std::string_view text,
                                      const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  DFR_CHECK_MSG(ec == std::errc{} && ptr == text.data() + text.size(), what);
  return v;
}

}  // namespace

const char* fault_kind_name(FaultSpec::Kind kind) noexcept {
  switch (kind) {
    case FaultSpec::Kind::kNone: return "none";
    case FaultSpec::Kind::kStall: return "stall";
    case FaultSpec::Kind::kDelay: return "delay";
    case FaultSpec::Kind::kGarbage: return "garbage";
    case FaultSpec::Kind::kCloseMidFrame: return "close-mid-frame";
    case FaultSpec::Kind::kDropAccept: return "drop-accept";
  }
  return "unknown";
}

FaultSpec parse_fault_spec(std::string_view text) {
  FaultSpec spec;
  if (text.empty() || text == "none") return spec;

  const std::size_t colon = text.find(':');
  DFR_CHECK_MSG(colon != std::string_view::npos,
                "fault: expected kind:p (e.g. stall:0.5)");
  const std::string_view kind = text.substr(0, colon);
  std::string_view rest = text.substr(colon + 1);

  if (kind == "stall") {
    spec.kind = FaultSpec::Kind::kStall;
  } else if (kind == "delay") {
    spec.kind = FaultSpec::Kind::kDelay;
    const std::size_t second = rest.find(':');
    DFR_CHECK_MSG(second != std::string_view::npos,
                  "fault: delay spec is delay:ms:p");
    spec.delay_ms = parse_u64(rest.substr(0, second),
                              "fault: delay milliseconds must be an integer");
    rest = rest.substr(second + 1);
  } else if (kind == "garbage") {
    spec.kind = FaultSpec::Kind::kGarbage;
  } else if (kind == "close-mid-frame") {
    spec.kind = FaultSpec::Kind::kCloseMidFrame;
  } else if (kind == "drop-accept") {
    spec.kind = FaultSpec::Kind::kDropAccept;
  } else {
    DFR_CHECK_MSG(false,
                  "fault: unknown kind (stall | delay | garbage | "
                  "close-mid-frame | drop-accept)");
  }
  spec.probability =
      parse_probability(rest, "fault: probability must be in [0, 1]");
  return spec;
}

void FaultInjector::arm(FaultSpec spec, std::uint64_t seed) {
  DFR_CHECK_MSG(spec.probability >= 0.0 && spec.probability <= 1.0,
                "fault: probability must be in [0, 1]");
  std::lock_guard<std::mutex> lock(mutex_);
  spec_ = spec;
  seed_ = seed;
  seq_ = 0;
  fired_ = 0;
}

FaultSpec FaultInjector::spec() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spec_;
}

bool FaultInjector::fire_locked() {
  if (spec_.kind == FaultSpec::Kind::kNone || spec_.probability <= 0.0) {
    return false;
  }
  if (fired_ >= spec_.limit) return false;  // budget spent: injector is quiet
  // Counter-based hash -> uniform double in [0, 1): deterministic for a
  // given (seed, decision index), and p = 1.0 fires unconditionally.
  const std::uint64_t h = hash_combine(seed_, seq_++);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= spec_.probability) return false;
  ++fired_;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

FaultSpec FaultInjector::draw_response_fault() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec_.kind == FaultSpec::Kind::kDropAccept) return FaultSpec{};
  if (!fire_locked()) return FaultSpec{};
  return spec_;
}

bool FaultInjector::draw_accept_drop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec_.kind != FaultSpec::Kind::kDropAccept) return false;
  return fire_locked();
}

}  // namespace dfr::serve
