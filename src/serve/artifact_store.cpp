#include "serve/artifact_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "dfr/dfrm_format.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace dfr::serve {

// ---- MappedFile ------------------------------------------------------------

std::shared_ptr<const MappedFile> MappedFile::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  DFR_CHECK_MSG(fd >= 0, "cannot open for mapping: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    DFR_CHECK_MSG(false, "cannot stat (or empty) model file: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  DFR_CHECK_MSG(addr != MAP_FAILED, "mmap failed: " + path);
  return std::shared_ptr<const MappedFile>(new MappedFile(addr, size));
}

MappedFile::~MappedFile() { ::munmap(addr_, size_); }

void MappedFile::advise_willneed() const noexcept {
  ::madvise(addr_, size_, MADV_WILLNEED);
}

void MappedFile::advise_dontneed() const noexcept {
  ::madvise(addr_, size_, MADV_DONTNEED);
}

// ---- zero-copy loader ------------------------------------------------------

namespace {

/// Validate a v2 header against the mapped size and build the borrowed-view
/// artifact. Every check fires BEFORE any view is formed; a throw unwinds
/// the shared_ptr and unmaps — never a crash, never a partial map escaping.
ModelArtifactPtr artifact_from_mapping(
    std::shared_ptr<const MappedFile> mapping, const std::string& path,
    std::string name) {
  const std::byte* base = mapping->data();
  const std::size_t size = mapping->size();
  DFR_CHECK_MSG(size >= sizeof(dfrm::V2Header),
                "truncated DFRM v2 header: " + path);
  dfrm::V2Header hdr{};
  std::memcpy(&hdr, base, sizeof(hdr));  // header itself may be read unaligned
  DFR_CHECK_MSG(hdr.file_size == size,
                "DFRM v2 size mismatch (truncated or trailing data): " + path);
  DFR_CHECK_MSG(hdr.mask_rows > 0 && hdr.mask_cols > 0 &&
                    hdr.readout_rows > 0 && hdr.readout_cols > 0,
                "malformed matrix header: " + path);
  // Per-dimension bound keeps the rows*cols products passed to section()
  // below overflow for any real file size.
  const std::uint64_t max_doubles = size / sizeof(double);
  DFR_CHECK_MSG(hdr.mask_rows <= max_doubles && hdr.mask_cols <= max_doubles &&
                    hdr.readout_rows <= max_doubles &&
                    hdr.readout_cols <= max_doubles &&
                    hdr.bias_len <= max_doubles,
                "malformed matrix header: " + path);
  DFR_CHECK_MSG(hdr.nonlin_kind >= 0 &&
                    hdr.nonlin_kind <=
                        static_cast<std::int32_t>(NonlinearityKind::kSaturating),
                "unknown nonlinearity kind: " + path);
  auto section = [&](std::uint64_t offset, std::uint64_t count) {
    DFR_CHECK_MSG(offset % dfrm::kV2Align == 0,
                  "misaligned DFRM v2 section: " + path);
    DFR_CHECK_MSG(offset >= dfrm::kV2PayloadStart && offset <= size &&
                      count <= (size - offset) / sizeof(double),
                  "DFRM v2 section out of bounds: " + path);
    return reinterpret_cast<const double*>(base + offset);
  };
  const double* mask_p = section(hdr.mask_offset, hdr.mask_rows * hdr.mask_cols);
  const double* w_p =
      section(hdr.readout_offset, hdr.readout_rows * hdr.readout_cols);
  const double* bias_p = section(hdr.bias_offset, hdr.bias_len);

  ModelArtifact model;
  model.name = std::move(name);
  model.params.a = hdr.a;
  model.params.b = hdr.b;
  model.chosen_beta = hdr.chosen_beta;
  model.nonlinearity = Nonlinearity(
      static_cast<NonlinearityKind>(hdr.nonlin_kind), hdr.mg_exponent);
  model.mask = Mask(Matrix::borrow(mask_p, hdr.mask_rows, hdr.mask_cols));
  // The bias is Ny entries — copying it keeps OutputLayer's Vector type and
  // is far below "weight-sized" (the zero-copy contract the alloc-counting
  // test pins is about the O(Nx·V) and O(Ny·Nr) payloads).
  model.readout = OutputLayer(
      Matrix::borrow(w_p, hdr.readout_rows, hdr.readout_cols),
      Vector(bias_p, bias_p + hdr.bias_len));
  model.backing = std::move(mapping);  // unmap-on-last-release
  return std::make_shared<const ModelArtifact>(std::move(model));
}

}  // namespace

ModelArtifactPtr load_artifact_mmap(const std::string& path, std::string name) {
  std::shared_ptr<const MappedFile> mapping = MappedFile::map(path);
  DFR_CHECK_MSG(mapping->size() >= 8, "not a DFRM file: " + path);
  DFR_CHECK_MSG(std::memcmp(mapping->data(), dfrm::kMagic, 4) == 0,
                "not a DFRM file: " + path);
  std::uint32_t version = 0;
  std::memcpy(&version, mapping->data() + 4, sizeof(version));
  if (version == dfrm::kVersion1) {
    // Legacy stream-packed layout: nothing is aligned, so views cannot
    // borrow it. Same API, copying loader.
    mapping.reset();
    return load_artifact(path, std::move(name));
  }
  DFR_CHECK_MSG(version == dfrm::kVersion2, "unsupported DFRM version");
  return artifact_from_mapping(std::move(mapping), path, std::move(name));
}

// ---- ArtifactStore ---------------------------------------------------------

namespace {

/// Resident footprint of an artifact the copying loader produced.
std::size_t owned_weight_bytes(const ModelArtifact& artifact) noexcept {
  return (artifact.mask.weights().size() + artifact.readout.weights().size() +
          artifact.readout.bias().size()) *
         sizeof(double);
}

}  // namespace

namespace {

/// The MappedFile behind an artifact's pages, or null for copied weights.
std::shared_ptr<const MappedFile> mapping_of(const ModelArtifact& artifact) {
  return std::static_pointer_cast<const MappedFile>(artifact.backing);
}

}  // namespace

ArtifactStore::ArtifactStore(ModelRegistry& registry,
                             ArtifactStoreConfig config)
    : registry_(&registry), config_(config) {
  load_us_.reserve(config_.load_window);
  if (config_.prefetch) prefetch_queue_ = std::make_unique<BackgroundQueue>();
}

void ArtifactStore::add(std::string id, std::string path) {
  DFR_CHECK_MSG(!id.empty(), "artifact store id must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(std::string_view(id));
  if (it == entries_.end()) {
    Entry entry;
    entry.path = std::move(path);
    entries_.emplace(std::move(id), std::move(entry));
  } else {
    it->second.path = std::move(path);
  }
}

ModelArtifactPtr ArtifactStore::fault_in_locked(const std::string& id,
                                                Entry& entry) {
  Timer timer;
  ModelArtifactPtr artifact;
  std::size_t bytes = 0;
  if (config_.mode == LoadMode::kMmap) {
    artifact = load_artifact_mmap(entry.path, id);
    // mmap-backed artifacts account the whole mapping; v1 fallbacks own
    // their weights.
    const auto mapping = mapping_of(*artifact);
    bytes = mapping != nullptr ? mapping->size()
                               : owned_weight_bytes(*artifact);
    // Ask the kernel for the whole mapping ahead of first touch, so the
    // page-in cost is paid here instead of inside the first inference.
    if (mapping != nullptr) mapping->advise_willneed();
  } else {
    artifact = load_artifact(entry.path, id);
    bytes = owned_weight_bytes(*artifact);
  }
  const double load_us = static_cast<double>(timer.elapsed_ns()) * 1e-3;
  if (config_.load_window > 0) {
    if (load_us_.size() < config_.load_window) {
      load_us_.push_back(load_us);
    } else {
      load_us_[load_next_] = load_us;
    }
    load_next_ = (load_next_ + 1) % config_.load_window;
  }
  ++entry.loads;
  entry.last_load_us = load_us;

  registry_->register_model(artifact);
  entry.resident = true;
  entry.bytes = bytes;
  lru_.push_front(id);
  entry.lru_it = lru_.begin();
  resident_bytes_ += bytes;
  ++resident_models_;
  evict_to_cap(&entry);
  return artifact;
}

ModelArtifactPtr ArtifactStore::get(std::string_view id) {
  ModelArtifactPtr artifact;
  std::string predicted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return nullptr;
    Entry& entry = it->second;

    // Train the successor model on the observed id stream, then look up the
    // prediction for what follows THIS id (posted below, outside the lock).
    if (!last_get_id_.empty() && last_get_id_ != it->first) {
      successor_[last_get_id_] = it->first;
    }
    last_get_id_ = it->first;
    if (prefetch_queue_ != nullptr) {
      auto next = successor_.find(id);
      if (next != successor_.end() && next->second != it->first) {
        predicted = next->second;
      }
    }

    if (entry.resident) {
      artifact = registry_->get(id);
      if (artifact != nullptr) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, entry.lru_it);  // touch, no allocation
      } else {
        // Evicted externally (registry driven by someone else): heal
        // accounting and re-fault.
        note_nonresident(entry);
      }
    }
    if (artifact == nullptr) {
      ++faults_;
      artifact = fault_in_locked(it->first, entry);
    }
  }
  if (!predicted.empty()) {
    prefetch_queue_->post(
        [this, id = std::move(predicted)] { prefetch(id); });
  }
  return artifact;
}

void ArtifactStore::prefetch(std::string_view id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.resident) {
    if (registry_->get(id) != nullptr) return;  // already warm: no LRU touch
    note_nonresident(entry);                    // externally evicted: heal
  }
  try {
    (void)fault_in_locked(it->first, entry);
    ++prefetches_;
  } catch (const CheckError&) {
    // Advisory by contract: a broken artifact surfaces as a typed error on
    // the real get() that needs it, not from the background worker.
  }
}

std::string ArtifactStore::predicted_successor(std::string_view id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = successor_.find(id);
  return it == successor_.end() ? std::string() : it->second;
}

void ArtifactStore::wait_prefetch_idle() {
  if (prefetch_queue_ != nullptr) prefetch_queue_->drain();
}

bool ArtifactStore::erase(std::string_view id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (it->second.resident) {
    if (const ModelArtifactPtr victim = registry_->get(it->first)) {
      if (const auto mapping = mapping_of(*victim)) mapping->advise_dontneed();
    }
    registry_->evict(it->first);
    note_nonresident(it->second);
    ++evictions_;
  }
  entries_.erase(it);
  return true;
}

void ArtifactStore::note_nonresident(Entry& entry) {
  resident_bytes_ -= entry.bytes;
  --resident_models_;
  entry.bytes = 0;
  entry.resident = false;
  lru_.erase(entry.lru_it);
}

void ArtifactStore::evict_to_cap(const Entry* keep) {
  if (config_.max_resident_bytes == 0) return;
  while (resident_bytes_ > config_.max_resident_bytes && !lru_.empty()) {
    const std::string& victim_id = lru_.back();
    auto it = entries_.find(std::string_view(victim_id));
    DFR_CHECK_MSG(it != entries_.end() && it->second.resident,
                  "artifact store LRU out of sync");
    if (&it->second == keep) break;  // never evict the artifact just faulted in
    // Drop the victim's clean pages now — the mapping itself may linger on
    // in-flight references, but the kernel can reclaim the memory
    // immediately (a late touch re-faults from the file).
    if (const ModelArtifactPtr victim = registry_->get(victim_id)) {
      if (const auto mapping = mapping_of(*victim)) mapping->advise_dontneed();
    }
    // Outside any registry listener by construction (we ARE the driver):
    // evict() notifies the engine pool, workers reclaim deferred, and the
    // mapping unmaps when the last in-flight reference drains.
    registry_->evict(victim_id);
    note_nonresident(it->second);
    ++evictions_;
  }
}

std::size_t ArtifactStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

ArtifactStoreCounters ArtifactStore::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ArtifactStoreCounters{hits_,           faults_,
                               evictions_,      prefetches_,
                               resident_bytes_, resident_models_,
                               entries_.size()};
}

Summary ArtifactStore::load_latency_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return load_us_.empty() ? Summary{} : summarize(load_us_);
}

void ArtifactStore::export_stats(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "dfr_store_resident_bytes " << resident_bytes_ << '\n';
  os << "dfr_store_resident_models " << resident_models_ << '\n';
  os << "dfr_store_tracked_models " << entries_.size() << '\n';
  os << "dfr_store_hits_total " << hits_ << '\n';
  os << "dfr_store_faults_total " << faults_ << '\n';
  os << "dfr_store_evictions_total " << evictions_ << '\n';
  os << "dfr_store_prefetches_total " << prefetches_ << '\n';
  if (!load_us_.empty()) {
    const Summary s = summarize(load_us_);
    os << "dfr_store_load_us{quantile=\"0.5\"} " << s.p50 << '\n';
    os << "dfr_store_load_us{quantile=\"0.99\"} " << s.p99 << '\n';
  }
  for (const auto& [id, entry] : entries_) {
    if (entry.resident) {
      os << "dfr_model_resident_bytes{model=\"" << id << "\"} " << entry.bytes
         << '\n';
    }
    if (entry.loads > 0) {
      os << "dfr_model_load_us{model=\"" << id << "\"} " << entry.last_load_us
         << '\n';
    }
  }
}

}  // namespace dfr::serve
