#include "serve/wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <limits>

#include "util/check.hpp"

namespace dfr::serve::wire {
namespace {

// ---- body append helpers ---------------------------------------------------

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + n);
}

/// Reserve header space at the front of `frame`, run `body`, then patch the
/// header in with the final body length. Keeps every encoder single-pass.
template <typename BodyFn>
void encode_frame(std::vector<std::byte>& frame, MessageType type,
                  std::uint64_t seq, BodyFn&& body) {
  frame.clear();
  frame.resize(sizeof(FrameHeader));
  body(frame);
  DFR_CHECK_MSG(frame.size() - sizeof(FrameHeader) <= kMaxFrameBytes,
                "wire: encoded body exceeds kMaxFrameBytes");
  FrameHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kWireVersion;
  header.type = static_cast<std::uint16_t>(type);
  header.seq = seq;
  header.body_bytes = frame.size() - sizeof(FrameHeader);
  std::memcpy(frame.data(), &header, sizeof(header));
}

// ---- bounds-checked body reader -------------------------------------------
//
// Same discipline as the .dfrm v2 reader: every length is validated against
// the bytes actually present BEFORE it is used, element counts are bounded
// in division form so rows*cols can never overflow, and finish() rejects a
// body with trailing bytes (a length-field lie in the other direction).

class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> body) : body_(body) {}

  template <typename T>
  [[nodiscard]] T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T), "fixed field");
    T value;
    std::memcpy(&value, body_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[nodiscard]] std::string read_string(std::uint64_t count,
                                        const char* what) {
    need(count, what);
    std::string s(reinterpret_cast<const char*>(body_.data() + pos_),
                  static_cast<std::size_t>(count));
    pos_ += static_cast<std::size_t>(count);
    return s;
  }

  /// Read `count` doubles into `out` (bit-exact memcpy). The count is
  /// bounded by the remaining bytes before any allocation happens.
  void read_doubles(std::uint64_t count, double* out, const char* what) {
    DFR_CHECK_MSG(count <= remaining() / sizeof(double), what);
    std::memcpy(out, body_.data() + pos_,
                static_cast<std::size_t>(count) * sizeof(double));
    pos_ += static_cast<std::size_t>(count) * sizeof(double);
  }

  [[nodiscard]] std::uint64_t remaining() const noexcept {
    return body_.size() - pos_;
  }

  void finish(const char* what) const {
    DFR_CHECK_MSG(pos_ == body_.size(), what);
  }

 private:
  void need(std::uint64_t n, const char* what) const {
    // Overflow-safe: compares against what is left, never pos_ + n.
    DFR_CHECK_MSG(n <= remaining(), what);
  }

  std::span<const std::byte> body_;
  std::size_t pos_ = 0;
};

[[nodiscard]] std::span<const std::byte> checked_body(
    std::span<const std::byte> frame, MessageType expected) {
  const FrameHeader header = decode_header(frame);
  DFR_CHECK_MSG(header.type == static_cast<std::uint16_t>(expected),
                "wire: frame type does not match the expected message");
  return frame.subspan(sizeof(FrameHeader));
}

// Engine-variant wire encoding: family selects the std::variant alternative,
// kind the enum value inside it. Both enums share {kAuto=0,kScalar=1,kSimd=2}.
constexpr std::uint8_t kFamilyFloat = 0;
constexpr std::uint8_t kFamilyQuantized = 1;

static_assert(static_cast<int>(FloatEngineKind::kSimd) == 2 &&
                  static_cast<int>(QuantizedEngineKind::kSimd) == 2,
              "engine-kind wire values assume the shared 0/1/2 layout");

struct EncodedEngine {
  std::uint8_t family;
  std::uint8_t kind;
};

[[nodiscard]] EncodedEngine encode_engine(
    const std::variant<FloatEngineKind, QuantizedEngineKind>& engine) {
  if (const auto* f = std::get_if<FloatEngineKind>(&engine)) {
    return {kFamilyFloat, static_cast<std::uint8_t>(*f)};
  }
  return {kFamilyQuantized,
          static_cast<std::uint8_t>(std::get<QuantizedEngineKind>(engine))};
}

[[nodiscard]] std::variant<FloatEngineKind, QuantizedEngineKind> decode_engine(
    std::uint8_t family, std::uint8_t kind) {
  DFR_CHECK_MSG(family <= kFamilyQuantized,
                "wire: unknown engine family in request");
  DFR_CHECK_MSG(kind <= static_cast<std::uint8_t>(FloatEngineKind::kSimd),
                "wire: unknown engine kind in request");
  if (family == kFamilyFloat) return static_cast<FloatEngineKind>(kind);
  return static_cast<QuantizedEngineKind>(kind);
}

// ---- transport helpers -----------------------------------------------------

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Classify an errno for the WireIoError taxonomy: a peer that died with
/// the frame in flight (reset) is distinguishable from everything else.
[[nodiscard]] WireIoError::Kind errno_kind(int err) noexcept {
  return (err == ECONNRESET || err == EPIPE) ? WireIoError::Kind::kReset
                                             : WireIoError::Kind::kOther;
}

/// Block until `fd` is ready for `events` or the deadline expires. The poll
/// timeout is recomputed after every EINTR, so a signal storm cannot extend
/// the budget; expiry throws the typed timeout. A POLLERR/POLLHUP wake
/// counts as ready — the following recv/send surfaces the real errno.
void wait_io(int fd, short events, Deadline deadline, const char* what) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, deadline.poll_timeout_ms());
    if (rc > 0) return;
    if (rc == 0 || deadline.expired()) {
      throw WireIoError(std::string(what) + ": deadline expired",
                        WireIoError::Kind::kTimeout);
    }
    if (errno == EINTR) continue;
    throw WireIoError(errno_message(what), errno_kind(errno));
  }
}

/// Read exactly `n` bytes, honoring the deadline. Returns the bytes
/// actually read before EOF (so the caller can tell a clean frame-boundary
/// EOF from a mid-frame one); throws WireIoError on a hard error and the
/// typed kTimeout when the peer stalls — at ANY byte offset — past the
/// deadline. Every recv is MSG_DONTWAIT + poll, so the fd's blocking mode
/// never matters.
[[nodiscard]] std::size_t read_exact(int fd, std::byte* out, std::size_t n,
                                     Deadline deadline) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, MSG_DONTWAIT);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got;  // EOF
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      throw WireIoError(errno_message("wire: recv failed"),
                        errno_kind(errno));
    }
    wait_io(fd, POLLIN, deadline, "wire: recv");
  }
  return got;
}

}  // namespace

int Deadline::poll_timeout_ms() const noexcept {
  if (unlimited()) return -1;
  const std::uint64_t us = remaining_us();
  if (us == 0) return 0;
  const std::uint64_t ms = (us + 999) / 1000;  // round up: never spin at 0
  constexpr std::uint64_t kMax =
      static_cast<std::uint64_t>(std::numeric_limits<int>::max());
  return static_cast<int>(std::min(ms, kMax));
}

const char* wire_status_name(WireStatus status) noexcept {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kQueueFull: return "queue_full";
    case WireStatus::kUnknownModel: return "unknown_model";
    case WireStatus::kInvalidArgument: return "invalid_argument";
    case WireStatus::kInternalError: return "internal_error";
    case WireStatus::kShutdown: return "shutdown";
    case WireStatus::kDeadlineExceeded: return "deadline_exceeded";
    case WireStatus::kUnavailable: return "unavailable";
    case WireStatus::kTimeout: return "timeout";
    case WireStatus::kBreakerOpen: return "breaker_open";
  }
  return "unknown";
}

// ---- encoders --------------------------------------------------------------

void encode_request(const WireRequest& request, const Matrix& series,
                    std::vector<std::byte>& frame) {
  DFR_CHECK_MSG(request.model_id.size() <= kMaxFrameBytes,
                "wire: model id too long to frame");
  encode_frame(frame, MessageType::kInferRequest, request.seq,
               [&](std::vector<std::byte>& out) {
                 const EncodedEngine engine =
                     encode_engine(request.options.engine);
                 append_pod(out, engine.family);
                 append_pod(out, engine.kind);
                 append_pod(out, std::uint16_t{0});  // reserved
                 append_pod(out, request.options.priority);
                 append_pod(out, request.options.deadline_us);
                 append_pod(out,
                            static_cast<std::uint32_t>(request.model_id.size()));
                 append_bytes(out, request.model_id.data(),
                              request.model_id.size());
                 append_pod(out, static_cast<std::uint64_t>(series.rows()));
                 append_pod(out, static_cast<std::uint64_t>(series.cols()));
                 append_bytes(out, series.data(),
                              series.size() * sizeof(double));
               });
}

void encode_response(const WireResponse& response,
                     std::vector<std::byte>& frame) {
  encode_frame(frame, MessageType::kInferResponse, response.seq,
               [&](std::vector<std::byte>& out) {
                 append_pod(out, static_cast<std::int32_t>(response.status));
                 append_pod(out, response.label);
                 append_pod(out, response.latency_us);
                 append_pod(out,
                            static_cast<std::uint32_t>(response.logits.size()));
                 append_bytes(out, response.logits.data(),
                              response.logits.size() * sizeof(double));
               });
}

void encode_health_request(std::uint64_t seq, std::vector<std::byte>& frame) {
  encode_frame(frame, MessageType::kHealthRequest, seq,
               [](std::vector<std::byte>&) {});
}

void encode_health_response(const HealthInfo& info, std::uint64_t seq,
                            std::vector<std::byte>& frame) {
  encode_frame(frame, MessageType::kHealthResponse, seq,
               [&](std::vector<std::byte>& out) {
                 append_pod(out, static_cast<std::uint8_t>(info.accepting));
                 append_pod(out, static_cast<std::uint8_t>(info.draining));
                 // The u16 v1 reserved: queue depth, saturated to the field.
                 append_pod(out, static_cast<std::uint16_t>(std::min<
                                     std::uint32_t>(info.queue_depth, 0xffff)));
                 append_pod(out, info.models);
                 // v2 appended load fields.
                 append_pod(out, info.queue_capacity);
                 append_pod(out, info.ewma_service_us);
               });
}

void encode_drain_request(std::uint64_t seq, std::vector<std::byte>& frame) {
  encode_frame(frame, MessageType::kDrainRequest, seq,
               [](std::vector<std::byte>&) {});
}

void encode_drain_response(std::uint64_t seq, std::vector<std::byte>& frame) {
  encode_frame(frame, MessageType::kDrainResponse, seq,
               [](std::vector<std::byte>&) {});
}

// ---- decoders --------------------------------------------------------------

FrameHeader decode_header(std::span<const std::byte> frame) {
  DFR_CHECK_MSG(frame.size() >= sizeof(FrameHeader),
                "wire: frame shorter than the fixed header");
  FrameHeader header;
  std::memcpy(&header, frame.data(), sizeof(header));
  DFR_CHECK_MSG(std::memcmp(header.magic, kMagic, sizeof(kMagic)) == 0,
                "wire: bad frame magic");
  DFR_CHECK_MSG(header.version >= kWireVersionMin &&
                    header.version <= kWireVersion,
                "wire: unsupported protocol version");
  DFR_CHECK_MSG(header.type >=
                        static_cast<std::uint16_t>(MessageType::kInferRequest) &&
                    header.type <=
                        static_cast<std::uint16_t>(MessageType::kDrainResponse),
                "wire: unknown message type");
  DFR_CHECK_MSG(header.body_bytes <= kMaxFrameBytes,
                "wire: declared body exceeds the frame cap");
  DFR_CHECK_MSG(header.body_bytes == frame.size() - sizeof(FrameHeader),
                "wire: declared body length does not match the frame");
  return header;
}

WireRequest decode_request(std::span<const std::byte> frame) {
  const FrameHeader header = decode_header(frame);
  Cursor cursor(checked_body(frame, MessageType::kInferRequest));

  WireRequest request;
  request.seq = header.seq;
  const auto family = cursor.read<std::uint8_t>();
  const auto kind = cursor.read<std::uint8_t>();
  (void)cursor.read<std::uint16_t>();  // reserved
  request.options.engine = decode_engine(family, kind);
  request.options.priority = cursor.read<std::int32_t>();
  request.options.deadline_us = cursor.read<std::uint64_t>();

  const auto id_len = cursor.read<std::uint32_t>();
  request.model_id =
      cursor.read_string(id_len, "wire: model id runs past the frame");

  const auto rows = cursor.read<std::uint64_t>();
  const auto cols = cursor.read<std::uint64_t>();
  // Division-form product bound (.dfrm style): each dimension must fit the
  // remaining payload on its own, and so must rows*cols — checked without
  // ever computing an overflowing product.
  const std::uint64_t max_doubles = cursor.remaining() / sizeof(double);
  DFR_CHECK_MSG(rows <= max_doubles && cols <= max_doubles,
                "wire: series dimension runs past the frame");
  DFR_CHECK_MSG(rows == 0 || cols <= max_doubles / rows,
                "wire: series element count runs past the frame");
  request.series = Matrix(static_cast<std::size_t>(rows),
                          static_cast<std::size_t>(cols));
  cursor.read_doubles(rows * cols, request.series.data(),
                      "wire: series payload runs past the frame");
  cursor.finish("wire: trailing bytes after request payload");
  return request;
}

WireResponse decode_response(std::span<const std::byte> frame) {
  const FrameHeader header = decode_header(frame);
  Cursor cursor(checked_body(frame, MessageType::kInferResponse));

  WireResponse response;
  response.seq = header.seq;
  const auto status = cursor.read<std::int32_t>();
  // kTimeout / kBreakerOpen are router-local verdicts, never legitimate wire
  // bytes — a peer claiming one is lying and the frame is rejected.
  DFR_CHECK_MSG(status >= 0 &&
                    status <= static_cast<std::int32_t>(WireStatus::kUnavailable),
                "wire: unknown response status");
  response.status = static_cast<WireStatus>(status);
  response.label = cursor.read<std::int32_t>();
  response.latency_us = cursor.read<double>();

  const auto logits_len = cursor.read<std::uint32_t>();
  DFR_CHECK_MSG(logits_len <= cursor.remaining() / sizeof(double),
                "wire: logits run past the frame");
  response.logits.resize(logits_len);
  cursor.read_doubles(logits_len, response.logits.data(),
                      "wire: logits run past the frame");
  cursor.finish("wire: trailing bytes after response payload");
  return response;
}

HealthInfo decode_health_response(std::span<const std::byte> frame) {
  Cursor cursor(checked_body(frame, MessageType::kHealthResponse));
  HealthInfo info;
  info.accepting = cursor.read<std::uint8_t>() != 0;
  info.draining = cursor.read<std::uint8_t>() != 0;
  info.queue_depth = cursor.read<std::uint16_t>();  // v1 wrote 0 (reserved)
  info.models = cursor.read<std::uint32_t>();
  // The v1 body ends here; the v2 extension appends the load fields. The
  // body length discriminates — a v1 peer's 8-byte body keeps them zero.
  if (cursor.remaining() > 0) {
    info.queue_capacity = cursor.read<std::uint32_t>();
    info.ewma_service_us = cursor.read<double>();
  }
  cursor.finish("wire: trailing bytes after health payload");
  return info;
}

// ---- transport -------------------------------------------------------------

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + host_or_path;
  return "tcp:" + host_or_path + ":" + std::to_string(port);
}

Endpoint parse_endpoint(std::string_view spec) {
  Endpoint endpoint;
  if (spec.starts_with("unix:")) {
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.host_or_path = std::string(spec.substr(5));
    DFR_CHECK_MSG(!endpoint.host_or_path.empty(),
                  "endpoint: unix socket path is empty");
    DFR_CHECK_MSG(endpoint.host_or_path.size() <
                      sizeof(sockaddr_un{}.sun_path),
                  "endpoint: unix socket path too long");
    return endpoint;
  }
  if (spec.starts_with("tcp:")) {
    const std::string_view rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    DFR_CHECK_MSG(colon != std::string_view::npos && colon > 0 &&
                      colon + 1 < rest.size(),
                  "endpoint: tcp spec must be tcp:host:port");
    endpoint.kind = Endpoint::Kind::kTcp;
    endpoint.host_or_path = std::string(rest.substr(0, colon));
    const std::string_view port_text = rest.substr(colon + 1);
    unsigned port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    DFR_CHECK_MSG(ec == std::errc{} &&
                      ptr == port_text.data() + port_text.size() &&
                      port <= 65535,
                  "endpoint: invalid tcp port");
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
  }
  DFR_CHECK_MSG(false, "endpoint: expected unix:/path or tcp:host:port");
  return endpoint;  // unreachable
}

int listen_endpoint(const Endpoint& endpoint, int backlog) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DFR_CHECK_MSG(fd >= 0, errno_message("endpoint: socket(AF_UNIX)"));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.host_or_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(endpoint.host_or_path.c_str());  // clear a stale socket file
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, backlog) != 0) {
      const std::string msg = errno_message("endpoint: bind/listen (unix)");
      ::close(fd);
      DFR_CHECK_MSG(false, msg);
    }
    return fd;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DFR_CHECK_MSG(fd >= 0, errno_message("endpoint: socket(AF_INET)"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  const std::string& host = endpoint.host_or_path;
  if (host.empty() || host == "0.0.0.0" || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    DFR_CHECK_MSG(false, "endpoint: listen host must be an IPv4 address");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, backlog) != 0) {
    const std::string msg = errno_message("endpoint: bind/listen (tcp)");
    ::close(fd);
    DFR_CHECK_MSG(false, msg);
  }
  return fd;
}

std::uint16_t bound_port(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  DFR_CHECK_MSG(::getsockname(listen_fd,
                              reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                errno_message("endpoint: getsockname"));
  DFR_CHECK_MSG(addr.sin_family == AF_INET,
                "endpoint: bound_port on a non-tcp socket");
  return ntohs(addr.sin_port);
}

namespace {

/// Nonblocking connect bounded by `deadline`: connect, poll POLLOUT until
/// the handshake resolves, read the verdict from SO_ERROR, and hand the fd
/// back in blocking mode (the frame IO above is poll-gated anyway, but
/// pooled fds should not surprise legacy callers). Closes `fd` on failure.
void finish_connect(int fd, const sockaddr* addr, socklen_t len,
                    const std::string& where, Deadline deadline) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    const std::string msg = errno_message((where + ": fcntl").c_str());
    ::close(fd);
    throw WireIoError(msg);
  }
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno == EINTR) {
    // An interrupted connect completes asynchronously: poll like EINPROGRESS.
    rc = -1;
    errno = EINPROGRESS;
  }
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      const std::string msg = errno_message(where.c_str());
      const WireIoError::Kind kind = errno_kind(errno);
      ::close(fd);
      throw WireIoError(msg, kind);
    }
    try {
      wait_io(fd, POLLOUT, deadline, where.c_str());
    } catch (...) {
      ::close(fd);
      throw;
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) != 0 ||
        so_error != 0) {
      if (so_error != 0) errno = so_error;
      const std::string msg = errno_message(where.c_str());
      const WireIoError::Kind kind = errno_kind(errno);
      ::close(fd);
      throw WireIoError(msg, kind);
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    const std::string msg = errno_message((where + ": fcntl").c_str());
    ::close(fd);
    throw WireIoError(msg);
  }
}

}  // namespace

int connect_endpoint(const Endpoint& endpoint, Deadline deadline) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw WireIoError(errno_message("wire: socket(AF_UNIX)"));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.host_or_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    finish_connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                   "wire: connect " + endpoint.to_string(), deadline);
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string port_text = std::to_string(endpoint.port);
  const int rc = ::getaddrinfo(endpoint.host_or_path.c_str(),
                               port_text.c_str(), &hints, &results);
  if (rc != 0) {
    throw WireIoError("wire: resolve " + endpoint.to_string() + ": " +
                      ::gai_strerror(rc));
  }
  int fd = -1;
  std::string last_error = "no addresses";
  WireIoError::Kind last_kind = WireIoError::Kind::kOther;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_message("socket");
      continue;
    }
    try {
      finish_connect(fd, ai->ai_addr, ai->ai_addrlen,
                     "wire: connect " + endpoint.to_string(), deadline);
      break;  // connected (finish_connect closed fd on failure)
    } catch (const WireIoError& e) {
      last_error = e.what();
      last_kind = e.kind();
      fd = -1;
      if (last_kind == WireIoError::Kind::kTimeout) break;  // budget is gone
    }
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    throw WireIoError("wire: connect " + endpoint.to_string() + ": " +
                      last_error, last_kind);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void write_frame(int fd, std::span<const std::byte> frame, Deadline deadline) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a dead peer raises EPIPE here instead of SIGPIPE.
    const ssize_t w = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full (a stalled reader): wait writability out against
      // the deadline instead of parking in a blocking send forever.
      wait_io(fd, POLLOUT, deadline, "wire: send");
      continue;
    }
    throw WireIoError(errno_message("wire: send failed"), errno_kind(errno));
  }
}

bool read_frame(int fd, std::vector<std::byte>& frame, Deadline deadline) {
  alignas(FrameHeader) std::byte header_bytes[sizeof(FrameHeader)];
  const std::size_t got =
      read_exact(fd, header_bytes, sizeof(header_bytes), deadline);
  if (got == 0) return false;  // clean EOF at a frame boundary
  if (got < sizeof(header_bytes)) {
    throw WireIoError("wire: peer closed mid-header",
                      WireIoError::Kind::kEof);
  }

  // Validate the header BEFORE sizing the body buffer: a hostile body_bytes
  // never drives an allocation, and the read below consumes exactly the
  // declared body — never a byte past the frame.
  FrameHeader header;
  std::memcpy(&header, header_bytes, sizeof(header));
  DFR_CHECK_MSG(std::memcmp(header.magic, kMagic, sizeof(kMagic)) == 0,
                "wire: bad frame magic");
  DFR_CHECK_MSG(header.version >= kWireVersionMin &&
                    header.version <= kWireVersion,
                "wire: unsupported protocol version");
  DFR_CHECK_MSG(header.body_bytes <= kMaxFrameBytes,
                "wire: declared body exceeds the frame cap");

  frame.resize(sizeof(FrameHeader) + header.body_bytes);
  std::memcpy(frame.data(), header_bytes, sizeof(header_bytes));
  const std::size_t body = read_exact(
      fd, frame.data() + sizeof(FrameHeader), header.body_bytes, deadline);
  if (body < header.body_bytes) {
    throw WireIoError("wire: peer closed mid-body", WireIoError::Kind::kEof);
  }
  return true;
}

}  // namespace dfr::serve::wire
