#pragma once
// ShardServer: one serving shard — an InferenceServer exposed over the wire
// protocol (serve/wire.hpp) behind a socket accept loop. The dfr_shard
// binary (src/serve/shard_main.cpp) is a thin CLI around this class; tests
// and examples run shards in-process on Unix sockets, which is how the
// 2-shard bit-identity and drain tests stay hermetic.
//
// Connection model: one thread per accepted connection, strictly sequential
// request->response per connection (a router that wants shard-side
// parallelism opens several pooled connections — serve/router.hpp does).
// Inference requests resolve synchronously against the wrapped server, so a
// connection naturally exerts backpressure on its client while the bounded
// queue exerts backpressure across connections (kQueueFull).
//
// Drain semantics (the wire kDrainRequest, or drain() in-process): stop
// admission and run InferenceServer::shutdown()'s drain-then-join — every
// request admitted before the drain resolves with a real result, requests
// arriving during/after it get a typed kShutdown response (the router's cue
// to retry another replica), and the kDrainResponse ack is sent only after
// the queue is empty. A drain therefore never loses an accepted request,
// which tests/test_distributed.cpp pins under live traffic.
//
// Health/readiness: kHealthRequest answers accepting/draining flags plus the
// registered-model count at any time, including mid-drain — `dfr_shard
// --probe` and the CI distributed-smoke job's readiness loop are clients.
//
// Fault injection (set_fault / dfr_shard --fault): an armed FaultInjector
// (serve/fault.hpp) corrupts INFERENCE traffic deterministically — stall
// (accept, never reply), delay, garbage body behind a valid header, close
// mid-frame, drop-accept. Health and drain frames always answer, so a
// wedged shard still looks alive to the router's poller; that asymmetry is
// what exercises the breaker's half-open probe loop.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/fault.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace dfr::serve {

class ShardServer {
 public:
  /// Binds + listens on `endpoint` and starts the accept loop immediately.
  /// The registry must outlive the shard; models may be registered/swapped
  /// while it serves. Throws CheckError when the endpoint cannot be bound.
  ShardServer(ModelRegistry& registry, const wire::Endpoint& endpoint,
              ServerConfig config = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// The endpoint actually serving — for tcp port 0, the kernel-assigned
  /// port is filled in (how tests get collision-free addresses).
  [[nodiscard]] const wire::Endpoint& endpoint() const noexcept {
    return endpoint_;
  }

  /// True once a drain has begun (wire kDrainRequest, drain(), or stop()).
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Stop admission and drain every accepted request (idempotent, safe from
  /// any thread — including a connection thread handling kDrainRequest).
  /// Returns after the queue is empty; connections stay open so clients can
  /// still probe health or collect typed kShutdown rejections.
  void drain();

  /// drain() + tear down the accept loop and every connection. Idempotent;
  /// the destructor calls it.
  void stop();

  /// The wrapped per-process server (stats, export_stats, direct submits).
  [[nodiscard]] InferenceServer& server() noexcept { return server_; }

  /// Arm (or rewrite, mid-traffic) the fault injector — the in-process hook
  /// the dirty-wire tests script breaker schedules through; dfr_shard's
  /// --fault flag lands here too. FaultSpec{} disarms.
  void set_fault(const FaultSpec& spec, std::uint64_t seed = 0) {
    fault_.arm(spec, seed);
  }

  /// Faults fired since the last set_fault.
  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return fault_.injected();
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& conn);
  /// Wedged-connection park: never reply, drain+discard anything the peer
  /// sends, return when the peer closes or the shard stops.
  void stall_until_closed(int fd);
  /// Sleep `ms`, waking early when the shard stops.
  void sleep_interruptible(std::uint64_t ms);
  /// Under conn_mutex_: join + erase connections whose threads finished.
  void reap_finished_locked();

  ModelRegistry* registry_;
  InferenceServer server_;
  wire::Endpoint endpoint_;
  int listen_fd_ = -1;

  FaultInjector fault_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::mutex drain_mutex_;  // serializes the drain transition

  std::mutex conn_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::thread accept_thread_;
};

}  // namespace dfr::serve
