// NEON (Advanced SIMD) kernel set for aarch64, where 2-lane double vectors
// and vfmaq_f64 are architecturally guaranteed. Compiled with
// -ffp-contract=off per-file (see the root CMakeLists) so only the explicit
// FMA in the float DPRR update fuses; compiles to a nullptr stub on other
// architectures, mirroring simd_kernels_avx2.cpp. The quantized kernel
// family never uses FMA — its contract is bit-exactness against the scalar
// fixed-point pipeline (see simd_kernels.hpp).
#include "serve/simd_kernels.hpp"

#if defined(DFR_SIMD_KERNELS_ISA) && defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cmath>

namespace dfr::simd {
namespace {

constexpr std::size_t kWidth = 2;  // doubles per float64x2_t

/// Vector twin of FixedPointFormat::quantize, bit-identical lane-wise:
/// multiply by 1/resolution (scaling by an exact power of two rounds
/// identically to the scalar's division by resolution), vrndiq_f64 (round
/// to integral, current mode == std::nearbyint), multiply back, clamp to
/// [-max-res, max], and zero NaN lanes (the scalar returns 0.0 for NaN).
struct QuantizeConsts {
  float64x2_t inv_res, res, hi, lo;
  explicit QuantizeConsts(const FixedPointFormat& fmt) noexcept
      : inv_res(vdupq_n_f64(1.0 / fmt.resolution())),
        res(vdupq_n_f64(fmt.resolution())),
        hi(vdupq_n_f64(fmt.max_value())),
        lo(vdupq_n_f64(-fmt.max_value() - fmt.resolution())) {}
};

inline float64x2_t quantize_f64(float64x2_t v, const QuantizeConsts& q) noexcept {
  // vceqq on self is false only for NaN lanes; the mask zeroes them at the
  // end (vminq/vmaxq propagate NaN, unlike x86 min/max, so the clamp's NaN
  // lanes still carry NaN until the mask applies).
  const uint64x2_t ord = vceqq_f64(v, v);
  const float64x2_t scaled = vrndiq_f64(vmulq_f64(v, q.inv_res));
  float64x2_t out = vmulq_f64(scaled, q.res);
  out = vmaxq_f64(vminq_f64(out, q.hi), q.lo);
  return vreinterpretq_f64_u64(
      vandq_u64(vreinterpretq_u64_f64(out), ord));
}

// out[n] = a * f~(s_n) with s_n produced per policy: the float preadd loads
// s = j[n] + x_prev[n], the quantized preadd additionally rounds s to the
// state format. Libm-backed kinds stay per-lane scalar (same s-production
// semantics either way, so the stage contract is unaffected).
template <typename MakeS, typename MakeSScalar>
inline void preadd_nonlin_impl(const Nonlinearity& f, double a, double* out,
                               std::size_t nx, const MakeS& make_s,
                               const MakeSScalar& make_s_scalar) {
  const float64x2_t va = vdupq_n_f64(a);
  const std::size_t main = nx - nx % kWidth;
  switch (f.kind()) {
    case NonlinearityKind::kIdentity: {
      for (std::size_t n = 0; n < main; n += kWidth) {
        const float64x2_t s = make_s(n);
        vst1q_f64(out + n, vmulq_f64(va, s));
      }
      break;
    }
    case NonlinearityKind::kCubic: {
      const float64x2_t third = vdupq_n_f64(3.0);
      for (std::size_t n = 0; n < main; n += kWidth) {
        const float64x2_t s = make_s(n);
        const float64x2_t cubed = vmulq_f64(vmulq_f64(s, s), s);
        const float64x2_t value = vsubq_f64(s, vdivq_f64(cubed, third));
        vst1q_f64(out + n, vmulq_f64(va, value));
      }
      break;
    }
    case NonlinearityKind::kSaturating: {
      const float64x2_t one = vdupq_n_f64(1.0);
      for (std::size_t n = 0; n < main; n += kWidth) {
        const float64x2_t s = make_s(n);
        const float64x2_t value = vdivq_f64(s, vaddq_f64(one, vabsq_f64(s)));
        vst1q_f64(out + n, vmulq_f64(va, value));
      }
      break;
    }
    case NonlinearityKind::kMackeyGlass:
    case NonlinearityKind::kTanh:
    case NonlinearityKind::kSine: {
      for (std::size_t n = 0; n < nx; ++n) {
        out[n] = a * f.value(make_s_scalar(n));
      }
      return;
    }
  }
  for (std::size_t n = main; n < nx; ++n) {
    out[n] = a * f.value(make_s_scalar(n));
  }
}

void preadd_nonlin_neon(const Nonlinearity& f, double a, const double* j,
                        const double* x_prev, double* out, std::size_t nx) {
  preadd_nonlin_impl(
      f, a, out, nx,
      [&](std::size_t n) {
        return vaddq_f64(vld1q_f64(j + n), vld1q_f64(x_prev + n));
      },
      [&](std::size_t n) { return j[n] + x_prev[n]; });
}

void quant_preadd_nonlin_neon(const Nonlinearity& f, double a,
                              const FixedPointFormat& fmt, const double* j,
                              const double* x_prev, double* out,
                              std::size_t nx) {
  const QuantizeConsts q(fmt);
  preadd_nonlin_impl(
      f, a, out, nx,
      [&](std::size_t n) {
        return quantize_f64(
            vaddq_f64(vld1q_f64(j + n), vld1q_f64(x_prev + n)), q);
      },
      [&](std::size_t n) { return fmt.quantize(j[n] + x_prev[n]); });
}

void scale_quantize_neon(const FixedPointFormat& fmt, double scale,
                         double* values, std::size_t n) {
  const QuantizeConsts q(fmt);
  const float64x2_t vscale = vdupq_n_f64(scale);
  const std::size_t main = n - n % kWidth;
  for (std::size_t i = 0; i < main; i += kWidth) {
    const float64x2_t v = vmulq_f64(vld1q_f64(values + i), vscale);
    vst1q_f64(values + i, quantize_f64(v, q));
  }
  for (std::size_t i = main; i < n; ++i) {
    values[i] = fmt.quantize(values[i] * scale);
  }
}

void dprr_add_neon(double* r, const double* x_k, const double* x_km1,
                   std::size_t nx) {
  const std::size_t main = nx - nx % kWidth;
  double* sums = r + nx * nx;
  for (std::size_t i = 0; i < nx; ++i) {
    const double xi = x_k[i];
    const float64x2_t vxi = vdupq_n_f64(xi);
    double* row = r + i * nx;
    for (std::size_t jj = 0; jj < main; jj += kWidth) {
      const float64x2_t acc =
          vfmaq_f64(vld1q_f64(row + jj), vxi, vld1q_f64(x_km1 + jj));
      vst1q_f64(row + jj, acc);
    }
    for (std::size_t jj = main; jj < nx; ++jj) {
      row[jj] = std::fma(xi, x_km1[jj], row[jj]);
    }
    sums[i] += xi;
  }
}

// The exact (quantized-family) accumulate: separate multiply and add, two
// roundings per accumulate exactly like DprrAccumulator::add — never FMA
// (this TU builds with -ffp-contract=off, so the tail cannot fuse either).
void dprr_add_exact_neon(double* r, const double* x_k, const double* x_km1,
                         std::size_t nx) {
  const std::size_t main = nx - nx % kWidth;
  double* sums = r + nx * nx;
  for (std::size_t i = 0; i < nx; ++i) {
    const double xi = x_k[i];
    const float64x2_t vxi = vdupq_n_f64(xi);
    double* row = r + i * nx;
    for (std::size_t jj = 0; jj < main; jj += kWidth) {
      const float64x2_t acc = vaddq_f64(
          vld1q_f64(row + jj), vmulq_f64(vxi, vld1q_f64(x_km1 + jj)));
      vst1q_f64(row + jj, acc);
    }
    for (std::size_t jj = main; jj < nx; ++jj) {
      row[jj] += xi * x_km1[jj];
    }
    sums[i] += xi;
  }
}

constexpr Kernels kNeonKernels{Backend::kNeon,          &preadd_nonlin_neon,
                               &dprr_add_neon,          &scale_quantize_neon,
                               &quant_preadd_nonlin_neon, &dprr_add_exact_neon};

}  // namespace

namespace detail {
const Kernels* neon_kernels() noexcept { return &kNeonKernels; }
}  // namespace detail

}  // namespace dfr::simd

#else  // TU built for a non-aarch64 target: register nothing.

namespace dfr::simd::detail {
const Kernels* neon_kernels() noexcept { return nullptr; }
}  // namespace dfr::simd::detail

#endif
