// NEON (Advanced SIMD) kernel set for aarch64, where 2-lane double vectors
// and vfmaq_f64 are architecturally guaranteed. Compiled with
// -ffp-contract=off per-file (see the root CMakeLists) so only the explicit
// FMA in the DPRR update fuses; compiles to a nullptr stub on other
// architectures, mirroring simd_kernels_avx2.cpp.
#include "serve/simd_kernels.hpp"

#if defined(DFR_SIMD_KERNELS_ISA) && defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cmath>

namespace dfr::simd {
namespace {

constexpr std::size_t kWidth = 2;  // doubles per float64x2_t

void preadd_nonlin_neon(const Nonlinearity& f, double a, const double* j,
                        const double* x_prev, double* out, std::size_t nx) {
  const float64x2_t va = vdupq_n_f64(a);
  const std::size_t main = nx - nx % kWidth;
  switch (f.kind()) {
    case NonlinearityKind::kIdentity: {
      for (std::size_t n = 0; n < main; n += kWidth) {
        const float64x2_t s = vaddq_f64(vld1q_f64(j + n), vld1q_f64(x_prev + n));
        vst1q_f64(out + n, vmulq_f64(va, s));
      }
      break;
    }
    case NonlinearityKind::kCubic: {
      const float64x2_t third = vdupq_n_f64(3.0);
      for (std::size_t n = 0; n < main; n += kWidth) {
        const float64x2_t s = vaddq_f64(vld1q_f64(j + n), vld1q_f64(x_prev + n));
        const float64x2_t cubed = vmulq_f64(vmulq_f64(s, s), s);
        const float64x2_t value = vsubq_f64(s, vdivq_f64(cubed, third));
        vst1q_f64(out + n, vmulq_f64(va, value));
      }
      break;
    }
    case NonlinearityKind::kSaturating: {
      const float64x2_t one = vdupq_n_f64(1.0);
      for (std::size_t n = 0; n < main; n += kWidth) {
        const float64x2_t s = vaddq_f64(vld1q_f64(j + n), vld1q_f64(x_prev + n));
        const float64x2_t value = vdivq_f64(s, vaddq_f64(one, vabsq_f64(s)));
        vst1q_f64(out + n, vmulq_f64(va, value));
      }
      break;
    }
    case NonlinearityKind::kMackeyGlass:
    case NonlinearityKind::kTanh:
    case NonlinearityKind::kSine: {
      // libm-backed: fully scalar (the preadd is the same IEEE add either
      // way, so the stage contract is unaffected).
      for (std::size_t n = 0; n < nx; ++n) {
        out[n] = a * f.value(j[n] + x_prev[n]);
      }
      return;
    }
  }
  for (std::size_t n = main; n < nx; ++n) {
    out[n] = a * f.value(j[n] + x_prev[n]);
  }
}

void dprr_add_neon(double* r, const double* x_k, const double* x_km1,
                   std::size_t nx) {
  const std::size_t main = nx - nx % kWidth;
  double* sums = r + nx * nx;
  for (std::size_t i = 0; i < nx; ++i) {
    const double xi = x_k[i];
    const float64x2_t vxi = vdupq_n_f64(xi);
    double* row = r + i * nx;
    for (std::size_t jj = 0; jj < main; jj += kWidth) {
      const float64x2_t acc =
          vfmaq_f64(vld1q_f64(row + jj), vxi, vld1q_f64(x_km1 + jj));
      vst1q_f64(row + jj, acc);
    }
    for (std::size_t jj = main; jj < nx; ++jj) {
      row[jj] = std::fma(xi, x_km1[jj], row[jj]);
    }
    sums[i] += xi;
  }
}

constexpr Kernels kNeonKernels{Backend::kNeon, &preadd_nonlin_neon,
                               &dprr_add_neon};

}  // namespace

namespace detail {
const Kernels* neon_kernels() noexcept { return &kNeonKernels; }
}  // namespace detail

}  // namespace dfr::simd

#else  // TU built for a non-aarch64 target: register nothing.

namespace dfr::simd::detail {
const Kernels* neon_kernels() noexcept { return nullptr; }
}  // namespace dfr::simd::detail

#endif
