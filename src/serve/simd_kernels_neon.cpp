// NEON (Advanced SIMD) kernel set for aarch64, where 2-lane double vectors
// and vfmaq_f64 are architecturally guaranteed. Compiled with
// -ffp-contract=off per-file (see the root CMakeLists) so only the explicit
// FMA in the float DPRR update fuses; compiles to a nullptr stub on other
// architectures, mirroring simd_kernels_avx2.cpp. The quantized kernel
// family never uses FMA — its contract is bit-exactness against the scalar
// fixed-point pipeline (see simd_kernels.hpp).
#include "serve/simd_kernels.hpp"

#if defined(DFR_SIMD_KERNELS_ISA) && defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cmath>

namespace dfr::simd {
namespace {

constexpr std::size_t kWidth = 2;  // doubles per float64x2_t

/// Vector twin of FixedPointFormat::quantize, bit-identical lane-wise:
/// multiply by 1/resolution (scaling by an exact power of two rounds
/// identically to the scalar's division by resolution), vrndiq_f64 (round
/// to integral, current mode == std::nearbyint), multiply back, clamp to
/// [-max-res, max], and zero NaN lanes (the scalar returns 0.0 for NaN).
struct QuantizeConsts {
  float64x2_t inv_res, res, hi, lo;
  explicit QuantizeConsts(const FixedPointFormat& fmt) noexcept
      : inv_res(vdupq_n_f64(1.0 / fmt.resolution())),
        res(vdupq_n_f64(fmt.resolution())),
        hi(vdupq_n_f64(fmt.max_value())),
        lo(vdupq_n_f64(-fmt.max_value() - fmt.resolution())) {}
};

inline float64x2_t quantize_f64(float64x2_t v, const QuantizeConsts& q) noexcept {
  // vceqq on self is false only for NaN lanes; the mask zeroes them at the
  // end (vminq/vmaxq propagate NaN, unlike x86 min/max, so the clamp's NaN
  // lanes still carry NaN until the mask applies).
  const uint64x2_t ord = vceqq_f64(v, v);
  const float64x2_t scaled = vrndiq_f64(vmulq_f64(v, q.inv_res));
  float64x2_t out = vmulq_f64(scaled, q.res);
  out = vmaxq_f64(vminq_f64(out, q.hi), q.lo);
  return vreinterpretq_f64_u64(
      vandq_u64(vreinterpretq_u64_f64(out), ord));
}

// out[n] = a * f~(s_n) with s_n produced per policy: the float preadd loads
// s = j[n] + x_prev[n], the quantized preadd additionally rounds s to the
// state format. Libm-backed kinds stay per-lane scalar (same s-production
// semantics either way, so the stage contract is unaffected).
template <typename MakeS, typename MakeSScalar>
inline void preadd_nonlin_impl(const Nonlinearity& f, double a, double* out,
                               std::size_t nx, const MakeS& make_s,
                               const MakeSScalar& make_s_scalar) {
  const float64x2_t va = vdupq_n_f64(a);
  const std::size_t main = nx - nx % kWidth;
  switch (f.kind()) {
    case NonlinearityKind::kIdentity: {
      for (std::size_t n = 0; n < main; n += kWidth) {
        const float64x2_t s = make_s(n);
        vst1q_f64(out + n, vmulq_f64(va, s));
      }
      break;
    }
    case NonlinearityKind::kCubic: {
      const float64x2_t third = vdupq_n_f64(3.0);
      for (std::size_t n = 0; n < main; n += kWidth) {
        const float64x2_t s = make_s(n);
        const float64x2_t cubed = vmulq_f64(vmulq_f64(s, s), s);
        const float64x2_t value = vsubq_f64(s, vdivq_f64(cubed, third));
        vst1q_f64(out + n, vmulq_f64(va, value));
      }
      break;
    }
    case NonlinearityKind::kSaturating: {
      const float64x2_t one = vdupq_n_f64(1.0);
      for (std::size_t n = 0; n < main; n += kWidth) {
        const float64x2_t s = make_s(n);
        const float64x2_t value = vdivq_f64(s, vaddq_f64(one, vabsq_f64(s)));
        vst1q_f64(out + n, vmulq_f64(va, value));
      }
      break;
    }
    case NonlinearityKind::kMackeyGlass:
    case NonlinearityKind::kTanh:
    case NonlinearityKind::kSine: {
      for (std::size_t n = 0; n < nx; ++n) {
        out[n] = a * f.value(make_s_scalar(n));
      }
      return;
    }
  }
  for (std::size_t n = main; n < nx; ++n) {
    out[n] = a * f.value(make_s_scalar(n));
  }
}

void preadd_nonlin_neon(const Nonlinearity& f, double a, const double* j,
                        const double* x_prev, double* out, std::size_t nx) {
  preadd_nonlin_impl(
      f, a, out, nx,
      [&](std::size_t n) {
        return vaddq_f64(vld1q_f64(j + n), vld1q_f64(x_prev + n));
      },
      [&](std::size_t n) { return j[n] + x_prev[n]; });
}

void quant_preadd_nonlin_neon(const Nonlinearity& f, double a,
                              const FixedPointFormat& fmt, const double* j,
                              const double* x_prev, double* out,
                              std::size_t nx) {
  const QuantizeConsts q(fmt);
  preadd_nonlin_impl(
      f, a, out, nx,
      [&](std::size_t n) {
        return quantize_f64(
            vaddq_f64(vld1q_f64(j + n), vld1q_f64(x_prev + n)), q);
      },
      [&](std::size_t n) { return fmt.quantize(j[n] + x_prev[n]); });
}

void scale_quantize_neon(const FixedPointFormat& fmt, double scale,
                         double* values, std::size_t n) {
  const QuantizeConsts q(fmt);
  const float64x2_t vscale = vdupq_n_f64(scale);
  const std::size_t main = n - n % kWidth;
  for (std::size_t i = 0; i < main; i += kWidth) {
    const float64x2_t v = vmulq_f64(vld1q_f64(values + i), vscale);
    vst1q_f64(values + i, quantize_f64(v, q));
  }
  for (std::size_t i = main; i < n; ++i) {
    values[i] = fmt.quantize(values[i] * scale);
  }
}

void dprr_add_neon(double* r, const double* x_k, const double* x_km1,
                   std::size_t nx) {
  const std::size_t main = nx - nx % kWidth;
  double* sums = r + nx * nx;
  for (std::size_t i = 0; i < nx; ++i) {
    const double xi = x_k[i];
    const float64x2_t vxi = vdupq_n_f64(xi);
    double* row = r + i * nx;
    for (std::size_t jj = 0; jj < main; jj += kWidth) {
      const float64x2_t acc =
          vfmaq_f64(vld1q_f64(row + jj), vxi, vld1q_f64(x_km1 + jj));
      vst1q_f64(row + jj, acc);
    }
    for (std::size_t jj = main; jj < nx; ++jj) {
      row[jj] = std::fma(xi, x_km1[jj], row[jj]);
    }
    sums[i] += xi;
  }
}

// The exact (quantized-family) accumulate: separate multiply and add, two
// roundings per accumulate exactly like DprrAccumulator::add — never FMA
// (this TU builds with -ffp-contract=off, so the tail cannot fuse either).
void dprr_add_exact_neon(double* r, const double* x_k, const double* x_km1,
                         std::size_t nx) {
  const std::size_t main = nx - nx % kWidth;
  double* sums = r + nx * nx;
  for (std::size_t i = 0; i < nx; ++i) {
    const double xi = x_k[i];
    const float64x2_t vxi = vdupq_n_f64(xi);
    double* row = r + i * nx;
    for (std::size_t jj = 0; jj < main; jj += kWidth) {
      const float64x2_t acc = vaddq_f64(
          vld1q_f64(row + jj), vmulq_f64(vxi, vld1q_f64(x_km1 + jj)));
      vst1q_f64(row + jj, acc);
    }
    for (std::size_t jj = main; jj < nx; ++jj) {
      row[jj] += xi * x_km1[jj];
    }
    sums[i] += xi;
  }
}

// ---- batched (SoA) kernels: vectors span lanes, i.e. independent series ----
// The B-chain dependence runs across node rows, never across lanes, so the
// chain that serializes the single-series path becomes full-width
// multiply+adds per node row here (no FMA — each lane must round exactly like
// the scalar B-chain; see the batched contract in simd_kernels.hpp).

void batched_bchain_neon(double b, const double* head, double* x,
                         std::size_t nx, std::size_t lanes) {
  const float64x2_t vb = vdupq_n_f64(b);
  const std::size_t main = lanes - lanes % kWidth;
  const double* prev = head;
  for (std::size_t n = 0; n < nx; ++n) {
    double* row = x + n * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      const float64x2_t value =
          vaddq_f64(vld1q_f64(row + l), vmulq_f64(vb, vld1q_f64(prev + l)));
      vst1q_f64(row + l, value);
    }
    for (std::size_t l = main; l < lanes; ++l) row[l] = row[l] + b * prev[l];
    prev = row;
  }
}

void batched_quant_bchain_neon(double b, const FixedPointFormat& fmt,
                               const double* head, double* x, std::size_t nx,
                               std::size_t lanes) {
  const QuantizeConsts q(fmt);
  const float64x2_t vb = vdupq_n_f64(b);
  const std::size_t main = lanes - lanes % kWidth;
  const double* prev = head;
  for (std::size_t n = 0; n < nx; ++n) {
    double* row = x + n * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      const float64x2_t value =
          vaddq_f64(vld1q_f64(row + l), vmulq_f64(vb, vld1q_f64(prev + l)));
      vst1q_f64(row + l, quantize_f64(value, q));
    }
    for (std::size_t l = main; l < lanes; ++l) {
      row[l] = fmt.quantize(row[l] + b * prev[l]);
    }
    prev = row;
  }
}

// Batched SoA DPRR accumulate: every (i, j) cross product is a full-width
// FMA over the lane dimension — nx^2 vector ops per step with no serial
// chain, full lanes at any Nx.
void batched_dprr_add_neon(double* r, const double* x_k, const double* x_km1,
                           std::size_t nx, std::size_t lanes) {
  const std::size_t main = lanes - lanes % kWidth;
  double* sums = r + nx * nx * lanes;
  for (std::size_t i = 0; i < nx; ++i) {
    const double* xi = x_k + i * lanes;
    double* block = r + i * nx * lanes;
    // Lane blocks outside j so the x_k[i] lane vector loads once per block
    // (two loads + one store per FMA); each element is still touched once.
    for (std::size_t l = 0; l < main; l += kWidth) {
      const float64x2_t vxi = vld1q_f64(xi + l);
      for (std::size_t j = 0; j < nx; ++j) {
        double* row = block + j * lanes + l;
        const float64x2_t acc =
            vfmaq_f64(vld1q_f64(row), vxi, vld1q_f64(x_km1 + j * lanes + l));
        vst1q_f64(row, acc);
      }
    }
    for (std::size_t l = main; l < lanes; ++l) {
      const double xil = xi[l];
      for (std::size_t j = 0; j < nx; ++j) {
        double* row = block + j * lanes + l;
        *row = std::fma(xil, x_km1[j * lanes + l], *row);
      }
    }
    double* sum_row = sums + i * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      vst1q_f64(sum_row + l,
                vaddq_f64(vld1q_f64(sum_row + l), vld1q_f64(xi + l)));
    }
    for (std::size_t l = main; l < lanes; ++l) sum_row[l] += xi[l];
  }
}

// Exact (quantized-family) batched accumulate: two roundings per accumulate
// like DprrAccumulator::add, never FMA (this TU builds with
// -ffp-contract=off, so the tail cannot fuse either).
void batched_dprr_add_exact_neon(double* r, const double* x_k,
                                 const double* x_km1, std::size_t nx,
                                 std::size_t lanes) {
  const std::size_t main = lanes - lanes % kWidth;
  double* sums = r + nx * nx * lanes;
  for (std::size_t i = 0; i < nx; ++i) {
    const double* xi = x_k + i * lanes;
    double* block = r + i * nx * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      const float64x2_t vxi = vld1q_f64(xi + l);
      for (std::size_t j = 0; j < nx; ++j) {
        double* row = block + j * lanes + l;
        const float64x2_t acc = vaddq_f64(
            vld1q_f64(row), vmulq_f64(vxi, vld1q_f64(x_km1 + j * lanes + l)));
        vst1q_f64(row, acc);
      }
    }
    for (std::size_t l = main; l < lanes; ++l) {
      const double xil = xi[l];
      for (std::size_t j = 0; j < nx; ++j) {
        block[j * lanes + l] += xil * x_km1[j * lanes + l];
      }
    }
    double* sum_row = sums + i * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      vst1q_f64(sum_row + l,
                vaddq_f64(vld1q_f64(sum_row + l), vld1q_f64(xi + l)));
    }
    for (std::size_t l = main; l < lanes; ++l) sum_row[l] += xi[l];
  }
}

// Batched SoA mask: broadcast one weight, multiply by the channel's lane
// vector, accumulate with separate mul + add in ascending v — the scalar
// dot() order per lane, so every lane is bit-identical to Mask::apply_into.
void batched_mask_neon(const double* weights, std::size_t nx,
                       std::size_t channels, const double* u, double* j,
                       std::size_t lanes) {
  const std::size_t main = lanes - lanes % kWidth;
  for (std::size_t i = 0; i < nx; ++i) {
    const double* wi = weights + i * channels;
    double* row = j + i * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t v = 0; v < channels; ++v) {
        acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(wi[v]),
                                       vld1q_f64(u + v * lanes + l)));
      }
      vst1q_f64(row + l, acc);
    }
    for (std::size_t l = main; l < lanes; ++l) {
      double acc = 0.0;
      for (std::size_t v = 0; v < channels; ++v) {
        acc += wi[v] * u[v * lanes + l];
      }
      row[l] = acc;
    }
  }
}

constexpr Kernels kNeonKernels{Backend::kNeon,
                               &preadd_nonlin_neon,
                               &dprr_add_neon,
                               &scale_quantize_neon,
                               &quant_preadd_nonlin_neon,
                               &dprr_add_exact_neon,
                               &batched_bchain_neon,
                               &batched_quant_bchain_neon,
                               &batched_dprr_add_neon,
                               &batched_dprr_add_exact_neon,
                               &batched_mask_neon};

}  // namespace

namespace detail {
const Kernels* neon_kernels() noexcept { return &kNeonKernels; }
}  // namespace detail

}  // namespace dfr::simd

#else  // TU built for a non-aarch64 target: register nothing.

namespace dfr::simd::detail {
const Kernels* neon_kernels() noexcept { return nullptr; }
}  // namespace dfr::simd::detail

#endif
