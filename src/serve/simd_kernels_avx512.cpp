// AVX-512 kernel set (512-bit, 8 doubles per vector). This translation unit
// is compiled with per-file arch flags (-mavx512f -mavx512bw
// -ffp-contract=off; see the root CMakeLists) on x86-64 builds and compiles
// to a nullptr stub everywhere else — runtime dispatch in simd_kernels.cpp
// gates execution on __builtin_cpu_supports("avx512f")/("avx512bw").
//
// Same contracts as the AVX2 TU, twice the width:
//  * float family — the preadd/nonlinearity stage rounds exactly like the
//    scalar baseline (-ffp-contract=off; only the explicit _mm512_fmadd_pd
//    in the DPRR update fuses, covered by the documented ULP bound);
//  * quantized family — bit-exact against the scalar fixed-point pipeline,
//    no FMA anywhere (see simd_kernels.hpp).
// Unlike the AVX2/NEON TUs, the single-series kernels here run their
// remainder (nx % 8) through MASKED vector ops instead of a scalar tail:
// maskz loads fill inactive lanes with +0.0 (harmless for every vectorized
// operation below) and masked stores never touch memory past nx, while the
// active lanes execute the exact same IEEE operation sequence as the main
// loop — so the ULP contract (float family) and the bit-exactness contract
// (quantized family) are preserved, and non-multiple-of-8 Nx values no
// longer pay a scalar epilogue. The batched kernels keep scalar lane tails:
// the lane count is the server's max_batch, which real configs keep at a
// power of two.
#include "serve/simd_kernels.hpp"

#if defined(DFR_SIMD_KERNELS_ISA) && defined(__AVX512F__) && \
    defined(__AVX512BW__)

#include <immintrin.h>

#include <cmath>

namespace dfr::simd {
namespace {

constexpr std::size_t kWidth = 8;  // doubles per __m512d

/// Vector twin of FixedPointFormat::quantize, bit-identical lane-wise:
/// multiply by 1/resolution (scaling by an exact power of two rounds
/// identically to the scalar's division by resolution), roundscale with
/// imm 0x0C (MXCSR rounding mode, suppress precision exceptions ==
/// std::nearbyint), multiply back, clamp to [-max-res, max], and zero NaN
/// lanes (the scalar returns 0.0 for NaN).
struct QuantizeConsts {
  __m512d inv_res, res, hi, lo;
  explicit QuantizeConsts(const FixedPointFormat& fmt) noexcept
      : inv_res(_mm512_set1_pd(1.0 / fmt.resolution())),
        res(_mm512_set1_pd(fmt.resolution())),
        hi(_mm512_set1_pd(fmt.max_value())),
        lo(_mm512_set1_pd(-fmt.max_value() - fmt.resolution())) {}
};

inline __m512d quantize_pd(__m512d v, const QuantizeConsts& q) noexcept {
  const __mmask8 ord = _mm512_cmp_pd_mask(v, v, _CMP_ORD_Q);
  const __m512d scaled = _mm512_roundscale_pd(
      _mm512_mul_pd(v, q.inv_res),
      _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
  __m512d out = _mm512_mul_pd(scaled, q.res);
  out = _mm512_max_pd(_mm512_min_pd(out, q.hi), q.lo);
  // NaN lanes -> +0.0. (mask_mov from an explicit zero vector, not
  // maskz_mov: GCC's maskz implementation reads an undefined passthrough
  // and trips -Wmaybe-uninitialized.)
  return _mm512_mask_mov_pd(_mm512_setzero_pd(), ord, out);
}

/// All-active-lanes mask for a tail of `len` doubles (1 <= len < kWidth).
inline __mmask8 tail_mask(std::size_t len) noexcept {
  return static_cast<__mmask8>((1u << len) - 1);
}

// out[n] = a * f~(s_n) with s_n produced per policy: the float preadd loads
// s = j[n] + x_prev[n], the quantized preadd additionally rounds s to the
// state format. The polynomial / rational nonlinearities vectorize with the
// scalar evaluation order preserved and finish with one masked iteration
// covering nx % 8 (maskz-loaded inactive lanes hold +0.0, for which every
// value_of below is well-defined, and the masked store drops them); the
// libm-backed ones (tanh, sine, Mackey–Glass with its pow) keep per-lane
// scalar calls on top of the same s-production semantics, so the stage
// contracts are unaffected.
template <typename MakeS, typename MakeSMasked, typename MakeSScalar>
inline void preadd_nonlin_impl(const Nonlinearity& f, double a, double* out,
                               std::size_t nx, const MakeS& make_s,
                               const MakeSMasked& make_s_masked,
                               const MakeSScalar& make_s_scalar) {
  const __m512d va = _mm512_set1_pd(a);
  const std::size_t main = nx - nx % kWidth;
  // Main loop + masked remainder, shared across the vectorized kinds;
  // `value_of` is the kind's f~(s) on full vectors.
  const auto run = [&](auto&& value_of) {
    for (std::size_t n = 0; n < main; n += kWidth) {
      _mm512_storeu_pd(out + n, _mm512_mul_pd(va, value_of(make_s(n))));
    }
    if (main != nx) {
      const __mmask8 m = tail_mask(nx - main);
      _mm512_mask_storeu_pd(out + main, m,
                            _mm512_mul_pd(va, value_of(make_s_masked(main, m))));
    }
  };
  switch (f.kind()) {
    case NonlinearityKind::kIdentity: {
      run([](__m512d s) { return s; });
      return;
    }
    case NonlinearityKind::kCubic: {
      // s - s*s*s/3, evaluated as ((s*s)*s)/3 like the scalar expression.
      const __m512d third = _mm512_set1_pd(3.0);
      run([&](__m512d s) {
        const __m512d cubed = _mm512_mul_pd(_mm512_mul_pd(s, s), s);
        return _mm512_sub_pd(s, _mm512_div_pd(cubed, third));
      });
      return;
    }
    case NonlinearityKind::kSaturating: {
      const __m512d one = _mm512_set1_pd(1.0);
      run([&](__m512d s) {
        return _mm512_div_pd(s, _mm512_add_pd(one, _mm512_abs_pd(s)));
      });
      return;
    }
    case NonlinearityKind::kMackeyGlass:
    case NonlinearityKind::kTanh:
    case NonlinearityKind::kSine: {
      for (std::size_t n = 0; n < nx; ++n) {
        out[n] = a * f.value(make_s_scalar(n));
      }
      return;
    }
  }
}

void preadd_nonlin_avx512(const Nonlinearity& f, double a, const double* j,
                          const double* x_prev, double* out, std::size_t nx) {
  preadd_nonlin_impl(
      f, a, out, nx,
      [&](std::size_t n) {
        return _mm512_add_pd(_mm512_loadu_pd(j + n),
                             _mm512_loadu_pd(x_prev + n));
      },
      [&](std::size_t n, __mmask8 m) {
        return _mm512_add_pd(_mm512_maskz_loadu_pd(m, j + n),
                             _mm512_maskz_loadu_pd(m, x_prev + n));
      },
      [&](std::size_t n) { return j[n] + x_prev[n]; });
}

void quant_preadd_nonlin_avx512(const Nonlinearity& f, double a,
                                const FixedPointFormat& fmt, const double* j,
                                const double* x_prev, double* out,
                                std::size_t nx) {
  const QuantizeConsts q(fmt);
  preadd_nonlin_impl(
      f, a, out, nx,
      [&](std::size_t n) {
        return quantize_pd(_mm512_add_pd(_mm512_loadu_pd(j + n),
                                         _mm512_loadu_pd(x_prev + n)),
                           q);
      },
      [&](std::size_t n, __mmask8 m) {
        return quantize_pd(_mm512_add_pd(_mm512_maskz_loadu_pd(m, j + n),
                                         _mm512_maskz_loadu_pd(m, x_prev + n)),
                           q);
      },
      [&](std::size_t n) { return fmt.quantize(j[n] + x_prev[n]); });
}

void scale_quantize_avx512(const FixedPointFormat& fmt, double scale,
                           double* values, std::size_t n) {
  const QuantizeConsts q(fmt);
  const __m512d vscale = _mm512_set1_pd(scale);
  const std::size_t main = n - n % kWidth;
  for (std::size_t i = 0; i < main; i += kWidth) {
    const __m512d v = _mm512_mul_pd(_mm512_loadu_pd(values + i), vscale);
    _mm512_storeu_pd(values + i, quantize_pd(v, q));
  }
  if (main != n) {
    const __mmask8 m = tail_mask(n - main);
    const __m512d v =
        _mm512_mul_pd(_mm512_maskz_loadu_pd(m, values + main), vscale);
    _mm512_mask_storeu_pd(values + main, m, quantize_pd(v, q));
  }
}

// r[i*nx + jj] += x_k[i] * x_km1[jj] with explicit FMA (single rounding per
// accumulate — the documented ULP-bound divergence from scalar), plus the
// r[nx^2 + i] += x_k[i] node-sum column.
void dprr_add_avx512(double* r, const double* x_k, const double* x_km1,
                     std::size_t nx) {
  const std::size_t main = nx - nx % kWidth;
  const __mmask8 mtail = main != nx ? tail_mask(nx - main) : __mmask8{0};
  double* sums = r + nx * nx;
  for (std::size_t i = 0; i < nx; ++i) {
    const double xi = x_k[i];
    const __m512d vxi = _mm512_set1_pd(xi);
    double* row = r + i * nx;
    for (std::size_t jj = 0; jj < main; jj += kWidth) {
      const __m512d acc = _mm512_fmadd_pd(vxi, _mm512_loadu_pd(x_km1 + jj),
                                          _mm512_loadu_pd(row + jj));
      _mm512_storeu_pd(row + jj, acc);
    }
    if (main != nx) {
      const __m512d acc =
          _mm512_fmadd_pd(vxi, _mm512_maskz_loadu_pd(mtail, x_km1 + main),
                          _mm512_maskz_loadu_pd(mtail, row + main));
      _mm512_mask_storeu_pd(row + main, mtail, acc);
    }
    sums[i] += xi;
  }
}

// The exact (quantized-family) accumulate: separate multiply and add, two
// roundings per accumulate exactly like DprrAccumulator::add — never FMA
// (this TU builds with -ffp-contract=off, so the tail cannot fuse either).
void dprr_add_exact_avx512(double* r, const double* x_k, const double* x_km1,
                           std::size_t nx) {
  const std::size_t main = nx - nx % kWidth;
  const __mmask8 mtail = main != nx ? tail_mask(nx - main) : __mmask8{0};
  double* sums = r + nx * nx;
  for (std::size_t i = 0; i < nx; ++i) {
    const double xi = x_k[i];
    const __m512d vxi = _mm512_set1_pd(xi);
    double* row = r + i * nx;
    for (std::size_t jj = 0; jj < main; jj += kWidth) {
      const __m512d acc = _mm512_add_pd(
          _mm512_loadu_pd(row + jj),
          _mm512_mul_pd(vxi, _mm512_loadu_pd(x_km1 + jj)));
      _mm512_storeu_pd(row + jj, acc);
    }
    if (main != nx) {
      const __m512d acc = _mm512_add_pd(
          _mm512_maskz_loadu_pd(mtail, row + main),
          _mm512_mul_pd(vxi, _mm512_maskz_loadu_pd(mtail, x_km1 + main)));
      _mm512_mask_storeu_pd(row + main, mtail, acc);
    }
    sums[i] += xi;
  }
}

// ---- batched (SoA) kernels: vectors span lanes, i.e. independent series ----
// The B-chain dependence runs across node rows, never across lanes, so the
// chain that serializes the single-series path becomes one full-width
// multiply+add per node row here (no FMA — each lane must round exactly like
// the scalar B-chain; see the batched contract in simd_kernels.hpp).

void batched_bchain_avx512(double b, const double* head, double* x,
                           std::size_t nx, std::size_t lanes) {
  const __m512d vb = _mm512_set1_pd(b);
  const std::size_t main = lanes - lanes % kWidth;
  const double* prev = head;
  for (std::size_t n = 0; n < nx; ++n) {
    double* row = x + n * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      const __m512d value =
          _mm512_add_pd(_mm512_loadu_pd(row + l),
                        _mm512_mul_pd(vb, _mm512_loadu_pd(prev + l)));
      _mm512_storeu_pd(row + l, value);
    }
    for (std::size_t l = main; l < lanes; ++l) row[l] = row[l] + b * prev[l];
    prev = row;
  }
}

void batched_quant_bchain_avx512(double b, const FixedPointFormat& fmt,
                                 const double* head, double* x, std::size_t nx,
                                 std::size_t lanes) {
  const QuantizeConsts q(fmt);
  const __m512d vb = _mm512_set1_pd(b);
  const std::size_t main = lanes - lanes % kWidth;
  const double* prev = head;
  for (std::size_t n = 0; n < nx; ++n) {
    double* row = x + n * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      const __m512d value =
          _mm512_add_pd(_mm512_loadu_pd(row + l),
                        _mm512_mul_pd(vb, _mm512_loadu_pd(prev + l)));
      _mm512_storeu_pd(row + l, quantize_pd(value, q));
    }
    for (std::size_t l = main; l < lanes; ++l) {
      row[l] = fmt.quantize(row[l] + b * prev[l]);
    }
    prev = row;
  }
}

// Batched SoA DPRR accumulate: every (i, j) cross product is one full-width
// FMA over the lane dimension — nx^2 vector ops per step with no serial
// chain, full lanes at any Nx.
// Lane blocks are the outer loop over j so the x_k[i] lane vector loads
// once per block instead of once per (i, j): two loads + one store per
// FMA, matching the single-series kernel's traffic. Each (i, j, l) element
// is touched exactly once either way, so results are unchanged.
void batched_dprr_add_avx512(double* r, const double* x_k, const double* x_km1,
                             std::size_t nx, std::size_t lanes) {
  const std::size_t main = lanes - lanes % kWidth;
  double* sums = r + nx * nx * lanes;
  for (std::size_t i = 0; i < nx; ++i) {
    const double* xi = x_k + i * lanes;
    double* block = r + i * nx * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      const __m512d vxi = _mm512_loadu_pd(xi + l);
      for (std::size_t j = 0; j < nx; ++j) {
        double* row = block + j * lanes + l;
        const __m512d acc = _mm512_fmadd_pd(
            vxi, _mm512_loadu_pd(x_km1 + j * lanes + l), _mm512_loadu_pd(row));
        _mm512_storeu_pd(row, acc);
      }
    }
    for (std::size_t l = main; l < lanes; ++l) {
      const double xil = xi[l];
      for (std::size_t j = 0; j < nx; ++j) {
        double* row = block + j * lanes + l;
        *row = std::fma(xil, x_km1[j * lanes + l], *row);
      }
    }
    double* sum_row = sums + i * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      _mm512_storeu_pd(sum_row + l, _mm512_add_pd(_mm512_loadu_pd(sum_row + l),
                                                  _mm512_loadu_pd(xi + l)));
    }
    for (std::size_t l = main; l < lanes; ++l) sum_row[l] += xi[l];
  }
}

// Exact (quantized-family) batched accumulate: two roundings per accumulate
// like DprrAccumulator::add, never FMA.
void batched_dprr_add_exact_avx512(double* r, const double* x_k,
                                   const double* x_km1, std::size_t nx,
                                   std::size_t lanes) {
  const std::size_t main = lanes - lanes % kWidth;
  double* sums = r + nx * nx * lanes;
  for (std::size_t i = 0; i < nx; ++i) {
    const double* xi = x_k + i * lanes;
    double* block = r + i * nx * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      const __m512d vxi = _mm512_loadu_pd(xi + l);
      for (std::size_t j = 0; j < nx; ++j) {
        double* row = block + j * lanes + l;
        const __m512d acc = _mm512_add_pd(
            _mm512_loadu_pd(row),
            _mm512_mul_pd(vxi, _mm512_loadu_pd(x_km1 + j * lanes + l)));
        _mm512_storeu_pd(row, acc);
      }
    }
    for (std::size_t l = main; l < lanes; ++l) {
      const double xil = xi[l];
      for (std::size_t j = 0; j < nx; ++j) {
        block[j * lanes + l] += xil * x_km1[j * lanes + l];
      }
    }
    double* sum_row = sums + i * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      _mm512_storeu_pd(sum_row + l, _mm512_add_pd(_mm512_loadu_pd(sum_row + l),
                                                  _mm512_loadu_pd(xi + l)));
    }
    for (std::size_t l = main; l < lanes; ++l) sum_row[l] += xi[l];
  }
}

// Batched SoA mask: broadcast one weight, multiply by the channel's lane
// vector, accumulate with separate mul + add in ascending v — the scalar
// dot() order per lane, so every lane is bit-identical to Mask::apply_into.
void batched_mask_avx512(const double* weights, std::size_t nx,
                         std::size_t channels, const double* u, double* j,
                         std::size_t lanes) {
  const std::size_t main = lanes - lanes % kWidth;
  for (std::size_t i = 0; i < nx; ++i) {
    const double* wi = weights + i * channels;
    double* row = j + i * lanes;
    for (std::size_t l = 0; l < main; l += kWidth) {
      __m512d acc = _mm512_setzero_pd();
      for (std::size_t v = 0; v < channels; ++v) {
        acc = _mm512_add_pd(
            acc, _mm512_mul_pd(_mm512_set1_pd(wi[v]),
                               _mm512_loadu_pd(u + v * lanes + l)));
      }
      _mm512_storeu_pd(row + l, acc);
    }
    for (std::size_t l = main; l < lanes; ++l) {
      double acc = 0.0;
      for (std::size_t v = 0; v < channels; ++v) {
        acc += wi[v] * u[v * lanes + l];
      }
      row[l] = acc;
    }
  }
}

constexpr Kernels kAvx512Kernels{
    Backend::kAvx512,          &preadd_nonlin_avx512,
    &dprr_add_avx512,          &scale_quantize_avx512,
    &quant_preadd_nonlin_avx512, &dprr_add_exact_avx512,
    &batched_bchain_avx512,    &batched_quant_bchain_avx512,
    &batched_dprr_add_avx512,  &batched_dprr_add_exact_avx512,
    &batched_mask_avx512};

}  // namespace

namespace detail {
const Kernels* avx512_kernels() noexcept { return &kAvx512Kernels; }
}  // namespace detail

}  // namespace dfr::simd

#else  // TU built without AVX-512 arch flags: register nothing.

namespace dfr::simd::detail {
const Kernels* avx512_kernels() noexcept { return nullptr; }
}  // namespace dfr::simd::detail

#endif
