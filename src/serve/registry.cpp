#include "serve/registry.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "util/check.hpp"

namespace dfr::serve {

// ---- ModelRegistry ---------------------------------------------------------

void ModelRegistry::register_model(ModelArtifactPtr artifact) {
  DFR_CHECK_MSG(artifact != nullptr, "cannot register a null artifact");
  DFR_CHECK_MSG(!artifact->name.empty(),
                "artifact needs a non-empty name to be registered");
  {
    std::unique_lock lock(mutex_);
    models_.insert_or_assign(artifact->name, std::move(artifact));
  }
  version_.fetch_add(1, std::memory_order_release);
}

ModelArtifactPtr ModelRegistry::load(std::string id, const std::string& path) {
  ModelArtifactPtr artifact = load_artifact(path, std::move(id));
  register_model(artifact);
  return artifact;
}

bool ModelRegistry::evict(std::string_view id) {
  bool removed = false;
  {
    std::unique_lock lock(mutex_);
    const auto it = models_.find(id);
    if (it != models_.end()) {
      models_.erase(it);
      removed = true;
    }
  }
  if (removed) {
    version_.fetch_add(1, std::memory_order_release);
    // Notify outside the model lock (listeners may read the registry or
    // register models) but UNDER the listener lock — that is what makes
    // unsubscribe_evictions' "never called after return" guarantee hold,
    // and why listeners must not call evict/subscribe/unsubscribe (see the
    // subscribe_evictions contract).
    std::lock_guard<std::mutex> lock(listener_mutex_);
    for (const auto& [token, listener] : listeners_) listener(id);
  }
  return removed;
}

std::uint64_t ModelRegistry::subscribe_evictions(
    std::function<void(std::string_view)> listener) {
  DFR_CHECK_MSG(listener != nullptr, "null eviction listener");
  std::lock_guard<std::mutex> lock(listener_mutex_);
  const std::uint64_t token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void ModelRegistry::unsubscribe_evictions(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  std::erase_if(listeners_,
                [token](const auto& entry) { return entry.first == token; });
}

ModelArtifactPtr ModelRegistry::get(std::string_view id) const {
  std::shared_lock lock(mutex_);
  const auto it = models_.find(id);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<std::string> ModelRegistry::ids() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [id, artifact] : models_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mutex_);
  return models_.size();
}

// ---- PooledEngine ----------------------------------------------------------

namespace {

using EngineStorage =
    std::variant<InferenceEngine, SimdInferenceEngine, QuantizedInferenceEngine,
                 SimdQuantizedInferenceEngine>;

EngineStorage build_engine(ModelArtifactPtr artifact, EngineVariant variant) {
  switch (variant) {
    case EngineVariant::kFloatScalar:
      return EngineStorage(std::in_place_type<InferenceEngine>,
                           FloatDatapath(std::move(artifact)));
    case EngineVariant::kFloatSimd:
      return EngineStorage(std::in_place_type<SimdInferenceEngine>,
                           SimdFloatDatapath(std::move(artifact)));
    case EngineVariant::kQuantScalar:
    case EngineVariant::kQuantSimd: {
      DFR_CHECK_MSG(artifact != nullptr, "null model artifact");
      DFR_CHECK_MSG(artifact->quantized != nullptr,
                    "artifact '" + artifact->name +
                        "' has no quantized twin (attach one with "
                        "with_quantized before quantized serving)");
      if (variant == EngineVariant::kQuantScalar) {
        return EngineStorage(std::in_place_type<QuantizedInferenceEngine>,
                             QuantizedDatapath(artifact->quantized));
      }
      return EngineStorage(std::in_place_type<SimdQuantizedInferenceEngine>,
                           SimdQuantizedDatapath(artifact->quantized));
    }
  }
  DFR_CHECK_MSG(false, "unknown engine variant");
  return EngineStorage(std::in_place_type<InferenceEngine>,
                       FloatDatapath(std::move(artifact)));
}

}  // namespace

PooledEngine::PooledEngine(ModelArtifactPtr artifact, EngineVariant variant)
    : artifact_(std::move(artifact)),
      variant_(variant),
      engine_(build_engine(artifact_, variant_)) {}

PooledEngine::PooledEngine(ModelArtifactPtr artifact, FloatEngineKind kind)
    : PooledEngine(std::move(artifact), resolve_variant(kind)) {}

std::span<const double> PooledEngine::infer(const Matrix& series) {
  return std::visit([&](auto& engine) { return engine.infer(series); },
                    engine_);
}

int PooledEngine::classify(const Matrix& series) {
  return std::visit([&](auto& engine) { return engine.classify(series); },
                    engine_);
}

// ---- PooledBatchedEngine ---------------------------------------------------

namespace {

using BatchedEngineStorage =
    std::variant<BatchedInferenceEngine, BatchedQuantizedInferenceEngine>;

BatchedEngineStorage build_batched_engine(ModelArtifactPtr artifact,
                                          EngineVariant variant,
                                          std::size_t max_lanes) {
  // Scalar variants pin the scalar kernel set (their batched results must
  // stay bit-identical to the scalar single-series pipeline per lane); SIMD
  // variants take the active backend exactly like build_engine.
  switch (variant) {
    case EngineVariant::kFloatScalar:
      return BatchedEngineStorage(
          std::in_place_type<BatchedInferenceEngine>,
          BatchedFloatDatapath(std::move(artifact), simd::Backend::kScalar),
          max_lanes);
    case EngineVariant::kFloatSimd:
      return BatchedEngineStorage(std::in_place_type<BatchedInferenceEngine>,
                                  BatchedFloatDatapath(std::move(artifact)),
                                  max_lanes);
    case EngineVariant::kQuantScalar:
    case EngineVariant::kQuantSimd: {
      DFR_CHECK_MSG(artifact != nullptr, "null model artifact");
      DFR_CHECK_MSG(artifact->quantized != nullptr,
                    "artifact '" + artifact->name +
                        "' has no quantized twin (attach one with "
                        "with_quantized before quantized serving)");
      if (variant == EngineVariant::kQuantScalar) {
        return BatchedEngineStorage(
            std::in_place_type<BatchedQuantizedInferenceEngine>,
            BatchedQuantizedDatapath(artifact->quantized,
                                     simd::Backend::kScalar),
            max_lanes);
      }
      return BatchedEngineStorage(
          std::in_place_type<BatchedQuantizedInferenceEngine>,
          BatchedQuantizedDatapath(artifact->quantized), max_lanes);
    }
  }
  DFR_CHECK_MSG(false, "unknown engine variant");
  return BatchedEngineStorage(std::in_place_type<BatchedInferenceEngine>,
                              BatchedFloatDatapath(std::move(artifact)),
                              max_lanes);
}

}  // namespace

PooledBatchedEngine::PooledBatchedEngine(ModelArtifactPtr artifact,
                                         EngineVariant variant,
                                         std::size_t max_lanes)
    : artifact_(std::move(artifact)),
      variant_(variant),
      max_lanes_(max_lanes),
      engine_(build_batched_engine(artifact_, variant_, max_lanes_)) {}

void PooledBatchedEngine::infer(std::span<const Matrix* const> series) {
  std::visit([&](auto& engine) { engine.infer(series); }, engine_);
}

std::span<const double> PooledBatchedEngine::lane_logits(
    std::size_t lane) const {
  return std::visit(
      [&](const auto& engine) { return engine.lane_logits(lane); }, engine_);
}

int PooledBatchedEngine::lane_label(std::size_t lane) const {
  return std::visit([&](const auto& engine) { return engine.lane_label(lane); },
                    engine_);
}

// ---- EnginePool ------------------------------------------------------------

EnginePool::EnginePool(std::size_t workers) : per_worker_(workers) {
  DFR_CHECK_MSG(workers > 0, "engine pool needs at least one worker slot");
}

void EnginePool::note_eviction(std::string_view id) {
  std::lock_guard<std::mutex> lock(evict_mutex_);
  for (WorkerSlot& slot : per_worker_) {
    slot.pending_evictions.emplace_back(id);
  }
  eviction_version_.fetch_add(1, std::memory_order_release);
}

void EnginePool::apply_pending_evictions(WorkerSlot& slot) {
  // Swap the pending list out under the lock, reclaim outside it: engine
  // destruction (and the artifact release it may cascade into) must not
  // serialize other workers' note_eviction bookkeeping.
  std::vector<std::string> evicted;
  {
    std::lock_guard<std::mutex> lock(evict_mutex_);
    evicted.swap(slot.pending_evictions);
    slot.applied_evictions = eviction_version_.load(std::memory_order_acquire);
  }
  std::erase_if(slot.engines, [&](const std::unique_ptr<PooledEngine>& entry) {
    const std::string& name = entry->artifact()->name;
    return std::find(evicted.begin(), evicted.end(), name) != evicted.end();
  });
  std::erase_if(slot.batched_engines,
                [&](const std::unique_ptr<PooledBatchedEngine>& entry) {
                  const std::string& name = entry->artifact()->name;
                  return std::find(evicted.begin(), evicted.end(), name) !=
                         evicted.end();
                });
}

PooledEngine& EnginePool::engine_for(std::size_t worker,
                                     const ModelArtifactPtr& artifact,
                                     EngineVariant variant) {
  DFR_CHECK_MSG(worker < per_worker_.size(), "worker slot out of range");
  DFR_CHECK_MSG(artifact != nullptr, "cannot build an engine on no artifact");
  WorkerSlot& slot = per_worker_[worker];
  // Steady-state fast path: one relaxed load; only a registry eviction
  // since this worker's last catch-up pays the mutex.
  if (slot.applied_evictions !=
      eviction_version_.load(std::memory_order_acquire)) {
    apply_pending_evictions(slot);
  }
  for (std::size_t i = 0; i < slot.engines.size(); ++i) {
    const std::unique_ptr<PooledEngine>& entry = slot.engines[i];
    if (entry->variant() != variant) continue;
    if (entry->artifact() == artifact) return *entry;  // steady state: reuse
    if (!artifact->name.empty() &&
        entry->artifact()->name == artifact->name) {
      // Hot-swap: same model name, new artifact — rebuild into the same slot
      // so the cache stays bounded by (models x variants) across any number
      // of swaps and outstanding references stay valid. Anonymous
      // (empty-name) artifacts never alias each other: distinct ones get
      // distinct slots rather than thrashing one slot through rebuilds.
      try {
        *entry = PooledEngine(artifact, variant);
      } catch (...) {
        // The replacement cannot serve this variant (e.g. the new artifact
        // dropped its quantized twin): release the stale engine before
        // rethrowing so the swapped-out artifact is not pinned forever.
        slot.engines.erase(slot.engines.begin() +
                           static_cast<std::ptrdiff_t>(i));
        throw;
      }
      return *entry;
    }
  }
  // First request for this (artifact, variant): lazy build.
  slot.engines.push_back(std::make_unique<PooledEngine>(artifact, variant));
  return *slot.engines.back();
}

PooledEngine& EnginePool::engine_for(std::size_t worker,
                                     const ModelArtifactPtr& artifact,
                                     FloatEngineKind kind) {
  return engine_for(worker, artifact, resolve_variant(kind));
}

PooledBatchedEngine& EnginePool::batched_engine_for(
    std::size_t worker, const ModelArtifactPtr& artifact, EngineVariant variant,
    std::size_t max_lanes) {
  DFR_CHECK_MSG(worker < per_worker_.size(), "worker slot out of range");
  DFR_CHECK_MSG(artifact != nullptr, "cannot build an engine on no artifact");
  WorkerSlot& slot = per_worker_[worker];
  if (slot.applied_evictions !=
      eviction_version_.load(std::memory_order_acquire)) {
    apply_pending_evictions(slot);
  }
  for (std::size_t i = 0; i < slot.batched_engines.size(); ++i) {
    const std::unique_ptr<PooledBatchedEngine>& entry = slot.batched_engines[i];
    if (entry->variant() != variant) continue;
    if (entry->artifact() == artifact && entry->max_lanes() == max_lanes) {
      return *entry;  // steady state: reuse
    }
    if (!artifact->name.empty() && entry->artifact()->name == artifact->name) {
      // Hot-swap (or a lane-count change): rebuild into the same slot so the
      // cache stays bounded by (models x variants) across swaps. Same
      // erase-on-failed-rebuild unwind as the unbatched cache.
      try {
        *entry = PooledBatchedEngine(artifact, variant, max_lanes);
      } catch (...) {
        slot.batched_engines.erase(slot.batched_engines.begin() +
                                   static_cast<std::ptrdiff_t>(i));
        throw;
      }
      return *entry;
    }
  }
  slot.batched_engines.push_back(
      std::make_unique<PooledBatchedEngine>(artifact, variant, max_lanes));
  return *slot.batched_engines.back();
}

void EnginePool::clear() {
  std::lock_guard<std::mutex> lock(evict_mutex_);
  for (WorkerSlot& slot : per_worker_) {
    slot.engines.clear();
    slot.batched_engines.clear();
    slot.pending_evictions.clear();
    slot.applied_evictions = eviction_version_.load(std::memory_order_acquire);
  }
}

}  // namespace dfr::serve
