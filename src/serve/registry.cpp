#include "serve/registry.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "util/check.hpp"

namespace dfr::serve {

// ---- ModelRegistry ---------------------------------------------------------

void ModelRegistry::register_model(ModelArtifactPtr artifact) {
  DFR_CHECK_MSG(artifact != nullptr, "cannot register a null artifact");
  DFR_CHECK_MSG(!artifact->name.empty(),
                "artifact needs a non-empty name to be registered");
  {
    std::unique_lock lock(mutex_);
    models_.insert_or_assign(artifact->name, std::move(artifact));
  }
  version_.fetch_add(1, std::memory_order_release);
}

ModelArtifactPtr ModelRegistry::load(std::string id, const std::string& path) {
  ModelArtifactPtr artifact = load_artifact(path, std::move(id));
  register_model(artifact);
  return artifact;
}

bool ModelRegistry::evict(std::string_view id) {
  bool removed = false;
  {
    std::unique_lock lock(mutex_);
    const auto it = models_.find(id);
    if (it != models_.end()) {
      models_.erase(it);
      removed = true;
    }
  }
  if (removed) version_.fetch_add(1, std::memory_order_release);
  return removed;
}

ModelArtifactPtr ModelRegistry::get(std::string_view id) const {
  std::shared_lock lock(mutex_);
  const auto it = models_.find(id);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<std::string> ModelRegistry::ids() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [id, artifact] : models_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mutex_);
  return models_.size();
}

// ---- PooledEngine ----------------------------------------------------------

namespace {

/// kAuto and kSimd are the same engine today; cache them under one key.
FloatEngineKind resolve_kind(FloatEngineKind kind) noexcept {
  return kind == FloatEngineKind::kScalar ? FloatEngineKind::kScalar
                                          : FloatEngineKind::kSimd;
}

std::variant<InferenceEngine, SimdInferenceEngine> build_engine(
    ModelArtifactPtr artifact, FloatEngineKind kind) {
  if (kind == FloatEngineKind::kScalar) {
    return std::variant<InferenceEngine, SimdInferenceEngine>(
        std::in_place_type<InferenceEngine>,
        FloatDatapath(std::move(artifact)));
  }
  return std::variant<InferenceEngine, SimdInferenceEngine>(
      std::in_place_type<SimdInferenceEngine>,
      SimdFloatDatapath(std::move(artifact)));
}

}  // namespace

PooledEngine::PooledEngine(ModelArtifactPtr artifact, FloatEngineKind kind)
    : artifact_(std::move(artifact)),
      kind_(resolve_kind(kind)),
      engine_(build_engine(artifact_, kind_)) {}

std::span<const double> PooledEngine::infer(const Matrix& series) {
  return std::visit([&](auto& engine) { return engine.infer(series); },
                    engine_);
}

int PooledEngine::classify(const Matrix& series) {
  return std::visit([&](auto& engine) { return engine.classify(series); },
                    engine_);
}

// ---- EnginePool ------------------------------------------------------------

EnginePool::EnginePool(std::size_t workers) : per_worker_(workers) {
  DFR_CHECK_MSG(workers > 0, "engine pool needs at least one worker slot");
}

PooledEngine& EnginePool::engine_for(std::size_t worker,
                                     const ModelArtifactPtr& artifact,
                                     FloatEngineKind kind) {
  DFR_CHECK_MSG(worker < per_worker_.size(), "worker slot out of range");
  DFR_CHECK_MSG(artifact != nullptr, "cannot build an engine on no artifact");
  const FloatEngineKind resolved = resolve_kind(kind);
  auto& engines = per_worker_[worker];
  for (const std::unique_ptr<PooledEngine>& entry : engines) {
    if (entry->kind() != resolved) continue;
    if (entry->artifact() == artifact) return *entry;  // steady state: reuse
    if (!artifact->name.empty() &&
        entry->artifact()->name == artifact->name) {
      // Hot-swap: same model name, new artifact — rebuild into the same slot
      // so the cache stays bounded by (models x kinds) across any number of
      // swaps and outstanding references stay valid. Anonymous (empty-name)
      // artifacts never alias each other: distinct ones get distinct slots
      // rather than thrashing one slot through rebuilds.
      *entry = PooledEngine(artifact, resolved);
      return *entry;
    }
  }
  // First request for this (artifact, kind): lazy build.
  engines.push_back(std::make_unique<PooledEngine>(artifact, resolved));
  return *engines.back();
}

void EnginePool::clear() {
  for (auto& engines : per_worker_) engines.clear();
}

}  // namespace dfr::serve
